// Credit-based flow control over one transport pipe, plus deterministic
// fault injection. The protocol (see docs/TRANSPORT.md):
//
//   sender                                receiver
//     credits := initial_credits
//     loop: wait for credit ───DATA(seq,target,item)──▶ check seq,
//           (timeout → bounded                          deliver to the
//            retries w/ backoff)  ◀───CREDIT(n)──────── worker's bounded
//     after last item ──────EOS(total)───────▶          LinkQueue, then
//                                                       grant credit
//
// Credits bridge remote backpressure into the executor's LinkQueue: the
// receiver grants a credit only after the entry went into the bounded
// queue, so a slow consumer stalls the remote sender exactly like a full
// queue stalls a local producer. Cross-worker channels follow the
// partition plan's acyclic worker DAG, so this blocking cannot deadlock.
//
// Sequence numbers make injected faults observable: a dropped frame is a
// gap (surfaced as a data-loss error at the gap or at EOS), a duplicated
// frame is discarded and counted, a delayed frame is just late.

#ifndef STREAMSHARE_TRANSPORT_FLOW_H_
#define STREAMSHARE_TRANSPORT_FLOW_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "engine/latency.h"
#include "transport/transport.h"
#include "transport/wire.h"

namespace streamshare::transport {

struct FlowOptions {
  /// DATA frames the sender may have in flight before the first grant.
  uint64_t initial_credits = 256;
  /// How long one wait for credit (or one send) may block.
  int send_timeout_ms = 2000;
  /// Credit-wait retries after the first timeout before giving up with
  /// DeadlineExceeded.
  int max_retries = 3;
  /// Backoff added per retry: retry k waits send_timeout_ms + k*this.
  int retry_backoff_ms = 50;
};

/// Deterministic fault plan. The sender-side faults apply to DATA frames
/// only; credit_drop_period is the one receiver-side fault — it swallows
/// CREDIT frames, starving the sender so the timeout/retry path (and its
/// DeadlineExceeded escape) is testable. Periods count frames of the
/// faulted type on the channel, 0 disables a fault.
struct FaultPlan {
  uint64_t drop_period = 0;       ///< drop every Nth DATA frame
  uint64_t duplicate_period = 0;  ///< send every Nth DATA frame twice
  uint64_t delay_period = 0;      ///< delay every Nth DATA frame …
  int delay_ms = 0;               ///< … by this much
  uint64_t credit_drop_period = 0;  ///< receiver drops every Nth CREDIT

  bool any() const {
    return drop_period != 0 || duplicate_period != 0 ||
           delay_period != 0 || credit_drop_period != 0;
  }
};

struct ChannelStats {
  uint64_t frames_sent = 0;    ///< DATA frames handed to the pipe
  uint64_t bytes_sent = 0;     ///< wire bytes, all frame types
  uint64_t items_delivered = 0;
  uint64_t credit_stalls = 0;  ///< times the sender ran out of credit
  uint64_t credit_stall_ns = 0;
  uint64_t retries = 0;        ///< credit waits that timed out and retried
  uint64_t faults_dropped = 0;
  uint64_t faults_duplicated = 0;
  uint64_t faults_delayed = 0;
  uint64_t duplicates_discarded = 0;   ///< receiver-side
  uint64_t faults_credits_dropped = 0;  ///< receiver-side
  /// Credit waits that exhausted every retry — the sender gave up with
  /// DeadlineExceeded. The liveness symptom the system promotes into
  /// peer suspicion (network::PeerStatus::kSuspect).
  uint64_t deadline_failures = 0;
};

/// Sending half of one channel. Single-threaded (the producing worker).
class ChannelSender {
 public:
  ChannelSender(std::string label, std::unique_ptr<PipeEnd> end,
                FlowOptions options, FaultPlan faults);

  /// Sends one encoded item to operator `target` on the receiving
  /// worker. Waits for credit first; a stall past the timeout budget
  /// (max_retries retries with backoff) fails with DeadlineExceeded.
  /// A stamped `stamp` rides along as the v2 frame extension (the
  /// receiver rebuilds it, transport time credited); an unstamped one
  /// keeps the frame at the v1 layout, byte-identical to the old wire.
  Status SendItem(uint64_t target, std::string_view encoded_item,
                  const engine::latency::ItemStamp& stamp);
  Status SendItem(uint64_t target, std::string_view encoded_item) {
    return SendItem(target, encoded_item, engine::latency::ItemStamp{});
  }

  /// Sends EOS carrying the total DATA count; the receiver uses it to
  /// detect tail loss. Call exactly once, after the last item.
  Status SendEos();

  /// Forwards a failure downstream so remote workers stop cleanly.
  Status SendError(std::string_view message);

  /// Call after SendEos/SendError, before the channel's fds can close:
  /// consumes whatever CREDIT frames are still in flight until the peer
  /// closes its end (bounded by the send timeout). This leaves the pipe's
  /// receive buffer empty at close time — a TCP socket closed with unread
  /// data aborts the connection (RST) and can destroy the peer's
  /// still-buffered EOS; the cross-process runner hit exactly that race.
  void DrainUntilPeerClose();

  void Close() { end_->Close(); }

  const ChannelStats& stats() const { return stats_; }
  const std::string& label() const { return label_; }

 private:
  /// Ensures at least one credit, consuming CREDIT frames from the pipe
  /// (this is the only frame type flowing sender-ward).
  Status AwaitCredit();

  std::string label_;
  std::unique_ptr<PipeEnd> end_;
  FlowOptions options_;
  FaultPlan faults_;
  uint64_t credits_ = 0;
  uint64_t next_seq_ = 0;
  ChannelStats stats_;
};

/// Receiving half of one channel. Single-threaded (the channel's
/// receiver thread).
class ChannelReceiver {
 public:
  /// What one Recv produced.
  struct Incoming {
    FrameType type = FrameType::kError;
    uint64_t target = 0;     ///< DATA: operator index on this worker
    std::string item_bytes;  ///< DATA: encoded item
    std::string error;       ///< ERROR: the sender's message
    /// DATA: the item's latency stamp, rebuilt from the v2 frame
    /// extension with this hop's wire time added; unstamped for v1
    /// frames and unstamped senders.
    engine::latency::ItemStamp stamp;
  };

  ChannelReceiver(std::string label, std::unique_ptr<PipeEnd> end,
                  FlowOptions options, FaultPlan faults = {});

  /// Blocks for the next DATA / EOS / ERROR. Duplicates are discarded
  /// internally; a sequence gap or short EOS total fails with
  /// Unavailable("…data loss…"). After EOS or ERROR the channel is done.
  Status Recv(Incoming* out);

  /// Grants `count` credits back to the sender. Call after the received
  /// entry cleared the bounded LinkQueue — that is what extends the
  /// queue's backpressure across the wire.
  void GrantCredit(uint64_t count);

  void Close() { end_->Close(); }

  const ChannelStats& stats() const { return stats_; }
  const std::string& label() const { return label_; }

 private:
  std::string label_;
  std::unique_ptr<PipeEnd> end_;
  FlowOptions options_;
  FaultPlan faults_;
  uint64_t expected_seq_ = 0;
  uint64_t credit_frames_ = 0;
  ChannelStats stats_;
};

}  // namespace streamshare::transport

#endif  // STREAMSHARE_TRANSPORT_FLOW_H_
