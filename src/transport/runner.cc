#include "transport/runner.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/executor.h"
#include "engine/latency.h"
#include "engine/link_queue.h"
#include "engine/metrics.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "transport/codec.h"

namespace streamshare::transport {

namespace {

using engine::ItemPtr;
using engine::LinkQueue;
using engine::Metrics;
using engine::Operator;
using engine::PartitionPlan;

/// Registry series fed once per run from the aggregated channel stats.
struct TransportSeries {
  obs::Counter* items_sent;
  obs::Counter* frames_sent;
  obs::Counter* encoded_bytes;
  obs::Counter* wire_bytes;
  obs::Counter* credit_stalls;
  obs::Counter* duplicates_discarded;

  static const TransportSeries& Get() {
    static const TransportSeries series = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      return TransportSeries{
          registry.GetCounter("transport.items_sent"),
          registry.GetCounter("transport.frames_sent"),
          registry.GetCounter("transport.encoded_bytes"),
          registry.GetCounter("transport.wire_bytes"),
          registry.GetCounter("transport.credit_stalls"),
          registry.GetCounter("transport.duplicates_discarded"),
      };
    }();
    return series;
  }
};

/// Prefix marking an error a worker merely relayed from upstream; the
/// multi-process merge prefers the originating worker's error over the
/// relays that cascaded from it.
constexpr std::string_view kRelayPrefix = "upstream worker failure: ";

class AbortState {
 public:
  void Record(Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_.ok()) first_error_ = std::move(status);
    aborted_.store(true, std::memory_order_release);
  }
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  Status Snapshot() {
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
  }

 private:
  std::mutex mu_;
  Status first_error_ = Status::Ok();
  std::atomic<bool> aborted_{false};
};

class TransportPortOp;

/// One flow-controlled channel between a pair of workers. The sender end
/// (and the shared per-channel encoder) is driven by the source worker's
/// thread, the receiver end by one receiver thread on the target worker.
struct ChannelRt {
  size_t source_worker = 0;
  size_t target_worker = 0;
  std::unique_ptr<ChannelSender> sender;
  std::unique_ptr<ChannelReceiver> receiver;
  ItemEncoder encoder;
};

/// Sending half of a cross-worker edge: encodes the item with the
/// channel's dictionary and ships it to the target's operator index.
/// Never bills engine metrics (the replaced edge's target still does its
/// own accounting when the receiving worker pushes into it).
class TransportPortOp final : public Operator {
 public:
  TransportPortOp(Operator* target, uint64_t target_index,
                  ChannelSender* sender, ItemEncoder* encoder,
                  EdgeTrafficStats* edge)
      : Operator("transport-port:" + target->label()),
        target_index_(target_index),
        sender_(sender),
        encoder_(encoder),
        edge_(edge) {}

 protected:
  Status Process(const ItemPtr& item) override {
    buffer_.clear();
    obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
    const bool tracing = recorder.enabled();
    uint64_t start = tracing ? recorder.NowMicros() : 0;
    encoder_->Encode(*item, &buffer_);
    if (tracing) {
      recorder.RecordComplete(
          "codec.encode", "transport", start, recorder.NowMicros() - start,
          {obs::TraceArg::Num("bytes",
                              static_cast<double>(buffer_.size()))});
    }
    ++edge_->items;
    edge_->encoded_bytes += buffer_.size();
    // DOM-path emits carry the latency stamp in the thread-local ambient;
    // it crosses the wire as the v2 frame extension.
    return sender_->SendItem(target_index_, buffer_,
                             engine::latency::Ambient());
  }

  /// Record slots encode straight from the record's schema walk — same
  /// wire bytes and dictionary state as encoding the materialized tree,
  /// minus the tree.
  Status ProcessBatch(engine::ItemBatch* batch) override {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
    for (size_t i = 0; i < batch->size(); ++i) {
      const engine::ItemBatch::Slot& slot = batch->slot(i);
      buffer_.clear();
      const bool tracing = recorder.enabled();
      uint64_t start = tracing ? recorder.NowMicros() : 0;
      if (slot.is_record) {
        encoder_->EncodeRecord(slot.record, &buffer_);
      } else {
        encoder_->Encode(*slot.item, &buffer_);
      }
      if (tracing) {
        recorder.RecordComplete(
            "codec.encode", "transport", start,
            recorder.NowMicros() - start,
            {obs::TraceArg::Num("bytes",
                                static_cast<double>(buffer_.size()))});
      }
      ++edge_->items;
      edge_->encoded_bytes += buffer_.size();
      SS_RETURN_IF_ERROR(
          sender_->SendItem(target_index_, buffer_, slot.stamp));
    }
    return Status::Ok();
  }

 private:
  uint64_t target_index_;
  ChannelSender* sender_;
  ItemEncoder* encoder_;
  EdgeTrafficStats* edge_;
  std::string buffer_;
};

struct WorkerRt {
  size_t index = 0;
  std::vector<network::NodeId> peers;
  size_t operator_count = 0;
  std::unique_ptr<LinkQueue> queue;
  /// Boundary operators finished once all pills arrived: entries assigned
  /// here plus targets of inbound cross edges, in discovery order.
  std::vector<Operator*> roots;
  std::set<Operator*> root_set;
  std::vector<ChannelRt*> inbound;
  std::vector<ChannelRt*> outbound;
  /// Indices into entries/item_lists this worker feeds itself.
  std::vector<size_t> entry_streams;
  size_t expected_pills = 0;
  /// Worker-local metrics shard per original Metrics sink.
  std::map<Metrics*, std::unique_ptr<Metrics>> shards;

  void AddRoot(Operator* op) {
    if (root_set.insert(op).second) roots.push_back(op);
  }
};

/// Receiver thread: one per inbound channel. Decodes DATA frames into the
/// worker's bounded queue and grants a credit only after the push went
/// through — that handoff is what extends queue backpressure across the
/// wire. Ends with one poison pill, whatever happened.
void ReceiveChannel(WorkerRt* w, ChannelRt* ch, const PartitionPlan& plan,
                    AbortState* abort) {
  obs::ScopedShard pinned(w->index);
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  ItemDecoder decoder;
  while (true) {
    ChannelReceiver::Incoming in;
    Status status = ch->receiver->Recv(&in);
    if (!status.ok()) {
      abort->Record(std::move(status));
      break;
    }
    if (in.type == FrameType::kEos) break;
    if (in.type == FrameType::kError) {
      abort->Record(Status::Internal(std::string(kRelayPrefix) + in.error));
      break;
    }
    if (in.target >= plan.ops.size() ||
        plan.worker_of[in.target] != w->index) {
      abort->Record(Status::Internal(
          "channel " + ch->receiver->label() +
          ": DATA frame routed to a foreign operator index"));
      break;
    }
    engine::ItemBatch::Slot slot;
    const bool tracing = recorder.enabled();
    uint64_t start = tracing ? recorder.NowMicros() : 0;
    Status decoded = decoder.DecodeSlot(in.item_bytes, &slot);
    if (tracing) {
      recorder.RecordComplete(
          "codec.decode", "transport", start, recorder.NowMicros() - start,
          {obs::TraceArg::Num("bytes",
                              static_cast<double>(in.item_bytes.size()))});
    }
    if (!decoded.ok()) {
      abort->Record(
          decoded.WithContext("channel " + ch->receiver->label()));
      break;
    }
    // The wire carries the stamp outside the item bytes; restore it onto
    // the decoded slot so it keeps riding toward the sink.
    slot.stamp = in.stamp;
    LinkQueue::Entry entry;
    entry.target = plan.ops[in.target];
    entry.batch.AppendSlot(slot);
    w->queue->Push(std::move(entry));
    ch->receiver->GrantCredit(1);
  }
  // Close promptly: the sender side holds its end open until this close
  // arrives (DrainUntilPeerClose), which keeps TCP teardown orderly when
  // each worker is its own process.
  ch->receiver->Close();
  w->queue->Push(LinkQueue::Entry{});
}

/// Feeder thread: pushes this worker's own entry streams (round-robin
/// across streams, per-stream order preserved), then one pill. Items are
/// adopted into compact records while buffering; each full batch crosses
/// the queue as one entry.
void FeedEntries(WorkerRt* w, const std::vector<Operator*>& entries,
                 const std::vector<std::vector<ItemPtr>>& item_lists,
                 size_t batch_size, bool adopt_records, AbortState* abort) {
  std::vector<engine::ItemBatch> buffers(w->entry_streams.size());
  std::vector<size_t> cursors(w->entry_streams.size(), 0);
  std::vector<size_t> active;
  for (size_t i = 0; i < w->entry_streams.size(); ++i) {
    buffers[i].reserve(batch_size);
    if (!item_lists[w->entry_streams[i]].empty()) active.push_back(i);
  }
  const bool stamping = engine::latency::Enabled();
  while (!active.empty() && !abort->aborted()) {
    size_t write = 0;
    for (size_t idx = 0; idx < active.size(); ++idx) {
      size_t i = active[idx];
      size_t s = w->entry_streams[i];
      buffers[i].AppendItem(item_lists[s][cursors[i]++], adopt_records);
      if (stamping) {
        buffers[i].slot(buffers[i].size() - 1).stamp.ingress_us =
            engine::latency::NowUs();
      }
      if (buffers[i].size() >= batch_size) {
        w->queue->Push(LinkQueue::Entry{entries[s], std::move(buffers[i])});
        buffers[i] = engine::ItemBatch();
        buffers[i].reserve(batch_size);
      }
      if (cursors[i] < item_lists[s].size()) active[write++] = i;
    }
    active.resize(write);
  }
  if (!abort->aborted()) {
    for (size_t i = 0; i < buffers.size(); ++i) {
      if (buffers[i].empty()) continue;
      w->queue->Push(
          LinkQueue::Entry{entries[w->entry_streams[i]],
                           std::move(buffers[i])});
    }
  }
  w->queue->Push(LinkQueue::Entry{});
}

/// One worker: receiver threads + feeder thread around the same drain
/// loop the parallel executor runs, then EOS (or the first error) down
/// every outbound channel.
void RunWorker(WorkerRt* w, const PartitionPlan& plan,
               const std::vector<Operator*>& entries,
               const std::vector<std::vector<ItemPtr>>& item_lists,
               size_t batch_size, bool adopt_records, AbortState* abort,
               bool finish) {
  obs::ScopedShard pinned(w->index);
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  if (recorder.enabled()) {
    std::string name = "tworker-" + std::to_string(w->index);
    if (!w->peers.empty()) {
      name += " [";
      for (size_t i = 0; i < w->peers.size(); ++i) {
        if (i > 0) name += ",";
        name += "SP" + std::to_string(w->peers[i]);
      }
      name += "]";
    }
    recorder.SetThreadName(std::move(name));
  }

  std::vector<std::thread> helpers;
  helpers.reserve(w->inbound.size() + 1);
  for (ChannelRt* ch : w->inbound) {
    helpers.emplace_back(ReceiveChannel, w, ch, std::cref(plan), abort);
  }
  if (!w->entry_streams.empty()) {
    helpers.emplace_back(FeedEntries, w, std::cref(entries),
                         std::cref(item_lists), batch_size, adopt_records,
                         abort);
  }

  std::vector<LinkQueue::Entry> batch;
  batch.reserve(batch_size);
  size_t pills = 0;
  while (pills < w->expected_pills) {
    batch.clear();
    w->queue->PopBatch(&batch, batch_size);
    for (LinkQueue::Entry& entry : batch) {
      if (entry.target == nullptr) {
        ++pills;
        continue;
      }
      if (abort->aborted()) continue;  // drain without processing
      Status status = entry.target->PushBatch(&entry.batch);
      if (!status.ok()) {
        abort->Record(engine::WrapOperatorFailure(std::move(status), "push",
                                                  *entry.target));
      }
    }
  }
  if (finish && !abort->aborted()) {
    for (Operator* root : w->roots) {
      Status status = root->Finish();
      if (!status.ok()) {
        abort->Record(
            engine::WrapOperatorFailure(std::move(status), "finish", *root));
        break;
      }
    }
  }
  for (ChannelRt* ch : w->outbound) {
    Status status = abort->aborted()
                        ? ch->sender->SendError(abort->Snapshot().ToString())
                        : ch->sender->SendEos();
    if (!status.ok() && !abort->aborted()) abort->Record(std::move(status));
  }
  // Only after EOS went down every channel: wait (bounded) for each peer
  // to acknowledge by closing its end, so no channel still has unread
  // CREDIT frames when this worker's fds close. A process-mode exit that
  // skips this can turn into a TCP reset that destroys the peer's
  // still-buffered EOS.
  for (ChannelRt* ch : w->outbound) ch->sender->DrainUntilPeerClose();
  for (std::thread& helper : helpers) helper.join();
}

// --- Cross-process report blob -----------------------------------------
//
// A child serializes everything it measured into one varint-framed blob
// and writes it to its report pipe before _exit(0):
//
//   varint version (2)
//   varint status code | string message
//   varint #metric shards | per shard: varint #links, varint bytes each;
//                           varint #peers, double work + varint items each
//   varint #sinks   | per sink:    varint op index, Δitems, Δbytes, Δhash
//   varint #edges   | per edge:    varint edge index, items, encoded bytes
//   varint #channel halves | per half: varint channel index, 10 varints
//                            (ChannelStats fields in declaration order)
//   queue stats: 4 varints (entries, producer ns, consumer ns, max depth)
//   varint #histograms | per histogram (v2): string name,
//                        varint #bounds + double each,
//                        varint count, double sum, double max,
//                        varint #buckets + varint each
//
// Shard order is the deterministic first-seen order of the rebind pass,
// which parent and child share (the child is a fork of the parent taken
// after that pass), so no names or ids travel with the shards. The
// histogram section carries names: it ships every non-empty registry
// histogram (latency and queue-residency series), and the child calls
// MetricsRegistry::ResetAll right after fork so the counts are pure
// run-deltas the parent can MergeCounts without double counting.

void PutDouble(std::string* out, double value) {
  char bytes[sizeof(double)];
  std::memcpy(bytes, &value, sizeof(double));
  out->append(bytes, sizeof(double));
}

bool GetDouble(std::string_view* data, double* value) {
  if (data->size() < sizeof(double)) return false;
  std::memcpy(value, data->data(), sizeof(double));
  data->remove_prefix(sizeof(double));
  return true;
}

void PutString(std::string* out, std::string_view s) {
  PutVarint(out, s.size());
  out->append(s);
}

bool GetString(std::string_view* data, std::string* s) {
  uint64_t size = 0;
  if (!GetVarint(data, &size) || size > data->size()) return false;
  s->assign(data->substr(0, size));
  data->remove_prefix(size);
  return true;
}

void PutChannelStats(std::string* out, const ChannelStats& s) {
  PutVarint(out, s.frames_sent);
  PutVarint(out, s.bytes_sent);
  PutVarint(out, s.items_delivered);
  PutVarint(out, s.credit_stalls);
  PutVarint(out, s.credit_stall_ns);
  PutVarint(out, s.retries);
  PutVarint(out, s.faults_dropped);
  PutVarint(out, s.faults_duplicated);
  PutVarint(out, s.faults_delayed);
  PutVarint(out, s.duplicates_discarded);
  PutVarint(out, s.faults_credits_dropped);
  PutVarint(out, s.deadline_failures);
}

bool GetChannelStats(std::string_view* data, ChannelStats* s) {
  return GetVarint(data, &s->frames_sent) &&
         GetVarint(data, &s->bytes_sent) &&
         GetVarint(data, &s->items_delivered) &&
         GetVarint(data, &s->credit_stalls) &&
         GetVarint(data, &s->credit_stall_ns) &&
         GetVarint(data, &s->retries) &&
         GetVarint(data, &s->faults_dropped) &&
         GetVarint(data, &s->faults_duplicated) &&
         GetVarint(data, &s->faults_delayed) &&
         GetVarint(data, &s->duplicates_discarded) &&
         GetVarint(data, &s->faults_credits_dropped) &&
         GetVarint(data, &s->deadline_failures);
}

/// Adds every field of `from` into `into` (the two halves of a channel
/// report disjoint fields, so a plain field-wise sum recombines them).
void AddChannelStats(ChannelStats* into, const ChannelStats& from) {
  into->frames_sent += from.frames_sent;
  into->bytes_sent += from.bytes_sent;
  into->items_delivered += from.items_delivered;
  into->credit_stalls += from.credit_stalls;
  into->credit_stall_ns += from.credit_stall_ns;
  into->retries += from.retries;
  into->faults_dropped += from.faults_dropped;
  into->faults_duplicated += from.faults_duplicated;
  into->faults_delayed += from.faults_delayed;
  into->duplicates_discarded += from.duplicates_discarded;
  into->faults_credits_dropped += from.faults_credits_dropped;
  into->deadline_failures += from.deadline_failures;
}

bool WriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

bool ReadAll(int fd, std::string* out) {
  char chunk[16384];
  while (true) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return true;
    out->append(chunk, static_cast<size_t>(n));
  }
}

inline constexpr uint64_t kReportVersion = 2;

struct SinkBaseline {
  size_t op_index = 0;
  engine::SinkOp* sink = nullptr;
  uint64_t items = 0;
  uint64_t bytes = 0;
  uint64_t hash = 0;
};

Status StatusFromReport(uint64_t code, std::string message) {
  if (code == 0) return Status::Ok();
  if (code > static_cast<uint64_t>(StatusCode::kUnavailable)) {
    code = static_cast<uint64_t>(StatusCode::kInternal);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace

PartitionedRunner::PartitionedRunner(Transport* transport,
                                     RunnerOptions options)
    : transport_(transport), options_(std::move(options)) {
  if (options_.parallel.queue_capacity == 0) {
    options_.parallel.queue_capacity = 1;
  }
  if (options_.parallel.batch_size == 0) options_.parallel.batch_size = 1;
}

Status PartitionedRunner::Run(
    const std::vector<Operator*>& entries,
    const std::vector<std::vector<ItemPtr>>& item_lists, bool finish) {
  run_stats_ = TransportRunStats{};
  run_stats_.transport = transport_->name();
  if (entries.size() != item_lists.size()) {
    return Status::InvalidArgument(
        "PartitionedRunner::Run: entries and item lists differ in count");
  }
  if (options_.mode == RunnerOptions::Mode::kProcesses &&
      !transport_->SupportsProcesses()) {
    return Status::InvalidArgument(
        std::string("transport '") + transport_->name() +
        "' cannot span processes; use Mode::kThreads");
  }
  if (!finish && options_.mode == RunnerOptions::Mode::kProcesses) {
    return Status::Unsupported(
        "PartitionedRunner: segmented runs (finish=false) need operator "
        "state to survive between segments, which forked worker "
        "processes cannot provide; use Mode::kThreads");
  }

  PartitionPlan plan;
  SS_RETURN_IF_ERROR(engine::PlanPeerPartitions(entries, &plan));
  const size_t batch_size = options_.parallel.batch_size;

  // Content hashes make cross-mode result comparison cheap, and in
  // multi-process mode they are how sink contents survive the report
  // pipe at all.
  std::vector<SinkBaseline> sinks;
  for (size_t i = 0; i < plan.ops.size(); ++i) {
    if (auto* sink = dynamic_cast<engine::SinkOp*>(plan.ops[i])) {
      sink->EnableContentHash();
      sinks.push_back(SinkBaseline{i, sink, sink->item_count(),
                                   sink->total_bytes(),
                                   sink->content_hash()});
    }
  }

  const size_t worker_count = plan.worker_count;
  std::vector<WorkerRt> workers(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    workers[w].index = w;
    workers[w].peers = plan.worker_peers[w];
    workers[w].operator_count = plan.worker_operator_count[w];
    workers[w].queue =
        std::make_unique<LinkQueue>(options_.parallel.queue_capacity);
    if (engine::latency::Enabled() && obs::Enabled()) {
      // Registered before any fork, so process-mode children observe into
      // a histogram the parent also owns and can merge reports into.
      workers[w].queue->SetResidencyHistogram(
          obs::MetricsRegistry::Default().GetHistogram(
              "transport.queue.worker." + std::to_string(w) +
                  ".residency_us",
              obs::Histogram::ExponentialBounds(50.0, 1.6, 24)));
    }
  }
  for (size_t s = 0; s < entries.size(); ++s) {
    WorkerRt& w = workers[plan.WorkerOf(entries[s])];
    w.entry_streams.push_back(s);
    w.AddRoot(entries[s]);
  }

  // --- One flow-controlled channel per worker pair with cross traffic,
  // pipes created up front (before any fork). ---
  std::vector<std::unique_ptr<ChannelRt>> channels;
  std::map<std::pair<size_t, size_t>, ChannelRt*> channel_of;
  for (const PartitionPlan::CrossEdge& edge : plan.cross_edges) {
    size_t src = plan.worker_of[edge.source];
    size_t dst = plan.worker_of[edge.target];
    auto key = std::make_pair(src, dst);
    if (channel_of.count(key) != 0) continue;
    std::string label =
        "w" + std::to_string(src) + "->w" + std::to_string(dst);
    PipePair pair;
    SS_RETURN_IF_ERROR(transport_->CreatePipe(label, &pair));
    auto channel = std::make_unique<ChannelRt>();
    channel->source_worker = src;
    channel->target_worker = dst;
    channel->sender = std::make_unique<ChannelSender>(
        label, std::move(pair.ends[0]), options_.flow, options_.faults);
    channel->receiver = std::make_unique<ChannelReceiver>(
        label, std::move(pair.ends[1]), options_.flow, options_.faults);
    workers[src].outbound.push_back(channel.get());
    workers[dst].inbound.push_back(channel.get());
    channel_of[key] = channel.get();
    channels.push_back(std::move(channel));
  }
  for (size_t w = 0; w < worker_count; ++w) {
    workers[w].expected_pills = workers[w].inbound.size() +
                                (workers[w].entry_streams.empty() ? 0 : 1);
  }

  // Edge stats live in run_stats_ so the ports can fill them in place;
  // the vector is fully sized before any worker starts.
  run_stats_.edges.reserve(plan.cross_edges.size());
  for (const PartitionPlan::CrossEdge& edge : plan.cross_edges) {
    EdgeTrafficStats stats;
    stats.source_op = edge.source;
    stats.target_op = edge.target;
    stats.source_worker = plan.worker_of[edge.source];
    stats.target_worker = plan.worker_of[edge.target];
    if (auto* link_op = dynamic_cast<engine::LinkOp*>(plan.ops[edge.source])) {
      stats.link = static_cast<int>(link_op->link());
    }
    run_stats_.edges.push_back(stats);
  }

  // --- Splice transport ports into every cross-worker edge. ---
  struct Splice {
    Operator* source;
    Operator* original;
    std::unique_ptr<TransportPortOp> port;
  };
  std::vector<Splice> splices;
  splices.reserve(plan.cross_edges.size());
  for (size_t e = 0; e < plan.cross_edges.size(); ++e) {
    const PartitionPlan::CrossEdge& edge = plan.cross_edges[e];
    Operator* source = plan.ops[edge.source];
    Operator* target = plan.ops[edge.target];
    size_t src = plan.worker_of[edge.source];
    size_t dst = plan.worker_of[edge.target];
    ChannelRt* channel = channel_of[{src, dst}];
    auto port = std::make_unique<TransportPortOp>(
        target, edge.target, channel->sender.get(), &channel->encoder,
        &run_stats_.edges[e]);
    source->ReplaceDownstream(target, port.get());
    workers[dst].AddRoot(target);
    splices.push_back(Splice{source, target, std::move(port)});
  }

  // --- Rebind metrics to per-worker shards. The (original, shard) pair
  // order is deterministic first-seen order; children report shards in
  // the same order, so the report needs no metric identities. ---
  struct Rebind {
    Operator* op;
    Metrics* original;
    Metrics* shard;
  };
  std::vector<Rebind> rebinds;
  std::vector<std::vector<std::pair<Metrics*, Metrics*>>> ordered_shards(
      worker_count);
  {
    std::vector<Metrics*> targets;
    for (size_t i = 0; i < plan.ops.size(); ++i) {
      targets.clear();
      plan.ops[i]->AppendMetricsTargets(&targets);
      WorkerRt& worker = workers[plan.worker_of[i]];
      for (Metrics* original : targets) {
        auto it = worker.shards.find(original);
        if (it == worker.shards.end()) {
          it = worker.shards
                   .emplace(original, std::make_unique<Metrics>(
                                          Metrics::ShardLike(*original)))
                   .first;
          ordered_shards[plan.worker_of[i]].emplace_back(original,
                                                         it->second.get());
        }
        plan.ops[i]->RebindMetrics(original, it->second.get());
        rebinds.push_back(Rebind{plan.ops[i], original, it->second.get()});
      }
    }
  }

  obs::TraceSpan run_span(&obs::TraceRecorder::Default(), "transport.run",
                          "transport");
  run_span.AddArg(obs::TraceArg::Str("transport", transport_->name()));
  run_span.AddArg(
      obs::TraceArg::Num("workers", static_cast<double>(worker_count)));

  run_stats_.channels.reserve(channels.size());
  for (const auto& channel : channels) {
    ChannelTrafficStats stats;
    stats.source_worker = channel->source_worker;
    stats.target_worker = channel->target_worker;
    run_stats_.channels.push_back(stats);
  }
  run_stats_.workers.resize(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    run_stats_.workers[w].peers = workers[w].peers;
    run_stats_.workers[w].operator_count = workers[w].operator_count;
  }

  Status run_status;
  if (options_.mode == RunnerOptions::Mode::kThreads) {
    // --- Thread mode: one thread per worker, channels stay in-process. ---
    AbortState abort;
    std::vector<std::thread> threads;
    threads.reserve(worker_count);
    for (size_t w = 0; w < worker_count; ++w) {
      threads.emplace_back(RunWorker, &workers[w], std::cref(plan),
                           std::cref(entries), std::cref(item_lists),
                           batch_size, options_.parallel.adopt_records,
                           &abort, finish);
    }
    for (std::thread& thread : threads) thread.join();
    run_status = abort.Snapshot();

    for (WorkerRt& worker : workers) {
      for (auto& [original, shard] : worker.shards) {
        original->MergeFrom(*shard);
      }
    }
    for (size_t c = 0; c < channels.size(); ++c) {
      AddChannelStats(&run_stats_.channels[c].stats,
                      channels[c]->sender->stats());
      ChannelStats receiver_side;
      receiver_side.items_delivered =
          channels[c]->receiver->stats().items_delivered;
      receiver_side.duplicates_discarded =
          channels[c]->receiver->stats().duplicates_discarded;
      AddChannelStats(&run_stats_.channels[c].stats, receiver_side);
    }
    for (size_t w = 0; w < worker_count; ++w) {
      run_stats_.workers[w].entries_received =
          workers[w].queue->pushed_count();
      run_stats_.workers[w].producer_blocked_ns =
          workers[w].queue->producer_blocked_ns();
      run_stats_.workers[w].consumer_blocked_ns =
          workers[w].queue->consumer_blocked_ns();
      run_stats_.workers[w].max_queue_depth = workers[w].queue->max_depth();
    }
  } else {
    // --- Process mode: fork one child per worker. All pipes (transport
    // channels and report pipes) exist before the first fork; every
    // process then closes the ends it does not own, so EOF semantics
    // stay exact when a process exits. ---
    run_stats_.process_count = worker_count;
    std::vector<int> report_read(worker_count, -1);
    std::vector<int> report_write(worker_count, -1);
    auto close_reports = [&] {
      for (size_t w = 0; w < worker_count; ++w) {
        if (report_read[w] >= 0) ::close(report_read[w]);
        if (report_write[w] >= 0) ::close(report_write[w]);
        report_read[w] = report_write[w] = -1;
      }
    };
    for (size_t w = 0; w < worker_count && run_status.ok(); ++w) {
      int fds[2];
      if (::pipe(fds) != 0) {
        run_status = Status::Internal(std::string("pipe: ") +
                                      std::strerror(errno));
        break;
      }
      report_read[w] = fds[0];
      report_write[w] = fds[1];
    }

    std::vector<pid_t> children(worker_count, -1);
    for (size_t w = 0; w < worker_count && run_status.ok(); ++w) {
      pid_t pid = ::fork();
      if (pid < 0) {
        run_status = Status::Internal(std::string("fork: ") +
                                      std::strerror(errno));
        break;
      }
      if (pid == 0) {
        // === child: worker w ===
        for (size_t x = 0; x < worker_count; ++x) {
          if (report_read[x] >= 0) ::close(report_read[x]);
          if (x != w && report_write[x] >= 0) ::close(report_write[x]);
        }
        for (auto& channel : channels) {
          if (channel->source_worker != w) channel->sender->Close();
          if (channel->target_worker != w) channel->receiver->Close();
        }
        // Zero the inherited registry (identities survive, so cached
        // histogram pointers stay valid): everything this child observes
        // from here on is a pure run-delta its report can hand the parent
        // to MergeCounts without double counting the pre-fork totals.
        obs::MetricsRegistry::Default().ResetAll();

        AbortState abort;
        RunWorker(&workers[w], plan, entries, item_lists, batch_size,
                  options_.parallel.adopt_records, &abort, /*finish=*/true);
        Status status = abort.Snapshot();

        std::string report;
        PutVarint(&report, kReportVersion);
        PutVarint(&report, static_cast<uint64_t>(status.code()));
        PutString(&report, status.ok() ? "" : status.message());

        PutVarint(&report, ordered_shards[w].size());
        for (const auto& [original, shard] : ordered_shards[w]) {
          (void)original;
          PutVarint(&report, shard->link_count());
          for (size_t i = 0; i < shard->link_count(); ++i) {
            PutVarint(&report, shard->BytesOnLink(
                                   static_cast<network::LinkId>(i)));
          }
          PutVarint(&report, shard->peer_count());
          for (size_t i = 0; i < shard->peer_count(); ++i) {
            network::NodeId peer = static_cast<network::NodeId>(i);
            PutDouble(&report, shard->WorkAtPeer(peer));
            PutVarint(&report, shard->OperatorInvocationsAtPeer(peer));
          }
        }

        uint64_t sink_count = 0;
        for (const SinkBaseline& s : sinks) {
          if (plan.worker_of[s.op_index] == w) ++sink_count;
        }
        PutVarint(&report, sink_count);
        for (const SinkBaseline& s : sinks) {
          if (plan.worker_of[s.op_index] != w) continue;
          PutVarint(&report, s.op_index);
          PutVarint(&report, s.sink->item_count() - s.items);
          PutVarint(&report, s.sink->total_bytes() - s.bytes);
          PutVarint(&report, s.sink->content_hash() - s.hash);
        }

        uint64_t edge_count = 0;
        for (const EdgeTrafficStats& e : run_stats_.edges) {
          if (e.source_worker == w) ++edge_count;
        }
        PutVarint(&report, edge_count);
        for (size_t e = 0; e < run_stats_.edges.size(); ++e) {
          if (run_stats_.edges[e].source_worker != w) continue;
          PutVarint(&report, e);
          PutVarint(&report, run_stats_.edges[e].items);
          PutVarint(&report, run_stats_.edges[e].encoded_bytes);
        }

        uint64_t half_count = 0;
        for (const auto& channel : channels) {
          if (channel->source_worker == w) ++half_count;
          if (channel->target_worker == w) ++half_count;
        }
        PutVarint(&report, half_count);
        for (size_t c = 0; c < channels.size(); ++c) {
          if (channels[c]->source_worker == w) {
            PutVarint(&report, c);
            PutChannelStats(&report, channels[c]->sender->stats());
          }
          if (channels[c]->target_worker == w) {
            PutVarint(&report, c);
            ChannelStats receiver_side;
            receiver_side.items_delivered =
                channels[c]->receiver->stats().items_delivered;
            receiver_side.duplicates_discarded =
                channels[c]->receiver->stats().duplicates_discarded;
            PutChannelStats(&report, receiver_side);
          }
        }

        PutVarint(&report, workers[w].queue->pushed_count());
        PutVarint(&report, workers[w].queue->producer_blocked_ns());
        PutVarint(&report, workers[w].queue->consumer_blocked_ns());
        PutVarint(&report, workers[w].queue->max_depth());

        {
          std::vector<obs::MetricSnapshot> metrics =
              obs::MetricsRegistry::Default().Snapshot();
          uint64_t histogram_count = 0;
          for (const obs::MetricSnapshot& m : metrics) {
            if (m.kind == obs::MetricSnapshot::Kind::kHistogram &&
                m.count > 0) {
              ++histogram_count;
            }
          }
          PutVarint(&report, histogram_count);
          for (const obs::MetricSnapshot& m : metrics) {
            if (m.kind != obs::MetricSnapshot::Kind::kHistogram ||
                m.count == 0) {
              continue;
            }
            PutString(&report, m.name);
            PutVarint(&report, m.bounds.size());
            for (double bound : m.bounds) PutDouble(&report, bound);
            PutVarint(&report, m.count);
            PutDouble(&report, m.sum);
            PutDouble(&report, m.max);
            PutVarint(&report, m.buckets.size());
            for (uint64_t bucket : m.buckets) PutVarint(&report, bucket);
          }
        }

        WriteAll(report_write[w], report);
        ::close(report_write[w]);
        ::_exit(0);
      }
      children[w] = pid;
    }

    // Parent: drop every pipe end the children own copies of, then
    // collect the reports. Closing the channel ends here is essential —
    // it makes a crashed child observable as EOF instead of a hang.
    for (auto& channel : channels) {
      channel->sender->Close();
      channel->receiver->Close();
    }
    for (size_t w = 0; w < worker_count; ++w) {
      if (report_write[w] >= 0) {
        ::close(report_write[w]);
        report_write[w] = -1;
      }
    }

    std::vector<Status> statuses(worker_count);
    std::map<size_t, engine::SinkOp*> sink_by_index;
    for (const SinkBaseline& s : sinks) sink_by_index[s.op_index] = s.sink;

    for (size_t w = 0; w < worker_count; ++w) {
      if (children[w] < 0) {
        statuses[w] = Status::Internal("worker " + std::to_string(w) +
                                       ": never forked");
        continue;
      }
      std::string blob;
      bool read_ok = ReadAll(report_read[w], &blob);
      ::close(report_read[w]);
      report_read[w] = -1;

      auto report_error = [&](const std::string& what) {
        statuses[w] = Status::Internal(
            "worker " + std::to_string(w) + ": " + what +
            " (worker process crashed or was killed?)");
      };
      if (!read_ok) {
        report_error("report pipe read failed");
        continue;
      }
      std::string_view data = blob;
      uint64_t version = 0, code = 0;
      std::string message;
      if (!GetVarint(&data, &version) || version != kReportVersion ||
          !GetVarint(&data, &code) || !GetString(&data, &message)) {
        report_error("truncated or malformed report");
        continue;
      }
      statuses[w] = StatusFromReport(code, std::move(message));

      bool ok = true;
      uint64_t shard_count = 0;
      ok = ok && GetVarint(&data, &shard_count) &&
           shard_count == ordered_shards[w].size();
      for (size_t i = 0; ok && i < shard_count; ++i) {
        Metrics* original = ordered_shards[w][i].first;
        uint64_t link_count = 0, peer_count = 0;
        ok = GetVarint(&data, &link_count) &&
             link_count == original->link_count();
        for (uint64_t l = 0; ok && l < link_count; ++l) {
          uint64_t bytes = 0;
          ok = GetVarint(&data, &bytes);
          if (ok) {
            original->AddBytes(static_cast<network::LinkId>(l), bytes);
          }
        }
        ok = ok && GetVarint(&data, &peer_count) &&
             peer_count == original->peer_count();
        for (uint64_t p = 0; ok && p < peer_count; ++p) {
          double work = 0.0;
          uint64_t invocations = 0;
          ok = GetDouble(&data, &work) && GetVarint(&data, &invocations);
          if (ok) {
            original->AddMeasured(static_cast<network::NodeId>(p), work,
                                  invocations);
          }
        }
      }

      uint64_t sink_count = 0;
      ok = ok && GetVarint(&data, &sink_count);
      for (uint64_t i = 0; ok && i < sink_count; ++i) {
        uint64_t op_index = 0, d_items = 0, d_bytes = 0, d_hash = 0;
        ok = GetVarint(&data, &op_index) && GetVarint(&data, &d_items) &&
             GetVarint(&data, &d_bytes) && GetVarint(&data, &d_hash);
        auto it = sink_by_index.find(op_index);
        ok = ok && it != sink_by_index.end();
        if (ok) it->second->MergeCounts(d_items, d_bytes, d_hash);
      }

      uint64_t edge_count = 0;
      ok = ok && GetVarint(&data, &edge_count);
      for (uint64_t i = 0; ok && i < edge_count; ++i) {
        uint64_t edge = 0, items = 0, encoded_bytes = 0;
        ok = GetVarint(&data, &edge) && GetVarint(&data, &items) &&
             GetVarint(&data, &encoded_bytes) &&
             edge < run_stats_.edges.size();
        if (ok) {
          run_stats_.edges[edge].items = items;
          run_stats_.edges[edge].encoded_bytes = encoded_bytes;
        }
      }

      uint64_t half_count = 0;
      ok = ok && GetVarint(&data, &half_count);
      for (uint64_t i = 0; ok && i < half_count; ++i) {
        uint64_t channel = 0;
        ChannelStats half;
        ok = GetVarint(&data, &channel) && GetChannelStats(&data, &half) &&
             channel < run_stats_.channels.size();
        if (ok) AddChannelStats(&run_stats_.channels[channel].stats, half);
      }

      uint64_t entries_received = 0, producer_ns = 0, consumer_ns = 0,
               max_depth = 0;
      ok = ok && GetVarint(&data, &entries_received) &&
           GetVarint(&data, &producer_ns) &&
           GetVarint(&data, &consumer_ns) && GetVarint(&data, &max_depth);
      if (ok) {
        run_stats_.workers[w].entries_received = entries_received;
        run_stats_.workers[w].producer_blocked_ns = producer_ns;
        run_stats_.workers[w].consumer_blocked_ns = consumer_ns;
        run_stats_.workers[w].max_queue_depth = max_depth;
      }

      uint64_t histogram_count = 0;
      ok = ok && GetVarint(&data, &histogram_count);
      for (uint64_t i = 0; ok && i < histogram_count; ++i) {
        std::string name;
        uint64_t bound_count = 0;
        ok = GetString(&data, &name) && GetVarint(&data, &bound_count) &&
             bound_count <= 4096;
        std::vector<double> bounds;
        bounds.reserve(ok ? bound_count : 0);
        for (uint64_t b = 0; ok && b < bound_count; ++b) {
          double edge = 0.0;
          ok = GetDouble(&data, &edge);
          bounds.push_back(edge);
        }
        uint64_t count = 0, bucket_count = 0;
        double sum = 0.0, max_value = 0.0;
        ok = ok && GetVarint(&data, &count) && GetDouble(&data, &sum) &&
             GetDouble(&data, &max_value) &&
             GetVarint(&data, &bucket_count) && bucket_count <= 4096;
        std::vector<uint64_t> buckets;
        buckets.reserve(ok ? bucket_count : 0);
        for (uint64_t b = 0; ok && b < bucket_count; ++b) {
          uint64_t value = 0;
          ok = GetVarint(&data, &value);
          buckets.push_back(value);
        }
        if (ok) {
          // Usually already registered pre-fork (same-process identity);
          // the bounds only matter for a series the parent never saw.
          obs::MetricsRegistry::Default()
              .GetHistogram(name, std::move(bounds))
              ->MergeCounts(buckets, count, sum, max_value);
        }
      }
      if (!ok && statuses[w].ok()) {
        report_error("truncated or malformed report");
      }
    }
    close_reports();

    for (size_t w = 0; w < worker_count; ++w) {
      if (children[w] < 0) continue;
      int wstatus = 0;
      while (::waitpid(children[w], &wstatus, 0) < 0 && errno == EINTR) {
      }
      if (statuses[w].ok() &&
          (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0)) {
        statuses[w] = Status::Internal(
            "worker " + std::to_string(w) +
            ": process exited abnormally (status " +
            std::to_string(wstatus) + ")");
      }
    }

    // Prefer the error that originated a failure over the relays other
    // workers recorded when the ERROR frame cascaded to them.
    if (run_status.ok()) {
      for (const Status& status : statuses) {
        if (!status.ok() &&
            status.message().compare(0, kRelayPrefix.size(),
                                     kRelayPrefix) != 0) {
          run_status = status;
          break;
        }
      }
      if (run_status.ok()) {
        for (const Status& status : statuses) {
          if (!status.ok()) {
            run_status = status;
            break;
          }
        }
      }
    }
  }

  // --- Restore the serial wiring and metrics bindings. ---
  for (Splice& splice : splices) {
    splice.source->ReplaceDownstream(splice.port.get(), splice.original);
  }
  for (const Rebind& rebind : rebinds) {
    rebind.op->RebindMetrics(rebind.shard, rebind.original);
  }

  if (obs::Enabled()) {
    const TransportSeries& series = TransportSeries::Get();
    uint64_t items = 0, encoded = 0;
    for (const EdgeTrafficStats& edge : run_stats_.edges) {
      items += edge.items;
      encoded += edge.encoded_bytes;
    }
    uint64_t frames = 0, wire = 0, stalls = 0, duplicates = 0;
    for (const ChannelTrafficStats& channel : run_stats_.channels) {
      frames += channel.stats.frames_sent;
      wire += channel.stats.bytes_sent;
      stalls += channel.stats.credit_stalls;
      duplicates += channel.stats.duplicates_discarded;
    }
    series.items_sent->Add(items);
    series.encoded_bytes->Add(encoded);
    series.frames_sent->Add(frames);
    series.wire_bytes->Add(wire);
    series.credit_stalls->Add(stalls);
    series.duplicates_discarded->Add(duplicates);
  }
  return run_status;
}

}  // namespace streamshare::transport
