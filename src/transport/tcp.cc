#include "transport/tcp.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

namespace streamshare::transport {

namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + strerror(errno));
}

class TcpPipeEnd final : public PipeEnd {
 public:
  TcpPipeEnd(int fd, std::string label)
      : fd_(fd), label_(std::move(label)) {}

  ~TcpPipeEnd() override { Close(); }

  Status SendFrame(FrameType type, std::string_view body,
                   uint8_t version) override {
    if (fd_ < 0) return Status::Unavailable(label_ + ": pipe closed");
    std::string frame;
    frame.reserve(body.size() + 12);
    AppendFrame(&frame, type, body, version);
    size_t off = 0;
    while (off < frame.size()) {
      // MSG_NOSIGNAL: a vanished peer must surface as a Status, not a
      // process-killing SIGPIPE.
      ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EPIPE || errno == ECONNRESET) {
          return Status::Unavailable(label_ + ": peer closed connection");
        }
        return Errno(label_ + ": send");
      }
      off += static_cast<size_t>(n);
    }
    bytes_sent_ += frame.size();
    return Status::Ok();
  }

  Status RecvFrame(FrameType* type, std::string* body, int timeout_ms,
                   uint8_t* version) override {
    if (fd_ < 0) return Status::Unavailable(label_ + ": pipe closed");
    Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(timeout_ms);
    while (true) {
      Frame frame;
      size_t consumed = 0;
      switch (ParseFrame(rx_buffer_, &frame, &consumed)) {
        case ParseResult::kFrame:
          *type = frame.type;
          if (version != nullptr) *version = frame.version;
          body->assign(frame.body);
          rx_buffer_.erase(0, consumed);
          return Status::Ok();
        case ParseResult::kMalformed:
          return Status::ParseError(label_ +
                                    ": malformed frame on TCP stream");
        case ParseResult::kUnsupported:
          // Data-plane pipes connect peers of the same build; a frame we
          // cannot dispatch here is a protocol error, not something to
          // skip. (The serve control loop answers these instead.)
          return Status::Unsupported(
              label_ + ": unsupported frame (version " +
              std::to_string(frame.version) + ", type " +
              std::to_string(frame.raw_type) + ") on TCP stream");
        case ParseResult::kNeedMore:
          break;
      }
      int wait_ms = -1;
      if (timeout_ms >= 0) {
        auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            deadline - Clock::now());
        wait_ms = static_cast<int>(left.count());
        if (wait_ms < 0) wait_ms = 0;
      }
      struct pollfd pfd = {fd_, POLLIN, 0};
      int ready = ::poll(&pfd, 1, wait_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Errno(label_ + ": poll");
      }
      if (ready == 0) {
        return Status::DeadlineExceeded(label_ + ": recv timed out");
      }
      char chunk[16384];
      ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == ECONNRESET) {
          return Status::Unavailable(label_ + ": peer closed connection");
        }
        return Errno(label_ + ": recv");
      }
      if (n == 0) {
        return rx_buffer_.empty()
                   ? Status::Unavailable(label_ + ": peer closed connection")
                   : Status::Unavailable(
                         label_ + ": connection closed mid-frame");
      }
      rx_buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  void Close() override {
    // Plain close, no shutdown(): after fork() the parent closes its fd
    // copies while the children keep theirs, and shutdown() would tear
    // down the shared connection for everyone. Each end is driven by one
    // thread, so nobody is blocked on this fd when it closes; the peer
    // sees EOF once the last fd referring to this end is gone.
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  uint64_t wire_bytes_sent() const override { return bytes_sent_; }

 private:
  int fd_;
  std::string label_;
  std::string rx_buffer_;
  uint64_t bytes_sent_ = 0;
};

Status SetNoDelay(int fd) {
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return Status::Ok();
}

}  // namespace

Status TcpTransport::CreatePipe(const std::string& label, PipePair* pair) {
  int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return Errno(label + ": socket");
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(listener, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 1) != 0) {
    Status status = Errno(label + ": bind/listen");
    ::close(listener);
    return status;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listener, reinterpret_cast<struct sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status status = Errno(label + ": getsockname");
    ::close(listener);
    return status;
  }

  int client = -1;
  for (int attempt = 0; attempt <= options_.connect_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(attempt * options_.connect_backoff_ms));
    }
    client = ::socket(AF_INET, SOCK_STREAM, 0);
    if (client < 0) {
      Status status = Errno(label + ": socket");
      ::close(listener);
      return status;
    }
    if (::connect(client, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    Status status = Errno(label + ": connect");
    ::close(client);
    client = -1;
    if (attempt == options_.connect_retries) {
      ::close(listener);
      return status.WithContext("after " + std::to_string(attempt + 1) +
                                " attempts");
    }
  }
  int server = ::accept(listener, nullptr, nullptr);
  ::close(listener);
  if (server < 0) {
    Status status = Errno(label + ": accept");
    ::close(client);
    return status;
  }
  Status nodelay = SetNoDelay(client);
  if (nodelay.ok()) nodelay = SetNoDelay(server);
  if (!nodelay.ok()) {
    ::close(client);
    ::close(server);
    return nodelay;
  }
  pair->ends[0] = std::make_unique<TcpPipeEnd>(client, label + "[0]");
  pair->ends[1] = std::make_unique<TcpPipeEnd>(server, label + "[1]");
  return Status::Ok();
}

}  // namespace streamshare::transport
