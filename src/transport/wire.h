// Binary wire format shared by every transport: LEB128 varints and
// length-prefixed, versioned frames. A frame on the wire is
//
//   varint(payload length) | version u8 | type u8 | body
//
// where the length covers version, type, and body. Frame bodies:
//
//   DATA    varint seq | varint target op index | encoded item (codec.h)
//   EOS     varint total DATA frames sent (dropped ones included)
//   CREDIT  varint credits granted
//   ERROR   message bytes, raw
//
// See docs/TRANSPORT.md for the full format table.

#ifndef STREAMSHARE_TRANSPORT_WIRE_H_
#define STREAMSHARE_TRANSPORT_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace streamshare::transport {

/// Bump when the frame layout changes; a receiver rejects frames whose
/// version it does not speak.
inline constexpr uint8_t kWireVersion = 1;

/// Largest payload a receiver accepts — a corrupted length prefix must
/// not make it allocate gigabytes.
inline constexpr uint64_t kMaxFramePayload = 64ull * 1024 * 1024;

enum class FrameType : uint8_t {
  kData = 1,
  kEos = 2,
  kCredit = 3,
  kError = 4,
};

/// Appends `value` LEB128-encoded (7 bits per byte, high bit = more).
void PutVarint(std::string* out, uint64_t value);

/// Decodes a varint from [*pos, end). Advances *pos past it. False on
/// truncated or over-long (>10 byte) input.
bool GetVarint(const uint8_t** pos, const uint8_t* end, uint64_t* value);

/// Convenience over a string_view cursor: decodes a varint from the front
/// of *data and strips it. False on malformed input.
bool GetVarint(std::string_view* data, uint64_t* value);

/// Appends one whole frame (length prefix, version, type, body).
void AppendFrame(std::string* out, FrameType type, std::string_view body);

/// One parsed frame; `body` aliases the parse buffer.
struct Frame {
  FrameType type = FrameType::kError;
  std::string_view body;
};

/// Outcome of trying to parse a frame from a byte buffer.
enum class ParseResult {
  kFrame,      // *frame filled, *consumed bytes used
  kNeedMore,   // buffer holds only a frame prefix so far
  kMalformed,  // bad length, version, or type — the stream is unusable
};

/// Parses the first frame of `buffer`. On kFrame, `frame->body` points
/// into `buffer` and `*consumed` is the total encoded size.
ParseResult ParseFrame(std::string_view buffer, Frame* frame,
                       size_t* consumed);

}  // namespace streamshare::transport

#endif  // STREAMSHARE_TRANSPORT_WIRE_H_
