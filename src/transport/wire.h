// Binary wire format shared by every transport: LEB128 varints and
// length-prefixed, versioned frames. A frame on the wire is
//
//   varint(payload length) | version u8 | type u8 | body
//
// where the length covers version, type, and body. Frame bodies:
//
//   DATA v1  varint seq | varint target op index | encoded item (codec.h)
//   DATA v2  varint seq | varint target | varint flags |
//            varint send tick µs | varint (send tick − ingress tick) |
//            varint queue µs | varint transport µs | encoded item
//   EOS      varint total DATA frames sent (dropped ones included)
//   CREDIT   varint credits granted
//   ERROR    message bytes, raw
//   CONTROL  varint request id | varint verb | verb payload (serve/control.h)
//   ACK      varint request id | varint status code | varint message length |
//            message | verb payload
//   RESULT   varint query id | varint seq | stamp extension (DATA v2 layout,
//            flags..transport µs) | encoded item
//
// Version 2 only exists to carry the measured-latency stamp
// (engine/latency.h): flags bit 0 marks a stamped item, the ingress tick
// is delta-encoded against the send tick, and the encoding is stateless
// per frame so injected duplicates/drops cannot desynchronize it.
// Frames without an extension — EOS, CREDIT, ERROR, and unstamped DATA —
// are still emitted at version 1, byte-identical to the previous wire,
// and a v1-only peer's frames still parse here.
//
// See docs/TRANSPORT.md for the full format table.

#ifndef STREAMSHARE_TRANSPORT_WIRE_H_
#define STREAMSHARE_TRANSPORT_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace streamshare::transport {

/// Base frame layout every peer speaks. Extension-free frames (EOS,
/// CREDIT, ERROR, unstamped DATA) are emitted at this version so a run
/// with stamping off stays byte-identical to the original wire.
inline constexpr uint8_t kBaseWireVersion = 1;

/// Highest version this build emits or parses; a receiver rejects frames
/// whose version it does not speak. Version 2 = DATA frames carrying the
/// latency-stamp extension.
inline constexpr uint8_t kWireVersion = 2;

/// Largest payload a receiver accepts — a corrupted length prefix must
/// not make it allocate gigabytes.
inline constexpr uint64_t kMaxFramePayload = 64ull * 1024 * 1024;

enum class FrameType : uint8_t {
  kData = 1,
  kEos = 2,
  kCredit = 3,
  kError = 4,
  // Service plane (serve/): request/response control channel and the
  // per-query result stream a daemon forwards to attached clients.
  kControl = 5,
  kControlAck = 6,
  kResult = 7,
};

/// Last frame type this build knows how to dispatch. Bytes above this
/// parse as kUnsupported, not kMalformed, so a newer peer's frames can be
/// skipped and answered instead of killing the connection.
inline constexpr uint8_t kMaxKnownFrameType =
    static_cast<uint8_t>(FrameType::kResult);

/// Appends `value` LEB128-encoded (7 bits per byte, high bit = more).
void PutVarint(std::string* out, uint64_t value);

/// Decodes a varint from [*pos, end). Advances *pos past it. False on
/// truncated or over-long (>10 byte) input.
bool GetVarint(const uint8_t** pos, const uint8_t* end, uint64_t* value);

/// Convenience over a string_view cursor: decodes a varint from the front
/// of *data and strips it. False on malformed input.
bool GetVarint(std::string_view* data, uint64_t* value);

/// Appends one whole frame (length prefix, version, type, body).
void AppendFrame(std::string* out, FrameType type, std::string_view body,
                 uint8_t version = kBaseWireVersion);

/// One parsed frame; `body` aliases the parse buffer. On kUnsupported,
/// `raw_type` and `version` hold the peer's bytes verbatim (`type` is
/// meaningless) so a receiver can name what it is rejecting.
struct Frame {
  FrameType type = FrameType::kError;
  uint8_t raw_type = 0;
  uint8_t version = kBaseWireVersion;
  std::string_view body;
};

/// Outcome of trying to parse a frame from a byte buffer.
enum class ParseResult {
  kFrame,        // *frame filled, *consumed bytes used
  kNeedMore,     // buffer holds only a frame prefix so far
  kUnsupported,  // well-framed but unknown version or type; *consumed is
                 // set — skip it and answer, the stream is still usable
  kMalformed,    // bad length prefix — the stream is unusable
};

/// Parses the first frame of `buffer`. On kFrame, `frame->body` points
/// into `buffer` and `*consumed` is the total encoded size.
ParseResult ParseFrame(std::string_view buffer, Frame* frame,
                       size_t* consumed);

}  // namespace streamshare::transport

#endif  // STREAMSHARE_TRANSPORT_WIRE_H_
