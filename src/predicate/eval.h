// Evaluation of conjunctive predicates against one XML stream item.

#ifndef STREAMSHARE_PREDICATE_EVAL_H_
#define STREAMSHARE_PREDICATE_EVAL_H_

#include <vector>

#include "common/status.h"
#include "predicate/atomic.h"
#include "xml/xml_node.h"

namespace streamshare::predicate {

/// Extracts the decimal value of the element addressed by `path` inside
/// `item`. Fails if the path selects nothing or the text is not a decimal.
Result<Decimal> ExtractValue(const xml::XmlNode& item,
                             const xml::Path& path);

/// Evaluates one atomic predicate against `item`. A predicate whose path
/// selects no element evaluates to false (the item cannot satisfy a
/// constraint on data it does not carry); malformed numeric text is an
/// error.
Result<bool> EvaluatePredicate(const AtomicPredicate& pred,
                               const xml::XmlNode& item);

/// Evaluates a conjunction (empty conjunction = true).
Result<bool> EvaluateConjunction(const std::vector<AtomicPredicate>& preds,
                                 const xml::XmlNode& item);

/// Compares two decimals under `op`.
bool Compare(const Decimal& lhs, ComparisonOp op, const Decimal& rhs);

}  // namespace streamshare::predicate

#endif  // STREAMSHARE_PREDICATE_EVAL_H_
