#include "predicate/atomic.h"

namespace streamshare::predicate {

std::string_view ComparisonOpToString(ComparisonOp op) {
  switch (op) {
    case ComparisonOp::kEq:
      return "=";
    case ComparisonOp::kLt:
      return "<";
    case ComparisonOp::kLe:
      return "<=";
    case ComparisonOp::kGt:
      return ">";
    case ComparisonOp::kGe:
      return ">=";
  }
  return "?";
}

AtomicPredicate AtomicPredicate::Compare(xml::Path lhs, ComparisonOp op,
                                         Decimal constant) {
  AtomicPredicate pred;
  pred.lhs = std::move(lhs);
  pred.op = op;
  pred.constant = constant;
  return pred;
}

AtomicPredicate AtomicPredicate::CompareVars(xml::Path lhs, ComparisonOp op,
                                             xml::Path rhs,
                                             Decimal constant) {
  AtomicPredicate pred;
  pred.lhs = std::move(lhs);
  pred.op = op;
  pred.rhs_var = std::move(rhs);
  pred.constant = constant;
  return pred;
}

std::string AtomicPredicate::ToString() const {
  std::string out = lhs.ToString();
  out += ' ';
  out += ComparisonOpToString(op);
  out += ' ';
  if (rhs_var.has_value()) {
    out += rhs_var->ToString();
    Decimal zero;
    if (constant != zero) {
      if (constant < zero) {
        out += " - " + (-constant).ToString();
      } else {
        out += " + " + constant.ToString();
      }
    }
  } else {
    out += constant.ToString();
  }
  return out;
}

bool AtomicPredicate::operator==(const AtomicPredicate& other) const {
  return lhs == other.lhs && op == other.op && rhs_var == other.rhs_var &&
         constant == other.constant;
}

std::string Bound::ToString() const {
  std::string out = value.ToString();
  if (strict) out += " (strict)";
  return out;
}

std::vector<NormalizedConstraint> Normalize(const AtomicPredicate& pred) {
  // The target of "v ≤ c" is the zero node (empty path); "v ≤ w + c" links
  // the two variable nodes directly.
  const xml::Path zero;
  const xml::Path& v = pred.lhs;
  const xml::Path w = pred.rhs_var.value_or(zero);
  const Decimal c = pred.constant;

  std::vector<NormalizedConstraint> out;
  switch (pred.op) {
    case ComparisonOp::kLe:
      // v ≤ w + c.
      out.push_back({v, w, Bound{c, false}});
      break;
    case ComparisonOp::kLt:
      out.push_back({v, w, Bound{c, true}});
      break;
    case ComparisonOp::kGe:
      // v ≥ w + c  ⟺  w ≤ v − c.
      out.push_back({w, v, Bound{-c, false}});
      break;
    case ComparisonOp::kGt:
      out.push_back({w, v, Bound{-c, true}});
      break;
    case ComparisonOp::kEq:
      out.push_back({v, w, Bound{c, false}});
      out.push_back({w, v, Bound{-c, false}});
      break;
  }
  return out;
}

}  // namespace streamshare::predicate
