#include "predicate/eval.h"

#include "common/string_util.h"

namespace streamshare::predicate {

Result<Decimal> ExtractValue(const xml::XmlNode& item,
                             const xml::Path& path) {
  const xml::XmlNode* node = path.EvaluateFirst(item);
  if (node == nullptr) {
    return Status::NotFound("path '" + path.ToString() +
                            "' selects no element in item <" + item.name() +
                            ">");
  }
  Result<Decimal> value = Decimal::Parse(Trim(node->text()));
  if (!value.ok()) {
    return Status::ParseError("element '" + path.ToString() +
                              "' does not contain a decimal value: '" +
                              node->text() + "'");
  }
  return value;
}

bool Compare(const Decimal& lhs, ComparisonOp op, const Decimal& rhs) {
  switch (op) {
    case ComparisonOp::kEq:
      return lhs == rhs;
    case ComparisonOp::kLt:
      return lhs < rhs;
    case ComparisonOp::kLe:
      return lhs <= rhs;
    case ComparisonOp::kGt:
      return lhs > rhs;
    case ComparisonOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

Result<bool> EvaluatePredicate(const AtomicPredicate& pred,
                               const xml::XmlNode& item) {
  Result<Decimal> lhs = ExtractValue(item, pred.lhs);
  if (!lhs.ok()) {
    if (lhs.status().IsNotFound()) return false;
    return lhs.status();
  }
  Decimal rhs = pred.constant;
  if (pred.rhs_var.has_value()) {
    Result<Decimal> rhs_value = ExtractValue(item, *pred.rhs_var);
    if (!rhs_value.ok()) {
      if (rhs_value.status().IsNotFound()) return false;
      return rhs_value.status();
    }
    rhs = *rhs_value + pred.constant;
  }
  return Compare(*lhs, pred.op, rhs);
}

Result<bool> EvaluateConjunction(const std::vector<AtomicPredicate>& preds,
                                 const xml::XmlNode& item) {
  for (const AtomicPredicate& pred : preds) {
    SS_ASSIGN_OR_RETURN(bool satisfied, EvaluatePredicate(pred, item));
    if (!satisfied) return false;
  }
  return true;
}

}  // namespace streamshare::predicate
