// Weighted directed predicate graphs (Rosenkrantz & Hunt). A conjunction of
// normalized atomic predicates becomes a graph whose nodes are the
// variables plus a distinguished zero node, and whose edges carry bounds:
// an edge u → v with bound (c, strict) encodes u ≤ v + c (resp. u < v + c).
//
// On this representation:
//   * satisfiability  = absence of an infeasible cycle (negative total
//     weight, or zero total weight containing a strict edge),
//   * minimization    = removal of edges implied by the remaining graph,
//   * implication     = for every constraint of the weaker graph, the
//     tightest derivable bound between the same endpoints in the stronger
//     graph is at least as tight.
//
// The paper builds these graphs once per subscription at registration time
// (§3.3 "Matching Predicates"); Algorithm 3's cheaper edge-local check
// lives in src/matching/ and uses the accessors exposed here.

#ifndef STREAMSHARE_PREDICATE_GRAPH_H_
#define STREAMSHARE_PREDICATE_GRAPH_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "predicate/atomic.h"
#include "xml/path.h"

namespace streamshare::predicate {

/// An immutable-node, mutable-edge predicate graph. Node 0 is always the
/// constant-zero node (empty path).
class PredicateGraph {
 public:
  struct Edge {
    int source;
    int target;
    Bound bound;

    bool operator==(const Edge& other) const = default;
  };

  /// Builds the graph from a conjunction. Parallel constraints between the
  /// same endpoints are collapsed to the tightest one. Never fails for
  /// well-formed predicates; unsatisfiable conjunctions still build (use
  /// IsSatisfiable to reject them, as the paper's registration step does).
  static PredicateGraph Build(const std::vector<AtomicPredicate>& conjuncts);

  /// The empty graph (no constraints; implied by everything).
  PredicateGraph();

  /// False if the constraints admit no assignment (infeasible cycle).
  bool IsSatisfiable() const;

  /// Removes every edge that is implied by the rest of the graph. Requires
  /// a satisfiable graph (minimizing an unsatisfiable one is meaningless).
  void Minimize();

  /// Complete implication test: true if every assignment satisfying this
  /// graph also satisfies `other`. Exact for satisfiable difference-
  /// constraint systems.
  bool Implies(const PredicateGraph& other) const;

  /// Mutual implication.
  bool EquivalentTo(const PredicateGraph& other) const {
    return Implies(other) && other.Implies(*this);
  }

  /// The strongest difference-constraint system implied by both `a` and
  /// `b` (the DBM join): keeps, for every pair of variables constrained in
  /// both graphs, the looser of the two tightest derivable bounds. This is
  /// the sound over-approximation of the disjunction a ∨ b — the widened
  /// selection of the stream-widening extension (paper §6): a stream
  /// filtered by UnionOf(σ_old, σ_new) carries every item either
  /// subscription needs. Inputs must be satisfiable.
  static PredicateGraph UnionOf(const PredicateGraph& a,
                                const PredicateGraph& b);

  /// Node paths; index 0 is the zero node (empty path).
  const std::vector<xml::Path>& nodes() const { return nodes_; }

  /// All edges, in unspecified order.
  std::vector<Edge> edges() const;

  /// Index of the node for `path`, if present.
  std::optional<int> FindNode(const xml::Path& path) const;

  /// Direct edge bound from `source` to `target`, if an edge exists.
  std::optional<Bound> EdgeBound(int source, int target) const;

  /// Tightest derivable bound from `source` to `target` (shortest path over
  /// the bound semiring); nullopt if target is unreachable.
  std::optional<Bound> TightestBound(int source, int target) const;

  /// All-pairs tightest bounds (Floyd–Warshall), nullopt = unreachable.
  /// One call amortizes the closure across many TightestBound-style
  /// queries of the same graph (the cost model reads two bounds per node).
  std::vector<std::vector<std::optional<Bound>>> Closure() const;

  /// All edges incident to `node` (incoming and outgoing), as Algorithm 3's
  /// "edges connected to v".
  std::vector<Edge> EdgesConnectedTo(int node) const;

  size_t edge_count() const;

  /// Re-expresses the graph as ≤/< atomic predicates (after Minimize this
  /// is the canonical reduced conjunction).
  std::vector<AtomicPredicate> ToPredicates() const;

  /// Multi-line debug rendering.
  std::string ToString() const;

  bool operator==(const PredicateGraph& other) const = default;

 private:
  int GetOrAddNode(const xml::Path& path);
  void AddConstraint(int source, int target, const Bound& bound);

  std::vector<xml::Path> nodes_;
  std::map<xml::Path, int> node_index_;
  // Adjacency matrix of tightest direct bounds.
  std::vector<std::vector<std::optional<Bound>>> adj_;
};

}  // namespace streamshare::predicate

#endif  // STREAMSHARE_PREDICATE_GRAPH_H_
