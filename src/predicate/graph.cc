#include "predicate/graph.h"

#include <cassert>

namespace streamshare::predicate {

PredicateGraph::PredicateGraph() {
  // Node 0: the constant-zero node.
  nodes_.emplace_back();
  node_index_[nodes_[0]] = 0;
  adj_.resize(1);
  adj_[0].resize(1);
}

PredicateGraph PredicateGraph::Build(
    const std::vector<AtomicPredicate>& conjuncts) {
  PredicateGraph graph;
  for (const AtomicPredicate& pred : conjuncts) {
    for (const NormalizedConstraint& constraint : Normalize(pred)) {
      int source = graph.GetOrAddNode(constraint.source);
      int target = graph.GetOrAddNode(constraint.target);
      graph.AddConstraint(source, target, constraint.bound);
    }
  }
  return graph;
}

int PredicateGraph::GetOrAddNode(const xml::Path& path) {
  auto it = node_index_.find(path);
  if (it != node_index_.end()) return it->second;
  int index = static_cast<int>(nodes_.size());
  nodes_.push_back(path);
  node_index_[path] = index;
  for (auto& row : adj_) row.emplace_back();
  adj_.emplace_back(nodes_.size());
  return index;
}

void PredicateGraph::AddConstraint(int source, int target,
                                   const Bound& bound) {
  if (source == target) {
    // x ≤ x + c: vacuous for c ≥ 0, unsatisfiable otherwise. Keep it as a
    // self-loop so IsSatisfiable sees the infeasible cycle.
    if (!bound.IsInfeasibleCycle()) return;
  }
  std::optional<Bound>& slot = adj_[source][target];
  if (!slot.has_value() || bound.TighterThan(*slot)) slot = bound;
}

std::vector<PredicateGraph::Edge> PredicateGraph::edges() const {
  std::vector<Edge> out;
  for (size_t u = 0; u < adj_.size(); ++u) {
    for (size_t v = 0; v < adj_[u].size(); ++v) {
      if (adj_[u][v].has_value()) {
        out.push_back(Edge{static_cast<int>(u), static_cast<int>(v),
                           *adj_[u][v]});
      }
    }
  }
  return out;
}

std::optional<int> PredicateGraph::FindNode(const xml::Path& path) const {
  auto it = node_index_.find(path);
  if (it == node_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<Bound> PredicateGraph::EdgeBound(int source,
                                               int target) const {
  return adj_[source][target];
}

size_t PredicateGraph::edge_count() const {
  size_t count = 0;
  for (const auto& row : adj_) {
    for (const auto& slot : row) {
      if (slot.has_value()) ++count;
    }
  }
  return count;
}

std::vector<std::vector<std::optional<Bound>>> PredicateGraph::Closure()
    const {
  const size_t n = nodes_.size();
  auto dist = adj_;
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!dist[i][k].has_value()) continue;
      for (size_t j = 0; j < n; ++j) {
        if (!dist[k][j].has_value()) continue;
        Bound via = *dist[i][k] + *dist[k][j];
        if (!dist[i][j].has_value() || via.TighterThan(*dist[i][j])) {
          dist[i][j] = via;
        }
      }
    }
  }
  return dist;
}

bool PredicateGraph::IsSatisfiable() const {
  // All-pairs closure over the bound semiring; an infeasible cycle
  // manifests as a diagonal entry with negative total weight, or zero
  // weight containing a strict edge (x < x). Note Bellman–Ford-style
  // tightening alone cannot detect pure strict cycles: (0, strict)
  // saturates instead of descending, so the diagonal check is the
  // canonical test for mixed strict/non-strict difference constraints.
  auto closure = Closure();
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (closure[i][i].has_value() && closure[i][i]->IsInfeasibleCycle()) {
      return false;
    }
  }
  return true;
}

void PredicateGraph::Minimize() {
  assert(IsSatisfiable() && "minimizing an unsatisfiable graph");
  // Greedily drop each edge that the remaining graph implies. For
  // difference-constraint systems this yields an equivalent irredundant
  // subgraph. Graphs here are tiny (a handful of variables), so the
  // recompute-closure-per-edge cost is irrelevant.
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Edge& e : edges()) {
      Bound saved = e.bound;
      adj_[e.source][e.target].reset();
      auto closure = Closure();
      const std::optional<Bound>& residual = closure[e.source][e.target];
      if (residual.has_value() && residual->ImpliesBound(saved)) {
        changed = true;  // edge was redundant; leave it removed
      } else {
        adj_[e.source][e.target] = saved;
      }
    }
  }
}

std::optional<Bound> PredicateGraph::TightestBound(int source,
                                                   int target) const {
  auto closure = Closure();
  return closure[source][target];
}

bool PredicateGraph::Implies(const PredicateGraph& other) const {
  auto closure = Closure();
  for (const Edge& e : other.edges()) {
    std::optional<int> source = FindNode(other.nodes_[e.source]);
    std::optional<int> target = FindNode(other.nodes_[e.target]);
    if (!source.has_value() || !target.has_value()) return false;
    const std::optional<Bound>& derived = closure[*source][*target];
    if (!derived.has_value() || !derived->ImpliesBound(e.bound)) {
      return false;
    }
  }
  return true;
}

PredicateGraph PredicateGraph::UnionOf(const PredicateGraph& a,
                                       const PredicateGraph& b) {
  assert(a.IsSatisfiable() && b.IsSatisfiable() &&
         "UnionOf of unsatisfiable graphs");
  auto closure_a = a.Closure();
  auto closure_b = b.Closure();
  PredicateGraph result;
  // Shared nodes only: a variable unconstrained in either input is
  // unconstrained in the union.
  for (size_t ia = 1; ia < a.nodes_.size(); ++ia) {
    if (b.FindNode(a.nodes_[ia]).has_value()) {
      result.GetOrAddNode(a.nodes_[ia]);
    }
  }
  const size_t n = result.nodes_.size();
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      int ua = *a.FindNode(result.nodes_[u]);
      int va = *a.FindNode(result.nodes_[v]);
      int ub = *b.FindNode(result.nodes_[u]);
      int vb = *b.FindNode(result.nodes_[v]);
      const std::optional<Bound>& bound_a = closure_a[ua][va];
      const std::optional<Bound>& bound_b = closure_b[ub][vb];
      if (!bound_a.has_value() || !bound_b.has_value()) continue;
      // Keep the looser bound: the one implied by the other.
      const Bound& looser =
          bound_a->ImpliesBound(*bound_b) ? *bound_b : *bound_a;
      result.AddConstraint(static_cast<int>(u), static_cast<int>(v),
                           looser);
    }
  }
  result.Minimize();
  return result;
}

std::vector<PredicateGraph::Edge> PredicateGraph::EdgesConnectedTo(
    int node) const {
  std::vector<Edge> out;
  const size_t n = nodes_.size();
  for (size_t v = 0; v < n; ++v) {
    if (adj_[node][v].has_value()) {
      out.push_back(Edge{node, static_cast<int>(v), *adj_[node][v]});
    }
  }
  for (size_t u = 0; u < n; ++u) {
    if (static_cast<int>(u) != node && adj_[u][node].has_value()) {
      out.push_back(Edge{static_cast<int>(u), node, *adj_[u][node]});
    }
  }
  return out;
}

std::vector<AtomicPredicate> PredicateGraph::ToPredicates() const {
  std::vector<AtomicPredicate> out;
  for (const Edge& e : edges()) {
    ComparisonOp op = e.bound.strict ? ComparisonOp::kLt : ComparisonOp::kLe;
    const xml::Path& source = nodes_[e.source];
    const xml::Path& target = nodes_[e.target];
    if (e.target == 0) {
      // v ≤ c.
      out.push_back(AtomicPredicate::Compare(source, op, e.bound.value));
    } else if (e.source == 0) {
      // 0 ≤ v + c  ⟺  v ≥ −c.
      ComparisonOp flipped =
          e.bound.strict ? ComparisonOp::kGt : ComparisonOp::kGe;
      out.push_back(
          AtomicPredicate::Compare(target, flipped, -e.bound.value));
    } else {
      out.push_back(
          AtomicPredicate::CompareVars(source, op, target, e.bound.value));
    }
  }
  return out;
}

std::string PredicateGraph::ToString() const {
  std::string out = "PredicateGraph {\n";
  for (const AtomicPredicate& pred : ToPredicates()) {
    out += "  " + pred.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace streamshare::predicate
