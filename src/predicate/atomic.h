// Atomic predicates and their normal form. The paper restricts conditions
// to conjunctions of atomic predicates of the form
//     $v θ c      or      $v θ $w + c,
// with θ ∈ {=, <, ≤, >, ≥}, $v/$w child-axis paths and c an integer or
// finite decimal. Every atomic predicate normalizes into one or two bounds
// "source ≤ target + weight" (optionally strict), which become edges of a
// PredicateGraph. Strictness is carried exactly instead of being folded
// into the constant, so satisfiability and implication are exact over the
// rationals (following Rosenkrantz & Hunt's treatment of conjunctive
// predicates).

#ifndef STREAMSHARE_PREDICATE_ATOMIC_H_
#define STREAMSHARE_PREDICATE_ATOMIC_H_

#include <optional>
#include <string>
#include <vector>

#include "common/decimal.h"
#include "common/status.h"
#include "xml/path.h"

namespace streamshare::predicate {

enum class ComparisonOp { kEq, kLt, kLe, kGt, kGe };

/// Returns "=", "<", "<=", ">" or ">=".
std::string_view ComparisonOpToString(ComparisonOp op);

/// One atomic predicate: `lhs op constant` (when rhs_var is empty) or
/// `lhs op rhs_var + constant`.
struct AtomicPredicate {
  xml::Path lhs;
  ComparisonOp op = ComparisonOp::kEq;
  std::optional<xml::Path> rhs_var;
  Decimal constant;

  /// Variable-vs-constant predicate.
  static AtomicPredicate Compare(xml::Path lhs, ComparisonOp op,
                                 Decimal constant);
  /// Variable-vs-variable-plus-constant predicate.
  static AtomicPredicate CompareVars(xml::Path lhs, ComparisonOp op,
                                     xml::Path rhs, Decimal constant);

  /// Renders e.g. "coord/cel/ra >= 120.0" or "a <= b + 3".
  std::string ToString() const;

  bool operator==(const AtomicPredicate& other) const;
};

/// A normalized difference bound: source ≤ target + value (strict: <).
/// "Zero" endpoints are represented by the empty path at graph level; the
/// Bound itself is endpoint-agnostic.
struct Bound {
  Decimal value;
  bool strict = false;

  /// Composition along a path: bounds add, strictness is contagious.
  Bound operator+(const Bound& other) const {
    return Bound{value + other.value, strict || other.strict};
  }

  /// True if a constraint with this bound implies one with `other` (same
  /// endpoints): it is at least as tight.
  bool ImpliesBound(const Bound& other) const {
    if (value < other.value) return true;
    if (value == other.value) return strict || !other.strict;
    return false;
  }

  /// True if this bound is strictly tighter than `other` (implies it and
  /// is not equal).
  bool TighterThan(const Bound& other) const {
    return ImpliesBound(other) &&
           !(value == other.value && strict == other.strict);
  }

  /// A cycle with this total bound is unsatisfiable if the accumulated
  /// slack is negative, or zero with a strict edge (x < x).
  bool IsInfeasibleCycle() const {
    Decimal zero;
    return value < zero || (value == zero && strict);
  }

  std::string ToString() const;

  bool operator==(const Bound& other) const = default;
};

/// One normalized constraint: source ≤ target + bound, where an endpoint
/// equal to the empty path denotes the constant-zero node.
struct NormalizedConstraint {
  xml::Path source;
  xml::Path target;
  Bound bound;
};

/// Expands an atomic predicate into its normalized constraints (one for
/// inequalities, two for equality).
std::vector<NormalizedConstraint> Normalize(const AtomicPredicate& pred);

}  // namespace streamshare::predicate

#endif  // STREAMSHARE_PREDICATE_ATOMIC_H_
