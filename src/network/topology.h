// The super-peer network substrate (the StreamGlobe backbone): peers with
// load capacity l(v) and performance index pindex(v), connections with
// bandwidth b(e), hop-count shortest paths, and builders for the paper's
// two evaluation topologies. Thin peers are abstracted into their
// super-peers — queries register at super-peers, exactly as the paper's
// measurements report per-super-peer numbers.

#ifndef STREAMSHARE_NETWORK_TOPOLOGY_H_
#define STREAMSHARE_NETWORK_TOPOLOGY_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace streamshare::network {

using NodeId = int;
using LinkId = int;

struct Peer {
  std::string name;
  /// Maximum computational load l(v), in work units per second.
  double max_load = 1000.0;
  /// Performance index pindex(v): work units one base-load-1 operator
  /// invocation costs on this peer (1.0 = reference peer).
  double pindex = 1.0;
};

struct Link {
  NodeId a;
  NodeId b;
  /// Maximum bandwidth b(e) in kbit/s.
  double bandwidth_kbps = 100000.0;  // 100 Mbit/s LAN, as in the paper
  /// One-way latency in milliseconds. The paper notes latency "could
  /// easily be added" to the cost model (§3.2); CostParams::latency_weight
  /// turns it on.
  double latency_ms = 0.5;
};

/// An undirected network graph.
class Topology {
 public:
  /// Adds a peer, returning its id.
  NodeId AddPeer(std::string name, double max_load = 1000.0,
                 double pindex = 1.0);

  /// Adds an undirected link; fails on self-links, duplicate links, or
  /// unknown endpoints.
  Result<LinkId> AddLink(NodeId a, NodeId b,
                         double bandwidth_kbps = 100000.0,
                         double latency_ms = 0.5);

  size_t peer_count() const { return peers_.size(); }
  size_t link_count() const { return links_.size(); }
  const Peer& peer(NodeId id) const { return peers_[id]; }
  const Link& link(LinkId id) const { return links_[id]; }
  const std::vector<Peer>& peers() const { return peers_; }
  const std::vector<Link>& links() const { return links_; }

  /// Id of the link between a and b, if any.
  std::optional<LinkId> FindLink(NodeId a, NodeId b) const;

  /// Peer id by name, if any.
  std::optional<NodeId> FindPeer(std::string_view name) const;

  /// Neighbors of `node`.
  const std::vector<NodeId>& Neighbors(NodeId node) const;

  /// Hop-count shortest path from `from` to `to`, inclusive of both
  /// endpoints. Fails if unreachable. Deterministic (lowest-id tie-break).
  Result<std::vector<NodeId>> ShortestPath(NodeId from, NodeId to) const;

  /// ShortestPath restricted to nodes/links the predicates admit (null =
  /// admit all). The endpoints themselves are also checked against
  /// node_ok, so routing from or to an excluded peer fails. This is how
  /// the planner routes around dead peers and cut links.
  Result<std::vector<NodeId>> ShortestPath(
      NodeId from, NodeId to,
      const std::function<bool(NodeId)>& node_ok,
      const std::function<bool(LinkId)>& link_ok) const;

  /// The links along a node path.
  Result<std::vector<LinkId>> LinksOnPath(
      const std::vector<NodeId>& path) const;

  /// Accumulated one-way latency along a node path, in milliseconds.
  Result<double> PathLatencyMs(const std::vector<NodeId>& path) const;

  /// The paper's extended example scenario backbone (Figs. 1/2/6): eight
  /// super-peers SP0..SP7 arranged as a 2×4 grid —
  ///     SP4 — SP6 — SP0 — SP2
  ///      |     |     |     |
  ///     SP5 — SP7 — SP1 — SP3
  /// The exact figure-1 wiring is not fully specified in the paper; this
  /// grid reproduces all routes the text describes (photons enters at SP4;
  /// Q1 at SP1 reachable via SP5; Q2 at SP7 reuses Q1's stream at SP5).
  static Topology ExtendedExample(double bandwidth_kbps = 100000.0,
                                  double max_load = 1000.0);

  /// An n×m super-peer grid (the 4×4 evaluation scenario of Fig. 7),
  /// peers named "SP0".."SP{n*m-1}" in row-major order.
  static Topology Grid(int rows, int cols,
                       double bandwidth_kbps = 100000.0,
                       double max_load = 1000.0);

 private:
  std::vector<Peer> peers_;
  std::vector<Link> links_;
  std::vector<std::vector<NodeId>> neighbors_;
  std::map<std::pair<NodeId, NodeId>, LinkId> link_index_;
};

}  // namespace streamshare::network

#endif  // STREAMSHARE_NETWORK_TOPOLOGY_H_
