#include "network/state.h"

#include <algorithm>

namespace streamshare::network {

NetworkState::NetworkState(const Topology* topology)
    : topology_(topology),
      health_(topology),
      used_bandwidth_(topology->link_count(), 0.0),
      used_load_(topology->peer_count(), 0.0),
      peak_bandwidth_(topology->link_count(), 0.0),
      peak_load_(topology->peer_count(), 0.0) {}

double NetworkState::RelativeBandwidthUse(LinkId link) const {
  double capacity = topology_->link(link).bandwidth_kbps;
  return capacity > 0.0 ? used_bandwidth_[link] / capacity : 0.0;
}

double NetworkState::RelativeLoadUse(NodeId peer) const {
  double capacity = topology_->peer(peer).max_load;
  return capacity > 0.0 ? used_load_[peer] / capacity : 0.0;
}

double NetworkState::AvailableBandwidth(LinkId link) const {
  return std::max(0.0, 1.0 - RelativeBandwidthUse(link));
}

double NetworkState::AvailableLoad(NodeId peer) const {
  return std::max(0.0, 1.0 - RelativeLoadUse(peer));
}

void NetworkState::AddBandwidth(LinkId link, double kbps) {
  used_bandwidth_[link] += kbps;
  peak_bandwidth_[link] =
      std::max(peak_bandwidth_[link], used_bandwidth_[link]);
}

void NetworkState::AddLoad(NodeId peer, double work_units_per_s) {
  used_load_[peer] += work_units_per_s;
  peak_load_[peer] = std::max(peak_load_[peer], used_load_[peer]);
}

}  // namespace streamshare::network
