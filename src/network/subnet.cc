#include "network/subnet.h"

#include <algorithm>

namespace streamshare::network {

Result<SubnetPartition> SubnetPartition::Create(
    const Topology* topology, std::vector<int> subnet_of) {
  if (subnet_of.size() != topology->peer_count()) {
    return Status::InvalidArgument(
        "subnet assignment must cover every peer");
  }
  SubnetPartition partition;
  partition.topology_ = topology;
  partition.subnet_of_ = std::move(subnet_of);
  int max_subnet = -1;
  for (int subnet : partition.subnet_of_) {
    if (subnet < 0) {
      return Status::InvalidArgument("negative subnet index");
    }
    max_subnet = std::max(max_subnet, subnet);
  }
  partition.subnet_count_ = max_subnet + 1;
  partition.nodes_in_.resize(partition.subnet_count_);
  for (size_t node = 0; node < partition.subnet_of_.size(); ++node) {
    partition.nodes_in_[partition.subnet_of_[node]].push_back(
        static_cast<NodeId>(node));
  }
  for (int subnet = 0; subnet < partition.subnet_count_; ++subnet) {
    if (partition.nodes_in_[subnet].empty()) {
      return Status::InvalidArgument("subnet " + std::to_string(subnet) +
                                     " has no peers (indices must be "
                                     "dense)");
    }
  }
  partition.is_gateway_.assign(topology->peer_count(), false);
  for (const Link& link : topology->links()) {
    if (partition.subnet_of_[link.a] != partition.subnet_of_[link.b]) {
      partition.is_gateway_[link.a] = true;
      partition.is_gateway_[link.b] = true;
    }
  }
  return partition;
}

Result<SubnetPartition> SubnetPartition::GridQuadrants(
    const Topology* topology, int rows, int cols) {
  if (static_cast<size_t>(rows * cols) != topology->peer_count()) {
    return Status::InvalidArgument("grid dimensions do not match peers");
  }
  std::vector<int> assignment(topology->peer_count(), 0);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      int quadrant = (r >= rows / 2 ? 2 : 0) + (c >= cols / 2 ? 1 : 0);
      assignment[r * cols + c] = quadrant;
    }
  }
  return Create(topology, std::move(assignment));
}

std::vector<NodeId> SubnetPartition::GatewaysOf(int subnet) const {
  std::vector<NodeId> out;
  for (NodeId node : nodes_in_[subnet]) {
    if (is_gateway_[node]) out.push_back(node);
  }
  return out;
}

}  // namespace streamshare::network
