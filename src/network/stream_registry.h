// The catalog of data streams flowing in the network. Every registered
// stream — an original source stream or a derived stream generated to
// answer a previous subscription — is recorded with its properties, the
// node producing it, the node it is delivered to (getTNode in Algorithm 1),
// and the route it flows along. A stream is *available* at every node on
// its route; Algorithm 1's breadth-first search queries availability per
// node.

#ifndef STREAMSHARE_NETWORK_STREAM_REGISTRY_H_
#define STREAMSHARE_NETWORK_STREAM_REGISTRY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "network/topology.h"
#include "properties/properties.h"

namespace streamshare::network {

using StreamId = int;

struct RegisteredStream {
  StreamId id = -1;
  /// Name of the original input stream this stream is a variant of.
  std::string variant_of;
  /// How this stream was derived from its original input (per-input
  /// properties entry; original streams carry no operators).
  properties::InputStreamProperties props;
  /// Node producing the stream.
  NodeId source_node = -1;
  /// Node the stream is delivered to (== source_node for original streams
  /// consumed in place).
  NodeId target_node = -1;
  /// The nodes the stream flows over, source first, target last.
  std::vector<NodeId> route;
  /// Estimated data rate, kbit/s (cost-model estimate, cached at
  /// registration for availability accounting).
  double rate_kbps = 0.0;
  /// The stream this one was derived from by tapping (-1 for originals).
  /// Stream widening must check that the upstream still covers the
  /// widened content.
  StreamId upstream = -1;
  /// True if this stream has reconfigurable producer operators deployed
  /// (its own σ/Π); pass-through copies of an equivalent stream carry the
  /// props but no operators of their own and cannot be widened in place.
  bool widenable = false;
  /// Accumulated one-way latency in milliseconds from the original data
  /// source to this stream's first route node (through the upstream
  /// chain). Tap-point latency = this + the latency along the route
  /// prefix up to the tap.
  double source_latency_ms = 0.0;
  /// True once the owning subscription has been deregistered and the
  /// stream stopped flowing; retired streams are never reuse candidates.
  bool retired = false;
  /// Live subscriptions currently tapping this stream (one per query
  /// input wired to it). Unsubscribe and failure recovery retire a
  /// derived stream when its last consumer leaves.
  int consumers = 0;

  bool IsOriginal() const { return props.operators.empty(); }
};

/// Observer for registry mutations. The candidate index implements this to
/// stay incrementally consistent with the stream population; every code
/// path that changes reuse-relevant stream state must go through the
/// notifying registry methods (Register / Retire / NotifyUpdated) so the
/// index can never silently drift from the flat-scan ground truth.
class RegistryListener {
 public:
  virtual ~RegistryListener() = default;
  /// A new stream was registered (id is final).
  virtual void OnStreamRegistered(StreamId id) = 0;
  /// The stream was retired (GC / unsubscribe / failure recovery).
  virtual void OnStreamRetired(StreamId id) = 0;
  /// The stream's props/rate were rewritten in place (stream widening).
  /// Fired after the mutation; route and latency are unchanged.
  virtual void OnStreamUpdated(StreamId id) = 0;
};

class StreamRegistry {
 public:
  /// Registers a stream and returns its id.
  StreamId Register(RegisteredStream stream);

  /// Installs (or clears, with nullptr) the mutation observer. At most one
  /// listener; it must outlive the registry or be cleared first.
  void set_listener(RegistryListener* listener) { listener_ = listener; }

  const std::vector<RegisteredStream>& streams() const { return streams_; }
  const RegisteredStream& stream(StreamId id) const { return streams_[id]; }
  /// Mutable access for in-place updates (stream widening rewrites the
  /// props and rate of a deployed stream). Callers that change
  /// reuse-relevant fields must follow up with NotifyUpdated.
  RegisteredStream& mutable_stream(StreamId id) { return streams_[id]; }

  /// Marks the stream retired and notifies the listener. Idempotent.
  void Retire(StreamId id);

  /// Notifies the listener that `id` was rewritten in place.
  void NotifyUpdated(StreamId id);

  /// The original stream registered under `name`, or nullptr.
  const RegisteredStream* FindOriginal(std::string_view name) const;

  /// Consumer refcounting: one reference per query input wired to the
  /// stream. ReleaseConsumer returns the count left (never below zero).
  void AddConsumer(StreamId id) { ++streams_[id].consumers; }
  int ReleaseConsumer(StreamId id) {
    if (streams_[id].consumers > 0) --streams_[id].consumers;
    return streams_[id].consumers;
  }

  /// All streams that are variants of `variant_of` and flow over `node`.
  std::vector<const RegisteredStream*> AvailableAt(
      NodeId node, std::string_view variant_of) const;

 private:
  std::vector<RegisteredStream> streams_;
  /// First original stream registered under each name (FindOriginal).
  std::map<std::string, StreamId, std::less<>> originals_;
  RegistryListener* listener_ = nullptr;
};

}  // namespace streamshare::network

#endif  // STREAMSHARE_NETWORK_STREAM_REGISTRY_H_
