// Liveness view of the super-peer network. The base Topology is
// immutable — peers and links never disappear from it — so failure is an
// overlay: PeerHealth records which peers are suspected or confirmed
// dead and which links are down, and routing (Topology::ShortestPath
// with predicates, driven by the planner) excludes them.
//
// Peer state machine:
//
//     kAlive ──MarkSuspect──▶ kSuspect ──MarkDead──▶ kDead (terminal)
//        ▲                        │
//        └───────MarkAlive────────┘
//
// kSuspect is advisory: the transport layer promotes credit-starvation
// deadlines into suspicion, but a suspected peer still routes traffic —
// only explicit confirmation (System::FailPeer → MarkDead) commits
// recovery. Confirming a peer dead cuts every incident link.

#ifndef STREAMSHARE_NETWORK_HEALTH_H_
#define STREAMSHARE_NETWORK_HEALTH_H_

#include <cstddef>
#include <string>
#include <vector>

#include "network/topology.h"

namespace streamshare::network {

enum class PeerStatus {
  kAlive,
  kSuspect,  ///< deadline symptoms observed; still routes
  kDead,     ///< confirmed failed; terminal
};

const char* PeerStatusName(PeerStatus status);

class PeerHealth {
 public:
  /// All peers alive, all links up. The topology must outlive the view.
  explicit PeerHealth(const Topology* topology);

  PeerStatus status(NodeId peer) const { return status_[peer]; }
  bool IsAlive(NodeId peer) const {
    return status_[peer] == PeerStatus::kAlive;
  }
  bool IsDead(NodeId peer) const {
    return status_[peer] == PeerStatus::kDead;
  }
  /// Whether traffic may route through the peer (alive or suspect).
  bool RoutesThrough(NodeId peer) const { return !IsDead(peer); }

  bool LinkUp(LinkId link) const { return link_up_[link]; }

  /// kAlive → kSuspect. Records the first reason. Returns true when the
  /// transition happened (false from kSuspect/kDead — never downgrades).
  bool MarkSuspect(NodeId peer, std::string reason);

  /// kAlive/kSuspect → kDead; cuts every link incident to the peer.
  /// Returns true when the transition happened (false when already dead).
  bool MarkDead(NodeId peer, std::string reason);

  /// kSuspect → kAlive (suspicion withdrawn). kDead is terminal: returns
  /// false, a confirmed-dead peer never comes back within one System
  /// lifetime.
  bool MarkAlive(NodeId peer);

  /// Cuts one link. Idempotent; returns true when the link went down now.
  bool CutLink(LinkId link);

  /// The reason recorded at the peer's last upward transition ("" while
  /// alive).
  const std::string& reason(NodeId peer) const { return reason_[peer]; }

  size_t dead_peer_count() const { return dead_peers_; }
  size_t suspect_peer_count() const { return suspect_peers_; }
  size_t down_link_count() const { return down_links_; }

  /// True when every peer is alive and every link is up.
  bool AllHealthy() const {
    return dead_peers_ == 0 && suspect_peers_ == 0 && down_links_ == 0;
  }

 private:
  const Topology* topology_;
  std::vector<PeerStatus> status_;
  std::vector<std::string> reason_;
  std::vector<bool> link_up_;
  size_t dead_peers_ = 0;
  size_t suspect_peers_ = 0;
  size_t down_links_ = 0;
};

}  // namespace streamshare::network

#endif  // STREAMSHARE_NETWORK_HEALTH_H_
