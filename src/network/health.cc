#include "network/health.h"

namespace streamshare::network {

const char* PeerStatusName(PeerStatus status) {
  switch (status) {
    case PeerStatus::kAlive:
      return "alive";
    case PeerStatus::kSuspect:
      return "suspect";
    case PeerStatus::kDead:
      return "dead";
  }
  return "unknown";
}

PeerHealth::PeerHealth(const Topology* topology)
    : topology_(topology),
      status_(topology->peer_count(), PeerStatus::kAlive),
      reason_(topology->peer_count()),
      link_up_(topology->link_count(), true) {}

bool PeerHealth::MarkSuspect(NodeId peer, std::string reason) {
  if (status_[peer] != PeerStatus::kAlive) return false;
  status_[peer] = PeerStatus::kSuspect;
  reason_[peer] = std::move(reason);
  ++suspect_peers_;
  return true;
}

bool PeerHealth::MarkDead(NodeId peer, std::string reason) {
  if (status_[peer] == PeerStatus::kDead) return false;
  if (status_[peer] == PeerStatus::kSuspect) --suspect_peers_;
  status_[peer] = PeerStatus::kDead;
  reason_[peer] = std::move(reason);
  ++dead_peers_;
  // A dead peer takes its links with it: nothing can route over an edge
  // whose endpoint no longer exists.
  for (size_t l = 0; l < topology_->link_count(); ++l) {
    const Link& link = topology_->link(static_cast<LinkId>(l));
    if (link.a == peer || link.b == peer) {
      CutLink(static_cast<LinkId>(l));
    }
  }
  return true;
}

bool PeerHealth::MarkAlive(NodeId peer) {
  if (status_[peer] != PeerStatus::kSuspect) return false;
  status_[peer] = PeerStatus::kAlive;
  reason_[peer].clear();
  --suspect_peers_;
  return true;
}

bool PeerHealth::CutLink(LinkId link) {
  if (!link_up_[link]) return false;
  link_up_[link] = false;
  ++down_links_;
  return true;
}

}  // namespace streamshare::network
