// Mutable utilization state of the network: how much bandwidth each
// connection and how much computational load each peer currently carries.
// The cost function reads availabilities a_b(e) / a_l(v) from here; plan
// deployment commits the plan's additional usage.

#ifndef STREAMSHARE_NETWORK_STATE_H_
#define STREAMSHARE_NETWORK_STATE_H_

#include <vector>

#include "network/health.h"
#include "network/topology.h"

namespace streamshare::network {

class NetworkState {
 public:
  explicit NetworkState(const Topology* topology);

  const Topology& topology() const { return *topology_; }

  /// Liveness overlay: which peers are suspect/dead, which links are
  /// down. The planner routes around anything marked dead here.
  const PeerHealth& health() const { return health_; }
  PeerHealth& mutable_health() { return health_; }

  /// Absolute bandwidth in use on a connection, kbit/s.
  double UsedBandwidthKbps(LinkId link) const {
    return used_bandwidth_[link];
  }
  /// Absolute load in use on a peer, work units / s.
  double UsedLoad(NodeId peer) const { return used_load_[peer]; }

  /// Relative utilization u ∈ [0, ∞).
  double RelativeBandwidthUse(LinkId link) const;
  double RelativeLoadUse(NodeId peer) const;

  /// Remaining relative capacity a = max(0, 1 − u).
  double AvailableBandwidth(LinkId link) const;
  double AvailableLoad(NodeId peer) const;

  /// Commits additional usage (deploying a plan). Negative deltas release.
  void AddBandwidth(LinkId link, double kbps);
  void AddLoad(NodeId peer, double work_units_per_s);

  /// High-water marks of absolute usage over the state's lifetime —
  /// releases (query deregistration) do not lower them, so they show the
  /// most the system ever committed.
  double PeakBandwidthKbps(LinkId link) const {
    return peak_bandwidth_[link];
  }
  double PeakLoad(NodeId peer) const { return peak_load_[peer]; }

 private:
  const Topology* topology_;
  PeerHealth health_;
  std::vector<double> used_bandwidth_;
  std::vector<double> used_load_;
  std::vector<double> peak_bandwidth_;
  std::vector<double> peak_load_;
};

}  // namespace streamshare::network

#endif  // STREAMSHARE_NETWORK_STATE_H_
