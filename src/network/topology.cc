#include "network/topology.h"

#include <algorithm>
#include <deque>

namespace streamshare::network {

NodeId Topology::AddPeer(std::string name, double max_load, double pindex) {
  NodeId id = static_cast<NodeId>(peers_.size());
  peers_.push_back(Peer{std::move(name), max_load, pindex});
  neighbors_.emplace_back();
  return id;
}

Result<LinkId> Topology::AddLink(NodeId a, NodeId b,
                                 double bandwidth_kbps,
                                 double latency_ms) {
  if (a == b) {
    return Status::InvalidArgument("self-link on peer " +
                                   std::to_string(a));
  }
  if (a < 0 || b < 0 || a >= static_cast<NodeId>(peers_.size()) ||
      b >= static_cast<NodeId>(peers_.size())) {
    return Status::InvalidArgument("link endpoint out of range");
  }
  if (FindLink(a, b).has_value()) {
    return Status::AlreadyExists("link between " + peers_[a].name +
                                 " and " + peers_[b].name +
                                 " already exists");
  }
  LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, bandwidth_kbps, latency_ms});
  neighbors_[a].push_back(b);
  neighbors_[b].push_back(a);
  std::sort(neighbors_[a].begin(), neighbors_[a].end());
  std::sort(neighbors_[b].begin(), neighbors_[b].end());
  link_index_[{std::min(a, b), std::max(a, b)}] = id;
  return id;
}

std::optional<LinkId> Topology::FindLink(NodeId a, NodeId b) const {
  auto it = link_index_.find({std::min(a, b), std::max(a, b)});
  if (it == link_index_.end()) return std::nullopt;
  return it->second;
}

std::optional<NodeId> Topology::FindPeer(std::string_view name) const {
  for (size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].name == name) return static_cast<NodeId>(i);
  }
  return std::nullopt;
}

const std::vector<NodeId>& Topology::Neighbors(NodeId node) const {
  return neighbors_[node];
}

Result<std::vector<NodeId>> Topology::ShortestPath(NodeId from,
                                                   NodeId to) const {
  return ShortestPath(from, to, nullptr, nullptr);
}

Result<std::vector<NodeId>> Topology::ShortestPath(
    NodeId from, NodeId to, const std::function<bool(NodeId)>& node_ok,
    const std::function<bool(LinkId)>& link_ok) const {
  if (from < 0 || to < 0 || from >= static_cast<NodeId>(peers_.size()) ||
      to >= static_cast<NodeId>(peers_.size())) {
    return Status::InvalidArgument("shortest-path endpoint out of range");
  }
  if (node_ok && (!node_ok(from) || !node_ok(to))) {
    return Status::NotFound("no path from " + peers_[from].name + " to " +
                            peers_[to].name + ": endpoint excluded");
  }
  if (from == to) return std::vector<NodeId>{from};
  std::vector<NodeId> parent(peers_.size(), -1);
  std::deque<NodeId> queue{from};
  parent[from] = from;
  while (!queue.empty()) {
    NodeId node = queue.front();
    queue.pop_front();
    for (NodeId next : neighbors_[node]) {
      if (parent[next] != -1) continue;
      if (node_ok && !node_ok(next)) continue;
      if (link_ok) {
        std::optional<LinkId> link = FindLink(node, next);
        if (!link.has_value() || !link_ok(*link)) continue;
      }
      parent[next] = node;
      if (next == to) {
        std::vector<NodeId> path{to};
        NodeId current = to;
        while (current != from) {
          current = parent[current];
          path.push_back(current);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      queue.push_back(next);
    }
  }
  return Status::NotFound("no path from " + peers_[from].name + " to " +
                          peers_[to].name);
}

Result<std::vector<LinkId>> Topology::LinksOnPath(
    const std::vector<NodeId>& path) const {
  std::vector<LinkId> out;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    std::optional<LinkId> link = FindLink(path[i], path[i + 1]);
    if (!link.has_value()) {
      return Status::NotFound("no link between " + peers_[path[i]].name +
                              " and " + peers_[path[i + 1]].name);
    }
    out.push_back(*link);
  }
  return out;
}

Result<double> Topology::PathLatencyMs(
    const std::vector<NodeId>& path) const {
  SS_ASSIGN_OR_RETURN(std::vector<LinkId> route_links, LinksOnPath(path));
  double latency = 0.0;
  for (LinkId link : route_links) {
    latency += links_[link].latency_ms;
  }
  return latency;
}

Topology Topology::ExtendedExample(double bandwidth_kbps, double max_load) {
  Topology topology;
  // Peer ids equal super-peer numbers: SP0..SP7.
  for (int i = 0; i < 8; ++i) {
    topology.AddPeer("SP" + std::to_string(i), max_load);
  }
  auto add = [&](NodeId a, NodeId b) {
    Result<LinkId> link = topology.AddLink(a, b, bandwidth_kbps);
    (void)link;
  };
  // Top row SP4—SP6—SP0—SP2, bottom row SP5—SP7—SP1—SP3, verticals.
  add(4, 6);
  add(6, 0);
  add(0, 2);
  add(5, 7);
  add(7, 1);
  add(1, 3);
  add(4, 5);
  add(6, 7);
  add(0, 1);
  add(2, 3);
  return topology;
}

Topology Topology::Grid(int rows, int cols, double bandwidth_kbps,
                        double max_load) {
  Topology topology;
  for (int i = 0; i < rows * cols; ++i) {
    topology.AddPeer("SP" + std::to_string(i), max_load);
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      NodeId node = r * cols + c;
      if (c + 1 < cols) {
        Result<LinkId> link =
            topology.AddLink(node, node + 1, bandwidth_kbps);
        (void)link;
      }
      if (r + 1 < rows) {
        Result<LinkId> link =
            topology.AddLink(node, node + cols, bandwidth_kbps);
        (void)link;
      }
    }
  }
  return topology;
}

}  // namespace streamshare::network
