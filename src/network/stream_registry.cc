#include "network/stream_registry.h"

#include <algorithm>

namespace streamshare::network {

StreamId StreamRegistry::Register(RegisteredStream stream) {
  stream.id = static_cast<StreamId>(streams_.size());
  streams_.push_back(std::move(stream));
  const RegisteredStream& added = streams_.back();
  if (added.IsOriginal()) originals_.emplace(added.variant_of, added.id);
  if (listener_ != nullptr) listener_->OnStreamRegistered(added.id);
  return added.id;
}

void StreamRegistry::Retire(StreamId id) {
  RegisteredStream& stream = streams_[id];
  if (stream.retired) return;
  stream.retired = true;
  if (listener_ != nullptr) listener_->OnStreamRetired(id);
}

void StreamRegistry::NotifyUpdated(StreamId id) {
  if (listener_ != nullptr) listener_->OnStreamUpdated(id);
}

const RegisteredStream* StreamRegistry::FindOriginal(
    std::string_view name) const {
  auto it = originals_.find(name);
  if (it == originals_.end()) return nullptr;
  return &streams_[it->second];
}

std::vector<const RegisteredStream*> StreamRegistry::AvailableAt(
    NodeId node, std::string_view variant_of) const {
  std::vector<const RegisteredStream*> out;
  for (const RegisteredStream& stream : streams_) {
    if (stream.retired || stream.variant_of != variant_of) continue;
    if (std::find(stream.route.begin(), stream.route.end(), node) !=
        stream.route.end()) {
      out.push_back(&stream);
    }
  }
  return out;
}

}  // namespace streamshare::network
