#include "network/stream_registry.h"

#include <algorithm>

namespace streamshare::network {

StreamId StreamRegistry::Register(RegisteredStream stream) {
  stream.id = static_cast<StreamId>(streams_.size());
  streams_.push_back(std::move(stream));
  return streams_.back().id;
}

const RegisteredStream* StreamRegistry::FindOriginal(
    std::string_view name) const {
  for (const RegisteredStream& stream : streams_) {
    if (stream.IsOriginal() && stream.variant_of == name) return &stream;
  }
  return nullptr;
}

std::vector<const RegisteredStream*> StreamRegistry::AvailableAt(
    NodeId node, std::string_view variant_of) const {
  std::vector<const RegisteredStream*> out;
  for (const RegisteredStream& stream : streams_) {
    if (stream.retired || stream.variant_of != variant_of) continue;
    if (std::find(stream.route.begin(), stream.route.end(), node) !=
        stream.route.end()) {
      out.push_back(&stream);
    }
  }
  return out;
}

}  // namespace streamshare::network
