// Subnet partitions of the super-peer network — the substrate for the
// paper's scalability future work (§6): "a hierarchical network
// organization with several interconnected subnets where each subnet is
// optimized separately." A partition assigns every peer to one subnet;
// gateways are peers with links into other subnets.

#ifndef STREAMSHARE_NETWORK_SUBNET_H_
#define STREAMSHARE_NETWORK_SUBNET_H_

#include <set>
#include <vector>

#include "common/status.h"
#include "network/topology.h"

namespace streamshare::network {

class SubnetPartition {
 public:
  /// `subnet_of[node]` is the subnet index of each peer; indices must be
  /// dense starting at 0.
  static Result<SubnetPartition> Create(const Topology* topology,
                                        std::vector<int> subnet_of);

  /// Convenience: splits an n×m grid (as built by Topology::Grid) into
  /// quadrants.
  static Result<SubnetPartition> GridQuadrants(const Topology* topology,
                                               int rows, int cols);

  int subnet_count() const { return subnet_count_; }
  int subnet_of(NodeId node) const { return subnet_of_[node]; }

  /// The peers of one subnet.
  const std::vector<NodeId>& nodes_in(int subnet) const {
    return nodes_in_[subnet];
  }

  /// True if the peer has a link into another subnet.
  bool IsGateway(NodeId node) const { return is_gateway_[node]; }

  /// All gateways of one subnet.
  std::vector<NodeId> GatewaysOf(int subnet) const;

 private:
  const Topology* topology_ = nullptr;
  std::vector<int> subnet_of_;
  int subnet_count_ = 0;
  std::vector<std::vector<NodeId>> nodes_in_;
  std::vector<bool> is_gateway_;
};

}  // namespace streamshare::network

#endif  // STREAMSHARE_NETWORK_SUBNET_H_
