// What one failure event did to the deployment. System::FailPeer /
// System::CutLink return a RecoveryReport (and retain it in
// recovery_reports()): which streams stopped flowing, which queries were
// orphaned and how each one ended up — re-planned onto the surviving
// topology, lost (no surviving route or source), or torn down because
// its own target peer died — plus the windowed state destroyed along the
// way and a snapshot of every surviving sink at the moment recovery
// completed (the epoch boundary the differential oracle compares
// against).

#ifndef STREAMSHARE_RECOVER_REPORT_H_
#define STREAMSHARE_RECOVER_REPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "network/stream_registry.h"
#include "network/topology.h"

namespace streamshare::recover {

/// How recovery resolved one affected query.
struct QueryRecovery {
  enum class Outcome {
    kReplanned,   ///< re-subscribed against the surviving topology
    kLost,        ///< no surviving plan (source dead or unreachable)
    kDeadTarget,  ///< the query's own super-peer died; torn down
  };

  int query_id = -1;
  Outcome outcome = Outcome::kReplanned;
  /// C(P) of the plan that was torn down.
  double old_cost = 0.0;
  /// C(P) of the replacement plan (kReplanned only).
  double new_cost = 0.0;
  /// Why the query is lost / how it was re-planned, human-readable.
  std::string detail;
  /// Windows holding partial content destroyed with the old plan.
  uint64_t lost_windows = 0;
};

const char* OutcomeName(QueryRecovery::Outcome outcome);

/// Sink counters of one query at recovery completion — the epoch
/// boundary. Output produced after this point by a re-planned query
/// covers only post-recovery epochs.
struct SinkSnapshot {
  uint64_t items = 0;
  uint64_t bytes = 0;
  uint64_t content_hash = 0;
};

struct RecoveryReport {
  /// "fail-peer SP3" or "cut-link SP1-SP2".
  std::string trigger;
  /// Streams that stopped flowing (route broken, or fed by one that is),
  /// in registry order.
  std::vector<network::StreamId> severed_streams;
  /// One entry per affected query, in query-id order.
  std::vector<QueryRecovery> queries;
  /// Totals (the recover.* counters of this event).
  size_t replans = 0;
  size_t orphaned_queries = 0;
  size_t dead_targets = 0;
  size_t lost_queries = 0;
  /// All windows destroyed, including cascaded stream teardowns not
  /// attributable to a single query.
  uint64_t lost_windows = 0;
  /// Sink state of every still-active query when recovery completed,
  /// keyed by query id.
  std::map<int, SinkSnapshot> snapshots;

  std::string ToString() const;
};

}  // namespace streamshare::recover

#endif  // STREAMSHARE_RECOVER_REPORT_H_
