// Failure recovery of shared streams: the teardown / re-plan machinery
// behind StreamShareSystem::FailPeer, CutLink and Unsubscribe.
//
// Recovery is a registry walk, not a graph walk. A failure severs every
// stream whose route crosses the dead peer or a down link, plus —
// transitively — every stream derived from a severed one. Each active
// query that consumes or registered a severed stream (or whose own
// transmission route broke) is orphaned: its operator chains are detached
// (open windows are destroyed, counted, never flushed as partial results
// — gap, not garbage) and the query is re-planned with Subscribe against
// the surviving topology under epoch-safe reuse, its windowed residual
// operators rebuilt in resume mode so output restarts at the next window
// boundary. Shared streams are refcounted throughout: a departing query's
// chain up to a still-consumed stream's tail keeps running (parked), and
// a fixed point garbage-collects parked chains as their streams lose
// their last consumers, cascading up reuse chains.

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "obs/event_log.h"
#include "obs/metrics_registry.h"
#include "sharing/system.h"

namespace streamshare::sharing {

using network::NodeId;
using network::PeerHealth;
using network::RegisteredStream;
using network::StreamId;

namespace {

/// The path no longer carries traffic: a node on it is dead or a link on
/// it is down.
bool RouteBroken(const network::Topology& topology, const PeerHealth& health,
                 const std::vector<NodeId>& route) {
  for (NodeId node : route) {
    if (!health.RoutesThrough(node)) return true;
  }
  Result<std::vector<network::LinkId>> links = topology.LinksOnPath(route);
  if (links.ok()) {
    for (network::LinkId link : *links) {
      if (!health.LinkUp(link)) return true;
    }
  }
  return false;
}

}  // namespace

bool StreamShareSystem::StreamSevered(
    StreamId id, const std::vector<bool>& severed) const {
  const RegisteredStream& stream = registry_.stream(id);
  if (stream.retired) return false;
  if (RouteBroken(topology_, state_.health(), stream.route)) return true;
  // Streams register in derivation order, so upstream verdicts are final
  // by the time a derived stream is examined.
  return stream.upstream >= 0 && severed[stream.upstream];
}

bool StreamShareSystem::TryDismantle(ParkedWiring* parked,
                                     uint64_t* lost_windows) {
  QueryDeployment::InputWiring& w = parked->wiring;
  const bool stream_needed =
      w.registered_stream >= 0 &&
      !registry_.stream(w.registered_stream).retired &&
      registry_.stream(w.registered_stream).consumers > 0;
  if (stream_needed) {
    // The stream this wiring produces still feeds other subscriptions:
    // keep the segment up to its final tap flowing and cut only the
    // departed query's private tail behind it.
    if (!w.tail_cut) {
      if (w.stream_tail != nullptr && w.private_head != nullptr) {
        w.stream_tail->RemoveDownstream(w.private_head);
      }
      if (lost_windows != nullptr) {
        for (size_t i = w.tail_boundary; i < w.private_ops.size(); ++i) {
          *lost_windows += w.private_ops[i]->OpenWindowCount();
        }
      }
      w.tail_cut = true;
      w.tail_counted = true;
    }
    return false;
  }
  // Nothing depends on the wiring any more: detach the whole chain from
  // the shared tap, retire the stream it registered, release the
  // resources its plan input committed, and drop its consumer reference
  // (which may unblock a parked wiring further up the reuse chain).
  if (w.tap != nullptr && w.first != nullptr) {
    w.tap->RemoveDownstream(w.first);
  }
  if (lost_windows != nullptr) {
    size_t end = w.tail_counted ? w.tail_boundary : w.private_ops.size();
    for (size_t i = 0; i < end; ++i) {
      *lost_windows += w.private_ops[i]->OpenWindowCount();
    }
  }
  if (w.registered_stream >= 0) {
    registry_.Retire(w.registered_stream);
    taps_.erase(w.registered_stream);
  }
  for (const auto& [link, kbps] : parked->added_bandwidth_kbps) {
    state_.AddBandwidth(link, -kbps);
  }
  for (const auto& [peer, load] : parked->added_load) {
    state_.AddLoad(peer, -load);
  }
  if (w.reused_stream >= 0) registry_.ReleaseConsumer(w.reused_stream);
  return true;
}

void StreamShareSystem::ParkWirings(int query_id,
                                    QueryDeployment* deployment,
                                    const EvaluationPlan& plan,
                                    uint64_t* lost_windows) {
  for (size_t i = 0; i < deployment->inputs.size(); ++i) {
    ParkedWiring parked;
    parked.query_id = query_id;
    parked.wiring = deployment->inputs[i];
    if (i < plan.inputs.size()) {
      parked.added_bandwidth_kbps = plan.inputs[i].added_bandwidth_kbps;
      parked.added_load = plan.inputs[i].added_load;
    }
    if (!TryDismantle(&parked, lost_windows)) {
      parked_.push_back(std::move(parked));
    }
  }
  deployment->inputs.clear();
}

uint64_t StreamShareSystem::GcStreams() {
  uint64_t lost = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto it = parked_.begin(); it != parked_.end();) {
      if (TryDismantle(&*it, &lost)) {
        it = parked_.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
  return lost;
}

Status StreamShareSystem::Unsubscribe(int query_id) {
  SS_RETURN_IF_ERROR(CheckActiveSubscription(query_id));
  QueryDeployment& deployment = deployments_[query_id];
  if (deployment.widened_a_stream) {
    return Status::InvalidArgument(
        "query " + std::to_string(query_id) +
        " widened a shared stream; widening is irreversible while later "
        "subscriptions may rely on the widened content");
  }
  deployment.active = false;
  ParkWirings(query_id, &deployment, registrations_[query_id].plan,
              nullptr);
  GcStreams();
  ++plan_epoch_;
  obs::EventLog& log = obs::EventLog::Default();
  if (log.ShouldLog(obs::Severity::kInfo)) {
    log.Log(obs::Severity::kInfo, "recover", "query unsubscribed",
            {obs::F("query", query_id),
             obs::F("parked_chains", parked_.size())});
  }
  return Status::Ok();
}

Result<recover::RecoveryReport> StreamShareSystem::RecoverAfter(
    std::string trigger) {
  recover::RecoveryReport report;
  report.trigger = std::move(trigger);
  const PeerHealth& health = state_.health();

  // 1. Sever: walk the registry in derivation order; a stream is dead
  //    when its own route broke or the stream it taps is dead.
  std::vector<bool> severed(registry_.streams().size(), false);
  for (const RegisteredStream& stream : registry_.streams()) {
    if (StreamSevered(stream.id, severed)) {
      severed[stream.id] = true;
      report.severed_streams.push_back(stream.id);
    }
  }
  // Retire severed streams before re-planning: the planner must neither
  // reuse them nor treat a dead source as available.
  for (StreamId id : report.severed_streams) {
    registry_.Retire(id);
  }

  // 2. Classify every active query.
  struct Affected {
    int query_id;
    bool dead_target;
  };
  std::vector<Affected> affected;
  for (size_t q = 0; q < deployments_.size(); ++q) {
    const QueryDeployment& deployment = deployments_[q];
    if (!deployment.active) continue;
    const RegistrationResult& reg = registrations_[q];
    if (health.IsDead(reg.vq)) {
      affected.push_back({static_cast<int>(q), /*dead_target=*/true});
      continue;
    }
    bool orphaned = false;
    for (const QueryDeployment::InputWiring& w : deployment.inputs) {
      if ((w.reused_stream >= 0 && severed[w.reused_stream]) ||
          (w.registered_stream >= 0 && severed[w.registered_stream])) {
        orphaned = true;
        break;
      }
    }
    // Shipping strategies register no stream; their transmission route
    // lives only in the plan.
    for (const InputPlan& input : reg.plan.inputs) {
      if (orphaned) break;
      if (input.new_stream.has_value() &&
          RouteBroken(topology_, health, input.new_stream->route)) {
        orphaned = true;
      }
    }
    if (orphaned) {
      affected.push_back({static_cast<int>(q), /*dead_target=*/false});
    }
  }

  // 3. Tear down and re-plan, in query-id order so earlier recovered
  //    queries' re-registered (epoch-safe) streams are reusable by later
  //    ones.
  PlannerOptions recovery_options = config_.planner;
  recovery_options.epoch_safe_only = true;
  recovery_options.enable_widening = false;
  Planner recovery_planner(&topology_, &state_, &registry_,
                           cost_model_.get(), recovery_options);
  recovery_planner.set_candidate_index(candidate_index_.get());
  uint64_t lost_total = 0;
  for (const Affected& a : affected) {
    QueryDeployment& deployment = deployments_[a.query_id];
    RegistrationResult& reg = registrations_[a.query_id];
    recover::QueryRecovery outcome;
    outcome.query_id = a.query_id;
    outcome.old_cost = reg.plan.TotalCost();

    uint64_t lost_here = 0;
    deployment.active = false;
    ParkWirings(a.query_id, &deployment, reg.plan, &lost_here);

    if (a.dead_target) {
      outcome.outcome = recover::QueryRecovery::Outcome::kDeadTarget;
      outcome.detail =
          "target super-peer " + topology_.peer(reg.vq).name + " failed";
      ++report.dead_targets;
    } else {
      ++report.orphaned_queries;
      SearchStats search;
      Result<EvaluationPlan> plan = [&]() -> Result<EvaluationPlan> {
        switch (reg.strategy) {
          case Strategy::kDataShipping:
            return recovery_planner.DataShipping(*deployment.query,
                                                 reg.vq);
          case Strategy::kQueryShipping:
            return recovery_planner.QueryShipping(*deployment.query,
                                                  reg.vq);
          case Strategy::kStreamSharing:
            return recovery_planner.Subscribe(*deployment.query, reg.vq,
                                              &search);
        }
        return Status::Internal("unknown strategy");
      }();
      if (!plan.ok()) {
        outcome.outcome = recover::QueryRecovery::Outcome::kLost;
        outcome.detail = plan.status().message();
        ++report.lost_queries;
      } else if (config_.enforce_limits && !plan->Feasible()) {
        outcome.outcome = recover::QueryRecovery::Outcome::kLost;
        outcome.detail =
            "no evaluation plan without overload on the surviving "
            "topology";
        ++report.lost_queries;
      } else {
        engine::SinkOp* sink = reg.sink;
        Status built = BuildDeployment(*plan, deployment.query, reg.vq,
                                       reg.strategy, a.query_id,
                                       /*resume=*/true, &sink,
                                       &deployment);
        if (!built.ok()) {
          outcome.outcome = recover::QueryRecovery::Outcome::kLost;
          outcome.detail = built.message();
          deployment.active = false;
          ++report.lost_queries;
        } else {
          reg.plan = std::move(plan).value();
          if (reg.strategy == Strategy::kStreamSharing) {
            reg.search = std::move(search);
          }
          outcome.outcome = recover::QueryRecovery::Outcome::kReplanned;
          outcome.new_cost = reg.plan.TotalCost();
          ++report.replans;
        }
      }
    }
    outcome.lost_windows = lost_here;
    lost_total += lost_here;
    report.queries.push_back(std::move(outcome));
  }

  // 4. Garbage-collect parked chains whose streams lost their last
  //    consumer in this event (cascades up reuse chains).
  lost_total += GcStreams();
  report.lost_windows = lost_total;
  ++plan_epoch_;

  // 5. Snapshot every surviving sink: the epoch boundary the oracle
  //    compares post-recovery output against.
  for (size_t q = 0; q < deployments_.size(); ++q) {
    if (!deployments_[q].active) continue;
    const engine::SinkOp* sink = registrations_[q].sink;
    if (sink == nullptr) continue;
    recover::SinkSnapshot snapshot;
    snapshot.items = sink->item_count();
    snapshot.bytes = sink->total_bytes();
    snapshot.content_hash = sink->content_hash();
    report.snapshots[static_cast<int>(q)] = snapshot;
  }

  if (obs::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("recover.replans")->Add(report.replans);
    registry.GetCounter("recover.orphaned_queries")
        ->Add(report.orphaned_queries);
    registry.GetCounter("recover.dead_target_queries")
        ->Add(report.dead_targets);
    registry.GetCounter("recover.lost_queries")->Add(report.lost_queries);
    registry.GetCounter("recover.lost_windows")->Add(report.lost_windows);
  }
  obs::EventLog& log = obs::EventLog::Default();
  if (log.ShouldLog(obs::Severity::kWarn)) {
    log.Log(obs::Severity::kWarn, "recover", "recovery completed",
            {obs::F("trigger", report.trigger),
             obs::F("severed_streams", report.severed_streams.size()),
             obs::F("replans", report.replans),
             obs::F("lost_queries", report.lost_queries),
             obs::F("dead_targets", report.dead_targets),
             obs::F("lost_windows", report.lost_windows)});
  }
  recovery_reports_.push_back(report);
  return report;
}

Result<recover::RecoveryReport> StreamShareSystem::FailPeer(NodeId peer) {
  if (peer < 0 || peer >= static_cast<NodeId>(topology_.peer_count())) {
    return Status::InvalidArgument("peer out of range");
  }
  if (state_.health().IsDead(peer)) {
    return Status::InvalidArgument("peer " + topology_.peer(peer).name +
                                   " is already dead");
  }
  state_.mutable_health().MarkDead(peer, "FailPeer");
  return RecoverAfter("fail-peer " + topology_.peer(peer).name);
}

Result<recover::RecoveryReport> StreamShareSystem::FailPeer(
    const std::string& peer_name) {
  std::optional<NodeId> peer = topology_.FindPeer(peer_name);
  if (!peer.has_value()) {
    return Status::NotFound("no peer named '" + peer_name + "'");
  }
  return FailPeer(*peer);
}

Result<recover::RecoveryReport> StreamShareSystem::CutLink(NodeId a,
                                                           NodeId b) {
  std::optional<network::LinkId> link = topology_.FindLink(a, b);
  if (!link.has_value()) {
    return Status::NotFound("no link between the given peers");
  }
  if (!state_.health().LinkUp(*link)) {
    return Status::InvalidArgument(
        "link " + topology_.peer(topology_.link(*link).a).name + "-" +
        topology_.peer(topology_.link(*link).b).name + " is already down");
  }
  state_.mutable_health().CutLink(*link);
  return RecoverAfter("cut-link " + topology_.peer(a).name + "-" +
                      topology_.peer(b).name);
}

}  // namespace streamshare::sharing
