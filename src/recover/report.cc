#include "recover/report.h"

namespace streamshare::recover {

const char* OutcomeName(QueryRecovery::Outcome outcome) {
  switch (outcome) {
    case QueryRecovery::Outcome::kReplanned:
      return "re-planned";
    case QueryRecovery::Outcome::kLost:
      return "lost";
    case QueryRecovery::Outcome::kDeadTarget:
      return "dead target";
  }
  return "?";
}

std::string RecoveryReport::ToString() const {
  std::string out = "=== recovery: " + trigger + " ===\n";
  out += "severed streams: ";
  if (severed_streams.empty()) {
    out += "none";
  } else {
    for (size_t i = 0; i < severed_streams.size(); ++i) {
      if (i > 0) out += ",";
      out += "#" + std::to_string(severed_streams[i]);
    }
  }
  out += "\n";
  for (const QueryRecovery& query : queries) {
    out += "q" + std::to_string(query.query_id) + " [" +
           OutcomeName(query.outcome) + "]";
    if (query.outcome == QueryRecovery::Outcome::kReplanned) {
      out += " C(P) " + std::to_string(query.old_cost) + " -> " +
             std::to_string(query.new_cost);
    } else if (!query.detail.empty()) {
      out += " " + query.detail;
    }
    if (query.lost_windows > 0) {
      out += "  lost_windows=" + std::to_string(query.lost_windows);
    }
    out += "\n";
  }
  out += "orphaned=" + std::to_string(orphaned_queries) +
         " replanned=" + std::to_string(replans) +
         " lost=" + std::to_string(lost_queries) +
         " dead_targets=" + std::to_string(dead_targets) +
         " lost_windows=" + std::to_string(lost_windows) + "\n";
  return out;
}

}  // namespace streamshare::recover
