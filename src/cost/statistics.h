// Stream statistics feeding the cost model (§3.2): element occurrences and
// sizes (from the stream schema), item frequencies, per-element value
// ranges for selectivity estimation, and the average increment of ordered
// reference elements (needed to estimate time-based window frequencies).

#ifndef STREAMSHARE_COST_STATISTICS_H_
#define STREAMSHARE_COST_STATISTICS_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "xml/path.h"
#include "xml/schema.h"

namespace streamshare::cost {

/// Closed value interval of a numeric element, assumed uniform for
/// selectivity estimation.
struct ValueRange {
  double min = 0.0;
  double max = 1.0;

  double Width() const { return max - min; }
};

/// Equi-width histogram of an element's value distribution. When present,
/// selectivity estimation uses the bucket masses instead of the uniform
/// assumption — important for skewed data like the photon sky with its
/// bright supernova-remnant regions.
struct ValueHistogram {
  double min = 0.0;
  double max = 1.0;
  /// Bucket masses, normalized to sum to 1.
  std::vector<double> mass;

  /// Fraction of values falling in [lo, hi] (linear interpolation within
  /// buckets).
  double MassIn(double lo, double hi) const;
};

/// Statistics of one original data stream.
class StreamStatistics {
 public:
  StreamStatistics(std::shared_ptr<const xml::StreamSchema> schema,
                   double item_frequency_hz)
      : schema_(std::move(schema)),
        item_frequency_hz_(item_frequency_hz) {}

  const xml::StreamSchema& schema() const { return *schema_; }
  std::shared_ptr<const xml::StreamSchema> schema_ptr() const {
    return schema_;
  }

  /// Average items per second delivered by the stream (freq(s)).
  double item_frequency_hz() const { return item_frequency_hz_; }

  /// Declares the value range of a numeric element.
  void SetRange(const xml::Path& path, ValueRange range) {
    ranges_[path] = range;
  }
  std::optional<ValueRange> Range(const xml::Path& path) const;

  /// Declares the value distribution of a numeric element (implies its
  /// range). Selectivity estimation prefers histograms over ranges.
  void SetHistogram(const xml::Path& path, ValueHistogram histogram);
  const ValueHistogram* Histogram(const xml::Path& path) const;

  /// Declares the average increment of an ordered reference element
  /// between successive items (e.g. det_time advances by ~0.5 per photon).
  void SetAvgIncrement(const xml::Path& path, double increment) {
    avg_increments_[path] = increment;
  }
  std::optional<double> AvgIncrement(const xml::Path& path) const;

 private:
  std::shared_ptr<const xml::StreamSchema> schema_;
  double item_frequency_hz_;
  std::map<xml::Path, ValueRange> ranges_;
  std::map<xml::Path, ValueHistogram> histograms_;
  std::map<xml::Path, double> avg_increments_;
};

/// Registry of statistics for all original streams, keyed by stream name.
class StatisticsRegistry {
 public:
  void Register(std::string stream_name, StreamStatistics stats);
  /// nullptr if unknown.
  const StreamStatistics* Find(std::string_view stream_name) const;

 private:
  std::map<std::string, StreamStatistics, std::less<>> stats_;
};

}  // namespace streamshare::cost

#endif  // STREAMSHARE_COST_STATISTICS_H_
