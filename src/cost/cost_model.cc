#include "cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/metrics_registry.h"

#include "matching/match_properties.h"
#include "xml/xml_node.h"

namespace streamshare::cost {

using properties::AggregationOp;
using properties::InputStreamProperties;
using properties::Operator;
using properties::OperatorKind;
using properties::ProjectionOp;
using properties::SelectionOp;
using properties::WindowType;

namespace {

/// Serialized size of one schema subtree, matching
/// StreamSchema::AvgSubtreeSize's accounting.
double FullSubtreeSize(const xml::SchemaElement& element) {
  double size = static_cast<double>(xml::XmlNode::TagBytes(
                    element.name.size(), /*empty=*/false)) +
                element.avg_text_size;
  for (const auto& child : element.children) {
    size += child->avg_occurrence * FullSubtreeSize(*child);
  }
  return size;
}

/// Serialized size of one item after projecting onto `output` paths: a
/// subtree is kept in full when covered by an output path; ancestors of
/// kept subtrees survive as structure.
double ProjectedSubtreeSize(const xml::SchemaElement& element,
                            std::vector<std::string>* prefix,
                            const std::vector<xml::Path>& output) {
  xml::Path current(*prefix);
  for (const xml::Path& out : output) {
    if (out.IsPrefixOf(current)) {
      // Whole subtree kept: serializes like the unprojected schema subtree.
      return FullSubtreeSize(element);
    }
  }
  // Not covered: survives only if it is an ancestor of a kept subtree.
  bool is_ancestor = false;
  for (const xml::Path& out : output) {
    if (current.IsPrefixOf(out)) {
      is_ancestor = true;
      break;
    }
  }
  if (!is_ancestor) return 0.0;
  double size = static_cast<double>(xml::XmlNode::TagBytes(
                    element.name.size(), /*empty=*/false)) +
                element.avg_text_size;
  for (const auto& child : element.children) {
    prefix->push_back(child->name);
    double child_size = ProjectedSubtreeSize(*child, prefix, output);
    prefix->pop_back();
    size += child->avg_occurrence * child_size;
  }
  return size;
}

}  // namespace

double CostModel::SelectionSelectivity(
    const predicate::PredicateGraph& graph,
    const StreamStatistics& stats) const {
  double selectivity = 1.0;
  const auto& nodes = graph.nodes();
  // One closure serves every per-node bound query below (TightestBound
  // would re-run Floyd–Warshall per call).
  const auto closure = graph.Closure();
  for (size_t v = 1; v < nodes.size(); ++v) {
    std::optional<ValueRange> range = stats.Range(nodes[v]);
    if (!range.has_value() || range->Width() <= 0.0) continue;
    double lo = range->min;
    double hi = range->max;
    // v ≤ c appears as the tightest bound v → 0.
    if (const auto& upper = closure[v][0]) {
      hi = std::min(hi, upper->value.ToDouble());
    }
    // 0 ≤ v + c (v ≥ −c) appears as the tightest bound 0 → v.
    if (const auto& lower = closure[0][v]) {
      lo = std::max(lo, -lower->value.ToDouble());
    }
    // A histogram, when available, captures the element's skew (hot sky
    // regions); otherwise assume uniform over the declared range.
    if (const ValueHistogram* histogram = stats.Histogram(nodes[v])) {
      selectivity *= histogram->MassIn(lo, hi);
    } else {
      double width = std::max(0.0, std::min(hi, range->max) -
                                       std::max(lo, range->min));
      selectivity *= std::clamp(width / range->Width(), 0.0, 1.0);
    }
  }
  // Variable-vs-variable constraints: one heuristic factor per constrained
  // unordered pair.
  std::set<std::pair<int, int>> pairs;
  for (const auto& edge : graph.edges()) {
    if (edge.source == 0 || edge.target == 0) continue;
    pairs.insert({std::min(edge.source, edge.target),
                  std::max(edge.source, edge.target)});
  }
  for (size_t i = 0; i < pairs.size(); ++i) {
    selectivity *= params_.var_var_selectivity;
  }
  return selectivity;
}

Result<StreamEstimate> CostModel::EstimateStream(
    const InputStreamProperties& props) const {
  static obs::Counter* calls =
      obs::MetricsRegistry::Default().GetCounter(
          "cost.estimate_stream.calls");
  if (obs::Enabled()) calls->Add(1);
  const StreamStatistics* stats = statistics_->Find(props.stream_name);
  if (stats == nullptr) {
    return Status::NotFound("no statistics registered for stream '" +
                            props.stream_name + "'");
  }
  StreamEstimate estimate;
  estimate.item_size_bytes = stats->schema().AvgItemSize();
  estimate.frequency_hz = stats->item_frequency_hz();

  // Aggregate entries carry their pre-selection twice: as a standalone σ
  // (for Algorithm 2's kind-wise matching) and embedded in the Φ
  // descriptor. Count its selectivity once, and remember the factor:
  // time-based windows need it, because selection thins the items but
  // stretches the reference-element increment between survivors by the
  // same factor — window-update frequency is invariant under selection.
  bool selection_applied = false;
  double selectivity_so_far = 1.0;
  for (const Operator& op : props.operators) {
    switch (KindOf(op)) {
      case OperatorKind::kSelection: {
        const auto& selection = std::get<SelectionOp>(op);
        double selectivity = SelectionSelectivity(selection.graph, *stats);
        estimate.frequency_hz *= selectivity;
        selectivity_so_far *= selectivity;
        selection_applied = true;
        break;
      }
      case OperatorKind::kProjection: {
        const auto& projection = std::get<ProjectionOp>(op);
        std::vector<std::string> prefix;
        estimate.item_size_bytes = ProjectedSubtreeSize(
            stats->schema().item(), &prefix, projection.output);
        break;
      }
      case OperatorKind::kAggregation: {
        const auto& aggregation = std::get<AggregationOp>(op);
        // Pre-selection thins the stream feeding the window (unless a
        // standalone σ already accounted for it).
        if (!selection_applied) {
          double selectivity = SelectionSelectivity(
              aggregation.pre_selection_graph, *stats);
          estimate.frequency_hz *= selectivity;
          selectivity_so_far *= selectivity;
        }
        // One aggregate value per window update.
        double items_per_update;
        if (aggregation.window.type == WindowType::kCount) {
          items_per_update = aggregation.window.step.ToDouble();
        } else {
          // Selection stretches the increment between surviving items by
          // 1/selectivity, so fewer survivors complete each update: the
          // update frequency stays raw_freq · increment / µ.
          double increment =
              stats->AvgIncrement(aggregation.window.reference)
                  .value_or(1.0);
          items_per_update = aggregation.window.step.ToDouble() /
                             std::max(1e-9, increment) *
                             selectivity_so_far;
        }
        estimate.frequency_hz /= std::max(1e-9, items_per_update);
        estimate.item_size_bytes = params_.aggregate_item_size;
        // A result filter thins the aggregate stream; approximate its
        // selectivity with the aggregated element's value range (the
        // window average/extremum lives in the same range).
        if (aggregation.result_filter_graph.edge_count() > 0) {
          StreamStatistics agg_stats(stats->schema_ptr(), 1.0);
          if (auto range = stats->Range(aggregation.aggregated_element)) {
            agg_stats.SetRange(properties::AggregateValuePath(), *range);
          }
          estimate.frequency_hz *= SelectionSelectivity(
              aggregation.result_filter_graph, agg_stats);
        }
        break;
      }
      case OperatorKind::kUserDefined: {
        const auto& udf = std::get<properties::UserDefinedOp>(op);
        if (udf.name == "window-contents" && udf.params.size() == 4) {
          // Queries returning the contents of data windows (§3.2): the
          // window size times the average item size plus the enclosing
          // window tags, at one item per window update. The parameter
          // vector is (type, Δ, µ, reference).
          Result<Decimal> size = Decimal::Parse(udf.params[1]);
          Result<Decimal> step = Decimal::Parse(udf.params[2]);
          if (size.ok() && step.ok()) {
            double items_per_window;
            double items_per_update;
            if (udf.params[0] == "count") {
              items_per_window = size->ToDouble();
              items_per_update = step->ToDouble();
            } else {
              // As with aggregation windows: prior selection stretches
              // the survivor increment by 1/selectivity.
              Result<xml::Path> reference = xml::Path::Parse(udf.params[3]);
              double increment =
                  reference.ok()
                      ? stats->AvgIncrement(*reference).value_or(1.0)
                      : 1.0;
              items_per_window = size->ToDouble() /
                                 std::max(1e-9, increment) *
                                 selectivity_so_far;
              items_per_update = step->ToDouble() /
                                 std::max(1e-9, increment) *
                                 selectivity_so_far;
            }
            // <window> + </window> + <seq>…</seq> ≈ 30 bytes of framing.
            estimate.item_size_bytes =
                items_per_window * estimate.item_size_bytes + 30.0;
            estimate.frequency_hz /= std::max(1e-9, items_per_update);
          }
          break;
        }
        // Unknown semantics: conservatively size-and-frequency preserving.
        break;
      }
    }
  }
  return estimate;
}

Result<double> CostModel::SelectivityFor(
    std::string_view stream_name,
    const predicate::PredicateGraph& graph) const {
  const StreamStatistics* stats = statistics_->Find(stream_name);
  if (stats == nullptr) {
    return Status::NotFound("no statistics registered for stream '" +
                            std::string(stream_name) + "'");
  }
  return SelectionSelectivity(graph, *stats);
}

Result<double> CostModel::WindowUpdateDivisor(
    std::string_view stream_name,
    const properties::WindowSpec& window) const {
  if (window.type == WindowType::kCount) {
    return std::max(1.0, window.step.ToDouble());
  }
  const StreamStatistics* stats = statistics_->Find(stream_name);
  if (stats == nullptr) {
    return Status::NotFound("no statistics registered for stream '" +
                            std::string(stream_name) + "'");
  }
  double increment = stats->AvgIncrement(window.reference).value_or(1.0);
  // No floor at 1: when µ is smaller than the increment, windows update
  // more often than items arrive (empty windows are emitted for sequence
  // continuity).
  return std::max(1e-9, window.step.ToDouble() / std::max(1e-9, increment));
}

double CostModel::BaseLoad(const Operator& op) const {
  switch (KindOf(op)) {
    case OperatorKind::kSelection:
      return params_.bload_selection;
    case OperatorKind::kProjection:
      return params_.bload_projection;
    case OperatorKind::kAggregation:
      return params_.bload_aggregation;
    case OperatorKind::kUserDefined:
      return params_.bload_user_defined;
  }
  return 1.0;
}

double CostModel::OperatorLoad(const Operator& op, double pindex,
                               double input_frequency_hz) const {
  return BaseLoad(op) * pindex * input_frequency_hz;
}

double PlanCost(const std::vector<ResourceUsage>& connections,
                const std::vector<ResourceUsage>& peers, double gamma) {
  static obs::Counter* calls =
      obs::MetricsRegistry::Default().GetCounter("cost.plan_cost.calls");
  if (obs::Enabled()) calls->Add(1);
  auto term = [](const ResourceUsage& usage) {
    double overload = usage.added - usage.available;
    double penalty =
        overload > 0.0 ? overload * std::exp(overload) : 0.0;
    return usage.added + penalty;
  };
  double connection_cost = 0.0;
  for (const ResourceUsage& usage : connections) {
    connection_cost += term(usage);
  }
  double peer_cost = 0.0;
  for (const ResourceUsage& usage : peers) {
    peer_cost += term(usage);
  }
  return gamma * connection_cost + (1.0 - gamma) * peer_cost;
}

}  // namespace streamshare::cost
