// The cost model of §3.2. Estimates, per derived stream: average item size
// size(p), average item frequency freq(p), and selection selectivities;
// and, per evaluation plan: the cost
//
//   C(P) = γ   · Σ_e ( u_b(e) + max(0, u_b−a_b) · e^(u_b−a_b) )
//        + (1−γ) · Σ_v ( u_l(v) + max(0, u_l−a_l) · e^(u_l−a_l) )
//
// where u_b(e) is the relative bandwidth the plan adds on connection e,
// u_l(v) the relative computational load it adds on peer v, and a_b/a_l
// the respective remaining capacities. Overload carries an exponential
// penalty.

#ifndef STREAMSHARE_COST_COST_MODEL_H_
#define STREAMSHARE_COST_COST_MODEL_H_

#include <vector>

#include "common/status.h"
#include "cost/statistics.h"
#include "properties/properties.h"

namespace streamshare::cost {

/// Tunable factors of the cost model.
struct CostParams {
  /// γ ∈ [0,1]: weight of network traffic vs. peer load.
  double gamma = 0.5;
  /// Base load factors bload(o) per operator kind, in work units per item.
  /// Calibrated (with the default peer capacity) so that, as on the
  /// paper's testbed, bandwidth rather than CPU is the first resource to
  /// saturate under the capacity-limited overload experiment.
  double bload_selection = 0.25;
  double bload_projection = 0.2;
  double bload_aggregation = 0.4;
  double bload_window_combine = 0.15;
  double bload_restructure = 0.3;
  double bload_transport = 0.05;
  double bload_user_defined = 0.5;
  /// Default selectivity of a variable-vs-variable atomic predicate, for
  /// which the uniform-range model has no estimate.
  double var_var_selectivity = 0.5;
  /// Serialized size in bytes of one window-aggregate stream item (the
  /// internal <wagg> representation carrying seq + sum + count or value).
  double aggregate_item_size = 64.0;
  /// Weight of the end-to-end delivery latency (milliseconds, from the
  /// original data source through the reused stream chain to the query's
  /// super-peer) in the plan cost. 0 (the default) reproduces the paper's
  /// cost function; a positive weight adds the latency term the paper
  /// mentions as an easy extension (§3.2).
  double latency_weight = 0.0;
};

/// size(p) and freq(p) of a derived stream.
struct StreamEstimate {
  double item_size_bytes = 0.0;
  double frequency_hz = 0.0;

  /// Data rate in kbit/s.
  double RateKbps() const { return item_size_bytes * frequency_hz * 8.0 / 1000.0; }
};

/// Estimates derived-stream characteristics from properties + original
/// stream statistics.
class CostModel {
 public:
  CostModel(const StatisticsRegistry* statistics, CostParams params)
      : statistics_(statistics), params_(params) {}

  const CostParams& params() const { return params_; }

  /// Estimated selectivity of a selection, under uniform per-element value
  /// distributions. Derives per-variable bounds from the predicate graph's
  /// tightest constant bounds; variable-vs-variable constraints contribute
  /// params().var_var_selectivity each.
  double SelectionSelectivity(const predicate::PredicateGraph& graph,
                              const StreamStatistics& stats) const;

  /// size(p) and freq(p) for one transformed input stream. Fails if the
  /// referenced original stream has no registered statistics.
  Result<StreamEstimate> EstimateStream(
      const properties::InputStreamProperties& props) const;

  /// Selectivity of `graph` against the statistics of `stream_name`.
  Result<double> SelectivityFor(std::string_view stream_name,
                                const predicate::PredicateGraph& graph) const;

  /// Average number of input items consumed per window update (the divisor
  /// turning item frequency into window-update frequency): µ for item-based
  /// windows, µ / avg-increment(reference) for time-based ones.
  Result<double> WindowUpdateDivisor(
      std::string_view stream_name,
      const properties::WindowSpec& window) const;

  /// load(o, v, Po): work units per second operator `op` adds on a peer
  /// with performance index `pindex` when fed `input_frequency_hz`.
  double OperatorLoad(const properties::Operator& op, double pindex,
                      double input_frequency_hz) const;

  /// Base load factor for an operator kind.
  double BaseLoad(const properties::Operator& op) const;

 private:
  const StatisticsRegistry* statistics_;
  CostParams params_;
};

/// One affected resource (connection or peer) in a candidate plan.
struct ResourceUsage {
  /// u: relative usage the plan adds (fraction of total capacity).
  double added = 0.0;
  /// a: relative capacity still available before the plan.
  double available = 1.0;
};

/// The cost function C(P).
double PlanCost(const std::vector<ResourceUsage>& connections,
                const std::vector<ResourceUsage>& peers, double gamma);

}  // namespace streamshare::cost

#endif  // STREAMSHARE_COST_COST_MODEL_H_
