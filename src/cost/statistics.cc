#include "cost/statistics.h"

#include <algorithm>
#include <cmath>

namespace streamshare::cost {

double ValueHistogram::MassIn(double lo, double hi) const {
  if (mass.empty() || hi <= lo || max <= min) return 0.0;
  double width = (max - min) / static_cast<double>(mass.size());
  double total = 0.0;
  for (size_t b = 0; b < mass.size(); ++b) {
    double bucket_lo = min + width * static_cast<double>(b);
    double bucket_hi = bucket_lo + width;
    double overlap =
        std::min(hi, bucket_hi) - std::max(lo, bucket_lo);
    if (overlap > 0.0) {
      total += mass[b] * overlap / width;
    }
  }
  return std::clamp(total, 0.0, 1.0);
}

std::optional<ValueRange> StreamStatistics::Range(
    const xml::Path& path) const {
  auto it = ranges_.find(path);
  if (it == ranges_.end()) return std::nullopt;
  return it->second;
}

void StreamStatistics::SetHistogram(const xml::Path& path,
                                    ValueHistogram histogram) {
  ranges_[path] = ValueRange{histogram.min, histogram.max};
  histograms_[path] = std::move(histogram);
}

const ValueHistogram* StreamStatistics::Histogram(
    const xml::Path& path) const {
  auto it = histograms_.find(path);
  if (it == histograms_.end()) return nullptr;
  return &it->second;
}

std::optional<double> StreamStatistics::AvgIncrement(
    const xml::Path& path) const {
  auto it = avg_increments_.find(path);
  if (it == avg_increments_.end()) return std::nullopt;
  return it->second;
}

void StatisticsRegistry::Register(std::string stream_name,
                                  StreamStatistics stats) {
  stats_.insert_or_assign(std::move(stream_name), std::move(stats));
}

const StreamStatistics* StatisticsRegistry::Find(
    std::string_view stream_name) const {
  auto it = stats_.find(stream_name);
  if (it == stats_.end()) return nullptr;
  return &it->second;
}

}  // namespace streamshare::cost
