// Statistics collection from observed stream items. The paper obtains
// cost-function inputs — element occurrences and sizes, item frequencies,
// selectivity-relevant value ranges, and reference-element increments —
// "from statistics and selectivity estimations" (§3.2). This collector
// derives all of them from a sample of real items, so a deployment can
// bootstrap its cost model without hand-declared numbers.

#ifndef STREAMSHARE_COST_COLLECTOR_H_
#define STREAMSHARE_COST_COLLECTOR_H_

#include <map>
#include <optional>
#include <set>
#include <string>

#include "common/decimal.h"
#include "cost/statistics.h"
#include "xml/path.h"
#include "xml/xml_node.h"

namespace streamshare::cost {

class StatisticsCollector {
 public:
  /// `item_name` is the expected item element (e.g. "photon"); items with
  /// other names are rejected by Observe.
  StatisticsCollector(std::string stream_name, std::string item_name)
      : stream_name_(std::move(stream_name)),
        item_name_(std::move(item_name)) {}

  const std::string& stream_name() const { return stream_name_; }
  size_t observed() const { return observed_; }

  /// Accumulates one item into the statistics.
  Status Observe(const xml::XmlNode& item);

  /// Builds the statistics: a schema annotated with per-element average
  /// occurrence and text size, value ranges for numeric leaves, and
  /// average increments for leaves observed to be monotonically
  /// non-decreasing across items (candidate window reference elements).
  /// `duration_s` yields the item frequency. Requires ≥ 1 observed item.
  Result<StreamStatistics> Build(double duration_s) const;

 private:
  struct PathStats {
    uint64_t count = 0;
    uint64_t text_bytes = 0;
    bool has_children = false;
    /// Numeric profile; disabled on the first non-numeric text.
    bool numeric = true;
    std::optional<Decimal> min;
    std::optional<Decimal> max;
    /// Monotonicity across items (first occurrence per item).
    bool monotone = true;
    std::optional<Decimal> last;
    double increment_sum = 0.0;
    uint64_t increment_count = 0;
    /// Bounded value sample feeding the histogram (the bucket boundaries
    /// are only known once the full range is).
    std::vector<double> sample;
  };

  /// Histogram resolution and sample bound.
  static constexpr size_t kHistogramBuckets = 48;
  static constexpr size_t kMaxSample = 8192;

  void ObserveNode(const xml::XmlNode& node,
                   std::vector<std::string>* prefix,
                   std::set<xml::Path>* seen_this_item);

  std::string stream_name_;
  std::string item_name_;
  size_t observed_ = 0;
  std::map<xml::Path, PathStats> paths_;
};

}  // namespace streamshare::cost

#endif  // STREAMSHARE_COST_COLLECTOR_H_
