#include "cost/collector.h"

#include <memory>

#include "common/string_util.h"

namespace streamshare::cost {

Status StatisticsCollector::Observe(const xml::XmlNode& item) {
  if (item.name() != item_name_) {
    return Status::InvalidArgument("expected <" + item_name_ +
                                   "> items, got <" + item.name() + ">");
  }
  ++observed_;
  std::vector<std::string> prefix;
  std::set<xml::Path> seen_this_item;
  for (const auto& child : item.children()) {
    prefix.push_back(child->name());
    ObserveNode(*child, &prefix, &seen_this_item);
    prefix.pop_back();
  }
  return Status::Ok();
}

void StatisticsCollector::ObserveNode(const xml::XmlNode& node,
                                      std::vector<std::string>* prefix,
                                      std::set<xml::Path>* seen_this_item) {
  xml::Path path(*prefix);
  PathStats& stats = paths_[path];
  ++stats.count;
  stats.text_bytes += node.text().size();
  if (!node.children().empty()) stats.has_children = true;

  // The monotonicity profile uses one value per item (the first
  // occurrence of the path); occurrence counting covers all of them.
  bool first_in_item = seen_this_item->insert(path).second;

  if (stats.numeric && node.children().empty()) {
    Result<Decimal> value = Decimal::Parse(Trim(node.text()));
    if (!value.ok()) {
      stats.numeric = false;
      stats.monotone = false;
    } else {
      if (!stats.min.has_value() || *value < *stats.min) {
        stats.min = *value;
      }
      if (!stats.max.has_value() || *value > *stats.max) {
        stats.max = *value;
      }
      if (stats.sample.size() < kMaxSample) {
        stats.sample.push_back(value->ToDouble());
      }
      if (first_in_item) {
        if (stats.last.has_value()) {
          if (*value < *stats.last) {
            stats.monotone = false;
          } else {
            stats.increment_sum += (*value - *stats.last).ToDouble();
            ++stats.increment_count;
          }
        }
        stats.last = *value;
      }
    }
  } else if (!node.children().empty()) {
    stats.numeric = false;
    stats.monotone = false;
  }

  for (const auto& child : node.children()) {
    prefix->push_back(child->name());
    ObserveNode(*child, prefix, seen_this_item);
    prefix->pop_back();
  }
}

Result<StreamStatistics> StatisticsCollector::Build(
    double duration_s) const {
  if (observed_ == 0) {
    return Status::InvalidArgument("no items observed");
  }
  if (duration_s <= 0.0) {
    return Status::InvalidArgument("duration must be positive");
  }

  auto schema =
      std::make_shared<xml::StreamSchema>(stream_name_, item_name_);
  // Paths iterate in lexicographic order, so parents precede children;
  // resolve the parent as we insert.
  for (const auto& [path, stats] : paths_) {
    xml::Path parent_path(std::vector<std::string>(
        path.steps().begin(), path.steps().end() - 1));
    // Occurrence relative to the parent element.
    double parent_count = static_cast<double>(observed_);
    if (!parent_path.empty()) {
      auto it = paths_.find(parent_path);
      if (it != paths_.end()) {
        parent_count = static_cast<double>(it->second.count);
      }
    }
    const xml::SchemaElement* parent_const = schema->Resolve(parent_path);
    if (parent_const == nullptr) {
      return Status::Internal("schema parent missing for path '" +
                              path.ToString() + "'");
    }
    // Resolve() hands out const pointers; the schema object is ours.
    auto* parent = const_cast<xml::SchemaElement*>(parent_const);
    double occurrence =
        static_cast<double>(stats.count) / std::max(1.0, parent_count);
    double text_size = static_cast<double>(stats.text_bytes) /
                       static_cast<double>(stats.count);
    parent->AddChild(path.steps().back(), occurrence, text_size);
  }

  StreamStatistics out(std::move(schema),
                       static_cast<double>(observed_) / duration_s);
  for (const auto& [path, stats] : paths_) {
    if (!stats.numeric || stats.has_children || !stats.min.has_value()) {
      continue;
    }
    double lo = stats.min->ToDouble();
    double hi = stats.max->ToDouble();
    out.SetRange(path, {lo, hi});
    // A histogram over the sample captures skew (e.g. the bright sky
    // regions) that a bare range cannot.
    if (hi > lo && stats.sample.size() >= 2 * kHistogramBuckets) {
      ValueHistogram histogram;
      histogram.min = lo;
      histogram.max = hi;
      histogram.mass.assign(kHistogramBuckets, 0.0);
      double width = (hi - lo) / static_cast<double>(kHistogramBuckets);
      for (double value : stats.sample) {
        size_t bucket = std::min(
            kHistogramBuckets - 1,
            static_cast<size_t>((value - lo) / width));
        histogram.mass[bucket] += 1.0;
      }
      for (double& bucket_mass : histogram.mass) {
        bucket_mass /= static_cast<double>(stats.sample.size());
      }
      out.SetHistogram(path, std::move(histogram));
    }
    if (stats.monotone && stats.increment_count > 0) {
      out.SetAvgIncrement(path,
                          stats.increment_sum /
                              static_cast<double>(stats.increment_count));
    }
  }
  return out;
}

}  // namespace streamshare::cost
