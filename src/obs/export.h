// Snapshot exporters: render a folded MetricsRegistry snapshot as JSON
// (one object per metric under "metrics", machine-validated in CI) or as
// CSV (name,type,value,count,sum — histograms additionally get one row
// per bucket). The string builders are exposed for tests; the Write*
// variants add file plumbing.

#ifndef STREAMSHARE_OBS_EXPORT_H_
#define STREAMSHARE_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics_registry.h"

namespace streamshare::obs {

std::string MetricsToJson(const std::vector<MetricSnapshot>& snapshot);
std::string MetricsToCsv(const std::vector<MetricSnapshot>& snapshot);

Status WriteMetricsJson(const std::vector<MetricSnapshot>& snapshot,
                        const std::string& path);
Status WriteMetricsCsv(const std::vector<MetricSnapshot>& snapshot,
                       const std::string& path);

/// Dispatches on the file extension: ".csv" writes CSV, anything else
/// JSON.
Status WriteMetricsFile(const std::vector<MetricSnapshot>& snapshot,
                        const std::string& path);

}  // namespace streamshare::obs

#endif  // STREAMSHARE_OBS_EXPORT_H_
