// Kill switches for the observability layer (metrics registry, trace
// recorder, event log). Two levels:
//
//   * compile time — building with -DSTREAMSHARE_OBS_ENABLED=0 (the CMake
//     option STREAMSHARE_OBS=OFF) turns obs::Enabled() into a constexpr
//     false, so every `if (obs::Enabled()) { ... }` instrumentation block
//     in the engine and planner is dead code;
//   * runtime — obs::SetEnabled(false) gates the same blocks behind one
//     relaxed atomic load. Tracing has its own additional opt-in switch
//     (TraceRecorder::SetEnabled), since span recording is the only part
//     whose always-on cost would be noticeable.
//
// The obs classes themselves always compile; only the instrumentation
// call sites vanish. Default: counters on, tracing off.

#ifndef STREAMSHARE_OBS_OBS_H_
#define STREAMSHARE_OBS_OBS_H_

#include <atomic>

#ifndef STREAMSHARE_OBS_ENABLED
#define STREAMSHARE_OBS_ENABLED 1
#endif

namespace streamshare::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

#if STREAMSHARE_OBS_ENABLED
/// Master gate for hot-path instrumentation. One relaxed load.
inline bool Enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
#else
constexpr bool Enabled() { return false; }
#endif

inline void SetEnabled(bool enabled) {
  detail::g_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace streamshare::obs

#endif  // STREAMSHARE_OBS_OBS_H_
