#include "obs/event_log.h"

#include <cstdio>

#include "common/status.h"

namespace streamshare::obs {

std::string_view SeverityToString(Severity severity) {
  switch (severity) {
    case Severity::kDebug:
      return "debug";
    case Severity::kInfo:
      return "info";
    case Severity::kWarn:
      return "warn";
    case Severity::kError:
      return "error";
  }
  return "?";
}

LogField F(std::string key, std::string value) {
  return LogField{std::move(key), std::move(value)};
}
LogField F(std::string key, std::string_view value) {
  return LogField{std::move(key), std::string(value)};
}
LogField F(std::string key, const char* value) {
  return LogField{std::move(key), std::string(value)};
}
LogField F(std::string key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return LogField{std::move(key), buf};
}
LogField F(std::string key, bool value) {
  return LogField{std::move(key), value ? "true" : "false"};
}

std::string FormatLogEvent(const LogEvent& event) {
  char head[48];
  std::snprintf(head, sizeof(head), "%10.6f [%s] ",
                static_cast<double>(event.ts_us) / 1e6,
                std::string(SeverityToString(event.severity)).c_str());
  // The component prefixes the message exactly like a Status context
  // chain prefixes an error, so log lines and status strings read alike.
  std::string out =
      std::string(head) + JoinContext(event.component, event.message);
  for (const LogField& field : event.fields) {
    out += " " + field.key + "=" + field.value;
  }
  return out;
}

void StderrSink::Consume(const LogEvent& event) {
  std::string line = FormatLogEvent(event);
  std::fprintf(stderr, "%s\n", line.c_str());
}

void MemorySink::Consume(const LogEvent& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(event);
}

std::vector<LogEvent> MemorySink::TakeEvents() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogEvent> out = std::move(events_);
  events_.clear();
  return out;
}

size_t MemorySink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

EventLog::EventLog() : epoch_(std::chrono::steady_clock::now()) {}

EventLog& EventLog::Default() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::SetSink(std::shared_ptr<EventSink> sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = std::move(sink);
  has_sink_.store(sink_ != nullptr, std::memory_order_relaxed);
}

void EventLog::SetMinSeverity(Severity severity) {
  min_severity_.store(static_cast<int>(severity),
                      std::memory_order_relaxed);
}

void EventLog::Log(Severity severity, std::string_view component,
                   std::string_view message, std::vector<LogField> fields) {
  if (!ShouldLog(severity)) return;
  LogEvent event;
  event.severity = severity;
  event.component.assign(component);
  event.message.assign(message);
  event.fields = std::move(fields);
  event.ts_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  std::shared_ptr<EventSink> sink;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sink = sink_;
  }
  if (sink != nullptr) sink->Consume(event);
}

}  // namespace streamshare::obs
