// Lock-cheap metrics: counters, gauges, and fixed-bucket histograms,
// looked up by name in a MetricsRegistry. Lookup takes a mutex (call
// sites cache the returned pointer); updates touch only per-shard
// relaxed atomics. Every metric is split into kMetricShards cache-line-
// aligned shards indexed by a thread-local shard id — the parallel
// executor pins each worker thread to its worker index (ScopedShard), so
// worker threads never contend on a line. Reading a metric folds the
// shards; the fold is a plain sum, so shard merge order cannot matter
// (tested in test_obs_metrics).

#ifndef STREAMSHARE_OBS_METRICS_REGISTRY_H_
#define STREAMSHARE_OBS_METRICS_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace streamshare::obs {

inline constexpr size_t kMetricShards = 16;

/// Shard id of the calling thread. Threads get round-robin ids on first
/// use; ScopedShard overrides the id for a scope (worker pinning).
size_t CurrentShard();

/// Pins the calling thread to `shard % kMetricShards` for its lifetime,
/// restoring the previous id on destruction.
class ScopedShard {
 public:
  explicit ScopedShard(size_t shard);
  ~ScopedShard();
  ScopedShard(const ScopedShard&) = delete;
  ScopedShard& operator=(const ScopedShard&) = delete;

 private:
  size_t previous_;
};

/// Monotonically increasing sum of uint64 increments.
class Counter {
 public:
  void Add(uint64_t delta) { AddToShard(CurrentShard(), delta); }
  void AddToShard(size_t shard, uint64_t delta) {
    shards_[shard % kMetricShards].value.fetch_add(
        delta, std::memory_order_relaxed);
  }
  /// Folded value (sum over shards).
  uint64_t Value() const;
  uint64_t ShardValue(size_t shard) const {
    return shards_[shard % kMetricShards].value.load(
        std::memory_order_relaxed);
  }
  void Reset();

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Last-write-wins floating point value (utilization, queue depth, ...).
/// Gauges are not sharded: Set is a plain relaxed store.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. `upper_bounds` are the inclusive upper edges
/// of the finite buckets, strictly increasing; one implicit overflow
/// bucket catches everything above the last edge. Observation count and
/// value sum ride along for mean computation.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void Observe(double value) { ObserveToShard(CurrentShard(), value); }
  void ObserveToShard(size_t shard, double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Number of buckets including the overflow bucket.
  size_t bucket_count() const { return bounds_.size() + 1; }
  /// Index of the bucket a value falls into: smallest i with
  /// value <= bounds()[i], or bounds().size() for overflow.
  size_t BucketFor(double value) const;

  /// Folded per-bucket count.
  uint64_t BucketValue(size_t bucket) const;
  uint64_t ShardBucketValue(size_t shard, size_t bucket) const;
  uint64_t Count() const;
  double Sum() const;
  /// Largest value ever observed (0 before any observation; meaningful
  /// for the non-negative quantities this registry records).
  double Max() const;
  void Reset();

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside the
  /// bucket the rank falls into. The first bucket interpolates from 0,
  /// the overflow bucket returns the tracked max (or the last finite
  /// bound when the max is not ahead of it); an empty histogram reports
  /// 0. See QuantileFromBuckets for the exact rules.
  double Quantile(double q) const;

  /// The interpolation shared by Quantile and snapshot-side consumers
  /// (exporters work from folded bucket vectors, not live histograms).
  static double QuantileFromBuckets(const std::vector<double>& bounds,
                                    const std::vector<uint64_t>& buckets,
                                    double q, double max_value);

  /// Folds externally collected counts into the calling thread's shard —
  /// the cross-process merge path: a fork-per-worker transport child
  /// snapshots its histograms into the report pipe and the parent folds
  /// them here. `buckets` must have bucket_count() entries.
  void MergeCounts(const std::vector<uint64_t>& buckets, uint64_t count,
                   double sum, double max_value);

  /// Bounds {first, first*factor, ...} of length `count`.
  static std::vector<double> ExponentialBounds(double first, double factor,
                                               size_t count);
  /// Bounds {first, first+step, ...} of length `count`.
  static std::vector<double> LinearBounds(double first, double step,
                                          size_t count);

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> max{0.0};
  };
  static void RaiseMax(std::atomic<double>* slot, double value);
  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// One exported series, fully folded.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  /// Counter value (exact integers up to 2^53) or gauge value.
  double value = 0.0;
  /// Histogram-only fields.
  uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;

  /// Histogram quantile from the folded buckets (0 for other kinds).
  double Quantile(double q) const;
};

/// Owns named metrics; pointers returned by Get* stay valid for the
/// registry's lifetime. Re-Getting a name returns the same metric (a
/// histogram's bounds are fixed by the first Get).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default instance used by the built-in instrumentation.
  static MetricsRegistry& Default();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> upper_bounds);
  /// The named histogram if it exists, else null (no creation).
  Histogram* FindHistogram(std::string_view name) const;

  /// All metrics, folded, sorted by name.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Zeroes counters and histograms, drops gauges to 0. Metric identities
  /// (pointers) survive.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>>
      histograms_;
};

}  // namespace streamshare::obs

#endif  // STREAMSHARE_OBS_METRICS_REGISTRY_H_
