// Structured event log: severity + component + message + key=value
// fields, delivered to a pluggable sink. The default sink is null (the
// library stays silent, as before); tools install a StderrSink and tests
// a MemorySink. ShouldLog is one relaxed load + compare, so a silent log
// costs nothing on the paths that consult it first.

#ifndef STREAMSHARE_OBS_EVENT_LOG_H_
#define STREAMSHARE_OBS_EVENT_LOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/obs.h"

namespace streamshare::obs {

enum class Severity { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

std::string_view SeverityToString(Severity severity);

/// One structured key=value field.
struct LogField {
  std::string key;
  std::string value;
};

LogField F(std::string key, std::string value);
LogField F(std::string key, std::string_view value);
LogField F(std::string key, const char* value);
LogField F(std::string key, double value);
LogField F(std::string key, bool value);
template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
LogField F(std::string key, T value) {
  return LogField{std::move(key), std::to_string(value)};
}

struct LogEvent {
  Severity severity = Severity::kInfo;
  std::string component;
  std::string message;
  std::vector<LogField> fields;
  /// Microseconds since the log's creation.
  uint64_t ts_us = 0;
};

/// "ts [severity] component: message key=value ..." — the canonical
/// single-line rendering, shared by StderrSink and tests.
std::string FormatLogEvent(const LogEvent& event);

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void Consume(const LogEvent& event) = 0;
};

/// Writes FormatLogEvent lines to stderr.
class StderrSink : public EventSink {
 public:
  void Consume(const LogEvent& event) override;
};

/// Retains events in memory (tests, --explain style postmortems).
class MemorySink : public EventSink {
 public:
  void Consume(const LogEvent& event) override;
  std::vector<LogEvent> TakeEvents();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::vector<LogEvent> events_;
};

class EventLog {
 public:
  EventLog();
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Process-wide default instance used by the built-in instrumentation.
  static EventLog& Default();

  /// nullptr silences the log.
  void SetSink(std::shared_ptr<EventSink> sink);
  void SetMinSeverity(Severity severity);

  /// Cheap pre-check: a sink is installed and `severity` clears the bar.
  bool ShouldLog(Severity severity) const {
    if (!STREAMSHARE_OBS_ENABLED) return false;
    return has_sink_.load(std::memory_order_relaxed) &&
           static_cast<int>(severity) >=
               min_severity_.load(std::memory_order_relaxed);
  }

  void Log(Severity severity, std::string_view component,
           std::string_view message, std::vector<LogField> fields = {});

 private:
  std::atomic<bool> has_sink_{false};
  std::atomic<int> min_severity_{static_cast<int>(Severity::kInfo)};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::shared_ptr<EventSink> sink_;
};

}  // namespace streamshare::obs

#endif  // STREAMSHARE_OBS_EVENT_LOG_H_
