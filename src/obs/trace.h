// Chrome trace_event recorder. Events accumulate in per-thread buffers
// (one uncontended mutex each; acquired once per event) and serialize to
// the JSON Array Format that chrome://tracing and Perfetto load directly:
// one process, one track per recorded thread, "X" complete events with
// name/cat/ts/dur and optional args, plus "M" thread_name metadata.
//
// Recording is off until SetEnabled(true); every entry point checks one
// relaxed atomic first, so a disabled recorder costs a load. Timestamps
// are microseconds on the steady clock, relative to the recorder's
// creation (or last Clear), which keeps them Perfetto-friendly and
// deterministic enough to diff.

#ifndef STREAMSHARE_OBS_TRACE_H_
#define STREAMSHARE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/obs.h"

namespace streamshare::obs {

/// One span/event argument; rendered as a JSON number or string.
struct TraceArg {
  std::string key;
  std::string str;
  double num = 0.0;
  bool is_num = false;

  static TraceArg Num(std::string key, double value) {
    TraceArg arg;
    arg.key = std::move(key);
    arg.num = value;
    arg.is_num = true;
    return arg;
  }
  static TraceArg Str(std::string key, std::string value) {
    TraceArg arg;
    arg.key = std::move(key);
    arg.str = std::move(value);
    return arg;
  }
};

class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Process-wide default instance used by the built-in instrumentation.
  static TraceRecorder& Default();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled && STREAMSHARE_OBS_ENABLED,
                   std::memory_order_relaxed);
  }
  bool enabled() const {
#if STREAMSHARE_OBS_ENABLED
    return enabled_.load(std::memory_order_relaxed);
#else
    return false;
#endif
  }

  /// Microseconds since the recorder's epoch (creation or last Clear).
  uint64_t NowMicros() const;

  /// Names the calling thread's track ("worker-3 [SP5,SP6]").
  void SetThreadName(std::string name);

  /// A completed span ("ph":"X") on the calling thread's track.
  void RecordComplete(std::string_view name, std::string_view category,
                      uint64_t start_us, uint64_t duration_us,
                      std::vector<TraceArg> args = {});
  /// A point event ("ph":"i", thread scope) on the calling thread's track.
  void RecordInstant(std::string_view name, std::string_view category,
                     std::vector<TraceArg> args = {});

  /// Drops all recorded events and resets the epoch. Not safe to call
  /// concurrently with recording threads.
  void Clear();

  size_t event_count() const;

  /// {"traceEvents":[...]} — loadable by chrome://tracing / Perfetto.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    uint64_t ts_us = 0;
    uint64_t dur_us = 0;
    char phase = 'X';
    std::vector<TraceArg> args;
  };
  struct ThreadBuffer {
    std::mutex mu;
    uint64_t tid = 0;
    std::string thread_name;
    std::vector<Event> events;
  };

  ThreadBuffer* BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  /// Identity of this recorder across Clear() calls; bumping it
  /// invalidates the per-thread buffer caches.
  uint64_t generation_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span recorded on destruction. Resolves the enabled check once in
/// the constructor; a span on a disabled recorder is inert, including
/// AddArg.
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, std::string_view name,
            std::string_view category)
      : recorder_(recorder != nullptr && recorder->enabled() ? recorder
                                                             : nullptr) {
    if (recorder_ != nullptr) {
      name_.assign(name);
      category_.assign(category);
      start_us_ = recorder_->NowMicros();
    }
  }
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->RecordComplete(name_, category_, start_us_,
                                recorder_->NowMicros() - start_us_,
                                std::move(args_));
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return recorder_ != nullptr; }
  void AddArg(TraceArg arg) {
    if (recorder_ != nullptr) args_.push_back(std::move(arg));
  }

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::string category_;
  uint64_t start_us_ = 0;
  std::vector<TraceArg> args_;
};

}  // namespace streamshare::obs

#endif  // STREAMSHARE_OBS_TRACE_H_
