#include "obs/metrics_registry.h"

#include <algorithm>
#include <cassert>

namespace streamshare::obs {

namespace {

std::atomic<size_t> g_next_shard{0};

size_t* ThreadShardSlot() {
  thread_local size_t shard = g_next_shard.fetch_add(
                                  1, std::memory_order_relaxed) %
                              kMetricShards;
  return &shard;
}

}  // namespace

size_t CurrentShard() { return *ThreadShardSlot(); }

ScopedShard::ScopedShard(size_t shard) {
  size_t* slot = ThreadShardSlot();
  previous_ = *slot;
  *slot = shard % kMetricShards;
}

ScopedShard::~ScopedShard() { *ThreadShardSlot() = previous_; }

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (Shard& shard : shards_) {
    shard.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()) &&
         "histogram bounds must be sorted");
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<uint64_t>[]>(bucket_count());
    for (size_t i = 0; i < bucket_count(); ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

size_t Histogram::BucketFor(double value) const {
  // Smallest bound >= value; ties land in the bucket whose upper edge the
  // value equals (inclusive upper edges).
  return static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
}

void Histogram::RaiseMax(std::atomic<double>* slot, double value) {
  double seen = slot->load(std::memory_order_relaxed);
  while (value > seen &&
         !slot->compare_exchange_weak(seen, value,
                                      std::memory_order_relaxed)) {
  }
}

void Histogram::ObserveToShard(size_t shard_index, double value) {
  Shard& shard = shards_[shard_index % kMetricShards];
  shard.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  RaiseMax(&shard.max, value);
}

uint64_t Histogram::BucketValue(size_t bucket) const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.buckets[bucket].load(std::memory_order_relaxed);
  }
  return total;
}

uint64_t Histogram::ShardBucketValue(size_t shard, size_t bucket) const {
  return shards_[shard % kMetricShards].buckets[bucket].load(
      std::memory_order_relaxed);
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::Max() const {
  double max = 0.0;
  for (const Shard& shard : shards_) {
    max = std::max(max, shard.max.load(std::memory_order_relaxed));
  }
  return max;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (size_t i = 0; i < bucket_count(); ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0.0, std::memory_order_relaxed);
    shard.max.store(0.0, std::memory_order_relaxed);
  }
}

double Histogram::QuantileFromBuckets(const std::vector<double>& bounds,
                                      const std::vector<uint64_t>& buckets,
                                      double q, double max_value) {
  uint64_t total = 0;
  for (uint64_t count : buckets) total += count;
  if (total == 0 || buckets.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // The observation whose rank is ceil(q * total) (1-based); q = 0 asks
  // for the first one.
  double rank = q * static_cast<double>(total);
  if (rank < 1.0) rank = 1.0;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    uint64_t before = cumulative;
    cumulative += buckets[b];
    if (static_cast<double>(cumulative) < rank) continue;
    if (b >= bounds.size()) {
      // Overflow bucket: no finite upper edge — report the tracked max,
      // falling back to the last finite bound when nothing exceeded it
      // (e.g. counts merged without a max).
      double last = bounds.empty() ? 0.0 : bounds.back();
      return std::max(max_value, last);
    }
    double lower = b == 0 ? 0.0 : bounds[b - 1];
    double upper = bounds[b];
    double within =
        (rank - static_cast<double>(before)) /
        static_cast<double>(buckets[b]);
    double value = lower + (upper - lower) * within;
    // Never report beyond what was actually observed.
    if (max_value > 0.0 && value > max_value) value = max_value;
    return value;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

double Histogram::Quantile(double q) const {
  std::vector<uint64_t> buckets;
  buckets.reserve(bucket_count());
  for (size_t i = 0; i < bucket_count(); ++i) {
    buckets.push_back(BucketValue(i));
  }
  return QuantileFromBuckets(bounds_, buckets, q, Max());
}

void Histogram::MergeCounts(const std::vector<uint64_t>& buckets,
                            uint64_t count, double sum, double max_value) {
  Shard& shard = shards_[CurrentShard() % kMetricShards];
  size_t n = std::min(buckets.size(), bucket_count());
  for (size_t i = 0; i < n; ++i) {
    shard.buckets[i].fetch_add(buckets[i], std::memory_order_relaxed);
  }
  shard.count.fetch_add(count, std::memory_order_relaxed);
  shard.sum.fetch_add(sum, std::memory_order_relaxed);
  RaiseMax(&shard.max, max_value);
}

std::vector<double> Histogram::ExponentialBounds(double first,
                                                 double factor,
                                                 size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = first;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::LinearBounds(double first, double step,
                                            size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(first + step * static_cast<double>(i));
  }
  return bounds;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snapshot;
    snapshot.name = name;
    snapshot.kind = MetricSnapshot::Kind::kCounter;
    snapshot.value = static_cast<double>(counter->Value());
    out.push_back(std::move(snapshot));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot snapshot;
    snapshot.name = name;
    snapshot.kind = MetricSnapshot::Kind::kGauge;
    snapshot.value = gauge->Value();
    out.push_back(std::move(snapshot));
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSnapshot snapshot;
    snapshot.name = name;
    snapshot.kind = MetricSnapshot::Kind::kHistogram;
    snapshot.count = histogram->Count();
    snapshot.sum = histogram->Sum();
    snapshot.max = histogram->Max();
    snapshot.bounds = histogram->bounds();
    snapshot.buckets.reserve(histogram->bucket_count());
    for (size_t i = 0; i < histogram->bucket_count(); ++i) {
      snapshot.buckets.push_back(histogram->BucketValue(i));
    }
    out.push_back(std::move(snapshot));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

double MetricSnapshot::Quantile(double q) const {
  if (kind != Kind::kHistogram) return 0.0;
  return Histogram::QuantileFromBuckets(bounds, buckets, q, max);
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Set(0.0);
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace streamshare::obs
