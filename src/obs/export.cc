#include "obs/export.h"

#include <cstdio>

namespace streamshare::obs {

namespace {

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Number(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

std::string_view KindName(MetricSnapshot::Kind kind) {
  switch (kind) {
    case MetricSnapshot::Kind::kCounter:
      return "counter";
    case MetricSnapshot::Kind::kGauge:
      return "gauge";
    case MetricSnapshot::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

Status WriteStringToFile(const std::string& content,
                         const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open metrics file '" + path +
                                   "' for writing");
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), file);
  int close_result = std::fclose(file);
  if (written != content.size() || close_result != 0) {
    return Status::Internal("short write to metrics file '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace

std::string MetricsToJson(const std::vector<MetricSnapshot>& snapshot) {
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < snapshot.size(); ++i) {
    const MetricSnapshot& metric = snapshot[i];
    if (i > 0) out += ",";
    out += "\n  {\"name\":\"" + JsonEscape(metric.name) + "\",\"type\":\"" +
           std::string(KindName(metric.kind)) + "\"";
    if (metric.kind == MetricSnapshot::Kind::kHistogram) {
      out += ",\"count\":" + std::to_string(metric.count) +
             ",\"sum\":" + Number(metric.sum) +
             ",\"max\":" + Number(metric.max) +
             ",\"p50\":" + Number(metric.Quantile(0.50)) +
             ",\"p95\":" + Number(metric.Quantile(0.95)) +
             ",\"p99\":" + Number(metric.Quantile(0.99)) + ",\"bounds\":[";
      for (size_t b = 0; b < metric.bounds.size(); ++b) {
        if (b > 0) out += ",";
        out += Number(metric.bounds[b]);
      }
      out += "],\"buckets\":[";
      for (size_t b = 0; b < metric.buckets.size(); ++b) {
        if (b > 0) out += ",";
        out += std::to_string(metric.buckets[b]);
      }
      out += "]";
    } else {
      out += ",\"value\":" + Number(metric.value);
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string MetricsToCsv(const std::vector<MetricSnapshot>& snapshot) {
  // Histograms export losslessly: a summary row carrying count / sum /
  // max and the derived quantiles, then one bucket row per bucket
  // (cumulative-free raw counts; `le=` is the inclusive upper edge), so
  // the full vector a JSON consumer gets survives the CSV too.
  std::string out = "name,type,value,count,sum,max,p50,p95,p99\n";
  for (const MetricSnapshot& metric : snapshot) {
    if (metric.kind == MetricSnapshot::Kind::kHistogram) {
      out += metric.name + ",histogram,," + std::to_string(metric.count) +
             "," + Number(metric.sum) + "," + Number(metric.max) + "," +
             Number(metric.Quantile(0.50)) + "," +
             Number(metric.Quantile(0.95)) + "," +
             Number(metric.Quantile(0.99)) + "\n";
      for (size_t b = 0; b < metric.buckets.size(); ++b) {
        std::string edge = b < metric.bounds.size()
                               ? "le=" + Number(metric.bounds[b])
                               : "le=+inf";
        out += metric.name + "{" + edge + "},bucket," +
               std::to_string(metric.buckets[b]) + ",,,,,,\n";
      }
    } else {
      out += metric.name + "," + std::string(KindName(metric.kind)) + "," +
             Number(metric.value) + ",,,,,,\n";
    }
  }
  return out;
}

Status WriteMetricsJson(const std::vector<MetricSnapshot>& snapshot,
                        const std::string& path) {
  return WriteStringToFile(MetricsToJson(snapshot), path);
}

Status WriteMetricsCsv(const std::vector<MetricSnapshot>& snapshot,
                       const std::string& path) {
  return WriteStringToFile(MetricsToCsv(snapshot), path);
}

Status WriteMetricsFile(const std::vector<MetricSnapshot>& snapshot,
                        const std::string& path) {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
    return WriteMetricsCsv(snapshot, path);
  }
  return WriteMetricsJson(snapshot, path);
}

}  // namespace streamshare::obs
