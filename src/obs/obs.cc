#include "obs/obs.h"

namespace streamshare::obs::detail {

std::atomic<bool> g_enabled{true};

}  // namespace streamshare::obs::detail
