#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace streamshare::obs {

namespace {

std::atomic<uint64_t> g_generation{0};

/// Thread-local cache entry mapping a recorder to this thread's buffer.
/// The generation guards against a recorder being destroyed (or Cleared)
/// and another one reusing its address.
struct CacheEntry {
  const void* recorder;
  uint64_t generation;
  void* buffer;
};

thread_local std::vector<CacheEntry> t_buffer_cache;

std::string JsonEscape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendArgs(const std::vector<TraceArg>& args, std::string* out) {
  *out += "\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) *out += ",";
    *out += "\"" + JsonEscape(args[i].key) + "\":";
    if (args[i].is_num) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.12g", args[i].num);
      *out += buf;
    } else {
      *out += "\"" + JsonEscape(args[i].str) + "\"";
    }
  }
  *out += "}";
}

}  // namespace

TraceRecorder::TraceRecorder()
    : epoch_(std::chrono::steady_clock::now()),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed) +
                  1) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::Default() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

uint64_t TraceRecorder::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

TraceRecorder::ThreadBuffer* TraceRecorder::BufferForThisThread() {
  for (const CacheEntry& entry : t_buffer_cache) {
    if (entry.recorder == this && entry.generation == generation_) {
      return static_cast<ThreadBuffer*>(entry.buffer);
    }
  }
  ThreadBuffer* buffer;
  {
    std::lock_guard<std::mutex> lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffer = buffers_.back().get();
    buffer->tid = buffers_.size();
  }
  t_buffer_cache.push_back(CacheEntry{this, generation_, buffer});
  return buffer;
}

void TraceRecorder::SetThreadName(std::string name) {
  if (!enabled()) return;
  ThreadBuffer* buffer = BufferForThisThread();
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->thread_name = std::move(name);
}

void TraceRecorder::RecordComplete(std::string_view name,
                                   std::string_view category,
                                   uint64_t start_us, uint64_t duration_us,
                                   std::vector<TraceArg> args) {
  if (!enabled()) return;
  ThreadBuffer* buffer = BufferForThisThread();
  Event event;
  event.name.assign(name);
  event.category.assign(category);
  event.ts_us = start_us;
  event.dur_us = duration_us;
  event.phase = 'X';
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

void TraceRecorder::RecordInstant(std::string_view name,
                                  std::string_view category,
                                  std::vector<TraceArg> args) {
  if (!enabled()) return;
  ThreadBuffer* buffer = BufferForThisThread();
  Event event;
  event.name.assign(name);
  event.category.assign(category);
  event.ts_us = NowMicros();
  event.phase = 'i';
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.clear();
  epoch_ = std::chrono::steady_clock::now();
  generation_ = g_generation.fetch_add(1, std::memory_order_relaxed) + 1;
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    count += buffer->events.size();
  }
  return count;
}

std::string TraceRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char head[160];
  for (const auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (!buffer->thread_name.empty()) {
      if (!first) out += ",";
      first = false;
      std::snprintf(head, sizeof(head),
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                    "\"tid\":%" PRIu64 ",\"ts\":0,\"args\":{\"name\":\"",
                    buffer->tid);
      out += head;
      out += JsonEscape(buffer->thread_name) + "\"}}";
    }
    for (const Event& event : buffer->events) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"" + JsonEscape(event.name) + "\",\"cat\":\"" +
             JsonEscape(event.category) + "\",";
      if (event.phase == 'X') {
        std::snprintf(head, sizeof(head),
                      "\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu64
                      ",\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 ",",
                      buffer->tid, event.ts_us, event.dur_us);
      } else {
        std::snprintf(head, sizeof(head),
                      "\"ph\":\"%c\",\"s\":\"t\",\"pid\":1,\"tid\":%" PRIu64
                      ",\"ts\":%" PRIu64 ",",
                      event.phase, buffer->tid, event.ts_us);
      }
      out += head;
      AppendArgs(event.args, &out);
      out += "}";
    }
  }
  out += "]}";
  return out;
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::string json = ToJson();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open trace file '" + path +
                                   "' for writing");
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), file);
  int close_result = std::fclose(file);
  if (written != json.size() || close_result != 0) {
    return Status::Internal("short write to trace file '" + path + "'");
  }
  return Status::Ok();
}

}  // namespace streamshare::obs
