// Small string helpers shared across the library.

#ifndef STREAMSHARE_COMMON_STRING_UTIL_H_
#define STREAMSHARE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace streamshare {

/// Splits `text` on `sep`, keeping empty pieces. Split("a//b", '/') yields
/// {"a", "", "b"}; Split("", '/') yields {""}.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True if every character is an ASCII digit (and text is non-empty).
bool IsAllDigits(std::string_view text);

}  // namespace streamshare

#endif  // STREAMSHARE_COMMON_STRING_UTIL_H_
