// Status and Result<T>: exception-free error handling for the StreamShare
// core, following the Arrow/RocksDB idiom. Every fallible operation in the
// library returns a Status (or a Result<T> when it also produces a value);
// exceptions are reserved for programming errors surfaced via assertions.

#ifndef STREAMSHARE_COMMON_STATUS_H_
#define STREAMSHARE_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace streamshare {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kUnsatisfiable,
  kOverload,
  kInternal,
  /// A blocking operation exceeded its deadline (transport send timeout).
  kDeadlineExceeded,
  /// The peer endpoint is gone or was closed (transport channel shutdown).
  kUnavailable,
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// The one way a context string prefixes a message in this codebase:
/// "outer: inner", with empty sides collapsing to the other. Used by
/// Status::WithContext, Status::ToString, and the obs event log, so error
/// strings from the serial and the parallel executor (and log lines that
/// quote them) all chain identically.
std::string JoinContext(std::string_view outer, std::string_view inner);

/// The outcome of a fallible operation: either OK or an error with a code
/// and a human-readable message. Cheap to copy in the OK case (a single
/// pointer), cheap to move always.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not
  /// be kOk; use the default constructor for success.
  Status(StatusCode code, std::string message);

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Unsatisfiable(std::string msg) {
    return Status(StatusCode::kUnsatisfiable, std::move(msg));
  }
  static Status Overload(std::string msg) {
    return Status(StatusCode::kOverload, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// The error message; empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsUnsupported() const { return code() == StatusCode::kUnsupported; }
  bool IsUnsatisfiable() const {
    return code() == StatusCode::kUnsatisfiable;
  }
  bool IsOverload() const { return code() == StatusCode::kOverload; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const {
    return code() == StatusCode::kUnavailable;
  }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

  /// Prepends context to the error message; no-op on OK statuses.
  Status WithContext(std::string_view context) const;

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; shared so copies stay cheap.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or an error Status. Mirrors arrow::Result.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a failed result from a non-OK status. Aborts (in debug
  /// builds) if `status` is OK, since that would discard the value.
  Result(Status status)  // NOLINT(runtime/explicit)
      : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status; Status::Ok() if the result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(repr_);
  }

  /// The contained value. Must only be called when ok().
  const T& value() const& {
    assert(ok() && "Result::value() on error result");
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok() && "Result::value() on error result");
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok() && "Result::value() on error result");
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result is an error.
  T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Status> repr_;
};

}  // namespace streamshare

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define SS_RETURN_IF_ERROR(expr)                              \
  do {                                                        \
    ::streamshare::Status _ss_status = (expr);                \
    if (!_ss_status.ok()) return _ss_status;                  \
  } while (false)

#define SS_CONCAT_IMPL(a, b) a##b
#define SS_CONCAT(a, b) SS_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T> expression); on error returns the status
/// from the enclosing function, otherwise moves the value into `lhs`.
#define SS_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  SS_ASSIGN_OR_RETURN_IMPL(SS_CONCAT(_ss_result_, __LINE__), lhs,  \
                           rexpr)

#define SS_ASSIGN_OR_RETURN_IMPL(result, lhs, rexpr) \
  auto result = (rexpr);                             \
  if (!result.ok()) return result.status();          \
  lhs = std::move(result).value()

#endif  // STREAMSHARE_COMMON_STATUS_H_
