#include "common/decimal.h"

#include <cassert>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <ostream>

namespace streamshare {

Result<Decimal> Decimal::Parse(std::string_view text) {
  if (text.empty()) {
    return Status::ParseError("empty decimal literal");
  }
  size_t pos = 0;
  bool negative = false;
  if (text[pos] == '+' || text[pos] == '-') {
    negative = text[pos] == '-';
    ++pos;
  }
  int64_t unscaled = 0;
  int scale = 0;
  bool seen_digit = false;
  bool seen_dot = false;
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (c == '.') {
      if (seen_dot) {
        return Status::ParseError("multiple decimal points in '" +
                                  std::string(text) + "'");
      }
      seen_dot = true;
      continue;
    }
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::ParseError("invalid character in decimal literal '" +
                                std::string(text) + "'");
    }
    seen_digit = true;
    if (seen_dot) {
      ++scale;
      if (scale > kMaxScale) {
        return Status::ParseError("too many fractional digits in '" +
                                  std::string(text) + "'");
      }
    }
    unscaled = unscaled * 10 + (c - '0');
  }
  if (!seen_digit) {
    return Status::ParseError("no digits in decimal literal '" +
                              std::string(text) + "'");
  }
  if (negative) unscaled = -unscaled;
  return Decimal(unscaled, scale);
}

Decimal Decimal::FromDouble(double value, int scale) {
  assert(scale >= 0 && scale <= kMaxScale);
  double scaled = value * static_cast<double>(Pow10(scale));
  return Decimal(static_cast<int64_t>(std::llround(scaled)), scale);
}

double Decimal::ToDouble() const {
  return static_cast<double>(unscaled_) /
         static_cast<double>(Pow10(scale_));
}

std::string Decimal::ToString() const {
  if (scale_ == 0) return std::to_string(unscaled_);
  int64_t abs = unscaled_ < 0 ? -unscaled_ : unscaled_;
  int64_t p = Pow10(scale_);
  int64_t whole = abs / p;
  int64_t frac = abs % p;
  std::string frac_str = std::to_string(frac);
  frac_str.insert(0, static_cast<size_t>(scale_) - frac_str.size(), '0');
  std::string out;
  if (unscaled_ < 0) out += '-';
  out += std::to_string(whole);
  out += '.';
  out += frac_str;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Decimal& d) {
  return os << d.ToString();
}

}  // namespace streamshare
