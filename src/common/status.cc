#include "common/status.h"

namespace streamshare {

namespace {
const std::string kEmptyString;
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kUnsatisfiable:
      return "unsatisfiable";
    case StatusCode::kOverload:
      return "overload";
    case StatusCode::kInternal:
      return "internal error";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string JoinContext(std::string_view outer, std::string_view inner) {
  if (outer.empty()) return std::string(inner);
  if (inner.empty()) return std::string(outer);
  std::string out;
  out.reserve(outer.size() + 2 + inner.size());
  out.append(outer);
  out.append(": ");
  out.append(inner);
  return out;
}

Status::Status(StatusCode code, std::string message) {
  assert(code != StatusCode::kOk && "use Status::Ok() for success");
  state_ = std::make_shared<const State>(State{code, std::move(message)});
}

const std::string& Status::message() const {
  return ok() ? kEmptyString : state_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  return JoinContext(StatusCodeToString(code()), message());
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  return Status(code(), JoinContext(context, message()));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace streamshare
