// Fixed-point decimal arithmetic. The paper restricts predicate constants to
// integers or decimals with a finite number of decimal places; representing
// them exactly (as a scaled 64-bit integer) keeps predicate-graph
// normalization, satisfiability and implication checks exact, where IEEE
// doubles would introduce rounding artifacts at window and box boundaries.

#ifndef STREAMSHARE_COMMON_DECIMAL_H_
#define STREAMSHARE_COMMON_DECIMAL_H_

#include <algorithm>
#include <cassert>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace streamshare {

/// An exact decimal number `unscaled * 10^-scale` with 0 <= scale <= 15.
///
/// Decimals of different scales compare and combine correctly: operations
/// first rescale both operands to the larger scale. Overflow of the
/// underlying int64 is not expected for the value ranges in this system
/// (celestial coordinates, energies, timestamps) and is guarded by
/// assertions in debug builds.
class Decimal {
 public:
  static constexpr int kMaxScale = 15;

  /// Zero with scale 0.
  Decimal() = default;

  /// Constructs `unscaled * 10^-scale`.
  Decimal(int64_t unscaled, int scale) : unscaled_(unscaled), scale_(scale) {
    assert(scale >= 0 && scale <= kMaxScale);
  }

  /// Constructs an integer value (scale 0).
  static Decimal FromInt(int64_t value) { return Decimal(value, 0); }

  /// Parses "-12", "3.25", ".5", "1." style literals. Rejects exponents,
  /// hex, more than kMaxScale fractional digits, and empty input.
  static Result<Decimal> Parse(std::string_view text);

  /// Converts a double by rounding to `scale` fractional digits.
  static Decimal FromDouble(double value, int scale);

  int64_t unscaled() const { return unscaled_; }
  int scale() const { return scale_; }

  /// The value as a double (inexact for large magnitudes).
  double ToDouble() const;

  /// Canonical text form, e.g. "-3.25", "7". Trailing fractional zeros are
  /// kept (scale is part of the identity of the textual form).
  std::string ToString() const;

  /// Returns an equal value rescaled to `new_scale` >= scale().
  Decimal Rescaled(int new_scale) const {
    assert(new_scale >= scale_ && new_scale <= kMaxScale);
    return Decimal(unscaled_ * Pow10(new_scale - scale_), new_scale);
  }

  /// The smallest positive decimal at this scale (10^-scale). Used to turn
  /// strict inequalities into non-strict ones: v < c  <=>  v <= c - ulp.
  Decimal Ulp() const { return Decimal(1, scale_); }

  Decimal operator-() const { return Decimal(-unscaled_, scale_); }
  Decimal operator+(const Decimal& other) const {
    int s = std::max(scale_, other.scale_);
    return Decimal(Rescaled(s).unscaled_ + other.Rescaled(s).unscaled_, s);
  }
  Decimal operator-(const Decimal& other) const {
    int s = std::max(scale_, other.scale_);
    return Decimal(Rescaled(s).unscaled_ - other.Rescaled(s).unscaled_, s);
  }

  /// Three-way comparison on the represented value (scale-insensitive).
  std::strong_ordering operator<=>(const Decimal& other) const {
    int s = std::max(scale_, other.scale_);
    return Rescaled(s).unscaled_ <=> other.Rescaled(s).unscaled_;
  }
  bool operator==(const Decimal& other) const {
    return (*this <=> other) == std::strong_ordering::equal;
  }

 private:
  static int64_t Pow10(int n) {
    int64_t result = 1;
    while (n-- > 0) result *= 10;
    return result;
  }

  int64_t unscaled_ = 0;
  int scale_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Decimal& d);

}  // namespace streamshare

#endif  // STREAMSHARE_COMMON_DECIMAL_H_
