// streamshare_client — attach to a running streamshare_serve daemon and
// drive it over the CONTROL plane. Commands execute in the order they
// appear on the command line, against one connection:
//
//   streamshare_client --port=N [--host=H] [--name=S] [--timeout-ms=N]
//                      [--reconnect] [--reconnect-max-attempts=N]
//                      [--reconnect-backoff-ms=N]
//                      [--reconnect-max-backoff-ms=N]
//                      [--subscribe=QUERY@VQ]... [--subscribe-file=FILE@VQ]...
//                      [--attach=ID@SEQ]... [--unsubscribe=ID]...
//                      [--feed=N]... [--fail-peer=ID]... [--cut-link=A-B]...
//                      [--stats]... [--detach] [--drain=final|restartable]
//                      [--wait-eos]
//
// --subscribe takes the paper's example queries by name (q1..q4) or
// literal WXQuery text; --subscribe-file reads the query text from a
// file. Both print `subscribed q<id>` (or `rejected q<id> reason=...`
// for a structured admission rejection — the connection stays usable).
// --feed asks the daemon to advance its deterministic generators N items
// per stream; deliveries stream back interleaved and are accumulated
// client-side. --stats prints the daemon's deployment counters.
// --drain=restartable needs the daemon to have a --checkpoint;
// --wait-eos blocks until the daemon's EOS after a drain.
//
// --reconnect makes every command survive a dropped connection (daemon
// crash or restart on the same port): the client redials with
// exponential backoff + jitter, re-attaches each subscribed query at
// its next undelivered sequence, and retries the command. The backoff
// knobs tune attempts, the initial sleep, and its cap.
//
// At exit the client prints one `q<id> items=N bytes=N hash=N` line per
// subscribed query — the same observation format streamshare_sim
// --query-stats prints for a batch run, so live and batch runs of the
// same scenario diff with `diff`.
//
// Exit code 0, or 1 when any command fails.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "serve/client.h"
#include "workload/paper_queries.h"

using namespace streamshare;

namespace {

struct Command {
  enum class Kind {
    kSubscribe,
    kAttach,
    kUnsubscribe,
    kFeed,
    kFailPeer,
    kCutLink,
    kStats,
    kDetach,
    kDrain,
    kWaitEos,
  };
  Kind kind;
  std::string text;       // kSubscribe query text
  int64_t a = 0, b = 0;   // ids / counts / links
  bool flag = false;      // kDrain final
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage(const char* program) {
  std::fprintf(
      stderr,
      "usage: %s --port=N [--host=H] [--name=S] [--timeout-ms=N] "
      "[--reconnect] [--reconnect-max-attempts=N] "
      "[--reconnect-backoff-ms=N] [--reconnect-max-backoff-ms=N] "
      "[--subscribe=QUERY@VQ] [--subscribe-file=FILE@VQ] "
      "[--attach=ID@SEQ] [--unsubscribe=ID] [--feed=N] [--fail-peer=ID] "
      "[--cut-link=A-B] [--stats] [--detach] "
      "[--drain=final|restartable] [--wait-eos]\n",
      program);
  return 1;
}

/// The paper's example queries by short name; anything else is taken as
/// literal WXQuery text.
std::string ResolveQueryText(const std::string& text) {
  if (text == "q1") return workload::kQuery1;
  if (text == "q2") return workload::kQuery2;
  if (text == "q3") return workload::kQuery3;
  if (text == "q4") return workload::kQuery4;
  return text;
}

/// Splits "PAYLOAD@NUMBER" at the *last* '@' (query text never ends in
/// one, and this keeps '@' usable inside file names).
bool SplitAtNumber(const std::string& value, std::string* payload,
                   int64_t* number) {
  size_t at = value.rfind('@');
  if (at == std::string::npos || at == 0 || at + 1 >= value.size()) {
    return false;
  }
  *payload = value.substr(0, at);
  *number = std::strtoll(value.c_str() + at + 1, nullptr, 10);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ClientOptions options;
  bool reconnect = false;
  std::vector<Command> commands;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    Command command;
    if (ParseFlag(argv[i], "--port", &value)) {
      options.port = static_cast<int>(std::strtol(value.c_str(), nullptr,
                                                  10));
    } else if (ParseFlag(argv[i], "--host", &value)) {
      options.host = value;
    } else if (ParseFlag(argv[i], "--name", &value)) {
      options.name = value;
    } else if (ParseFlag(argv[i], "--timeout-ms", &value)) {
      options.timeout_ms = static_cast<int>(std::strtol(value.c_str(),
                                                        nullptr, 10));
    } else if (std::strcmp(argv[i], "--reconnect") == 0) {
      reconnect = true;
    } else if (ParseFlag(argv[i], "--reconnect-max-attempts", &value)) {
      options.reconnect.max_attempts =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--reconnect-backoff-ms", &value)) {
      options.reconnect.initial_backoff_ms =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--reconnect-max-backoff-ms", &value)) {
      options.reconnect.max_backoff_ms =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--subscribe", &value)) {
      command.kind = Command::Kind::kSubscribe;
      if (!SplitAtNumber(value, &command.text, &command.a)) {
        return Usage(argv[0]);
      }
      command.text = ResolveQueryText(command.text);
      commands.push_back(std::move(command));
    } else if (ParseFlag(argv[i], "--subscribe-file", &value)) {
      command.kind = Command::Kind::kSubscribe;
      std::string path;
      if (!SplitAtNumber(value, &path, &command.a)) return Usage(argv[0]);
      std::ifstream file(path);
      if (!file) {
        std::fprintf(stderr, "cannot read %s\n", path.c_str());
        return 1;
      }
      std::ostringstream text;
      text << file.rdbuf();
      command.text = text.str();
      commands.push_back(std::move(command));
    } else if (ParseFlag(argv[i], "--attach", &value)) {
      command.kind = Command::Kind::kAttach;
      std::string id;
      if (!SplitAtNumber(value, &id, &command.b)) return Usage(argv[0]);
      command.a = std::strtoll(id.c_str(), nullptr, 10);
      commands.push_back(std::move(command));
    } else if (ParseFlag(argv[i], "--unsubscribe", &value)) {
      command.kind = Command::Kind::kUnsubscribe;
      command.a = std::strtoll(value.c_str(), nullptr, 10);
      commands.push_back(std::move(command));
    } else if (ParseFlag(argv[i], "--feed", &value)) {
      command.kind = Command::Kind::kFeed;
      command.a = std::strtoll(value.c_str(), nullptr, 10);
      commands.push_back(std::move(command));
    } else if (ParseFlag(argv[i], "--fail-peer", &value)) {
      command.kind = Command::Kind::kFailPeer;
      command.a = std::strtoll(value.c_str(), nullptr, 10);
      commands.push_back(std::move(command));
    } else if (ParseFlag(argv[i], "--cut-link", &value)) {
      command.kind = Command::Kind::kCutLink;
      size_t dash = value.find('-');
      if (dash == std::string::npos || dash == 0 ||
          dash + 1 >= value.size()) {
        return Usage(argv[0]);
      }
      command.a = std::strtoll(value.substr(0, dash).c_str(), nullptr, 10);
      command.b = std::strtoll(value.c_str() + dash + 1, nullptr, 10);
      commands.push_back(std::move(command));
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      command.kind = Command::Kind::kStats;
      commands.push_back(std::move(command));
    } else if (std::strcmp(argv[i], "--detach") == 0) {
      command.kind = Command::Kind::kDetach;
      commands.push_back(std::move(command));
    } else if (ParseFlag(argv[i], "--drain", &value)) {
      command.kind = Command::Kind::kDrain;
      if (value == "final") {
        command.flag = true;
      } else if (value == "restartable") {
        command.flag = false;
      } else {
        return Usage(argv[0]);
      }
      commands.push_back(std::move(command));
    } else if (std::strcmp(argv[i], "--wait-eos") == 0) {
      command.kind = Command::Kind::kWaitEos;
      commands.push_back(std::move(command));
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.port == 0) return Usage(argv[0]);

  serve::ServeClient client(options);
  Status connected = client.Connect();
  if (!connected.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 connected.ToString().c_str());
    return 1;
  }
  std::printf("connected epoch=%llu items_fed=%llu draining=%d\n",
              static_cast<unsigned long long>(client.hello().epoch),
              static_cast<unsigned long long>(client.hello().items_fed),
              client.hello().draining ? 1 : 0);

  bool failed = false;
  std::vector<int64_t> subscribed;
  auto report = [&failed](const char* what, const Status& status) {
    if (!status.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", what,
                   status.ToString().c_str());
      failed = true;
    }
  };
  // With --reconnect, every command rides RunWithReconnect: a dropped
  // connection redials (backoff + jitter), re-attaches the subscribed
  // queries at their next undelivered sequence, and retries the
  // command. Prints happen inside the op, after it succeeded.
  auto run = [&](const char* what,
                 const std::function<Status()>& op) {
    report(what, reconnect ? client.RunWithReconnect(op) : op());
  };

  for (const Command& command : commands) {
    switch (command.kind) {
      case Command::Kind::kSubscribe:
        run("subscribe", [&]() -> Status {
          SS_ASSIGN_OR_RETURN(serve::SubscribeReply reply,
                              client.Subscribe(command.text, command.a));
          if (reply.accepted) {
            std::printf("subscribed q%lld\n",
                        static_cast<long long>(reply.query_id));
            subscribed.push_back(reply.query_id);
          } else {
            std::printf("rejected q%lld reason=%s\n",
                        static_cast<long long>(reply.query_id),
                        reply.reject_reason.c_str());
          }
          return Status::Ok();
        });
        break;
      case Command::Kind::kAttach:
        run("attach", [&]() -> Status {
          SS_ASSIGN_OR_RETURN(
              serve::SubscribeReply reply,
              client.Attach(command.a, static_cast<uint64_t>(command.b)));
          std::printf("attached q%lld from=%llu\n",
                      static_cast<long long>(reply.query_id),
                      static_cast<unsigned long long>(reply.forward_from));
          subscribed.push_back(reply.query_id);
          return Status::Ok();
        });
        break;
      case Command::Kind::kUnsubscribe:
        run("unsubscribe",
            [&]() -> Status { return client.Unsubscribe(command.a); });
        break;
      case Command::Kind::kFeed:
        run("feed", [&]() -> Status {
          return client.Feed(static_cast<uint64_t>(command.a)).status();
        });
        break;
      case Command::Kind::kFailPeer:
        run("fail-peer", [&]() -> Status {
          SS_ASSIGN_OR_RETURN(serve::RecoveryReply reply,
                              client.FailPeer(command.a));
          std::printf(
              "recovered replans=%llu lost=%llu dead_targets=%llu\n",
              static_cast<unsigned long long>(reply.replans),
              static_cast<unsigned long long>(reply.lost_queries),
              static_cast<unsigned long long>(reply.dead_targets));
          return Status::Ok();
        });
        break;
      case Command::Kind::kCutLink:
        run("cut-link", [&]() -> Status {
          SS_ASSIGN_OR_RETURN(serve::RecoveryReply reply,
                              client.CutLink(command.a, command.b));
          std::printf(
              "recovered replans=%llu lost=%llu dead_targets=%llu\n",
              static_cast<unsigned long long>(reply.replans),
              static_cast<unsigned long long>(reply.lost_queries),
              static_cast<unsigned long long>(reply.dead_targets));
          return Status::Ok();
        });
        break;
      case Command::Kind::kStats:
        run("stats", [&]() -> Status {
          SS_ASSIGN_OR_RETURN(serve::StatsReply reply, client.Stats());
          std::printf(
              "stats epoch=%llu draining=%d items_fed=%llu clients=%llu "
              "admitted=%llu rejected=%llu forwarded=%llu\n",
              static_cast<unsigned long long>(reply.epoch),
              reply.draining ? 1 : 0,
              static_cast<unsigned long long>(reply.items_fed),
              static_cast<unsigned long long>(reply.attached_clients),
              static_cast<unsigned long long>(reply.admitted),
              static_cast<unsigned long long>(reply.rejected),
              static_cast<unsigned long long>(reply.results_forwarded));
          std::printf(
              "wal appends=%llu bytes=%llu fsync_us=%llu "
              "compactions=%llu recovered=%llu torn_truncations=%llu\n",
              static_cast<unsigned long long>(reply.wal_appends),
              static_cast<unsigned long long>(reply.wal_bytes),
              static_cast<unsigned long long>(reply.wal_fsync_us),
              static_cast<unsigned long long>(reply.wal_compactions),
              static_cast<unsigned long long>(reply.wal_recovered_records),
              static_cast<unsigned long long>(
                  reply.wal_torn_tail_truncations));
          for (const serve::QueryStat& query : reply.queries) {
            std::printf("  q%lld %s items=%llu bytes=%llu hash=%llu\n",
                        static_cast<long long>(query.query_id),
                        query.active ? "active" : "inactive",
                        static_cast<unsigned long long>(query.items),
                        static_cast<unsigned long long>(query.bytes),
                        static_cast<unsigned long long>(
                            query.content_hash));
          }
          return Status::Ok();
        });
        break;
      case Command::Kind::kDetach:
        run("detach", [&]() -> Status { return client.Detach(); });
        break;
      case Command::Kind::kDrain:
        run("drain", [&]() -> Status {
          return client.Drain(command.flag).status();
        });
        break;
      case Command::Kind::kWaitEos: {
        // Never wrapped: the EOS ends the connection by design, and a
        // redial would wait on a daemon that just left.
        auto eos = client.WaitEos(options.timeout_ms);
        if (!eos.ok()) {
          report("wait-eos", eos.status());
          break;
        }
        std::printf("eos final=%d results=%llu\n",
                    eos->final_drain ? 1 : 0,
                    static_cast<unsigned long long>(
                        eos->results_forwarded));
        break;
      }
    }
  }

  // One line per subscribed query (in subscription order, zero
  // observations included), diffable against `streamshare_sim
  // --query-stats`.
  for (int64_t query_id : subscribed) {
    serve::ClientQueryResults results = client.results(query_id);
    std::printf("q%lld items=%llu bytes=%llu hash=%llu\n",
                static_cast<long long>(query_id),
                static_cast<unsigned long long>(results.items),
                static_cast<unsigned long long>(results.bytes),
                static_cast<unsigned long long>(results.content_hash));
  }
  client.Close();
  return failed ? 1 : 0;
}
