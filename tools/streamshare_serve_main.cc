// streamshare_serve — the long-lived service. Hosts one of the paper's
// evaluation scenarios (topology + photon streams + deterministic
// generators) with the engine running continuously, and serves the
// CONTROL/RESULTS planes to streamshare_client connections: live
// Subscribe through the real planner with admission control, Feed,
// Stats, chaos verbs, graceful drain.
//
//   streamshare_serve [--port=N] [--scenario=extended|grid] [--seed=N]
//                     [--checkpoint=FILE] [--resume=replay|gap]
//                     [--wal-compact-bytes=N] [--enforce-limits]
//                     [--widening] [--poll-ms=N] [--metrics=FILE] [--log]
//
// --port=0 (the default) binds an ephemeral port; the bound port is
// printed as `listening port=N` on stdout either way, so a launcher can
// scrape it. --checkpoint enables the durability plane: every
// acknowledged control mutation is fsync'd to a write-ahead log beside
// FILE before its ACK leaves (kill -9 at any instant loses nothing that
// was acked — startup recovers checkpoint + WAL tail), the log folds
// into a fresh checkpoint whenever it exceeds --wal-compact-bytes, and
// SIGTERM (or a client's Drain verb) checkpoints the registration/churn
// event log to FILE and exits; starting the daemon again with the same
// scenario and --checkpoint resumes per --resume (replay =
// byte-identical catch-up, gap = windows re-anchor). Without
// --checkpoint, SIGTERM performs a final drain: in-flight windows flush
// to the attached clients, then the service ends. SIGINT always
// final-drains.
//
// The STREAMSHARE_CRASHPOINT environment variable ("name" or "name:N",
// see serve/crashpoint.h) arms a self-SIGKILL inside the durability
// machinery — how scripts/crash_smoke.sh murders real daemons at exact
// instants.
//
// --metrics writes a registry snapshot (serve.* gauges plus the hosted
// system's metrics) after the drain. Exit code 0 on a clean drain, 2 on
// a startup or loop failure.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/event_log.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "serve/crashpoint.h"
#include "serve/daemon.h"
#include "workload/scenario.h"

using namespace streamshare;

namespace {

struct Options {
  int port = 0;
  std::string scenario = "extended";
  uint64_t seed = 11;
  std::string checkpoint_path;
  serve::ResumeFlavor resume = serve::ResumeFlavor::kReplay;
  uint64_t wal_compact_bytes = 1 << 20;
  bool enforce_limits = false;
  bool widening = false;
  int poll_ms = 50;
  std::string metrics_path;
  bool log = false;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s [--port=N] [--scenario=extended|grid] "
               "[--seed=N] [--checkpoint=FILE] [--resume=replay|gap] "
               "[--wal-compact-bytes=N] [--enforce-limits] [--widening] "
               "[--poll-ms=N] [--metrics=FILE] [--log]\n",
               program);
  return 2;
}

/// The signal path into the poll loop: RequestDrain is an atomic flag
/// the loop notices within one poll interval, safe from a handler.
serve::ServeDaemon* g_daemon = nullptr;

void HandleSigterm(int) {
  if (g_daemon != nullptr) g_daemon->RequestDrain(/*final_drain=*/false);
}

void HandleSigint(int) {
  if (g_daemon != nullptr) g_daemon->RequestDrain(/*final_drain=*/true);
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--port", &value)) {
      options.port = static_cast<int>(std::strtol(value.c_str(), nullptr,
                                                  10));
    } else if (ParseFlag(argv[i], "--scenario", &value)) {
      options.scenario = value;
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--checkpoint", &value)) {
      options.checkpoint_path = value;
    } else if (ParseFlag(argv[i], "--resume", &value)) {
      if (value == "replay") {
        options.resume = serve::ResumeFlavor::kReplay;
      } else if (value == "gap") {
        options.resume = serve::ResumeFlavor::kGap;
      } else {
        return Usage(argv[0]);
      }
    } else if (ParseFlag(argv[i], "--wal-compact-bytes", &value)) {
      options.wal_compact_bytes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--enforce-limits") == 0) {
      options.enforce_limits = true;
    } else if (std::strcmp(argv[i], "--widening") == 0) {
      options.widening = true;
    } else if (ParseFlag(argv[i], "--poll-ms", &value)) {
      options.poll_ms = static_cast<int>(std::strtol(value.c_str(),
                                                     nullptr, 10));
    } else if (ParseFlag(argv[i], "--metrics", &value)) {
      options.metrics_path = value;
    } else if (std::strcmp(argv[i], "--log") == 0) {
      options.log = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (options.log) {
    obs::EventLog::Default().SetSink(std::make_shared<obs::StderrSink>());
  }

  // The scenario supplies topology, streams, and deterministic
  // generators; subscriptions arrive live over the CONTROL plane — the
  // scenario's own query specs are never registered by the daemon.
  workload::ScenarioSpec scenario;
  if (options.scenario == "extended") {
    scenario = workload::ExtendedExampleScenario(options.seed,
                                                 /*query_count=*/0);
  } else if (options.scenario == "grid") {
    scenario = workload::GridScenario(options.seed, /*query_count=*/0);
  } else {
    return Usage(argv[0]);
  }

  serve::DaemonOptions daemon_options;
  daemon_options.port = options.port;
  daemon_options.checkpoint_path = options.checkpoint_path;
  daemon_options.resume = options.resume;
  daemon_options.wal_compact_bytes = options.wal_compact_bytes;
  daemon_options.poll_interval_ms = options.poll_ms;
  daemon_options.system.enforce_limits = options.enforce_limits;
  daemon_options.system.planner.enable_widening = options.widening;

  Status armed = serve::crashpoint::ArmFromEnv();
  if (!armed.ok()) {
    std::fprintf(stderr, "bad STREAMSHARE_CRASHPOINT: %s\n",
                 armed.ToString().c_str());
    return 2;
  }

  serve::ServeDaemon daemon(std::move(scenario), daemon_options);
  Status started = daemon.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 started.ToString().c_str());
    return 2;
  }
  g_daemon = &daemon;
  std::signal(SIGTERM, HandleSigterm);
  std::signal(SIGINT, HandleSigint);

  std::printf("listening port=%d scenario=%s seed=%llu epoch=%llu\n",
              daemon.port(), options.scenario.c_str(),
              static_cast<unsigned long long>(options.seed),
              static_cast<unsigned long long>(daemon.epoch()));
  std::fflush(stdout);

  daemon.Join();
  g_daemon = nullptr;
  Status loop = daemon.loop_status();
  if (!loop.ok()) {
    std::fprintf(stderr, "loop failed: %s\n", loop.ToString().c_str());
    return 2;
  }

  serve::DaemonStats stats = daemon.stats();
  std::printf(
      "drained epoch=%llu admitted=%llu rejected=%llu items_fed=%llu "
      "results_forwarded=%llu\n",
      static_cast<unsigned long long>(stats.epoch),
      static_cast<unsigned long long>(stats.admitted),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.items_fed),
      static_cast<unsigned long long>(stats.results_forwarded));

  if (!options.metrics_path.empty()) {
    obs::MetricsRegistry registry;
    daemon.ExportMetrics(&registry);
    Status written = obs::WriteMetricsFile(registry.Snapshot(),
                                           options.metrics_path);
    if (!written.ok()) {
      std::fprintf(stderr, "writing metrics failed: %s\n",
                   written.ToString().c_str());
      return 2;
    }
  }
  return 0;
}
