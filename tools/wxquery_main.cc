// wxquery — run a WXQuery subscription over an XML document from the
// command line (the local, network-free evaluator).
//
//   wxquery QUERY_FILE XML_FILE          evaluate and print the result
//   wxquery --explain QUERY_FILE         parse/analyze and print the
//                                        derived properties instead
//
// Exit code: 0 on success, 1 on usage errors, 2 on parse/analysis errors.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "engine/local_query.h"
#include "wxquery/analyzer.h"
#include "xml/xml_writer.h"

using namespace streamshare;

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

int Explain(const char* query_path) {
  std::string query_text;
  if (!ReadFile(query_path, &query_text)) {
    std::fprintf(stderr, "cannot read %s\n", query_path);
    return 1;
  }
  Result<wxquery::AnalyzedQuery> analyzed =
      wxquery::ParseAndAnalyze(query_text);
  if (!analyzed.ok()) {
    std::fprintf(stderr, "%s\n", analyzed.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", analyzed->props.ToString().c_str());
  for (const wxquery::StreamBinding& binding : analyzed->bindings) {
    std::printf("binding $%s over stream '%s' (item path %s)\n",
                binding.var.c_str(), binding.stream_name.c_str(),
                binding.item_path.ToString().c_str());
    if (binding.window.has_value()) {
      std::printf("  window %s\n", binding.window->ToString().c_str());
    }
    if (binding.aggregate.has_value()) {
      std::printf("  aggregate $%s := %s(%s)\n",
                  binding.aggregate->var.c_str(),
                  std::string(properties::AggregateFuncToString(
                                  binding.aggregate->func))
                      .c_str(),
                  binding.aggregate->path.ToString().c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::string(argv[1]) == "--explain") {
    return Explain(argv[2]);
  }
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s QUERY_FILE XML_FILE\n"
                 "       %s --explain QUERY_FILE\n",
                 argv[0], argv[0]);
    return 1;
  }
  std::string query_text, document;
  if (!ReadFile(argv[1], &query_text)) {
    std::fprintf(stderr, "cannot read %s\n", argv[1]);
    return 1;
  }
  if (!ReadFile(argv[2], &document)) {
    std::fprintf(stderr, "cannot read %s\n", argv[2]);
    return 1;
  }
  Result<engine::LocalQueryResult> result =
      engine::RunLocalQuery(query_text, document);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", result->ToDocument().c_str());
  return 0;
}
