// streamshare_fuzz — differential fuzzing driver. Generates seeded
// scenarios, runs each one through the oracle (serial reference vs
// parallel vs transport-loopback vs transport-TCP, plus the sharing-vs-
// baseline oracle) and reports divergences. On failure the scenario is
// shrunk to a minimal reproducer and written out as replayable JSON plus
// a ready-to-commit C++ regression test.
//
//   streamshare_fuzz [--seeds=N] [--seed-base=B] [--seed=S]
//                    [--scenario=FILE] [--out-dir=DIR] [--metrics=FILE]
//                    [--no-parallel] [--no-loopback] [--no-tcp]
//                    [--tcp-processes] [--no-shrink] [--churn=P]
//                    [--sweep-flow] [--dom-path] [--serve] [--crash]
//                    [--inject-mode=MODE] [--inject-min-window=N]
//                    [--inject-churn-mode=MODE]
//
// --seeds sweeps seeds [B, B+N); --seed runs exactly one; --scenario
// replays a JSON file emitted by an earlier run. --inject-mode plants a
// deliberate divergence in the named mode (self-test of the harness);
// --inject-churn-mode plants one in a churned recovery mode.
//
// --churn=P gives each generated scenario probability P of carrying
// mid-run kill-peer / cut-link events (chaos testing; the recovery
// oracle then checks the "gap, not garbage" invariants). --sweep-flow
// derives the transport flow-control and TCP retry knobs (credit
// window, send timeout, retry count/backoff, connect retries) from each
// seed, so a sweep exercises many transport configurations instead of
// only the production defaults. --dom-path turns the compact-record hot
// path off in every mode (by default the non-reference modes run it, so
// each equivalence diff is also a DOM-vs-record differential). --serve
// adds the fifth oracle arm: every scenario also runs through a live
// streamshare_serve daemon + client over localhost TCP and the
// client-side deliveries must match the serial reference byte for byte.
// Real sockets per scenario make it the slowest arm — CI gates it to a
// small seed count. --crash adds the durability arm on top: the daemon
// runs in a forked child armed with seed-derived crashpoints, SIGKILLs
// itself mid-operation, recovers from checkpoint + write-ahead log, and
// the history the client accumulated across all lives must still match
// that same reference (a crash indistinguishable from a drain for every
// acknowledged operation).
//
// Exit codes: 0 clean, 1 divergence found, 2 infrastructure failure.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "testing/fuzz_scenario.h"
#include "testing/oracle.h"
#include "testing/reproducer.h"
#include "testing/scenario_json.h"
#include "testing/shrink.h"

using namespace streamshare;
using namespace streamshare::testing;

namespace {

struct Options {
  uint64_t seeds = 100;
  uint64_t seed_base = 1;
  bool single_seed = false;
  uint64_t seed = 0;
  std::string scenario_path;
  std::string out_dir = ".";
  std::string metrics_path;
  bool shrink = true;
  double churn_probability = 0.0;
  bool sweep_flow = false;
  OracleOptions oracle;
};

/// Seed-derived transport knobs for --sweep-flow. Drawn from a distinct
/// stream (seed ^ tag) so they never correlate with the scenario's own
/// draws. Timeouts stay generous — the sweep is after correctness under
/// odd configurations, not artificial deadline failures.
void DeriveFlowKnobs(uint64_t seed, OracleOptions* oracle) {
  DetRng rng(seed ^ 0xf10bcafeULL);
  oracle->flow.initial_credits =
      static_cast<int>(uint64_t{1} << rng.Between(3, 8));
  oracle->flow.send_timeout_ms = static_cast<int>(1000 * rng.Between(1, 4));
  oracle->flow.max_retries = static_cast<int>(rng.Between(1, 4));
  oracle->flow.retry_backoff_ms = static_cast<int>(rng.Between(1, 25));
  oracle->tcp.connect_retries = static_cast<int>(rng.Between(0, 3));
  oracle->tcp.connect_backoff_ms = static_cast<int>(rng.Between(1, 10));
}

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

int Usage(const char* program) {
  std::fprintf(stderr,
               "usage: %s [--seeds=N] [--seed-base=B] [--seed=S] "
               "[--scenario=FILE] [--out-dir=DIR] [--metrics=FILE] "
               "[--no-parallel] [--no-loopback] [--no-tcp] "
               "[--tcp-processes] [--no-shrink] [--churn=P] "
               "[--sweep-flow] [--dom-path] [--serve] [--crash] [--flat-bfs] "
               "[--inject-mode=MODE] [--inject-min-window=N] "
               "[--inject-churn-mode=MODE]\n",
               program);
  return 2;
}

/// Runs one scenario; on divergence shrinks and writes the reproducer.
/// Returns 0 clean, 1 divergence, 2 infra failure.
int RunOne(const FuzzScenario& scenario, const Options& options) {
  auto report = RunOracle(scenario, options.oracle);
  if (!report.ok()) {
    std::fprintf(stderr, "seed %llu: infrastructure failure: %s\n",
                 static_cast<unsigned long long>(scenario.seed),
                 report.status().ToString().c_str());
    if (options.oracle.metrics != nullptr) {
      options.oracle.metrics->GetCounter("fuzz.infra_failures")->Add(1);
    }
    return 2;
  }
  if (report->ok()) return 0;

  std::fprintf(stderr, "seed %llu: DIVERGENCE\n%s\n",
               static_cast<unsigned long long>(scenario.seed),
               report->failure.c_str());

  FuzzScenario minimal = scenario;
  if (options.shrink) {
    ShrinkStats stats;
    minimal = Shrink(
        scenario,
        [&](const FuzzScenario& candidate) {
          auto r = RunOracle(candidate, options.oracle);
          return r.ok() && !r->ok();
        },
        /*max_rounds=*/4, &stats);
    std::fprintf(stderr,
                 "seed %llu: shrunk to %zu queries / %zu items "
                 "(%d oracle runs, %d reductions)\n",
                 static_cast<unsigned long long>(scenario.seed),
                 minimal.queries.size(), minimal.items_per_stream,
                 stats.predicate_runs, stats.accepted_steps);
  }

  auto final_report = RunOracle(minimal, options.oracle);
  const std::string failure =
      final_report.ok() ? final_report->failure : report->failure;
  auto path = WriteReproducer(minimal, options.out_dir, failure);
  if (path.ok()) {
    std::fprintf(stderr, "seed %llu: reproducer written to %s\n",
                 static_cast<unsigned long long>(scenario.seed),
                 path->c_str());
  } else {
    std::fprintf(stderr, "seed %llu: failed to write reproducer: %s\n",
                 static_cast<unsigned long long>(scenario.seed),
                 path.status().ToString().c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--seeds", &value)) {
      options.seeds = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed-base", &value)) {
      options.seed_base = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      options.single_seed = true;
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--scenario", &value)) {
      options.scenario_path = value;
    } else if (ParseFlag(argv[i], "--out-dir", &value)) {
      options.out_dir = value;
    } else if (ParseFlag(argv[i], "--metrics", &value)) {
      options.metrics_path = value;
    } else if (std::strcmp(argv[i], "--no-parallel") == 0) {
      options.oracle.run_parallel = false;
    } else if (std::strcmp(argv[i], "--no-loopback") == 0) {
      options.oracle.run_loopback = false;
    } else if (std::strcmp(argv[i], "--no-tcp") == 0) {
      options.oracle.run_tcp = false;
    } else if (std::strcmp(argv[i], "--tcp-processes") == 0) {
      options.oracle.tcp_processes = true;
    } else if (std::strcmp(argv[i], "--dom-path") == 0) {
      options.oracle.record_path = false;
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      options.oracle.run_serve = true;
    } else if (std::strcmp(argv[i], "--crash") == 0) {
      options.oracle.run_crash = true;
    } else if (std::strcmp(argv[i], "--flat-bfs") == 0) {
      options.oracle.run_flat_bfs = true;
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      options.shrink = false;
    } else if (ParseFlag(argv[i], "--churn", &value)) {
      options.churn_probability = std::strtod(value.c_str(), nullptr);
    } else if (std::strcmp(argv[i], "--sweep-flow") == 0) {
      options.sweep_flow = true;
    } else if (ParseFlag(argv[i], "--inject-mode", &value)) {
      options.oracle.inject_divergence_mode = value;
    } else if (ParseFlag(argv[i], "--inject-min-window", &value)) {
      options.oracle.inject_min_window =
          static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--inject-churn-mode", &value)) {
      options.oracle.inject_churn_mode = value;
    } else {
      return Usage(argv[0]);
    }
  }

  obs::MetricsRegistry metrics;
  options.oracle.metrics = &metrics;

  int worst = 0;
  if (!options.scenario_path.empty()) {
    auto scenario = ReadScenarioFile(options.scenario_path);
    if (!scenario.ok()) {
      std::fprintf(stderr, "cannot load %s: %s\n",
                   options.scenario_path.c_str(),
                   scenario.status().ToString().c_str());
      return 2;
    }
    worst = RunOne(*scenario, options);
  } else if (options.single_seed) {
    GeneratorOptions gen;
    gen.churn_probability = options.churn_probability;
    if (options.sweep_flow) DeriveFlowKnobs(options.seed, &options.oracle);
    worst = RunOne(GenerateScenario(options.seed, gen), options);
  } else {
    GeneratorOptions gen;
    gen.churn_probability = options.churn_probability;
    for (uint64_t s = 0; s < options.seeds; ++s) {
      const uint64_t seed = options.seed_base + s;
      if (options.sweep_flow) DeriveFlowKnobs(seed, &options.oracle);
      int rc = RunOne(GenerateScenario(seed, gen), options);
      if (rc > worst) worst = rc;
      if ((s + 1) % 50 == 0) {
        std::fprintf(stderr, "... %llu/%llu seeds\n",
                     static_cast<unsigned long long>(s + 1),
                     static_cast<unsigned long long>(options.seeds));
      }
    }
  }

  auto snapshot = metrics.Snapshot();
  if (!options.metrics_path.empty()) {
    Status st = obs::WriteMetricsFile(snapshot, options.metrics_path);
    if (!st.ok()) {
      std::fprintf(stderr, "metrics write failed: %s\n",
                   st.ToString().c_str());
    }
  }
  for (const auto& m : snapshot) {
    if (m.name.rfind("fuzz.", 0) == 0) {
      std::fprintf(stderr, "%s = %.0f\n", m.name.c_str(), m.value);
    }
  }
  return worst;
}
