// Converts `key=value` bench output (stdin) into a flat JSON object.
// Lines that are empty, start with '#', or contain no '=' are ignored;
// values that parse fully as numbers are emitted as JSON numbers,
// everything else as strings. Used by CI to persist the perf trajectory:
//
//   ./bench/bench_parallel_speedup | ./tools/bench_to_json BENCH_engine.json

#include <cctype>
#include <cstdio>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

namespace {

bool IsNumber(const std::string& value) {
  if (value.empty()) return false;
  char* end = nullptr;
  double parsed = std::strtod(value.c_str(), &end);
  // nan/inf parse but are not valid JSON numbers; quote them instead.
  return end != nullptr && *end == '\0' && std::isfinite(parsed);
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_engine.json";

  std::vector<std::pair<std::string, std::string>> entries;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos || eq == 0) continue;  // need a key
    entries.emplace_back(line.substr(0, eq), line.substr(eq + 1));
  }
  if (entries.empty()) {
    std::fprintf(stderr, "bench_to_json: no key=value lines on stdin\n");
    return 1;
  }

  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_to_json: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  for (size_t i = 0; i < entries.size(); ++i) {
    const auto& [key, value] = entries[i];
    std::fprintf(out, "  \"%s\": ", JsonEscape(key).c_str());
    if (IsNumber(value)) {
      std::fprintf(out, "%s", value.c_str());
    } else {
      std::fprintf(out, "\"%s\"", JsonEscape(value).c_str());
    }
    std::fprintf(out, "%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu keys)\n", out_path, entries.size());
  return 0;
}
