// streamshare_sim — run one of the paper's evaluation scenarios from the
// command line and print the measured per-peer / per-connection series.
//
//   streamshare_sim [--scenario=extended|grid] [--strategy=data|query|share]
//                   [--queries=N] [--items=N] [--seed=N] [--widening]
//                   [--hierarchical] [--enforce-limits]
//                   [--executor=serial|parallel] [--transport=loopback|tcp]
//                   [--transport-threads] [--fail-peer=ID@OFFSET]
//                   [--cut-link=A-B@OFFSET] [--trace=FILE]
//                   [--metrics=FILE] [--explain] [--log]
//                   [--latency-report] [--no-stamping] [--query-stats]
//
// --transport runs the deployed network over the transport layer (binary
// codec + credit-based flow control) instead of in-process pointer
// handoff; with tcp every super-peer partition becomes its own OS
// process exchanging frames over localhost sockets
// (--transport-threads keeps tcp in one process, e.g. under TSAN).
//
// --fail-peer / --cut-link (repeatable) inject failures mid-run: after
// OFFSET items per stream the peer dies / the link goes down, the
// orphaned subscriptions are re-planned against the surviving topology,
// and the remaining items keep flowing. A recovery report per event
// (re-planned queries with old vs new C(P), lost queries, destroyed
// windows) is printed after the run. Churn forces tcp into thread mode.
//
// Observability: --trace writes a Chrome trace_event JSON (load it in
// chrome://tracing or Perfetto), --metrics writes a registry snapshot
// (JSON, or CSV when FILE ends in .csv), --explain prints the candidate
// plans Subscribe costed per query with the chosen one marked (plus each
// accepted query's predicted-vs-measured latency), and --log streams
// structured events to stderr. --latency-report prints the per-query
// latency audit table: the plan's estimated delivery latency next to the
// p50/p99 actually measured at the sink from per-item ingress stamps.
// --no-stamping disables the measured-latency plane (items are not
// stamped; the audit has nothing to report). --query-stats keeps every
// sink's results and prints one `q<id> items=N bytes=N hash=N` line per
// query — the same observation a live streamshare_client prints, so a
// batch run and a served run of the same scenario diff directly
// (scripts/serve_smoke.sh does exactly that).
//
// Exit code 0 on success.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/event_log.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sharing/latency_audit.h"
#include "workload/scenario.h"

using namespace streamshare;

namespace {

struct Options {
  std::string scenario = "extended";
  sharing::Strategy strategy = sharing::Strategy::kStreamSharing;
  size_t queries = 25;
  size_t items = 2000;
  uint64_t seed = 11;
  bool widening = false;
  bool enforce_limits = false;
  bool hierarchical = false;
  bool parallel = false;
  std::string transport;  // empty = no transport layer
  bool transport_threads = false;
  bool explain = false;
  bool log = false;
  bool latency_report = false;
  bool no_stamping = false;
  bool query_stats = false;
  std::string trace_path;
  std::string metrics_path;
  std::vector<workload::ChurnEvent> churn;
};

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
    *value = arg + len + 1;
    return true;
  }
  return false;
}

/// "<id>@<offset>" → kFailPeer event.
bool ParseFailPeer(const std::string& value, workload::ChurnEvent* event) {
  size_t at = value.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= value.size()) {
    return false;
  }
  event->kind = workload::ChurnEvent::Kind::kFailPeer;
  event->peer = static_cast<network::NodeId>(
      std::strtol(value.substr(0, at).c_str(), nullptr, 10));
  event->at_offset = static_cast<size_t>(
      std::strtoull(value.c_str() + at + 1, nullptr, 10));
  return true;
}

/// "<a>-<b>@<offset>" → kCutLink event.
bool ParseCutLink(const std::string& value, workload::ChurnEvent* event) {
  size_t dash = value.find('-');
  size_t at = value.find('@');
  if (dash == std::string::npos || at == std::string::npos || dash == 0 ||
      at < dash + 2 || at + 1 >= value.size()) {
    return false;
  }
  event->kind = workload::ChurnEvent::Kind::kCutLink;
  event->link_a = static_cast<network::NodeId>(
      std::strtol(value.substr(0, dash).c_str(), nullptr, 10));
  event->link_b = static_cast<network::NodeId>(
      std::strtol(value.substr(dash + 1, at - dash - 1).c_str(), nullptr,
                  10));
  event->at_offset = static_cast<size_t>(
      std::strtoull(value.c_str() + at + 1, nullptr, 10));
  return true;
}

int Usage(const char* program) {
  std::fprintf(
      stderr,
      "usage: %s [--scenario=extended|grid] "
      "[--strategy=data|query|share] [--queries=N] [--items=N] "
      "[--seed=N] [--widening] [--hierarchical] [--enforce-limits] "
      "[--executor=serial|parallel] [--transport=loopback|tcp] "
      "[--transport-threads] [--fail-peer=ID@OFFSET] "
      "[--cut-link=A-B@OFFSET] [--trace=FILE] [--metrics=FILE] "
      "[--explain] [--log] [--latency-report] [--no-stamping] "
      "[--query-stats]\n",
      program);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--scenario", &value)) {
      options.scenario = value;
    } else if (ParseFlag(argv[i], "--strategy", &value)) {
      if (value == "data") {
        options.strategy = sharing::Strategy::kDataShipping;
      } else if (value == "query") {
        options.strategy = sharing::Strategy::kQueryShipping;
      } else if (value == "share") {
        options.strategy = sharing::Strategy::kStreamSharing;
      } else {
        return Usage(argv[0]);
      }
    } else if (ParseFlag(argv[i], "--queries", &value)) {
      options.queries = static_cast<size_t>(std::strtoull(
          value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--items", &value)) {
      options.items = static_cast<size_t>(std::strtoull(
          value.c_str(), nullptr, 10));
    } else if (ParseFlag(argv[i], "--seed", &value)) {
      options.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--widening") == 0) {
      options.widening = true;
    } else if (std::strcmp(argv[i], "--hierarchical") == 0) {
      options.hierarchical = true;
    } else if (std::strcmp(argv[i], "--enforce-limits") == 0) {
      options.enforce_limits = true;
    } else if (ParseFlag(argv[i], "--executor", &value)) {
      if (value == "serial") {
        options.parallel = false;
      } else if (value == "parallel") {
        options.parallel = true;
      } else {
        return Usage(argv[0]);
      }
    } else if (ParseFlag(argv[i], "--transport", &value)) {
      if (value != "loopback" && value != "tcp") return Usage(argv[0]);
      options.transport = value;
    } else if (std::strcmp(argv[i], "--transport-threads") == 0) {
      options.transport_threads = true;
    } else if (ParseFlag(argv[i], "--fail-peer", &value)) {
      workload::ChurnEvent event;
      if (!ParseFailPeer(value, &event)) return Usage(argv[0]);
      options.churn.push_back(event);
    } else if (ParseFlag(argv[i], "--cut-link", &value)) {
      workload::ChurnEvent event;
      if (!ParseCutLink(value, &event)) return Usage(argv[0]);
      options.churn.push_back(event);
    } else if (ParseFlag(argv[i], "--trace", &value)) {
      options.trace_path = value;
    } else if (ParseFlag(argv[i], "--metrics", &value)) {
      options.metrics_path = value;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      options.explain = true;
    } else if (std::strcmp(argv[i], "--log") == 0) {
      options.log = true;
    } else if (std::strcmp(argv[i], "--latency-report") == 0) {
      options.latency_report = true;
    } else if (std::strcmp(argv[i], "--no-stamping") == 0) {
      options.no_stamping = true;
    } else if (std::strcmp(argv[i], "--query-stats") == 0) {
      options.query_stats = true;
    } else {
      return Usage(argv[0]);
    }
  }

  if (!options.trace_path.empty()) {
    obs::TraceRecorder::Default().SetEnabled(true);
  }
  if (options.log) {
    obs::EventLog::Default().SetSink(std::make_shared<obs::StderrSink>());
  }

  workload::ScenarioSpec scenario;
  if (options.scenario == "extended") {
    scenario =
        workload::ExtendedExampleScenario(options.seed, options.queries);
  } else if (options.scenario == "grid") {
    scenario = workload::GridScenario(options.seed, options.queries);
  } else {
    return Usage(argv[0]);
  }

  sharing::SystemConfig config;
  config.planner.enable_widening = options.widening;
  config.enforce_limits = options.enforce_limits;
  config.measure_latency = !options.no_stamping;
  // Query stats need the delivery log (and RunScenario hashes kept
  // sinks), so the observation matches what a live client accumulates.
  config.keep_results = options.query_stats;
  if (options.parallel) {
    config.executor = sharing::ExecutorKind::kParallel;
  }
  if (!options.transport.empty()) {
    // TCP defaults to one OS process per super-peer partition; loopback
    // pipes cannot cross fork() and always run worker threads. Churn
    // needs segmented feeding, which keeps window state in one address
    // space — it forces thread mode too.
    config.executor = sharing::ExecutorKind::kTransport;
    config.transport = options.transport;
    config.transport_processes = options.transport == "tcp" &&
                                 !options.transport_threads &&
                                 options.churn.empty();
  }
  std::stable_sort(options.churn.begin(), options.churn.end(),
                   [](const workload::ChurnEvent& a,
                      const workload::ChurnEvent& b) {
                     return a.at_offset < b.at_offset;
                   });
  if (options.hierarchical) {
    // Quadrants for the grid; halves for the extended example.
    size_t peers = scenario.topology.peer_count();
    config.subnet_assignment.resize(peers);
    if (options.scenario == "grid") {
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
          config.subnet_assignment[r * 4 + c] =
              (r >= 2 ? 2 : 0) + (c >= 2 ? 1 : 0);
        }
      }
    } else {
      config.subnet_assignment = {0, 1, 1, 1, 0, 0, 0, 1};
    }
  }
  Result<workload::ScenarioRun> run = workload::RunScenario(
      scenario, options.strategy, config, options.items, options.churn);
  if (!run.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 run.status().ToString().c_str());
    return 2;
  }

  const network::Topology& topology = scenario.topology;
  const engine::Metrics& metrics = run->system->metrics();
  std::printf("scenario=%s strategy=%s queries=%zu items=%zu seed=%llu\n",
              options.scenario.c_str(),
              std::string(sharing::StrategyToString(options.strategy))
                  .c_str(),
              options.queries, options.items,
              static_cast<unsigned long long>(options.seed));
  std::printf("accepted=%d rejected=%d duration=%.1fs\n\n", run->accepted,
              run->rejected, run->duration_s);

  std::printf("%-8s %14s %14s\n", "peer", "cpu %", "work units");
  for (size_t peer = 0; peer < topology.peer_count(); ++peer) {
    std::printf("%-8s %14.2f %14.1f\n", topology.peer(peer).name.c_str(),
                metrics.PeerCpuPercent(static_cast<network::NodeId>(peer),
                                       run->duration_s,
                                       topology.peer(peer).max_load),
                metrics.WorkAtPeer(static_cast<network::NodeId>(peer)));
  }
  std::printf("\n%-12s %14s %14s\n", "connection", "kbps", "bytes");
  for (size_t link = 0; link < topology.link_count(); ++link) {
    const network::Link& l = topology.link(link);
    std::string label = std::to_string(l.a) + "-" + std::to_string(l.b);
    std::printf("%-12s %14.2f %14llu\n", label.c_str(),
                metrics.LinkKbps(static_cast<network::LinkId>(link),
                                 run->duration_s),
                static_cast<unsigned long long>(metrics.BytesOnLink(
                    static_cast<network::LinkId>(link))));
  }
  std::printf("\ntotal bytes=%llu total work=%.1f streams=%zu\n",
              static_cast<unsigned long long>(metrics.TotalBytes()),
              metrics.TotalWork(),
              run->system->registry().streams().size());

  if (options.parallel) {
    std::printf("\n%-8s %10s %10s %16s %16s %10s\n", "worker", "peers",
                "entries", "prod blocked ms", "cons blocked ms",
                "max depth");
    const auto& worker_stats = run->system->parallel_stats();
    for (size_t w = 0; w < worker_stats.size(); ++w) {
      const engine::ParallelWorkerStats& stats = worker_stats[w];
      std::string peers;
      for (size_t i = 0; i < stats.peers.size(); ++i) {
        if (i > 0) peers += ",";
        peers += topology.peer(stats.peers[i]).name;
      }
      std::printf("%-8zu %10s %10llu %16.2f %16.2f %10llu\n", w,
                  peers.c_str(),
                  static_cast<unsigned long long>(stats.entries_received),
                  static_cast<double>(stats.producer_blocked_ns) / 1e6,
                  static_cast<double>(stats.consumer_blocked_ns) / 1e6,
                  static_cast<unsigned long long>(stats.max_queue_depth));
    }
  }

  if (!options.transport.empty()) {
    const transport::TransportRunStats& tstats =
        run->system->transport_stats();
    std::printf("\ntransport=%s processes=%zu\n", tstats.transport.c_str(),
                tstats.process_count);
    std::printf("%-12s %12s %12s %12s %10s\n", "channel", "frames",
                "wire bytes", "items", "stalls");
    for (const transport::ChannelTrafficStats& channel : tstats.channels) {
      std::string label = "w" + std::to_string(channel.source_worker) +
                          "->w" + std::to_string(channel.target_worker);
      std::printf("%-12s %12llu %12llu %12llu %10llu\n", label.c_str(),
                  static_cast<unsigned long long>(channel.stats.frames_sent),
                  static_cast<unsigned long long>(channel.stats.bytes_sent),
                  static_cast<unsigned long long>(
                      channel.stats.items_delivered),
                  static_cast<unsigned long long>(
                      channel.stats.credit_stalls));
    }
  }

  if (!options.churn.empty()) {
    std::printf("\n=== recovery ===\n");
    const auto& reports = run->system->recovery_reports();
    for (size_t i = 0; i < reports.size(); ++i) {
      std::printf("event %zu @item %zu:\n%s", i,
                  options.churn[i].at_offset,
                  reports[i].ToString().c_str());
    }
  }

  if (options.query_stats) {
    std::printf("\n=== query stats ===\n");
    for (const sharing::RegistrationResult& registration :
         run->system->registrations()) {
      if (!registration.accepted || registration.sink == nullptr) {
        std::printf("q%d rejected\n", registration.query_id);
        continue;
      }
      std::printf("q%d items=%llu bytes=%llu hash=%llu\n",
                  registration.query_id,
                  static_cast<unsigned long long>(
                      registration.sink->item_count()),
                  static_cast<unsigned long long>(
                      registration.sink->total_bytes()),
                  static_cast<unsigned long long>(
                      registration.sink->content_hash()));
    }
  }

  std::vector<sharing::QueryLatencyAudit> audits =
      sharing::CollectLatencyAudit(run->system->registrations());
  std::map<int, const sharing::QueryLatencyAudit*> audit_by_query;
  for (const sharing::QueryLatencyAudit& audit : audits) {
    audit_by_query[audit.query_id] = &audit;
  }

  if (options.latency_report) {
    std::printf("\n%s", sharing::FormatLatencyReport(audits).c_str());
  }

  if (options.explain) {
    // Candidate-plan cost breakdown: every plan Subscribe costed, with
    // the one the cost model chose marked '*'. The chosen line's C(P)
    // equals the deployed plan's per-input cost.
    std::printf("\n=== explain: candidate plans ===\n");
    for (const sharing::RegistrationResult& registration :
         run->system->registrations()) {
      std::printf("q%d%s\n", registration.query_id,
                  registration.accepted ? "" : " [rejected]");
      auto audit_it = audit_by_query.find(registration.query_id);
      if (audit_it != audit_by_query.end() &&
          audit_it->second->has_measurement()) {
        const sharing::QueryLatencyAudit& audit = *audit_it->second;
        std::printf(
            "    latency: predicted=%.3fms measured p50=%.3fms "
            "p99=%.3fms over %llu stamped items\n",
            audit.predicted_ms, audit.measured_p50_ms,
            audit.measured_p99_ms,
            static_cast<unsigned long long>(audit.stamped_items));
      }
      if (registration.search.candidates.empty()) {
        std::printf("    (strategy bypasses the candidate search)\n");
        continue;
      }
      for (const sharing::CandidatePlanInfo& candidate :
           registration.search.candidates) {
        const char* reuse_peer =
            candidate.reuse_node >= 0 &&
                    static_cast<size_t>(candidate.reuse_node) <
                        topology.peer_count()
                ? topology.peer(candidate.reuse_node).name.c_str()
                : "?";
        std::printf("  %c input=%s reuse=#%d@%s cost=%.6f%s%s\n",
                    candidate.chosen ? '*' : ' ',
                    candidate.input_stream.c_str(),
                    candidate.reused_stream, reuse_peer,
                    candidate.cost,
                    candidate.feasible ? "" : " [infeasible]",
                    candidate.widening ? " [widening]" : "");
      }
    }
  }

  if (!options.metrics_path.empty()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    run->system->ExportMetrics(&registry);
    Status status =
        obs::WriteMetricsFile(registry.Snapshot(), options.metrics_path);
    if (!status.ok()) {
      std::fprintf(stderr, "writing metrics failed: %s\n",
                   status.ToString().c_str());
      return 2;
    }
    std::printf("metrics written to %s\n", options.metrics_path.c_str());
  }
  if (!options.trace_path.empty()) {
    Status status =
        obs::TraceRecorder::Default().WriteJson(options.trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "writing trace failed: %s\n",
                   status.ToString().c_str());
      return 2;
    }
    std::printf("trace written to %s (%zu events)\n",
                options.trace_path.c_str(),
                obs::TraceRecorder::Default().event_count());
  }
  return 0;
}
