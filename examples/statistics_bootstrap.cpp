// Bootstrapping the cost model from observed data. The paper's cost
// function inputs — element sizes and occurrences, frequencies, value
// ranges, reference-element increments — are "obtained from statistics"
// (§3.2). This example shows the full loop: observe a sample of the real
// stream, infer everything with the StatisticsCollector, register the
// stream with the inferred statistics, and let the planner make its
// selectivity- and frequency-based decisions from them.

#include <cstdio>
#include <map>

#include "cost/collector.h"
#include "sharing/system.h"
#include "workload/paper_queries.h"
#include "workload/photon_gen.h"

using namespace streamshare;

int main() {
  // A sample from the telescope, as it would be observed at the source
  // super-peer before announcing the stream.
  workload::PhotonGenConfig gen_config;
  gen_config.hot_regions = {{120.0, 138.0, -49.0, -40.0}};
  gen_config.hot_weights = {2.0};
  workload::PhotonGenerator generator(gen_config);
  std::vector<engine::ItemPtr> sample = generator.Generate(1000);

  cost::StatisticsCollector collector("photons", "photon");
  for (const engine::ItemPtr& photon : sample) {
    Status status = collector.Observe(*photon);
    if (!status.ok()) {
      std::fprintf(stderr, "observe failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }
  // 1000 photons at the configured 100 Hz span 10 simulated seconds.
  Result<cost::StreamStatistics> stats = collector.Build(10.0);
  if (!stats.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }

  std::printf("Inferred from %zu sample photons:\n", sample.size());
  std::printf("  item frequency : %.1f items/s\n",
              stats->item_frequency_hz());
  std::printf("  avg item size  : %.1f bytes\n",
              stats->schema().AvgItemSize());
  auto path = [](const char* text) {
    return xml::Path::Parse(text).value();
  };
  if (auto range = stats->Range(path("en"))) {
    std::printf("  en range       : [%.3f, %.3f] keV\n", range->min,
                range->max);
  }
  if (auto increment = stats->AvgIncrement(path("det_time"))) {
    std::printf("  det_time step  : %.3f per photon (monotone)\n",
                *increment);
  }
  std::printf("  ra monotone?   : %s\n",
              stats->AvgIncrement(path("coord/cel/ra")).has_value()
                  ? "yes (unexpected!)"
                  : "no (correct)");

  // Register the stream straight from the inferred statistics and let the
  // planner work with them.
  sharing::SystemConfig config;
  config.keep_results = true;
  sharing::StreamShareSystem system(network::Topology::ExtendedExample(),
                                    config);
  Status status =
      system.RegisterStream("photons", std::move(stats).value(), 4);
  if (!status.ok()) {
    std::fprintf(stderr, "stream registration failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  Result<sharing::RegistrationResult> q1 = system.RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  if (!q1.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 q1.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nQuery 1 planned against the inferred statistics (cost %.6f):\n"
      "%s\n",
      q1->plan.TotalCost(), q1->plan.ToString().c_str());

  std::map<std::string, std::vector<engine::ItemPtr>> items;
  items["photons"] = generator.Generate(500);
  status = system.Run(items);
  if (!status.ok()) {
    std::fprintf(stderr, "run failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Query 1 delivered %llu items over 500 fresh photons.\n",
              static_cast<unsigned long long>(q1->sink->item_count()));
  return 0;
}
