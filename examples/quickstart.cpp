// Quickstart: register a photon stream and a WXQuery subscription, feed
// synthetic photons through the network, and print the results.
//
//   $ ./quickstart
//
// Walks through the full public API surface: topology construction, stream
// registration, query registration under stream sharing, execution, and
// metrics inspection.

#include <cstdio>
#include <map>

#include "sharing/system.h"
#include "workload/paper_queries.h"
#include "workload/photon_gen.h"
#include "xml/xml_writer.h"

using namespace streamshare;

int main() {
  // 1. A small super-peer backbone: the paper's 8-super-peer example.
  network::Topology topology = network::Topology::ExtendedExample();

  sharing::SystemConfig config;
  config.keep_results = true;
  sharing::StreamShareSystem system(topology, config);

  // 2. Register the photon stream at super-peer SP4 (the telescope's
  //    super-peer) with its schema and statistics.
  workload::PhotonGenConfig gen_config;
  gen_config.hot_regions = {{120.0, 138.0, -49.0, -40.0}};
  gen_config.hot_weights = {2.0};
  Status status = system.RegisterStream(
      "photons", workload::PhotonGenerator::Schema(),
      gen_config.frequency_hz, /*source=*/4);
  if (!status.ok()) {
    std::fprintf(stderr, "stream registration failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  (void)system.SetRange("photons", xml::Path::Parse("coord/cel/ra").value(),
                        {0.0, 360.0});
  (void)system.SetRange("photons",
                        xml::Path::Parse("coord/cel/dec").value(),
                        {-90.0, 90.0});
  (void)system.SetRange("photons", xml::Path::Parse("en").value(),
                        {0.1, 2.4});

  // 3. Register the paper's Query 1 (the vela supernova remnant region) at
  //    super-peer SP1 under the stream sharing strategy.
  Result<sharing::RegistrationResult> q1 = system.RegisterQuery(
      workload::kQuery1, /*vq=*/1, sharing::Strategy::kStreamSharing);
  if (!q1.ok()) {
    std::fprintf(stderr, "query registration failed: %s\n",
                 q1.status().ToString().c_str());
    return 1;
  }
  std::printf("Query 1 registered; evaluation plan:\n%s\n\n",
              q1->plan.ToString().c_str());

  // 4. Query 2 selects a sub-region: stream sharing reuses Query 1's
  //    result stream instead of touching the raw stream again.
  Result<sharing::RegistrationResult> q2 = system.RegisterQuery(
      workload::kQuery2, /*vq=*/7, sharing::Strategy::kStreamSharing);
  if (!q2.ok()) {
    std::fprintf(stderr, "query registration failed: %s\n",
                 q2.status().ToString().c_str());
    return 1;
  }
  std::printf("Query 2 registered; it reuses stream #%d at SP%d:\n%s\n\n",
              q2->plan.inputs[0].reused_stream,
              q2->plan.inputs[0].reuse_node,
              q2->plan.ToString().c_str());

  // 5. Generate photons and run them through the deployed network.
  workload::PhotonGenerator generator(gen_config);
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  items["photons"] = generator.Generate(200);
  status = system.Run(items);
  if (!status.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // 6. Inspect results and measured network usage.
  std::printf("Query 1 produced %llu items, Query 2 produced %llu.\n",
              static_cast<unsigned long long>(q1->sink->item_count()),
              static_cast<unsigned long long>(q2->sink->item_count()));
  if (!q2->sink->items().empty()) {
    std::printf("First Query 2 result:\n%s\n",
                xml::WritePretty(*q2->sink->items().front()).c_str());
  }
  std::printf("Total bytes transmitted in the network: %llu\n",
              static_cast<unsigned long long>(
                  system.metrics().TotalBytes()));
  return 0;
}
