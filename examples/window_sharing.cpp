// Window-aggregate sharing in isolation (§3.3, Fig. 5): computes a fine
// sliding average (|det_time diff 20 step 10|) once, then derives a
// coarser aggregate (|det_time diff 60 step 40|) two ways — directly from
// the item stream, and by recombining the fine aggregate values — and
// shows that both yield identical windows while the recombination
// processes orders of magnitude fewer items.

#include <cstdio>
#include <vector>

#include "engine/executor.h"
#include "engine/window_agg.h"
#include "workload/photon_gen.h"

using namespace streamshare;

int main() {
  xml::Path en = xml::Path::Parse("en").value();
  xml::Path det_time = xml::Path::Parse("det_time").value();
  properties::WindowSpec fine =
      properties::WindowSpec::Diff(det_time, Decimal::FromInt(20),
                                   Decimal::FromInt(10))
          .value();
  properties::WindowSpec coarse =
      properties::WindowSpec::Diff(det_time, Decimal::FromInt(60),
                                   Decimal::FromInt(40))
          .value();

  workload::PhotonGenConfig config;
  workload::PhotonGenerator generator(config);
  std::vector<engine::ItemPtr> photons = generator.Generate(5000);

  engine::OperatorGraph graph;
  // Chain 1: fine aggregation, then recombination into coarse windows.
  auto* fine_agg = graph.Add<engine::WindowAggOp>(
      "fine", properties::AggregateFunc::kAvg, en, fine);
  auto* fine_sink = graph.Add<engine::SinkOp>("fine-sink", true);
  auto* combine = graph.Add<engine::AggCombineOp>(
      "combine", properties::AggregateFunc::kAvg, fine, coarse);
  auto* combined_sink = graph.Add<engine::SinkOp>("combined-sink", true);
  fine_agg->AddDownstream(fine_sink);
  fine_agg->AddDownstream(combine);
  combine->AddDownstream(combined_sink);

  // Chain 2: direct coarse aggregation over the raw items.
  auto* direct = graph.Add<engine::WindowAggOp>(
      "direct", properties::AggregateFunc::kAvg, en, coarse);
  auto* direct_sink = graph.Add<engine::SinkOp>("direct-sink", true);
  direct->AddDownstream(direct_sink);

  Status status = engine::RunStream(fine_agg, photons);
  if (status.ok()) status = engine::RunStream(direct, photons);
  if (!status.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  std::printf("Window-aggregate sharing (Fig. 5)\n");
  std::printf("=================================\n\n");
  std::printf("photons processed          : %zu\n", photons.size());
  std::printf("fine windows (Q3 shape)    : %llu\n",
              static_cast<unsigned long long>(fine_sink->item_count()));
  std::printf("coarse via recombination   : %llu\n",
              static_cast<unsigned long long>(combined_sink->item_count()));
  std::printf("coarse via direct agg      : %llu\n\n",
              static_cast<unsigned long long>(direct_sink->item_count()));

  size_t compared = std::min(combined_sink->items().size(),
                             direct_sink->items().size());
  size_t mismatches = 0;
  for (size_t i = 0; i < compared; ++i) {
    if (!combined_sink->items()[i]->Equals(*direct_sink->items()[i])) {
      ++mismatches;
    }
  }
  std::printf("windows compared           : %zu, mismatches: %zu\n",
              compared, mismatches);

  // Show the first few coarse averages.
  std::printf("\nfirst coarse windows (seq : avg en):\n");
  for (size_t i = 0; i < std::min<size_t>(5, compared); ++i) {
    Result<engine::AggItem> agg =
        engine::ParseAggItem(*combined_sink->items()[i]);
    if (!agg.ok()) continue;
    Result<Decimal> avg = agg->Finalize(properties::AggregateFunc::kAvg);
    std::printf("  %3lld : %s keV\n",
                static_cast<long long>(agg->seq),
                avg.ok() ? avg->ToString().c_str() : "(empty)");
  }
  std::printf(
      "\nThe recombination consumed %llu aggregate items instead of %zu "
      "photons (%.0fx fewer).\n",
      static_cast<unsigned long long>(fine_sink->item_count()),
      photons.size(),
      static_cast<double>(photons.size()) /
          std::max<double>(1.0, static_cast<double>(
                                    fine_sink->item_count())));
  return mismatches == 0 ? 0 : 1;
}
