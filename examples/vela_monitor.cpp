// The paper's running example (§1, Figs. 1/2) end to end: the photons
// stream from the ROSAT-like telescope at SP4, Queries 1–4 registered one
// after another under stream sharing, and a side-by-side comparison with
// data shipping. Prints each query's evaluation plan, what it reuses, and
// the measured network traffic under both regimes.

#include <cstdio>
#include <map>

#include "sharing/system.h"
#include "workload/paper_queries.h"
#include "workload/scenario.h"
#include "xml/xml_writer.h"

using namespace streamshare;

namespace {

struct QuerySpec {
  const char* name;
  const char* text;
  network::NodeId target;
};

const QuerySpec kQueries[] = {
    {"Query 1 (vela region)", workload::kQuery1, 1},
    {"Query 2 (RX J0852.0-4622, inside vela)", workload::kQuery2, 7},
    {"Query 3 (sliding avg energy over vela)", workload::kQuery3, 3},
    {"Query 4 (coarser filtered avg)", workload::kQuery4, 0},
};

Result<uint64_t> RunAll(sharing::Strategy strategy, bool verbose) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/4);
  SS_ASSIGN_OR_RETURN(
      auto system,
      workload::BuildSystem(scenario, sharing::SystemConfig{}));

  for (const QuerySpec& query : kQueries) {
    SS_ASSIGN_OR_RETURN(
        sharing::RegistrationResult result,
        system->RegisterQuery(query.text, query.target, strategy));
    if (verbose) {
      std::printf("-- %s registered at SP%d\n", query.name, query.target);
      const sharing::InputPlan& input = result.plan.inputs[0];
      if (input.reused_stream > 0) {
        std::printf("   reuses derived stream #%d, tapped at SP%d\n",
                    input.reused_stream, input.reuse_node);
      } else {
        std::printf("   uses the original stream at SP%d\n",
                    input.reuse_node);
      }
      for (const sharing::EngineOpSpec& op : input.ops) {
        std::printf("   installs %s\n", op.ToString().c_str());
      }
      std::printf("   plan cost %.6f\n\n", input.cost);
    }
  }

  workload::PhotonGenerator generator(scenario.streams[0].gen);
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  items["photons"] = generator.Generate(3000);
  SS_RETURN_IF_ERROR(system->Run(items));
  return system->metrics().TotalBytes();
}

}  // namespace

int main() {
  std::printf(
      "Vela monitor — the paper's running example under stream sharing\n"
      "===============================================================\n\n");
  Result<uint64_t> sharing_bytes =
      RunAll(sharing::Strategy::kStreamSharing, /*verbose=*/true);
  if (!sharing_bytes.ok()) {
    std::fprintf(stderr, "stream sharing run failed: %s\n",
                 sharing_bytes.status().ToString().c_str());
    return 1;
  }
  Result<uint64_t> shipping_bytes =
      RunAll(sharing::Strategy::kDataShipping, /*verbose=*/false);
  if (!shipping_bytes.ok()) {
    std::fprintf(stderr, "data shipping run failed: %s\n",
                 shipping_bytes.status().ToString().c_str());
    return 1;
  }

  std::printf("Network traffic for 3000 photons:\n");
  std::printf("  data shipping : %10llu bytes\n",
              static_cast<unsigned long long>(*shipping_bytes));
  std::printf("  stream sharing: %10llu bytes  (%.1fx less)\n",
              static_cast<unsigned long long>(*sharing_bytes),
              static_cast<double>(*shipping_bytes) /
                  static_cast<double>(std::max<uint64_t>(1, *sharing_bytes)));
  return 0;
}
