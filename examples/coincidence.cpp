// Multi-input subscriptions: a coincidence search across two telescopes.
// Two photon streams enter the network at different super-peers; the
// subscription binds both and correlates photons with nearly equal
// energies. Algorithm 1 plans each input independently (each side reuses
// whatever streams already flow), and the combination happens in the
// final post-processing step at the query's super-peer — whose result,
// per the paper, is never itself shared.

#include <cstdio>
#include <map>

#include "sharing/system.h"
#include "workload/photon_gen.h"
#include "xml/xml_writer.h"

using namespace streamshare;

namespace {

constexpr const char* kHighEnergyNorth =
    "<hits> { for $p in stream(\"north\")/photons/photon "
    "where $p/en >= 2.0 "
    "return <hit> { $p/en } { $p/det_time } </hit> } </hits>";

constexpr const char* kCoincidence =
    "<pairs> { for $p in stream(\"north\")/photons/photon "
    "for $q in stream(\"south\")/photons/photon "
    "where $p/en >= 2.0 and $q/en >= 2.0 "
    "and $p/en <= $q/en + 0.05 and $q/en <= $p/en + 0.05 "
    "return <pair> { $p/en } { $q/en } </pair> } </pairs>";

}  // namespace

int main() {
  sharing::SystemConfig config;
  config.keep_results = true;
  sharing::StreamShareSystem system(network::Topology::ExtendedExample(),
                                    config);

  // Two telescopes: north at SP4, south at SP2.
  for (auto [name, node] :
       {std::make_pair("north", 4), std::make_pair("south", 2)}) {
    Status status = system.RegisterStream(
        name, workload::PhotonGenerator::Schema(), 100.0, node);
    if (!status.ok()) {
      std::fprintf(stderr, "stream registration failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    (void)system.SetRange(name, xml::Path::Parse("en").value(),
                          {0.1, 2.4});
  }

  // A single-input high-energy monitor first: the coincidence search's
  // north side will piggyback on its stream.
  Result<sharing::RegistrationResult> monitor = system.RegisterQuery(
      kHighEnergyNorth, 1, sharing::Strategy::kStreamSharing);
  if (!monitor.ok()) {
    std::fprintf(stderr, "monitor failed: %s\n",
                 monitor.status().ToString().c_str());
    return 1;
  }
  std::printf("High-energy monitor registered at SP1.\n");

  Result<sharing::RegistrationResult> pairs = system.RegisterQuery(
      kCoincidence, 1, sharing::Strategy::kStreamSharing);
  if (!pairs.ok()) {
    std::fprintf(stderr, "coincidence failed: %s\n",
                 pairs.status().ToString().c_str());
    return 1;
  }
  std::printf("Coincidence search registered at SP1; per-input plans:\n");
  for (const sharing::InputPlan& input : pairs->plan.inputs) {
    std::printf("  input '%s': reuses stream #%d at SP%d%s\n",
                input.input_stream_name.c_str(), input.reused_stream,
                input.reuse_node,
                system.registry().stream(input.reused_stream).IsOriginal()
                    ? " (original)"
                    : " (derived — shared with the monitor)");
  }

  // Run both telescopes.
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  workload::PhotonGenConfig north_config;
  north_config.seed = 7;
  workload::PhotonGenConfig south_config;
  south_config.seed = 8;
  items["north"] = workload::PhotonGenerator(north_config).Generate(600);
  items["south"] = workload::PhotonGenerator(south_config).Generate(600);
  Status status = system.Run(items);
  if (!status.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  std::printf("\nmonitor hits : %llu\n",
              static_cast<unsigned long long>(monitor->sink->item_count()));
  std::printf("coincidences : %llu\n",
              static_cast<unsigned long long>(pairs->sink->item_count()));
  if (!pairs->sink->items().empty()) {
    std::printf("first pair   : %s\n",
                xml::WriteCompact(*pairs->sink->items().front()).c_str());
  }
  return 0;
}
