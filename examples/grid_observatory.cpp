// A larger deployment: the 4×4 grid with two photon streams and a
// template-generated query population, registered incrementally under
// stream sharing. Prints a running account of how much each new
// subscription reuses — the multi-subscription optimization at work — and
// a final sharing census.

#include <cstdio>
#include <map>

#include "workload/scenario.h"

using namespace streamshare;

int main() {
  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/21, /*query_count=*/40);
  Result<std::unique_ptr<sharing::StreamShareSystem>> built =
      workload::BuildSystem(scenario, sharing::SystemConfig{});
  if (!built.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<sharing::StreamShareSystem> system = std::move(*built);

  std::printf("Grid observatory — 16 super-peers, 2 streams, %zu queries\n",
              scenario.queries.size());
  std::printf("==========================================================\n\n");

  int reused_derived = 0, used_original = 0;
  for (size_t i = 0; i < scenario.queries.size(); ++i) {
    const workload::QuerySpec& query = scenario.queries[i];
    Result<sharing::RegistrationResult> result = system->RegisterQuery(
        query.text, query.target, sharing::Strategy::kStreamSharing);
    if (!result.ok()) {
      std::fprintf(stderr, "query %zu failed: %s\n", i,
                   result.status().ToString().c_str());
      return 1;
    }
    const sharing::InputPlan& input = result->plan.inputs[0];
    bool reuses_derived =
        !system->registry().stream(input.reused_stream).IsOriginal();
    if (reuses_derived) {
      ++reused_derived;
    } else {
      ++used_original;
    }
    std::printf(
        "q%02zu @SP%-2d %-28s -> %s #%d at SP%-2d (%d nodes searched, "
        "%d candidates, cost %.4f)\n",
        i, query.target,
        query.text.find("let $a") != std::string::npos
            ? "window aggregate"
            : "selection/projection",
        reuses_derived ? "reuses stream" : "taps original",
        input.reused_stream, input.reuse_node,
        result->search.nodes_visited, result->search.candidates_matched,
        input.cost);
  }

  std::printf("\nSharing census\n");
  std::printf("  queries reusing a derived stream : %d\n", reused_derived);
  std::printf("  queries tapping an original      : %d\n", used_original);
  std::printf("  streams now flowing in the network: %zu (2 originals)\n",
              system->registry().streams().size());

  // Run photons through the final deployment and report per-stream flow.
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  for (const workload::StreamSpec& stream : scenario.streams) {
    workload::PhotonGenerator generator(stream.gen);
    items[stream.name] = generator.Generate(1500);
  }
  Status status = system->Run(items);
  if (!status.ok()) {
    std::fprintf(stderr, "execution failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  uint64_t produced = 0;
  for (const sharing::RegistrationResult& r : system->registrations()) {
    if (r.sink != nullptr) produced += r.sink->item_count();
  }
  std::printf("\nAfter 1500 photons per stream:\n");
  std::printf("  result items delivered to subscribers: %llu\n",
              static_cast<unsigned long long>(produced));
  std::printf("  bytes transmitted in the backbone    : %llu\n",
              static_cast<unsigned long long>(
                  system->metrics().TotalBytes()));
  return 0;
}
