// End-to-end integration tests: the paper's running example (Q1–Q4 over
// the photons stream on the Fig. 1/2 topology) registered under all three
// strategies, executed on generated photons, with results and sharing
// behaviour verified.

#include <gtest/gtest.h>

#include "sharing/system.h"
#include "workload/paper_queries.h"
#include "workload/scenario.h"

namespace streamshare {
namespace {

using sharing::RegistrationResult;
using sharing::Strategy;
using sharing::StreamShareSystem;
using sharing::SystemConfig;
using workload::ExtendedExampleScenario;
using workload::ScenarioSpec;

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    scenario_ = ExtendedExampleScenario(/*seed=*/11, /*query_count=*/4);
    SystemConfig config;
    config.keep_results = true;
    Result<std::unique_ptr<StreamShareSystem>> system =
        workload::BuildSystem(scenario_, config);
    ASSERT_TRUE(system.ok()) << system.status();
    system_ = std::move(system).value();
  }

  Result<RegistrationResult> Register(const char* text, int node,
                                      Strategy strategy) {
    return system_->RegisterQuery(text, node, strategy);
  }

  Status RunPhotons(size_t count) {
    workload::PhotonGenerator generator(scenario_.streams[0].gen);
    std::map<std::string, std::vector<engine::ItemPtr>> items;
    items["photons"] = generator.Generate(count);
    return system_->Run(items);
  }

  ScenarioSpec scenario_;
  std::unique_ptr<StreamShareSystem> system_;
};

TEST_F(EndToEndTest, PaperQueriesParseAnalyzeAndRegister) {
  for (const char* text : {workload::kQuery1, workload::kQuery2,
                           workload::kQuery3, workload::kQuery4}) {
    Result<RegistrationResult> result =
        Register(text, 1, Strategy::kStreamSharing);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->accepted);
  }
}

TEST_F(EndToEndTest, Query2ReusesQuery1Stream) {
  Result<RegistrationResult> q1 =
      Register(workload::kQuery1, 1, Strategy::kStreamSharing);
  ASSERT_TRUE(q1.ok()) << q1.status();
  Result<RegistrationResult> q2 =
      Register(workload::kQuery2, 7, Strategy::kStreamSharing);
  ASSERT_TRUE(q2.ok()) << q2.status();

  // Q2's plan must reuse the derived stream Q1 registered (id 1; id 0 is
  // the original photons stream), not ship the raw stream again.
  ASSERT_EQ(q2->plan.inputs.size(), 1u);
  EXPECT_GT(q2->plan.inputs[0].reused_stream, 0)
      << q2->plan.ToString();
}

TEST_F(EndToEndTest, Query4ReusesQuery3Aggregate) {
  Result<RegistrationResult> q3 =
      Register(workload::kQuery3, 3, Strategy::kStreamSharing);
  ASSERT_TRUE(q3.ok()) << q3.status();
  Result<RegistrationResult> q4 =
      Register(workload::kQuery4, 0, Strategy::kStreamSharing);
  ASSERT_TRUE(q4.ok()) << q4.status();
  ASSERT_EQ(q4->plan.inputs.size(), 1u);
  EXPECT_GT(q4->plan.inputs[0].reused_stream, 0)
      << q4->plan.ToString();
  // The residual work is a window recombination plus the result filter.
  bool has_combine = false;
  for (const auto& op : q4->plan.inputs[0].ops) {
    if (op.kind == sharing::EngineOpSpec::Kind::kAggCombine) {
      has_combine = true;
    }
  }
  EXPECT_TRUE(has_combine) << q4->plan.ToString();
}

TEST_F(EndToEndTest, ResultsMatchAcrossStrategies) {
  // Register Q1+Q2 under stream sharing here, and under data shipping in a
  // twin system; both must produce identical result items.
  Result<RegistrationResult> q1 =
      Register(workload::kQuery1, 1, Strategy::kStreamSharing);
  ASSERT_TRUE(q1.ok()) << q1.status();
  Result<RegistrationResult> q2 =
      Register(workload::kQuery2, 7, Strategy::kStreamSharing);
  ASSERT_TRUE(q2.ok()) << q2.status();
  ASSERT_TRUE(RunPhotons(500).ok());

  SystemConfig config;
  config.keep_results = true;
  Result<std::unique_ptr<StreamShareSystem>> twin =
      workload::BuildSystem(scenario_, config);
  ASSERT_TRUE(twin.ok()) << twin.status();
  Result<RegistrationResult> t1 = (*twin)->RegisterQuery(
      workload::kQuery1, 1, Strategy::kDataShipping);
  ASSERT_TRUE(t1.ok()) << t1.status();
  Result<RegistrationResult> t2 = (*twin)->RegisterQuery(
      workload::kQuery2, 7, Strategy::kDataShipping);
  ASSERT_TRUE(t2.ok()) << t2.status();
  {
    workload::PhotonGenerator generator(scenario_.streams[0].gen);
    std::map<std::string, std::vector<engine::ItemPtr>> items;
    items["photons"] = generator.Generate(500);
    ASSERT_TRUE((*twin)->Run(items).ok());
  }

  ASSERT_EQ(q1->sink->item_count(), t1->sink->item_count());
  ASSERT_EQ(q2->sink->item_count(), t2->sink->item_count());
  for (size_t i = 0; i < q1->sink->items().size(); ++i) {
    EXPECT_TRUE(q1->sink->items()[i]->Equals(*t1->sink->items()[i]));
  }
  for (size_t i = 0; i < q2->sink->items().size(); ++i) {
    EXPECT_TRUE(q2->sink->items()[i]->Equals(*t2->sink->items()[i]));
  }
  // Q2's results must be non-trivial for the comparison to mean anything.
  EXPECT_GT(q1->sink->item_count(), 0u);
  EXPECT_GT(q2->sink->item_count(), 0u);
}

TEST_F(EndToEndTest, SharingReducesTrafficVersusDataShipping) {
  ScenarioSpec scenario = ExtendedExampleScenario(11, 25);
  SystemConfig config;
  Result<workload::ScenarioRun> sharing = workload::RunScenario(
      scenario, Strategy::kStreamSharing, config, 400);
  ASSERT_TRUE(sharing.ok()) << sharing.status();
  Result<workload::ScenarioRun> shipping = workload::RunScenario(
      scenario, Strategy::kDataShipping, config, 400);
  ASSERT_TRUE(shipping.ok()) << shipping.status();

  EXPECT_EQ(sharing->registration_failures, 0);
  EXPECT_EQ(shipping->registration_failures, 0);
  EXPECT_EQ(sharing->accepted, 25);

  uint64_t sharing_bytes = sharing->system->metrics().TotalBytes();
  uint64_t shipping_bytes = shipping->system->metrics().TotalBytes();
  EXPECT_LT(sharing_bytes, shipping_bytes / 2)
      << "stream sharing should transmit far less than data shipping";
}

TEST_F(EndToEndTest, AggregateValuesMatchDirectComputation) {
  // Q3 under stream sharing (after Q1, so it reuses Q1's stream) must
  // yield the same averages as Q3 alone under query shipping.
  Result<RegistrationResult> q1 =
      Register(workload::kQuery1, 1, Strategy::kStreamSharing);
  ASSERT_TRUE(q1.ok()) << q1.status();
  Result<RegistrationResult> q3 =
      Register(workload::kQuery3, 3, Strategy::kStreamSharing);
  ASSERT_TRUE(q3.ok()) << q3.status();
  ASSERT_TRUE(RunPhotons(2000).ok());

  SystemConfig config;
  config.keep_results = true;
  Result<std::unique_ptr<StreamShareSystem>> twin =
      workload::BuildSystem(scenario_, config);
  ASSERT_TRUE(twin.ok());
  Result<RegistrationResult> t3 = (*twin)->RegisterQuery(
      workload::kQuery3, 3, Strategy::kQueryShipping);
  ASSERT_TRUE(t3.ok()) << t3.status();
  {
    workload::PhotonGenerator generator(scenario_.streams[0].gen);
    std::map<std::string, std::vector<engine::ItemPtr>> items;
    items["photons"] = generator.Generate(2000);
    ASSERT_TRUE((*twin)->Run(items).ok());
  }
  ASSERT_GT(q3->sink->item_count(), 0u);
  ASSERT_EQ(q3->sink->item_count(), t3->sink->item_count());
  for (size_t i = 0; i < q3->sink->items().size(); ++i) {
    EXPECT_TRUE(q3->sink->items()[i]->Equals(*t3->sink->items()[i]))
        << "window " << i;
  }
}

}  // namespace
}  // namespace streamshare
