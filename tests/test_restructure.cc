// Unit tests for the restructuring operator (return-clause evaluation at
// the query's super-peer): element construction, path/variable output,
// conditionals, sequences, and aggregate finalization.

#include "engine/restructure.h"

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/window_agg.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace streamshare::engine {
namespace {

std::shared_ptr<const wxquery::AnalyzedQuery> Analyze(const char* text) {
  Result<wxquery::AnalyzedQuery> analyzed =
      wxquery::ParseAndAnalyze(text);
  EXPECT_TRUE(analyzed.ok()) << analyzed.status() << "\n" << text;
  return std::make_shared<const wxquery::AnalyzedQuery>(
      std::move(analyzed).value());
}

ItemPtr Photon(const char* ra, const char* en) {
  auto node = std::make_unique<xml::XmlNode>("photon");
  auto* cel = node->AddChild("coord")->AddChild("cel");
  cel->AddLeaf("ra", ra);
  cel->AddLeaf("dec", "-45.0");
  node->AddLeaf("en", en);
  return MakeItem(std::move(node));
}

TEST(RestructureTest, BuildsReturnElements) {
  auto query = Analyze(
      "<photons> { for $p in stream(\"photons\")/photons/photon "
      "where $p/en >= 1.0 "
      "return <vela> { $p/coord/cel/ra } { $p/en } </vela> } </photons>");
  OperatorGraph graph;
  auto* restructure = graph.Add<RestructureOp>("r", query);
  auto* sink = graph.Add<SinkOp>("s", true);
  restructure->AddDownstream(sink);

  ASSERT_TRUE(RunStream(restructure, {Photon("120.5", "1.5")}).ok());
  ASSERT_EQ(sink->item_count(), 1u);
  EXPECT_EQ(xml::WriteCompact(*sink->items()[0]),
            "<vela><ra>120.5</ra><en>1.5</en></vela>");
}

TEST(RestructureTest, WholeItemOutput) {
  auto query = Analyze(
      "<out> { for $p in stream(\"photons\")/photons/photon "
      "where $p/en >= 0 return $p } </out>");
  OperatorGraph graph;
  auto* restructure = graph.Add<RestructureOp>("r", query);
  auto* sink = graph.Add<SinkOp>("s", true);
  restructure->AddDownstream(sink);
  ItemPtr photon = Photon("1.0", "2.0");
  ASSERT_TRUE(RunStream(restructure, {photon}).ok());
  ASSERT_EQ(sink->item_count(), 1u);
  EXPECT_TRUE(sink->items()[0]->Equals(*photon));
}

TEST(RestructureTest, ConditionalBranches) {
  auto query = Analyze(
      "<out> { for $p in stream(\"photons\")/photons/photon "
      "where $p/en >= 0 "
      "return if $p/en >= 1.0 then <hard> { $p/en } </hard> "
      "else <soft> { $p/en } </soft> } </out>");
  OperatorGraph graph;
  auto* restructure = graph.Add<RestructureOp>("r", query);
  auto* sink = graph.Add<SinkOp>("s", true);
  restructure->AddDownstream(sink);
  ASSERT_TRUE(
      RunStream(restructure, {Photon("1", "1.5"), Photon("2", "0.5")})
          .ok());
  ASSERT_EQ(sink->item_count(), 2u);
  EXPECT_EQ(sink->items()[0]->name(), "hard");
  EXPECT_EQ(sink->items()[1]->name(), "soft");
}

TEST(RestructureTest, SequenceEmitsMultipleItems) {
  auto query = Analyze(
      "<out> { for $p in stream(\"photons\")/photons/photon "
      "where $p/en >= 0 "
      "return ( <a> { $p/en } </a>, <b> { $p/coord/cel/ra } </b> ) } "
      "</out>");
  OperatorGraph graph;
  auto* restructure = graph.Add<RestructureOp>("r", query);
  auto* sink = graph.Add<SinkOp>("s", true);
  restructure->AddDownstream(sink);
  ASSERT_TRUE(RunStream(restructure, {Photon("7.0", "1.0")}).ok());
  ASSERT_EQ(sink->item_count(), 2u);
  EXPECT_EQ(sink->items()[0]->name(), "a");
  EXPECT_EQ(sink->items()[1]->name(), "b");
}

TEST(RestructureTest, NestedElementConstructors) {
  auto query = Analyze(
      "<out> { for $p in stream(\"photons\")/photons/photon "
      "where $p/en >= 0 "
      "return <hit><pos> { $p/coord/cel/ra } </pos><meta><src/></meta>"
      "</hit> } </out>");
  OperatorGraph graph;
  auto* restructure = graph.Add<RestructureOp>("r", query);
  auto* sink = graph.Add<SinkOp>("s", true);
  restructure->AddDownstream(sink);
  ASSERT_TRUE(RunStream(restructure, {Photon("3.0", "1.0")}).ok());
  EXPECT_EQ(xml::WriteCompact(*sink->items()[0]),
            "<hit><pos><ra>3.0</ra></pos><meta><src/></meta></hit>");
}

TEST(RestructureTest, AggregateValueOutput) {
  auto query = Analyze(
      "<photons> { for $w in stream(\"photons\")/photons/photon "
      "|det_time diff 20 step 10| let $a := avg($w/en) "
      "return <avg_en> { $a } </avg_en> } </photons>");
  OperatorGraph graph;
  auto* restructure = graph.Add<RestructureOp>("r", query);
  auto* sink = graph.Add<SinkOp>("s", true);
  restructure->AddDownstream(sink);

  AggItem window;
  window.seq = 3;
  window.sum = Decimal::Parse("4.5").value();
  window.count = 3;
  AggItem empty;
  empty.seq = 4;
  empty.sum = Decimal();
  empty.count = 0;
  ASSERT_TRUE(
      RunStream(restructure, {MakeAggItem(window), MakeAggItem(empty)})
          .ok());
  // The empty window is skipped; the full one yields avg 1.5.
  ASSERT_EQ(sink->item_count(), 1u);
  EXPECT_EQ(sink->items()[0]->name(), "avg_en");
  EXPECT_EQ(Decimal::Parse(sink->items()[0]->text()).value(),
            Decimal::Parse("1.5").value());
}

TEST(RestructureTest, PathOutputWithMultipleMatches) {
  auto query = Analyze(
      "<out> { for $p in stream(\"s\")/root/item where $p/n >= 0 "
      "return <all> { $p/tag } </all> } </out>");
  OperatorGraph graph;
  auto* restructure = graph.Add<RestructureOp>("r", query);
  auto* sink = graph.Add<SinkOp>("s", true);
  restructure->AddDownstream(sink);

  auto item = std::make_unique<xml::XmlNode>("item");
  item->AddLeaf("n", "1");
  item->AddLeaf("tag", "x");
  item->AddLeaf("tag", "y");
  ASSERT_TRUE(RunStream(restructure, {MakeItem(std::move(item))}).ok());
  EXPECT_EQ(xml::WriteCompact(*sink->items()[0]),
            "<all><tag>x</tag><tag>y</tag></all>");
}

TEST(RestructureTest, OutputPathConditionsFilterSubtrees) {
  auto query = Analyze(
      "<out> { for $p in stream(\"s\")/root/item where $p/n >= 0 "
      "return <big> { $p/reading[v >= 10] } </big> } </out>");
  OperatorGraph graph;
  auto* restructure = graph.Add<RestructureOp>("r", query);
  auto* sink = graph.Add<SinkOp>("s", true);
  restructure->AddDownstream(sink);

  auto item = std::make_unique<xml::XmlNode>("item");
  item->AddLeaf("n", "1");
  item->AddChild("reading")->AddLeaf("v", "5");
  item->AddChild("reading")->AddLeaf("v", "15");
  ASSERT_TRUE(RunStream(restructure, {MakeItem(std::move(item))}).ok());
  EXPECT_EQ(xml::WriteCompact(*sink->items()[0]),
            "<big><reading><v>15</v></reading></big>");
}

TEST(RestructureTest, MidPathConditionsFilterAtTheirStep) {
  // π̄ allows conditions after any step (Definition 2.1): keep only
  // readings of sensors whose quality is at least 5, then output their
  // calibrated values above 10.
  auto query = Analyze(
      "<out> { for $p in stream(\"s\")/root/item where $p/n >= 0 "
      "return <good> { $p/sensor[quality >= 5]/reading[v >= 10] } "
      "</good> } </out>");
  OperatorGraph graph;
  auto* restructure = graph.Add<RestructureOp>("r", query);
  auto* sink = graph.Add<SinkOp>("s", true);
  restructure->AddDownstream(sink);

  auto item = std::make_unique<xml::XmlNode>("item");
  item->AddLeaf("n", "1");
  // Sensor A: quality 7 — readings 12 (keep) and 3 (drop).
  auto* a = item->AddChild("sensor");
  a->AddLeaf("quality", "7");
  a->AddChild("reading")->AddLeaf("v", "12");
  a->AddChild("reading")->AddLeaf("v", "3");
  // Sensor B: quality 2 — whole subtree dropped at the first step.
  auto* b = item->AddChild("sensor");
  b->AddLeaf("quality", "2");
  b->AddChild("reading")->AddLeaf("v", "99");
  ASSERT_TRUE(RunStream(restructure, {MakeItem(std::move(item))}).ok());
  ASSERT_EQ(sink->item_count(), 1u);
  EXPECT_EQ(xml::WriteCompact(*sink->items()[0]),
            "<good><reading><v>12</v></reading></good>");
}

TEST(RestructureTest, MissingElementsYieldEmptyOutput) {
  auto query = Analyze(
      "<out> { for $p in stream(\"photons\")/photons/photon "
      "where $p/en >= 0 "
      "return <v> { $p/coord/det/dx } </v> } </out>");
  OperatorGraph graph;
  auto* restructure = graph.Add<RestructureOp>("r", query);
  auto* sink = graph.Add<SinkOp>("s", true);
  restructure->AddDownstream(sink);
  ASSERT_TRUE(RunStream(restructure, {Photon("1", "1")}).ok());
  // No det/dx in the item: the constructed element is simply empty.
  EXPECT_EQ(xml::WriteCompact(*sink->items()[0]), "<v/>");
}

}  // namespace
}  // namespace streamshare::engine
