// Failure-and-recovery tests: refcounted Unsubscribe (shared streams
// survive while consumers remain, are garbage-collected after the last
// one leaves), FailPeer / CutLink recovery reports, dead-target teardown,
// and the gap-not-garbage guarantee — a re-planned subscription's
// post-recovery output is item-identical to a fresh resume-mode run over
// the same damaged topology.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sharing/system.h"
#include "workload/paper_queries.h"
#include "workload/photon_gen.h"

namespace streamshare {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

Status InstallPhotonStatistics(sharing::StreamShareSystem* system) {
  SS_RETURN_IF_ERROR(
      system->SetRange("photons", P("coord/cel/ra"), {0.0, 360.0}));
  SS_RETURN_IF_ERROR(
      system->SetRange("photons", P("coord/cel/dec"), {-90.0, 90.0}));
  SS_RETURN_IF_ERROR(system->SetRange("photons", P("en"), {0.1, 2.4}));
  return system->SetAvgIncrement("photons", P("det_time"), 0.5);
}

std::vector<engine::ItemPtr> GeneratePhotons(size_t count) {
  workload::PhotonGenConfig config;
  config.hot_regions = {{120.0, 138.0, -49.0, -40.0}};
  config.hot_weights = {2.0};
  workload::PhotonGenerator generator(config);
  return generator.Generate(count);
}

std::map<std::string, std::vector<engine::ItemPtr>> Slice(
    const std::vector<engine::ItemPtr>& items, size_t from, size_t to) {
  std::map<std::string, std::vector<engine::ItemPtr>> batch;
  batch["photons"].assign(items.begin() + from, items.begin() + to);
  return batch;
}

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { Rebuild({}); }

  void Rebuild(sharing::SystemConfig config) {
    system_ = std::make_unique<sharing::StreamShareSystem>(
        network::Topology::ExtendedExample(), config);
    ASSERT_TRUE(system_
                    ->RegisterStream("photons",
                                     workload::PhotonGenerator::Schema(),
                                     100.0, 4)
                    .ok());
    ASSERT_TRUE(InstallPhotonStatistics(system_.get()).ok());
  }

  sharing::RegistrationResult Register(const char* query,
                                       network::NodeId target) {
    Result<sharing::RegistrationResult> result = system_->RegisterQuery(
        query, target, sharing::Strategy::kStreamSharing);
    EXPECT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->accepted);
    return *result;
  }

  double TotalBandwidth() {
    double total = 0.0;
    for (size_t link = 0; link < system_->topology().link_count(); ++link) {
      total += system_->state().UsedBandwidthKbps(static_cast<int>(link));
    }
    return total;
  }

  std::unique_ptr<sharing::StreamShareSystem> system_;
};

// --- Refcounted Unsubscribe ---------------------------------------------

TEST_F(RecoveryTest, SharedStreamSurvivesFirstUnsubscribe) {
  sharing::RegistrationResult q1 = Register(workload::kQuery1, 1);
  sharing::RegistrationResult q2 = Register(workload::kQuery2, 7);
  ASSERT_GT(q2.plan.inputs[0].reused_stream, 0);  // q2 consumes q1's

  // The consumer blocks plain deregistration but not Unsubscribe.
  ASSERT_TRUE(system_->UnregisterQuery(q1.query_id).IsInvalidArgument());
  ASSERT_TRUE(system_->Unsubscribe(q1.query_id).ok());
  EXPECT_FALSE(system_->IsActive(q1.query_id));
  EXPECT_TRUE(system_->IsActive(q2.query_id));

  // The shared stream keeps flowing for the surviving consumer; the
  // departed query's private tail is gone.
  std::vector<engine::ItemPtr> items = GeneratePhotons(1500);
  ASSERT_TRUE(system_->Feed(Slice(items, 0, 1500)).ok());
  ASSERT_TRUE(system_->Shutdown().ok());
  EXPECT_GT(q2.sink->item_count(), 0u);
  EXPECT_EQ(q1.sink->item_count(), 0u);
}

TEST_F(RecoveryTest, LastUnsubscribeGarbageCollects) {
  sharing::RegistrationResult q1 = Register(workload::kQuery1, 1);
  sharing::RegistrationResult q2 = Register(workload::kQuery2, 7);
  ASSERT_GT(q2.plan.inputs[0].reused_stream, 0);
  ASSERT_GT(TotalBandwidth(), 0.0);

  ASSERT_TRUE(system_->Unsubscribe(q1.query_id).ok());
  ASSERT_GT(TotalBandwidth(), 0.0);  // q2 still holds the chain

  ASSERT_TRUE(system_->Unsubscribe(q2.query_id).ok());
  EXPECT_NEAR(TotalBandwidth(), 0.0, 1e-9);

  // The GC'd stream is retired: a fresh identical query cannot reuse it
  // and taps the original instead.
  sharing::RegistrationResult again = Register(workload::kQuery1, 1);
  EXPECT_EQ(again.plan.inputs[0].reused_stream, 0);
}

TEST_F(RecoveryTest, UnsubscribeInvalidIdRejected) {
  EXPECT_TRUE(system_->Unsubscribe(-1).IsNotFound());
  EXPECT_TRUE(system_->Unsubscribe(99).IsNotFound());
  sharing::RegistrationResult q1 = Register(workload::kQuery1, 1);
  ASSERT_TRUE(system_->Unsubscribe(q1.query_id).ok());
  EXPECT_TRUE(system_->Unsubscribe(q1.query_id).IsNotFound());
}

// --- FailPeer ------------------------------------------------------------

TEST_F(RecoveryTest, FailPeerReplansSurvivorsAndTearsDownTargets) {
  sharing::RegistrationResult q1 = Register(workload::kQuery1, 1);
  sharing::RegistrationResult q2 = Register(workload::kQuery2, 7);
  sharing::RegistrationResult q3 = Register(workload::kQuery3, 3);
  sharing::RegistrationResult q4 = Register(workload::kQuery4, 0);

  std::vector<engine::ItemPtr> items = GeneratePhotons(1000);
  ASSERT_TRUE(system_->Feed(Slice(items, 0, 500)).ok());
  uint64_t q1_before = q1.sink->item_count();

  Result<recover::RecoveryReport> report = system_->FailPeer(1);
  ASSERT_TRUE(report.ok()) << report.status();
  // SP1 hosted q1: torn down. The others lose their shared chain (it ran
  // through the severed region) and are re-planned onto survivors.
  EXPECT_EQ(report->dead_targets, 1u);
  EXPECT_GE(report->replans, 1u);
  EXPECT_EQ(report->lost_queries, 0u);
  bool q1_reported = false;
  for (const recover::QueryRecovery& rec : report->queries) {
    if (rec.query_id == q1.query_id) {
      q1_reported = true;
      EXPECT_EQ(rec.outcome, recover::QueryRecovery::Outcome::kDeadTarget);
    }
  }
  EXPECT_TRUE(q1_reported);
  // Torn-down queries have no epoch snapshot — they are gone.
  EXPECT_EQ(report->snapshots.count(q1.query_id), 0u);
  EXPECT_FALSE(system_->IsActive(q1.query_id));

  // Post-recovery feeding reaches the re-planned queries; the dead
  // target's sink is frozen at its pre-failure state.
  ASSERT_TRUE(system_->Feed(Slice(items, 500, 1000)).ok());
  ASSERT_TRUE(system_->Shutdown().ok());
  EXPECT_EQ(q1.sink->item_count(), q1_before);
  ASSERT_EQ(report->snapshots.count(q2.query_id), 1u);
  EXPECT_GE(q2.sink->item_count(),
            report->snapshots.at(q2.query_id).items);

  // recovery_reports() retains the event; the obs counters fold it in.
  ASSERT_EQ(system_->recovery_reports().size(), 1u);
  EXPECT_EQ(system_->recovery_reports()[0].trigger, "fail-peer SP1");
  (void)q3;
  (void)q4;
}

TEST_F(RecoveryTest, FailPeerIsTerminalPerPeer) {
  Register(workload::kQuery1, 1);
  ASSERT_TRUE(system_->FailPeer(1).ok());
  EXPECT_FALSE(system_->FailPeer(1).ok());          // already dead
  EXPECT_FALSE(system_->FailPeer("SP1").ok());      // by name, same peer
  EXPECT_FALSE(system_->FailPeer("nope").ok());     // unknown name
  EXPECT_TRUE(system_->FailPeer(7).ok());           // others still fail
}

// --- CutLink and gap-not-garbage ----------------------------------------

network::Topology Triangle() {
  network::Topology topology;
  topology.AddPeer("SP0", 100000.0);
  topology.AddPeer("SP1", 100000.0);
  topology.AddPeer("SP2", 100000.0);
  EXPECT_TRUE(topology.AddLink(0, 1, 100000.0).ok());
  EXPECT_TRUE(topology.AddLink(1, 2, 100000.0).ok());
  EXPECT_TRUE(topology.AddLink(0, 2, 100000.0).ok());
  return topology;
}

constexpr const char* kCountWindowQuery =
    "<photons> { for $w in stream(\"photons\")/photons/photon "
    "|count 10 step 10| let $a := sum($w/en) "
    "return <agg_en> { $a } </agg_en> } </photons>";

/// Builds a triangle system with the photon stream at SP0 and the
/// count-window query at SP2, content hashing enabled.
sharing::RegistrationResult SetUpTriangle(
    std::unique_ptr<sharing::StreamShareSystem>* system,
    sharing::SystemConfig config) {
  *system = std::make_unique<sharing::StreamShareSystem>(Triangle(),
                                                         config);
  EXPECT_TRUE((*system)
                  ->RegisterStream("photons",
                                   workload::PhotonGenerator::Schema(),
                                   100.0, 0)
                  .ok());
  EXPECT_TRUE(InstallPhotonStatistics(system->get()).ok());
  Result<sharing::RegistrationResult> query = (*system)->RegisterQuery(
      kCountWindowQuery, 2, sharing::Strategy::kStreamSharing);
  EXPECT_TRUE(query.ok()) << query.status();
  query->sink->EnableContentHash();
  return *query;
}

TEST(RecoveryGapTest, ReplannedQueryResumesAtWindowBoundary) {
  std::vector<engine::ItemPtr> items = GeneratePhotons(50);

  // Churned run: 25 items, cut the direct SP0-SP2 link (the detour over
  // SP1 survives), 25 more items.
  std::unique_ptr<sharing::StreamShareSystem> churned;
  sharing::RegistrationResult query = SetUpTriangle(&churned, {});
  ASSERT_TRUE(churned->Feed(Slice(items, 0, 25)).ok());
  Result<recover::RecoveryReport> report = churned->CutLink(0, 2);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_EQ(report->replans, 1u);
  ASSERT_EQ(report->queries.size(), 1u);
  EXPECT_EQ(report->queries[0].outcome,
            recover::QueryRecovery::Outcome::kReplanned);
  // 25 items into size-10 windows: [0,10) and [10,20) closed and
  // delivered, the open [20,30) window died with the old plan.
  EXPECT_GE(report->queries[0].lost_windows, 1u);
  ASSERT_TRUE(churned->Feed(Slice(items, 25, 50)).ok());
  ASSERT_TRUE(churned->Shutdown().ok());

  // Fresh restricted run: same damaged topology from the start, resume
  // mode, fed only the post-recovery items.
  sharing::SystemConfig resume_config;
  resume_config.resume_mode = true;
  std::unique_ptr<sharing::StreamShareSystem> restricted;
  sharing::RegistrationResult fresh =
      SetUpTriangle(&restricted, resume_config);
  ASSERT_TRUE(restricted->CutLink(0, 2).ok());
  ASSERT_TRUE(restricted->Feed(Slice(items, 25, 50)).ok());
  ASSERT_TRUE(restricted->Shutdown().ok());

  // Gap, not garbage: everything the churned run produced after the
  // epoch boundary is item-identical to the fresh run — no partially
  // aggregated window crossed the failure.
  ASSERT_EQ(report->snapshots.count(query.query_id), 1u);
  const recover::SinkSnapshot& epoch =
      report->snapshots.at(query.query_id);
  EXPECT_EQ(query.sink->item_count() - epoch.items,
            fresh.sink->item_count());
  EXPECT_EQ(query.sink->total_bytes() - epoch.bytes,
            fresh.sink->total_bytes());
  // The content hash folds additively, so the epoch delta subtracts out.
  EXPECT_EQ(query.sink->content_hash() - epoch.content_hash,
            fresh.sink->content_hash());
  EXPECT_GT(fresh.sink->item_count(), 0u);
}

TEST(RecoveryGapTest, CutLinkIsTerminalPerLink) {
  std::unique_ptr<sharing::StreamShareSystem> system;
  SetUpTriangle(&system, {});
  ASSERT_TRUE(system->CutLink(0, 2).ok());
  EXPECT_FALSE(system->CutLink(0, 2).ok());  // already down
  EXPECT_FALSE(system->CutLink(2, 0).ok());  // same link, either order
  EXPECT_FALSE(system->CutLink(0, 0).ok());  // no such link
  EXPECT_TRUE(system->CutLink(0, 1).ok());
}

TEST(RecoveryGapTest, DisconnectionLosesTheQuery) {
  // Path topology SP0—SP1—SP2 with the query at SP2: cutting SP1-SP2
  // leaves no surviving route, so the query is lost, not re-planned.
  network::Topology topology;
  topology.AddPeer("SP0", 100000.0);
  topology.AddPeer("SP1", 100000.0);
  topology.AddPeer("SP2", 100000.0);
  ASSERT_TRUE(topology.AddLink(0, 1, 100000.0).ok());
  ASSERT_TRUE(topology.AddLink(1, 2, 100000.0).ok());
  auto system = std::make_unique<sharing::StreamShareSystem>(
      topology, sharing::SystemConfig{});
  ASSERT_TRUE(system
                  ->RegisterStream("photons",
                                   workload::PhotonGenerator::Schema(),
                                   100.0, 0)
                  .ok());
  ASSERT_TRUE(InstallPhotonStatistics(system.get()).ok());
  Result<sharing::RegistrationResult> query = system->RegisterQuery(
      kCountWindowQuery, 2, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(query.ok());

  std::vector<engine::ItemPtr> items = GeneratePhotons(50);
  ASSERT_TRUE(system->Feed(Slice(items, 0, 25)).ok());
  uint64_t before = query->sink->item_count();
  Result<recover::RecoveryReport> report = system->CutLink(1, 2);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->replans, 0u);
  EXPECT_EQ(report->lost_queries, 1u);
  ASSERT_EQ(report->queries.size(), 1u);
  EXPECT_EQ(report->queries[0].outcome,
            recover::QueryRecovery::Outcome::kLost);
  EXPECT_FALSE(system->IsActive(query->query_id));

  // A lost query's sink freezes — nothing arrives past the cut.
  ASSERT_TRUE(system->Feed(Slice(items, 25, 50)).ok());
  ASSERT_TRUE(system->Shutdown().ok());
  EXPECT_EQ(query->sink->item_count(), before);
}

}  // namespace
}  // namespace streamshare
