// Direct unit tests for the properties module: operator descriptors,
// accessors, display forms, and construction-time validation.

#include "properties/properties.h"

#include <gtest/gtest.h>

#include "properties/operators.h"
#include "wxquery/analyzer.h"

namespace streamshare::properties {
namespace {

using predicate::AtomicPredicate;
using predicate::ComparisonOp;

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }
Decimal D(const char* text) { return Decimal::Parse(text).value(); }

TEST(SelectionOpTest, CreateBuildsMinimizedGraph) {
  Result<SelectionOp> selection = SelectionOp::Create({
      AtomicPredicate::Compare(P("x"), ComparisonOp::kLe, D("5")),
      AtomicPredicate::Compare(P("x"), ComparisonOp::kLe, D("9")),
  });
  ASSERT_TRUE(selection.ok());
  // The redundant x <= 9 disappears in the minimized graph; the original
  // conjunction is preserved verbatim for execution.
  EXPECT_EQ(selection->predicates.size(), 2u);
  EXPECT_EQ(selection->graph.edge_count(), 1u);
  EXPECT_EQ(selection->ToString(), "σ[x <= 5 and x <= 9]");
}

TEST(SelectionOpTest, CreateRejectsUnsatisfiable) {
  Result<SelectionOp> selection = SelectionOp::Create({
      AtomicPredicate::Compare(P("x"), ComparisonOp::kGe, D("5")),
      AtomicPredicate::Compare(P("x"), ComparisonOp::kLt, D("5")),
  });
  EXPECT_TRUE(selection.status().IsUnsatisfiable());
}

TEST(AggregationOpTest, CreateValidatesEverything) {
  WindowSpec window = WindowSpec::Count(10, 5).value();
  Result<AggregationOp> ok = AggregationOp::Create(
      AggregateFunc::kAvg, P("en"), window,
      {AtomicPredicate::Compare(P("ra"), ComparisonOp::kGe, D("0"))},
      {AtomicPredicate::Compare(AggregateValuePath(), ComparisonOp::kGe,
                                D("1.3"))});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->func, AggregateFunc::kAvg);
  EXPECT_NE(ok->ToString().find("avg(en)"), std::string::npos);
  EXPECT_NE(ok->ToString().find("having"), std::string::npos);

  // Bad window.
  WindowSpec bad;
  bad.type = WindowType::kCount;
  bad.size = Decimal();
  bad.step = Decimal::FromInt(1);
  EXPECT_FALSE(AggregationOp::Create(AggregateFunc::kSum, P("en"), bad)
                   .ok());
  // Unsatisfiable pre-selection.
  EXPECT_TRUE(
      AggregationOp::Create(
          AggregateFunc::kSum, P("en"), window,
          {AtomicPredicate::Compare(P("x"), ComparisonOp::kGt, D("5")),
           AtomicPredicate::Compare(P("x"), ComparisonOp::kLt, D("5"))})
          .status()
          .IsUnsatisfiable());
}

TEST(OperatorKindTest, KindOfAndToString) {
  Operator selection = SelectionOp::Create({}).value();
  Operator projection = ProjectionOp{};
  Operator aggregation =
      AggregationOp::Create(AggregateFunc::kMin, P("en"),
                            WindowSpec::Count(5).value())
          .value();
  Operator udf = UserDefinedOp{"blur", {"3"}};
  EXPECT_EQ(KindOf(selection), OperatorKind::kSelection);
  EXPECT_EQ(KindOf(projection), OperatorKind::kProjection);
  EXPECT_EQ(KindOf(aggregation), OperatorKind::kAggregation);
  EXPECT_EQ(KindOf(udf), OperatorKind::kUserDefined);
  EXPECT_EQ(OperatorToString(udf), "blur(3)");
}

TEST(AggregateFuncTest, NamesAndClasses) {
  EXPECT_EQ(AggregateFuncToString(AggregateFunc::kAvg), "avg");
  EXPECT_EQ(AggregateFuncToString(AggregateFunc::kCount), "count");
  EXPECT_TRUE(IsDistributive(AggregateFunc::kMin));
  EXPECT_TRUE(IsDistributive(AggregateFunc::kSum));
  EXPECT_FALSE(IsDistributive(AggregateFunc::kAvg));  // algebraic
}

TEST(PropertiesTest, AccessorsAndOriginality) {
  Properties props = Properties::ForOriginalStream("photons");
  EXPECT_TRUE(props.IsOriginal());
  ASSERT_NE(props.FindInput("photons"), nullptr);
  EXPECT_EQ(props.FindInput("neutrinos"), nullptr);

  InputStreamProperties& input = *props.mutable_inputs().begin();
  input.operators.push_back(SelectionOp::Create({}).value());
  EXPECT_FALSE(props.IsOriginal());
  EXPECT_NE(input.selection(), nullptr);
  EXPECT_EQ(input.projection(), nullptr);
  EXPECT_EQ(input.aggregation(), nullptr);

  Properties multi;
  multi.AddInput("a");
  multi.AddInput("b");
  EXPECT_EQ(multi.inputs().size(), 2u);
  EXPECT_NE(multi.ToString().find("input 'a'"), std::string::npos);
}

TEST(PropertiesTest, AggregateValuePathIsReserved) {
  // The reserved aggregate-value path must not collide with any element
  // path a WXQuery can reference: element names cannot start with '$', so
  // the query parser can never produce this path.
  xml::Path reserved = AggregateValuePath();
  EXPECT_EQ(reserved.ToString(), "$agg");
  Result<wxquery::AnalyzedQuery> colliding = wxquery::ParseAndAnalyze(
      "for $p in stream(\"s\")/r/i where $p/$agg >= 1 return <x/>");
  EXPECT_FALSE(colliding.ok());
}

}  // namespace
}  // namespace streamshare::properties
