// The serve plane's acceptance invariant: a live-subscribed query's
// delivered results are byte-identical (counts, bytes, order-insensitive
// content hash) to a batch run of the same query over the same items —
// including across a graceful restartable drain and restart, and under
// mid-stream churn. The gap-not-garbage resume flavor has its own
// property: no duplicate deliveries, subscriptions survive the restart.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "serve/serve_oracle.h"
#include "workload/scenario.h"

namespace streamshare::serve {
namespace {

struct BatchObservation {
  bool accepted = false;
  uint64_t items = 0;
  uint64_t bytes = 0;
  uint64_t content_hash = 0;
};

/// Batch reference mirroring exactly what the daemon hosts: same
/// registration order, same generated items, churn applied at the same
/// per-stream offsets, windows flushed at the end.
std::vector<BatchObservation> RunBatch(
    const workload::ScenarioSpec& scenario, size_t items_per_stream,
    const std::vector<workload::ChurnEvent>& churn = {}) {
  sharing::SystemConfig config;
  config.keep_results = true;
  auto built = workload::BuildSystem(scenario, config);
  EXPECT_TRUE(built.ok()) << built.status();
  std::unique_ptr<sharing::StreamShareSystem> system = std::move(*built);

  std::vector<BatchObservation> observations;
  for (const workload::QuerySpec& query : scenario.queries) {
    auto result = system->RegisterQuery(query.text, query.target,
                                        sharing::Strategy::kStreamSharing);
    EXPECT_TRUE(result.ok()) << result.status();
    BatchObservation observation;
    observation.accepted = result.ok() && result->accepted;
    if (observation.accepted) result->sink->EnableContentHash();
    observations.push_back(observation);
  }

  std::map<std::string, std::vector<engine::ItemPtr>> items;
  for (const workload::StreamSpec& stream : scenario.streams) {
    workload::PhotonGenerator generator(stream.gen);
    items[stream.name] = generator.Generate(items_per_stream);
  }
  size_t fed = 0;
  for (const workload::ChurnEvent& event : churn) {
    size_t upto = std::min(event.at_offset, items_per_stream);
    if (upto > fed) {
      std::map<std::string, std::vector<engine::ItemPtr>> slice;
      for (const auto& [name, list] : items) {
        slice[name].assign(list.begin() + fed, list.begin() + upto);
      }
      EXPECT_TRUE(system->Feed(slice).ok());
      fed = upto;
    }
    if (event.kind == workload::ChurnEvent::Kind::kFailPeer) {
      EXPECT_TRUE(system->FailPeer(event.peer).status().ok());
    } else {
      EXPECT_TRUE(system->CutLink(event.link_a, event.link_b).status().ok());
    }
  }
  {
    std::map<std::string, std::vector<engine::ItemPtr>> slice;
    for (const auto& [name, list] : items) {
      slice[name].assign(list.begin() + fed, list.end());
    }
    EXPECT_TRUE(system->Feed(slice).ok());
  }
  EXPECT_TRUE(system->Shutdown().ok());

  const std::vector<sharing::RegistrationResult>& registrations =
      system->registrations();
  for (size_t i = 0; i < observations.size(); ++i) {
    if (!observations[i].accepted) continue;
    const engine::SinkOp* sink = registrations[i].sink;
    observations[i].items = sink->item_count();
    observations[i].bytes = sink->total_bytes();
    observations[i].content_hash = sink->content_hash();
  }
  return observations;
}

void ExpectLiveMatchesBatch(const ServeRunReport& live,
                            const std::vector<BatchObservation>& batch) {
  ASSERT_EQ(live.queries.size(), batch.size());
  uint64_t total = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    const ServeQueryObservation& observed = live.queries[i];
    EXPECT_EQ(observed.accepted, batch[i].accepted) << "query " << i;
    if (!batch[i].accepted) continue;
    EXPECT_EQ(observed.items, batch[i].items) << "query " << i;
    EXPECT_EQ(observed.bytes, batch[i].bytes) << "query " << i;
    EXPECT_EQ(observed.content_hash, batch[i].content_hash)
        << "query " << i;
    total += batch[i].items;
  }
  EXPECT_GT(total, 0u) << "batch reference delivered nothing; the "
                          "identity check is vacuous";
}

TEST(ServeEndToEnd, LiveSubscriptionMatchesBatchByteForByte) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/6);
  constexpr size_t kItems = 240;

  ServeRunOptions options;
  options.items_per_stream = kItems;
  options.feed_chunk = 17;  // deliberately ragged chunking
  auto live = RunScenarioThroughDaemon(scenario, options);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(live->items_fed, kItems);

  ExpectLiveMatchesBatch(*live, RunBatch(scenario, kItems));
}

TEST(ServeEndToEnd, IdentityHoldsAcrossDrainAndReplayRestart) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/6);
  constexpr size_t kItems = 240;

  ServeRunOptions options;
  options.items_per_stream = kItems;
  options.feed_chunk = 16;
  options.drain_at = 100;  // mid-window: replay must reconstruct state
  options.checkpoint_path =
      ::testing::TempDir() + "/serve_e2e_replay.ckpt";
  options.resume = ResumeFlavor::kReplay;
  auto live = RunScenarioThroughDaemon(scenario, options);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(live->epochs, 2u);
  EXPECT_EQ(live->items_fed, kItems);

  ExpectLiveMatchesBatch(*live, RunBatch(scenario, kItems));
  std::remove(options.checkpoint_path.c_str());
}

TEST(ServeEndToEnd, ChurnedLiveMatchesChurnedBatch) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/6);
  constexpr size_t kItems = 240;

  workload::ChurnEvent fail;
  fail.kind = workload::ChurnEvent::Kind::kFailPeer;
  fail.peer = 2;
  fail.at_offset = 120;

  ServeRunOptions options;
  options.items_per_stream = kItems;
  options.churn = {fail};
  auto live = RunScenarioThroughDaemon(scenario, options);
  ASSERT_TRUE(live.ok()) << live.status();

  ExpectLiveMatchesBatch(*live, RunBatch(scenario, kItems, {fail}));
}

TEST(ServeEndToEnd, GapResumeNeverDuplicatesAndKeepsSubscriptions) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/6);
  constexpr size_t kItems = 240;

  ServeRunOptions options;
  options.items_per_stream = kItems;
  options.drain_at = 100;
  options.checkpoint_path = ::testing::TempDir() + "/serve_e2e_gap.ckpt";
  options.resume = ResumeFlavor::kGap;
  auto live = RunScenarioThroughDaemon(scenario, options);
  ASSERT_TRUE(live.ok()) << live.status();
  EXPECT_EQ(live->epochs, 2u);

  // Gap mode drops open-window state instead of reconstructing it, so a
  // query may deliver fewer items than the uninterrupted batch — but
  // never more (no duplicates), and every accepted subscription must
  // still be installed and delivering after the restart.
  std::vector<BatchObservation> batch = RunBatch(scenario, kItems);
  ASSERT_EQ(live->queries.size(), batch.size());
  uint64_t live_total = 0;
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(live->queries[i].accepted, batch[i].accepted);
    if (!batch[i].accepted) continue;
    EXPECT_LE(live->queries[i].items, batch[i].items) << "query " << i;
    live_total += live->queries[i].items;
  }
  EXPECT_GT(live_total, 0u);
  std::remove(options.checkpoint_path.c_str());
}

}  // namespace
}  // namespace streamshare::serve
