// Unit tests for the stream registry: registration, originals, and
// per-node availability along routes.

#include "network/stream_registry.h"

#include <gtest/gtest.h>

namespace streamshare::network {
namespace {

RegisteredStream MakeStream(const char* variant_of,
                            std::vector<NodeId> route, bool original) {
  RegisteredStream stream;
  stream.variant_of = variant_of;
  stream.props.stream_name = variant_of;
  if (!original) {
    stream.props.operators.push_back(
        properties::UserDefinedOp{"udf", {}});
  }
  stream.source_node = route.front();
  stream.target_node = route.back();
  stream.route = std::move(route);
  return stream;
}

TEST(StreamRegistryTest, RegisterAssignsIds) {
  StreamRegistry registry;
  StreamId first = registry.Register(MakeStream("photons", {0}, true));
  StreamId second =
      registry.Register(MakeStream("photons", {0, 1, 2}, false));
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
  EXPECT_EQ(registry.streams().size(), 2u);
  EXPECT_EQ(registry.stream(second).route.size(), 3u);
}

TEST(StreamRegistryTest, FindOriginalSkipsDerived) {
  StreamRegistry registry;
  registry.Register(MakeStream("photons", {0, 1}, false));  // derived
  EXPECT_EQ(registry.FindOriginal("photons"), nullptr);
  StreamId original = registry.Register(MakeStream("photons", {0}, true));
  ASSERT_NE(registry.FindOriginal("photons"), nullptr);
  EXPECT_EQ(registry.FindOriginal("photons")->id, original);
  EXPECT_EQ(registry.FindOriginal("neutrinos"), nullptr);
}

TEST(StreamRegistryTest, AvailabilityCoversWholeRoute) {
  StreamRegistry registry;
  registry.Register(MakeStream("photons", {0, 1, 2}, true));
  registry.Register(MakeStream("photons", {2, 3}, false));
  registry.Register(MakeStream("neutrinos", {1, 4}, true));

  EXPECT_EQ(registry.AvailableAt(0, "photons").size(), 1u);
  EXPECT_EQ(registry.AvailableAt(2, "photons").size(), 2u);  // both pass SP2
  EXPECT_EQ(registry.AvailableAt(3, "photons").size(), 1u);
  EXPECT_EQ(registry.AvailableAt(4, "photons").size(), 0u);
  EXPECT_EQ(registry.AvailableAt(1, "neutrinos").size(), 1u);
  EXPECT_EQ(registry.AvailableAt(1, "photons").size(), 1u);
}

TEST(StreamRegistryTest, IsOriginalReflectsOperators) {
  EXPECT_TRUE(MakeStream("s", {0}, true).IsOriginal());
  EXPECT_FALSE(MakeStream("s", {0}, false).IsOriginal());
}

}  // namespace
}  // namespace streamshare::network
