// Kill -9 the daemon at every named crashpoint and prove the recovered
// history is indistinguishable from an uninterrupted run (invariant 11).
// Each case runs the same scenario twice: once through the plain serve
// oracle (one daemon, no interruptions) and once through the crash
// oracle, whose forked daemon child arms one crashpoint per service
// life, SIGKILLs itself there, and is respawned from checkpoint + WAL.
// The client-side per-query observations must match field for field.
//
// fork() and TSAN don't mix (the child inherits a runtime that thinks
// the parent's threads still exist), so under TSAN the fork-heavy cases
// skip — the same policy test_transport_runner.cc uses.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "serve/crash_oracle.h"
#include "serve/crashpoint.h"
#include "serve/serve_oracle.h"
#include "serve/wal.h"
#include "workload/scenario.h"

#if defined(__SANITIZE_THREAD__)
#define STREAMSHARE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STREAMSHARE_TSAN 1
#endif
#endif
#ifndef STREAMSHARE_TSAN
#define STREAMSHARE_TSAN 0
#endif

namespace streamshare::serve {
namespace {

constexpr size_t kItems = 60;
constexpr size_t kFeedChunk = 13;

workload::ScenarioSpec SmallScenario() {
  return workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/4);
}

std::string MakeStateDir() {
  std::string templ = ::testing::TempDir() + "ss_crash_XXXXXX";
  std::vector<char> buf(templ.begin(), templ.end());
  buf.push_back('\0');
  char* dir = ::mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveStateDir(const std::string& dir) {
  const std::string checkpoint = dir + "/checkpoint";
  std::remove(checkpoint.c_str());
  std::remove((checkpoint + ".tmp").c_str());
  std::remove(DefaultWalPath(checkpoint).c_str());
  ::rmdir(dir.c_str());
}

ServeRunReport UninterruptedReference() {
  ServeRunOptions options;
  options.items_per_stream = kItems;
  options.feed_chunk = kFeedChunk;
  auto report = RunScenarioThroughDaemon(SmallScenario(), options);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.ok() ? *report : ServeRunReport{};
}

void ExpectSameHistory(const CrashRunReport& crashed,
                       const ServeRunReport& reference,
                       const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(crashed.queries.size(), reference.queries.size());
  for (size_t i = 0; i < reference.queries.size(); ++i) {
    SCOPED_TRACE("query " + std::to_string(i));
    const ServeQueryObservation& got = crashed.queries[i];
    const ServeQueryObservation& want = reference.queries[i];
    EXPECT_EQ(got.query_id, want.query_id);
    EXPECT_EQ(got.accepted, want.accepted);
    EXPECT_EQ(got.reject_reason, want.reject_reason);
    EXPECT_EQ(got.items, want.items);
    EXPECT_EQ(got.bytes, want.bytes);
    EXPECT_EQ(got.content_hash, want.content_hash);
  }
  EXPECT_EQ(crashed.items_fed, reference.items_fed);
}

#if !STREAMSHARE_TSAN

// No crashpoints armed: the harness itself is a faithful serve run (one
// life, zero crashes, identical history). Anything the crash cases
// catch after this is the crash's fault, not the harness's.
TEST(CrashRecovery, UnarmedHarnessMatchesThePlainServeRun) {
  const ServeRunReport reference = UninterruptedReference();
  const std::string state_dir = MakeStateDir();
  ASSERT_FALSE(state_dir.empty());

  CrashRunOptions options;
  options.items_per_stream = kItems;
  options.feed_chunk = kFeedChunk;
  options.state_dir = state_dir;
  auto report = RunCrashScenario(SmallScenario(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->lives, 1u);
  EXPECT_EQ(report->crashes, 0u);
  ExpectSameHistory(*report, reference, "unarmed");
  RemoveStateDir(state_dir);
}

// The tentpole sweep: every named crashpoint, one SIGKILL each, and the
// recovered history must equal the uninterrupted one. A point this
// workload never reaches (drain-pre-checkpoint fires only on a
// restartable drain; scripts/crash_smoke.sh exercises it via SIGTERM)
// simply completes crash-free — arming it must still be harmless.
TEST(CrashRecovery, EveryCrashpointIsIndistinguishableFromADrain) {
  const ServeRunReport reference = UninterruptedReference();

  for (const std::string& point : crashpoint::AllPoints()) {
    SCOPED_TRACE("crashpoint " + point);
    const std::string state_dir = MakeStateDir();
    ASSERT_FALSE(state_dir.empty());

    CrashRunOptions options;
    options.items_per_stream = kItems;
    options.feed_chunk = kFeedChunk;
    options.state_dir = state_dir;
    // Small enough that compactions (and their crashpoints) fire inside
    // this short workload.
    options.wal_compact_bytes = 128;
    options.crash_specs = {point + ":1"};
    auto report = RunCrashScenario(SmallScenario(), options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    if (point != std::string(crashpoint::kDrainPreCheckpoint)) {
      EXPECT_GE(report->crashes, 1u)
          << "the armed crashpoint never fired — the sweep is not "
             "actually testing this window";
    }
    EXPECT_EQ(report->lives, report->crashes + 1);
    ExpectSameHistory(*report, reference, point);
    RemoveStateDir(state_dir);
  }
}

// Several consecutive lives each die at a different window — the WAL
// chains across generations (append, compact, recover, append again)
// and the final history still matches.
TEST(CrashRecovery, BackToBackCrashesAcrossDifferentWindows) {
  const ServeRunReport reference = UninterruptedReference();
  const std::string state_dir = MakeStateDir();
  ASSERT_FALSE(state_dir.empty());

  CrashRunOptions options;
  options.items_per_stream = kItems;
  options.feed_chunk = kFeedChunk;
  options.state_dir = state_dir;
  options.wal_compact_bytes = 128;
  options.crash_specs = {
      std::string(crashpoint::kWalPostSyncPreAck) + ":1",
      std::string(crashpoint::kFeedPostFeedPreLog) + ":2",
      std::string(crashpoint::kCkptPreRename) + ":1",
      std::string(crashpoint::kWalMidRecord) + ":1",
  };
  auto report = RunCrashScenario(SmallScenario(), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->crashes, 4u);
  ExpectSameHistory(*report, reference, "back-to-back");
  RemoveStateDir(state_dir);
}

// Churn survives the kill: peers die and links get cut mid-run AND the
// daemon gets murdered mid-WAL-append — the recovered run must match an
// uninterrupted run of the same churned workload.
TEST(CrashRecovery, ChurnedWorkloadSurvivesAMidAppendKill) {
  workload::ScenarioSpec scenario = SmallScenario();
  std::vector<workload::ChurnEvent> churn;
  workload::ChurnEvent fail;
  fail.kind = workload::ChurnEvent::Kind::kFailPeer;
  fail.at_offset = 26;
  fail.peer = 2;
  churn.push_back(fail);

  ServeRunOptions serial;
  serial.items_per_stream = kItems;
  serial.feed_chunk = kFeedChunk;
  serial.churn = churn;
  auto reference = RunScenarioThroughDaemon(scenario, serial);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();

  const std::string state_dir = MakeStateDir();
  ASSERT_FALSE(state_dir.empty());
  CrashRunOptions options;
  options.items_per_stream = kItems;
  options.feed_chunk = kFeedChunk;
  options.churn = churn;
  options.state_dir = state_dir;
  options.wal_compact_bytes = 128;
  options.crash_specs = {std::string(crashpoint::kWalMidRecord) + ":2"};
  auto report = RunCrashScenario(scenario, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->crashes, 1u);
  ExpectSameHistory(*report, *reference, "churned");
  RemoveStateDir(state_dir);
}

#endif  // !STREAMSHARE_TSAN

// Arm parsing stays testable under every sanitizer: the spec grammar is
// "name" or "name:N" over the published point list.
TEST(CrashRecovery, ArmRejectsUnknownPointsAndBadHitCounts) {
  EXPECT_FALSE(crashpoint::Arm("not-a-point").ok());
  EXPECT_FALSE(crashpoint::Arm("wal-pre-append:0").ok());
  EXPECT_FALSE(crashpoint::Arm("wal-pre-append:x").ok());
  EXPECT_TRUE(crashpoint::Arm("").ok());  // empty spec = stay unarmed
  for (const std::string& point : crashpoint::AllPoints()) {
    EXPECT_TRUE(crashpoint::Arm(point + ":1000000").ok()) << point;
  }
  crashpoint::Disarm();
}

}  // namespace
}  // namespace streamshare::serve
