// The index-vs-BFS differential tier (ARCHITECTURE.md invariant 10): the
// candidate index must never change planning outcomes, only the set of
// candidates examined. Every sweep seed generates one randomized scenario
// and registers it twice — once on a system with the candidate index
// (the default), once with the flat per-node registry walk (the oracle
// form of Algorithm 1) — and demands, per query:
//
//   * identical registration outcome and admission decision,
//   * the identical chosen plan per input — same reused stream, same
//     reuse node, same widening decision, bit-identical C(P),
//   * the indexed search examined no more candidates than the flat walk,
//   * every plan the indexed search generated corresponds to a candidate
//     the flat walk also generated (index candidates ⊆ BFS candidates).
//
// Scenarios that carry churn events then push both systems through the
// same failures, an unsubscribe (refcounted stream GC), and a second
// registration wave — the incremental index maintenance on install, GC,
// and recovery has to keep the two planners in lockstep throughout.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <tuple>

#include "network/stream_registry.h"
#include "sharing/candidate_index.h"
#include "sharing/system.h"
#include "testing/fuzz_scenario.h"
#include "workload/photon_gen.h"
#include "workload/scenario.h"

namespace streamshare {
namespace {

using sharing::RegistrationResult;
using sharing::StreamShareSystem;
using sharing::SystemConfig;
using testing::FuzzChurnEvent;
using testing::FuzzScenario;
using testing::FuzzStreamSpec;

Result<std::unique_ptr<StreamShareSystem>> BuildScenarioSystem(
    const FuzzScenario& scenario, bool indexed) {
  SS_ASSIGN_OR_RETURN(network::Topology topology,
                      scenario.topology.Build());
  SystemConfig config;
  config.candidate_index = indexed;
  auto system = std::make_unique<StreamShareSystem>(std::move(topology),
                                                    config);
  for (const FuzzStreamSpec& stream : scenario.streams) {
    workload::PhotonGenConfig gen =
        testing::StreamGenConfig(scenario, stream);
    SS_RETURN_IF_ERROR(system->RegisterStream(
        stream.name, workload::PhotonGenerator::Schema(),
        gen.frequency_hz, stream.source));
  }
  return system;
}

/// (input stream, reused stream, reuse node, widening) of one generated
/// candidate plan — the identity the subset check compares on.
using CandidateKey =
    std::tuple<std::string, network::StreamId, network::NodeId, bool>;

/// Registers one query on both systems and cross-checks every piece of
/// invariant 10. Returns the (identical) acceptance so callers can drive
/// unsubscribes.
void RegisterAndCompare(StreamShareSystem* with_index,
                        StreamShareSystem* flat_walk,
                        const std::string& text, network::NodeId target,
                        const std::string& label, bool* accepted_out) {
  SCOPED_TRACE(label + " [" + text + "]");
  Result<RegistrationResult> indexed = with_index->RegisterQuery(
      text, target, sharing::Strategy::kStreamSharing);
  Result<RegistrationResult> walked = flat_walk->RegisterQuery(
      text, target, sharing::Strategy::kStreamSharing);
  ASSERT_EQ(indexed.ok(), walked.ok())
      << "indexed: " << indexed.status()
      << " flat: " << walked.status();
  if (accepted_out != nullptr) *accepted_out = false;
  if (!indexed.ok()) return;

  ASSERT_EQ(indexed->accepted, walked->accepted)
      << "indexed reject: " << indexed->reject_reason
      << " flat reject: " << walked->reject_reason;
  if (accepted_out != nullptr) *accepted_out = indexed->accepted;

  // The chosen plan must be the same plan, not merely an equally priced
  // one: same reuse decisions and bit-identical C(P) per input (both
  // arms cost identical plans with identical arithmetic).
  ASSERT_EQ(indexed->plan.inputs.size(), walked->plan.inputs.size());
  for (size_t i = 0; i < indexed->plan.inputs.size(); ++i) {
    const sharing::InputPlan& a = indexed->plan.inputs[i];
    const sharing::InputPlan& b = walked->plan.inputs[i];
    EXPECT_EQ(a.reused_stream, b.reused_stream) << "input " << i;
    EXPECT_EQ(a.reuse_node, b.reuse_node) << "input " << i;
    EXPECT_EQ(a.widening.has_value(), b.widening.has_value())
        << "input " << i;
    EXPECT_EQ(a.cost, b.cost) << "input " << i;
    EXPECT_EQ(a.feasible, b.feasible) << "input " << i;
    EXPECT_EQ(a.ships_raw_stream, b.ships_raw_stream) << "input " << i;
  }

  // Effort: the index consults a narrower candidate set, never a wider
  // one...
  EXPECT_LE(indexed->search.candidates_examined,
            walked->search.candidates_examined);
  // ...and everything it did generate, the flat walk generated too.
  std::set<CandidateKey> flat_candidates;
  for (const sharing::CandidatePlanInfo& candidate :
       walked->search.candidates) {
    flat_candidates.emplace(candidate.input_stream,
                            candidate.reused_stream, candidate.reuse_node,
                            candidate.widening);
  }
  for (const sharing::CandidatePlanInfo& candidate :
       indexed->search.candidates) {
    EXPECT_EQ(flat_candidates.count({candidate.input_stream,
                                     candidate.reused_stream,
                                     candidate.reuse_node,
                                     candidate.widening}),
              1u)
        << "indexed-only candidate: stream " << candidate.reused_stream
        << " at node " << candidate.reuse_node;
  }
}

/// The index's live-stream census must agree with the registry after any
/// mutation sequence (install, widening update, GC, recovery retirement).
void ExpectIndexMatchesRegistry(const StreamShareSystem& system) {
  const sharing::CandidateIndex* index = system.candidate_index();
  ASSERT_NE(index, nullptr);
  size_t live = 0;
  for (const network::RegisteredStream& stream :
       system.registry().streams()) {
    if (!stream.retired) ++live;
  }
  EXPECT_EQ(index->live_count(), live);
}

class CandidateIndexSweep : public ::testing::TestWithParam<int> {};

TEST_P(CandidateIndexSweep, IndexedAndFlatPlanIdentically) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  testing::GeneratorOptions options;
  options.churn_probability = 0.5;
  FuzzScenario scenario = testing::GenerateScenario(seed, options);

  Result<std::unique_ptr<StreamShareSystem>> indexed =
      BuildScenarioSystem(scenario, /*indexed=*/true);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  Result<std::unique_ptr<StreamShareSystem>> flat =
      BuildScenarioSystem(scenario, /*indexed=*/false);
  ASSERT_TRUE(flat.ok()) << flat.status();
  ASSERT_NE((*indexed)->candidate_index(), nullptr);
  ASSERT_EQ((*flat)->candidate_index(), nullptr);

  // Wave 1: the scenario's subscriptions, in order.
  std::vector<bool> accepted(scenario.queries.size(), false);
  for (size_t q = 0; q < scenario.queries.size(); ++q) {
    bool ok = false;
    RegisterAndCompare(indexed->get(), flat->get(),
                       scenario.queries[q].ToQueryText(),
                       scenario.queries[q].target,
                       "wave1 q" + std::to_string(q), &ok);
    accepted[q] = ok;
  }
  ExpectIndexMatchesRegistry(**indexed);

  // Churn: both systems take the same failures; recovery retires severed
  // streams and re-registers replanned ones, and the index must track
  // every one of those mutations.
  for (const FuzzChurnEvent& event : scenario.churn) {
    if (event.kind == FuzzChurnEvent::Kind::kFailPeer) {
      auto a = (*indexed)->FailPeer(event.peer);
      auto b = (*flat)->FailPeer(event.peer);
      ASSERT_EQ(a.ok(), b.ok());
    } else {
      auto a = (*indexed)->CutLink(event.link_a, event.link_b);
      auto b = (*flat)->CutLink(event.link_a, event.link_b);
      ASSERT_EQ(a.ok(), b.ok());
    }
    ExpectIndexMatchesRegistry(**indexed);
  }

  // Unsubscribe the first accepted query that survived the churn: the
  // refcounted stream GC must come off the index too. A query the churn
  // already tore down rejects the unsubscribe on both systems alike.
  for (size_t q = 0; q < accepted.size(); ++q) {
    if (!accepted[q]) continue;
    int query_id = static_cast<int>(q);
    Status a = (*indexed)->Unsubscribe(query_id);
    Status b = (*flat)->Unsubscribe(query_id);
    ASSERT_EQ(a.ok(), b.ok())
        << "unsubscribe q" << q << " indexed: " << a << " flat: " << b;
    if (a.ok()) break;
  }
  ExpectIndexMatchesRegistry(**indexed);

  // Wave 2: the same templates again, planned against the churned and
  // GC'd stream population. Divergence here means the incremental index
  // maintenance drifted from the registry.
  for (size_t q = 0; q < scenario.queries.size(); ++q) {
    RegisterAndCompare(indexed->get(), flat->get(),
                       scenario.queries[q].ToQueryText(),
                       scenario.queries[q].target,
                       "wave2 q" + std::to_string(q), nullptr);
  }
  ExpectIndexMatchesRegistry(**indexed);
}

// 200 seeds at churn probability 0.5: ~100 of them churn, each scenario
// contributes two registration waves of 2-8 queries.
INSTANTIATE_TEST_SUITE_P(Seeds, CandidateIndexSweep,
                         ::testing::Range(0, 200));

// On a workload big enough to matter the index must actually prune:
// strictly fewer candidates examined than the flat walk for late
// registrations, with the pruned/suppressed counters accounting for the
// difference.
TEST(CandidateIndexEffort, LateRegistrationsExamineFewerCandidates) {
  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/17, /*query_count=*/60);
  SystemConfig with_index;
  with_index.candidate_index = true;
  SystemConfig without_index;
  without_index.candidate_index = false;
  Result<std::unique_ptr<StreamShareSystem>> indexed =
      workload::BuildSystem(scenario, with_index);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  Result<std::unique_ptr<StreamShareSystem>> flat =
      workload::BuildSystem(scenario, without_index);
  ASSERT_TRUE(flat.ok()) << flat.status();

  for (const workload::QuerySpec& query : scenario.queries) {
    Result<RegistrationResult> a = (*indexed)->RegisterQuery(
        query.text, query.target, sharing::Strategy::kStreamSharing);
    Result<RegistrationResult> b = (*flat)->RegisterQuery(
        query.text, query.target, sharing::Strategy::kStreamSharing);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->plan.TotalCost(), b->plan.TotalCost());
  }

  const auto& indexed_regs = (*indexed)->registrations();
  const auto& flat_regs = (*flat)->registrations();
  ASSERT_EQ(indexed_regs.size(), flat_regs.size());
  long indexed_examined = 0, flat_examined = 0, saved = 0;
  for (size_t q = 0; q < indexed_regs.size(); ++q) {
    indexed_examined += indexed_regs[q].search.candidates_examined;
    flat_examined += flat_regs[q].search.candidates_examined;
    saved += indexed_regs[q].search.candidates_pruned +
             indexed_regs[q].search.candidates_suppressed;
    // Flat runs never report index counters.
    EXPECT_EQ(flat_regs[q].search.candidates_pruned, 0);
    EXPECT_EQ(flat_regs[q].search.candidates_suppressed, 0);
  }
  EXPECT_LT(indexed_examined, flat_examined);
  EXPECT_GT(saved, 0);
}

}  // namespace
}  // namespace streamshare
