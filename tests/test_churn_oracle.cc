// The chaos half of the differential harness tested against itself:
// churn generation (determinism, independence invariants, clean-seed
// compatibility), JSON replay of churn events, the recovery oracle
// passing churned seeds, and the shrinker's churn handling — events are
// dropped when the failure is a plain differential bug, kept when the
// failure only reproduces under churn.

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "testing/fuzz_scenario.h"
#include "testing/oracle.h"
#include "testing/scenario_json.h"
#include "testing/shrink.h"

namespace streamshare::testing {
namespace {

GeneratorOptions ChurnOptions() {
  GeneratorOptions options;
  options.churn_probability = 1.0;
  return options;
}

/// First seed >= `from` whose scenario carries churn.
FuzzScenario FirstChurnScenario(uint64_t from = 1) {
  for (uint64_t seed = from; seed < from + 50; ++seed) {
    FuzzScenario scenario = GenerateScenario(seed, ChurnOptions());
    if (!scenario.churn.empty()) return scenario;
  }
  ADD_FAILURE() << "no churn scenario in 50 seeds at probability 1.0";
  return {};
}

// --- Generation -----------------------------------------------------------

TEST(ChurnGeneratorTest, DeterministicAndDefaultOff) {
  FuzzScenario a = GenerateScenario(42, ChurnOptions());
  FuzzScenario b = GenerateScenario(42, ChurnOptions());
  EXPECT_EQ(ToJson(a), ToJson(b));
  // The default options never draw churn.
  EXPECT_TRUE(GenerateScenario(42).churn.empty());
}

TEST(ChurnGeneratorTest, CleanPartOnlyGainsRedundancyLinks) {
  // A churn scenario's streams, queries, and item count are identical to
  // the clean scenario of the same seed; the topology's links are a
  // prefix-superset (redundancy chords are appended, never reordered).
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FuzzScenario churned = GenerateScenario(seed, ChurnOptions());
    FuzzScenario clean = GenerateScenario(seed);
    ASSERT_FALSE(churned.churn.empty()) << "seed " << seed;
    EXPECT_EQ(churned.items_per_stream, clean.items_per_stream);
    EXPECT_EQ(churned.topology.peers, clean.topology.peers);
    ASSERT_EQ(churned.streams.size(), clean.streams.size());
    for (size_t s = 0; s < clean.streams.size(); ++s) {
      EXPECT_EQ(churned.streams[s].source, clean.streams[s].source);
      EXPECT_EQ(churned.streams[s].gen_seed, clean.streams[s].gen_seed);
    }
    ASSERT_EQ(churned.queries.size(), clean.queries.size());
    for (size_t q = 0; q < clean.queries.size(); ++q) {
      EXPECT_EQ(churned.queries[q].ToQueryText(),
                clean.queries[q].ToQueryText());
    }
    ASSERT_GE(churned.topology.links.size(), clean.topology.links.size());
    for (size_t l = 0; l < clean.topology.links.size(); ++l) {
      EXPECT_EQ(churned.topology.links[l], clean.topology.links[l]);
    }
  }
}

TEST(ChurnGeneratorTest, EventsAreIndependentAndMidBand) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    FuzzScenario scenario = GenerateScenario(seed, ChurnOptions());
    std::set<int> failed;
    std::set<std::pair<int, int>> cut;
    std::set<int> sources;
    for (const FuzzStreamSpec& stream : scenario.streams) {
      sources.insert(stream.source);
    }
    size_t previous = 0;
    for (const FuzzChurnEvent& event : scenario.churn) {
      EXPECT_GE(event.at_offset, previous) << "seed " << seed;
      previous = event.at_offset;
      EXPECT_GE(event.at_offset, scenario.items_per_stream / 4);
      EXPECT_LE(event.at_offset, (scenario.items_per_stream * 3) / 4);
      if (event.kind == FuzzChurnEvent::Kind::kFailPeer) {
        EXPECT_TRUE(failed.insert(event.peer).second)
            << "seed " << seed << ": peer fails twice";
        EXPECT_EQ(sources.count(event.peer), 0u)
            << "seed " << seed << ": stream source failed";
      } else {
        EXPECT_TRUE(cut.insert({event.link_a, event.link_b}).second)
            << "seed " << seed << ": link cut twice";
        EXPECT_EQ(failed.count(event.link_a), 0u) << "seed " << seed;
        EXPECT_EQ(failed.count(event.link_b), 0u) << "seed " << seed;
      }
    }
  }
}

// --- JSON replay ----------------------------------------------------------

TEST(ChurnJsonTest, RoundTripIsExact) {
  FuzzScenario scenario = FirstChurnScenario();
  ASSERT_FALSE(scenario.churn.empty());
  auto replayed = FromJson(ToJson(scenario));
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(ToJson(*replayed), ToJson(scenario));
  ASSERT_EQ(replayed->churn.size(), scenario.churn.size());
  for (size_t i = 0; i < scenario.churn.size(); ++i) {
    EXPECT_EQ(replayed->churn[i].kind, scenario.churn[i].kind);
    EXPECT_EQ(replayed->churn[i].at_offset, scenario.churn[i].at_offset);
  }
}

TEST(ChurnJsonTest, CleanScenariosCarryNoChurnField) {
  // Pre-churn reproducers parse unchanged, and clean scenarios stay
  // byte-compatible with the old format.
  FuzzScenario clean = GenerateScenario(7);
  EXPECT_EQ(ToJson(clean).find("\"churn\""), std::string::npos);
  auto replayed = FromJson(ToJson(clean));
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed->churn.empty());
}

TEST(ChurnJsonTest, RejectsUnknownChurnKind) {
  FuzzScenario scenario = FirstChurnScenario();
  std::string json = ToJson(scenario);
  size_t pos = json.find("\"fail-peer\"");
  if (pos == std::string::npos) pos = json.find("\"cut-link\"");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 1, "\"x");  // corrupt the kind string
  EXPECT_FALSE(FromJson(json).ok());
}

// --- The recovery oracle --------------------------------------------------

TEST(ChurnOracleTest, ChurnedSeedsPassAllInvariants) {
  // Replays churned scenarios through every churned mode (serial,
  // parallel, transport-tcp) and checks cross-mode agreement plus the
  // gap-not-garbage epoch invariants. Seeds chosen to cover both a
  // re-planned and a torn-down recovery (see the report fields asserted).
  int replans = 0, lost = 0;
  for (uint64_t seed : {1ull, 3ull}) {
    FuzzScenario scenario = GenerateScenario(seed, ChurnOptions());
    ASSERT_FALSE(scenario.churn.empty()) << "seed " << seed;
    auto report = RunOracle(scenario);
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.status().ToString();
    EXPECT_TRUE(report->ok()) << "seed " << seed << ": "
                              << report->failure;
    EXPECT_EQ(report->churn_events,
              static_cast<int>(scenario.churn.size()));
    replans += report->churn_replans;
    lost += report->churn_lost;
  }
  EXPECT_GT(replans, 0);  // the re-planned epoch-diff path ran
  EXPECT_GT(lost, 0);     // the teardown path ran
}

TEST(ChurnOracleTest, PlantedRecoveryBugIsCaught) {
  FuzzScenario scenario = FirstChurnScenario();
  OracleOptions options;
  options.inject_churn_mode = "serial+churn";
  auto report = RunOracle(scenario, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->recovery_ok);
  EXPECT_FALSE(report->ok());
  EXPECT_NE(report->failure.find("recovery oracle"), std::string::npos)
      << report->failure;
}

// --- Shrinker churn handling ---------------------------------------------

TEST(ChurnShrinkTest, KeepsChurnWhenTheBugNeedsIt) {
  // The planted recovery bug only reproduces while churn events remain,
  // so the shrinker must not drop them.
  FuzzScenario scenario = FirstChurnScenario();
  OracleOptions options;
  options.inject_churn_mode = "serial+churn";
  options.run_tcp = false;  // cheaper predicate runs
  auto still_fails = [&](const FuzzScenario& candidate) {
    auto r = RunOracle(candidate, options);
    return r.ok() && !r->ok();
  };
  ASSERT_TRUE(still_fails(scenario));
  FuzzScenario minimal = Shrink(scenario, still_fails, 3);
  EXPECT_FALSE(minimal.churn.empty());
  EXPECT_TRUE(still_fails(minimal));
  EXPECT_LE(minimal.queries.size(), scenario.queries.size());
}

TEST(ChurnShrinkTest, DropsChurnWhenTheBugIsClean) {
  // A plain equivalence bug reproduces without churn, so the shrinker's
  // churn-first pass removes every event — the reproducer pins down that
  // recovery is NOT part of the failure.
  FuzzScenario scenario = FirstChurnScenario();
  OracleOptions options;
  options.inject_divergence_mode = "parallel";
  options.inject_min_window = 0;
  options.run_tcp = false;
  options.run_loopback = false;
  auto still_fails = [&](const FuzzScenario& candidate) {
    auto r = RunOracle(candidate, options);
    return r.ok() && !r->ok();
  };
  if (!still_fails(scenario)) {
    GTEST_SKIP() << "scenario has no aggregation query to perturb";
  }
  FuzzScenario minimal = Shrink(scenario, still_fails, 3);
  EXPECT_TRUE(minimal.churn.empty());
  EXPECT_TRUE(still_fails(minimal));
}

TEST(ChurnShrinkTest, OffsetsScaleWithItemReduction) {
  FuzzScenario scenario = FirstChurnScenario();
  size_t original_items = scenario.items_per_stream;
  OracleOptions options;
  options.inject_churn_mode = "serial+churn";
  options.run_tcp = false;
  options.run_parallel = false;
  options.run_loopback = false;
  auto still_fails = [&](const FuzzScenario& candidate) {
    auto r = RunOracle(candidate, options);
    return r.ok() && !r->ok();
  };
  ASSERT_TRUE(still_fails(scenario));
  FuzzScenario minimal = Shrink(scenario, still_fails, 3);
  ASSERT_FALSE(minimal.churn.empty());
  if (minimal.items_per_stream < original_items) {
    // Offsets shrank along with the item count instead of collecting
    // past the end of the stream.
    for (const FuzzChurnEvent& event : minimal.churn) {
      EXPECT_LE(event.at_offset, minimal.items_per_stream);
    }
  }
}

}  // namespace
}  // namespace streamshare::testing
