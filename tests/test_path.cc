// Unit tests for child-axis paths.

#include "xml/path.h"

#include <gtest/gtest.h>

#include "xml/xml_parser.h"

namespace streamshare::xml {
namespace {

TEST(PathTest, ParseAndToString) {
  Result<Path> path = Path::Parse("coord/cel/ra");
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->size(), 3u);
  EXPECT_EQ(path->ToString(), "coord/cel/ra");
}

TEST(PathTest, EmptyPath) {
  Result<Path> path = Path::Parse("");
  ASSERT_TRUE(path.ok());
  EXPECT_TRUE(path->empty());
  EXPECT_EQ(path->ToString(), "");
}

TEST(PathTest, RejectsUnsupportedSyntax) {
  EXPECT_FALSE(Path::Parse("a//b").ok());      // descendant axis
  EXPECT_FALSE(Path::Parse("a/*").ok());       // wildcard
  EXPECT_FALSE(Path::Parse("a[b>1]/c").ok());  // embedded condition
  EXPECT_FALSE(Path::Parse("/a").ok());        // leading slash
}

TEST(PathTest, EvaluateSelectsAllMatches) {
  auto doc = ParseDocument(
      "<photon><coord><cel><ra>1</ra></cel><cel><ra>2</ra></cel></coord>"
      "</photon>");
  ASSERT_TRUE(doc.ok());
  Path path = Path::Parse("coord/cel/ra").value();
  std::vector<const XmlNode*> nodes = path.Evaluate(**doc);
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0]->text(), "1");
  EXPECT_EQ(nodes[1]->text(), "2");
  EXPECT_EQ(path.EvaluateFirst(**doc)->text(), "1");
}

TEST(PathTest, EvaluateMissingPath) {
  auto doc = ParseDocument("<photon><en>1.3</en></photon>");
  ASSERT_TRUE(doc.ok());
  Path path = Path::Parse("coord/cel/ra").value();
  EXPECT_TRUE(path.Evaluate(**doc).empty());
  EXPECT_EQ(path.EvaluateFirst(**doc), nullptr);
}

TEST(PathTest, EmptyPathSelectsContext) {
  auto doc = ParseDocument("<photon/>");
  ASSERT_TRUE(doc.ok());
  Path path;
  std::vector<const XmlNode*> nodes = path.Evaluate(**doc);
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], doc->get());
}

TEST(PathTest, PrefixRelation) {
  Path a = Path::Parse("coord/cel").value();
  Path b = Path::Parse("coord/cel/ra").value();
  Path c = Path::Parse("coord/det").value();
  EXPECT_TRUE(a.IsPrefixOf(b));
  EXPECT_TRUE(a.IsPrefixOf(a));
  EXPECT_FALSE(b.IsPrefixOf(a));
  EXPECT_FALSE(c.IsPrefixOf(b));
  EXPECT_TRUE(Path().IsPrefixOf(a));
}

TEST(PathTest, ConcatAndOrdering) {
  Path a = Path::Parse("coord").value();
  Path b = Path::Parse("cel/ra").value();
  EXPECT_EQ(a.Concat(b).ToString(), "coord/cel/ra");
  EXPECT_EQ(Path().Concat(b), b);
  EXPECT_LT(Path::Parse("a").value(), Path::Parse("b").value());
}

}  // namespace
}  // namespace streamshare::xml
