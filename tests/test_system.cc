// Unit/integration tests for the StreamShareSystem facade: stream and
// query registration, strategy behaviour, admission control under capacity
// limits, error paths, and metrics plumbing.

#include "sharing/system.h"

#include <gtest/gtest.h>

#include "workload/paper_queries.h"
#include "workload/photon_gen.h"
#include "workload/scenario.h"

namespace streamshare::sharing {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

class SystemTest : public ::testing::Test {
 protected:
  void SetUp() override { Rebuild(SystemConfig{}); }

  void Rebuild(SystemConfig config) {
    config.keep_results = true;
    system_ = std::make_unique<StreamShareSystem>(
        network::Topology::ExtendedExample(), config);
    ASSERT_TRUE(system_
                    ->RegisterStream("photons",
                                     workload::PhotonGenerator::Schema(),
                                     100.0, 4)
                    .ok());
    ASSERT_TRUE(
        system_->SetRange("photons", P("coord/cel/ra"), {0.0, 360.0}).ok());
    ASSERT_TRUE(
        system_->SetRange("photons", P("coord/cel/dec"), {-90.0, 90.0})
            .ok());
    ASSERT_TRUE(system_->SetRange("photons", P("en"), {0.1, 2.4}).ok());
    ASSERT_TRUE(
        system_->SetAvgIncrement("photons", P("det_time"), 0.5).ok());
  }

  std::unique_ptr<StreamShareSystem> system_;
};

TEST_F(SystemTest, DuplicateStreamRejected) {
  EXPECT_TRUE(system_
                  ->RegisterStream("photons",
                                   workload::PhotonGenerator::Schema(),
                                   100.0, 4)
                  .IsAlreadyExists());
  EXPECT_TRUE(system_
                  ->RegisterStream("other",
                                   workload::PhotonGenerator::Schema(),
                                   100.0, 99)
                  .IsInvalidArgument());
}

TEST_F(SystemTest, StatisticsForUnknownStreamFail) {
  EXPECT_TRUE(
      system_->SetRange("nope", P("x"), {0, 1}).IsNotFound());
  EXPECT_TRUE(system_->SetAvgIncrement("nope", P("x"), 1.0).IsNotFound());
}

TEST_F(SystemTest, QueryRegistrationErrors) {
  // Parse error.
  EXPECT_TRUE(system_->RegisterQuery("not a query", 1,
                                     Strategy::kStreamSharing)
                  .status()
                  .IsParseError());
  // Unknown stream.
  EXPECT_TRUE(system_
                  ->RegisterQuery(
                      "<o> { for $p in stream(\"nope\")/r/i "
                      "where $p/x >= 1 return <y> { $p/x } </y> } </o>",
                      1, Strategy::kStreamSharing)
                  .status()
                  .IsNotFound());
  // Bad target peer.
  EXPECT_TRUE(system_
                  ->RegisterQuery(workload::kQuery1, 99,
                                  Strategy::kStreamSharing)
                  .status()
                  .IsInvalidArgument());
  // Unsatisfiable predicate.
  EXPECT_TRUE(system_
                  ->RegisterQuery(
                      "<o> { for $p in stream(\"photons\")/photons/photon "
                      "where $p/en >= 2 and $p/en <= 1 "
                      "return <y> { $p/en } </y> } </o>",
                      1, Strategy::kStreamSharing)
                  .status()
                  .IsUnsatisfiable());
}

TEST_F(SystemTest, RegistrationBookkeeping) {
  ASSERT_TRUE(
      system_->RegisterQuery(workload::kQuery1, 1, Strategy::kStreamSharing)
          .ok());
  ASSERT_TRUE(
      system_->RegisterQuery(workload::kQuery2, 7, Strategy::kStreamSharing)
          .ok());
  EXPECT_EQ(system_->registrations().size(), 2u);
  EXPECT_EQ(system_->accepted_count(), 2);
  EXPECT_EQ(system_->rejected_count(), 0);
  EXPECT_GT(system_->registrations()[0].registration_micros, 0.0);
  // The registry now holds: original + Q1's stream + Q2's stream.
  EXPECT_EQ(system_->registry().streams().size(), 3u);
}

TEST_F(SystemTest, BaselinesDoNotRegisterReusableStreams) {
  ASSERT_TRUE(
      system_->RegisterQuery(workload::kQuery1, 1, Strategy::kDataShipping)
          .ok());
  EXPECT_EQ(system_->registry().streams().size(), 1u);  // original only
  ASSERT_TRUE(
      system_->RegisterQuery(workload::kQuery1, 1, Strategy::kQueryShipping)
          .ok());
  EXPECT_EQ(system_->registry().streams().size(), 1u);
}

TEST_F(SystemTest, StateTracksDeployedUsage) {
  double before_total = 0.0;
  for (size_t link = 0; link < system_->topology().link_count(); ++link) {
    before_total +=
        system_->state().UsedBandwidthKbps(static_cast<int>(link));
  }
  EXPECT_DOUBLE_EQ(before_total, 0.0);
  ASSERT_TRUE(
      system_->RegisterQuery(workload::kQuery1, 1, Strategy::kStreamSharing)
          .ok());
  double after_total = 0.0;
  for (size_t link = 0; link < system_->topology().link_count(); ++link) {
    after_total +=
        system_->state().UsedBandwidthKbps(static_cast<int>(link));
  }
  EXPECT_GT(after_total, 0.0);
}

TEST_F(SystemTest, EnforceLimitsRejectsOverloadingQueries) {
  SystemConfig config;
  config.enforce_limits = true;
  Rebuild(config);
  // Shrink capacities: the raw stream rate is ~140 kbps; make links carry
  // at most one such flow and peers very weak.
  // (Rebuild with a capacity-limited topology instead.)
  network::Topology tiny =
      network::Topology::ExtendedExample(/*bandwidth_kbps=*/150.0,
                                         /*max_load=*/60.0);
  system_ = std::make_unique<StreamShareSystem>(tiny, config);
  ASSERT_TRUE(system_
                  ->RegisterStream("photons",
                                   workload::PhotonGenerator::Schema(),
                                   100.0, 4)
                  .ok());
  ASSERT_TRUE(
      system_->SetRange("photons", P("coord/cel/ra"), {0.0, 360.0}).ok());
  ASSERT_TRUE(
      system_->SetRange("photons", P("coord/cel/dec"), {-90.0, 90.0}).ok());
  ASSERT_TRUE(system_->SetRange("photons", P("en"), {0.1, 2.4}).ok());

  // Data shipping the raw stream repeatedly must eventually overload.
  int rejected = 0;
  for (int i = 0; i < 6; ++i) {
    Result<RegistrationResult> result = system_->RegisterQuery(
        workload::kQuery1, 3, Strategy::kDataShipping);
    ASSERT_TRUE(result.ok()) << result.status();
    if (!result->accepted) ++rejected;
  }
  EXPECT_GT(rejected, 0);
  EXPECT_EQ(system_->rejected_count(), rejected);
  // Rejected queries have a reason and no sink.
  for (const RegistrationResult& r : system_->registrations()) {
    if (!r.accepted) {
      EXPECT_FALSE(r.reject_reason.empty());
      EXPECT_EQ(r.sink, nullptr);
    }
  }
}

TEST_F(SystemTest, AdmissionRejectionLeavesDeploymentUntouched) {
  SystemConfig config;
  config.enforce_limits = true;
  config.keep_results = true;
  network::Topology tiny =
      network::Topology::ExtendedExample(/*bandwidth_kbps=*/150.0,
                                         /*max_load=*/60.0);
  system_ = std::make_unique<StreamShareSystem>(tiny, config);
  ASSERT_TRUE(system_
                  ->RegisterStream("photons",
                                   workload::PhotonGenerator::Schema(),
                                   100.0, 4)
                  .ok());
  ASSERT_TRUE(
      system_->SetRange("photons", P("coord/cel/ra"), {0.0, 360.0}).ok());
  ASSERT_TRUE(
      system_->SetRange("photons", P("coord/cel/dec"), {-90.0, 90.0}).ok());
  ASSERT_TRUE(system_->SetRange("photons", P("en"), {0.1, 2.4}).ok());

  Result<RegistrationResult> first = system_->RegisterQuery(
      workload::kQuery1, 3, Strategy::kDataShipping);
  ASSERT_TRUE(first.ok() && first->accepted);
  first->sink->EnableContentHash();

  double used_before = 0.0;
  for (size_t link = 0; link < system_->topology().link_count(); ++link) {
    used_before +=
        system_->state().UsedBandwidthKbps(static_cast<int>(link));
  }

  // Push past the bandwidth/load cap: the E6 path must return a
  // structured rejection, not an error, not a process exit.
  Result<RegistrationResult> rejected(Status::Internal("unset"));
  bool saw_rejection = false;
  for (int i = 0; i < 6 && !saw_rejection; ++i) {
    rejected = system_->RegisterQuery(workload::kQuery1, 3,
                                      Strategy::kDataShipping);
    ASSERT_TRUE(rejected.ok()) << rejected.status();
    saw_rejection = !rejected->accepted;
  }
  ASSERT_TRUE(saw_rejection);
  EXPECT_FALSE(rejected->reject_reason.empty());
  EXPECT_EQ(rejected->sink, nullptr);

  // Installed population untouched: same committed resources, the first
  // query still active and still delivering.
  double used_after = 0.0;
  for (size_t link = 0; link < system_->topology().link_count(); ++link) {
    used_after +=
        system_->state().UsedBandwidthKbps(static_cast<int>(link));
  }
  EXPECT_DOUBLE_EQ(used_before, used_after);
  EXPECT_TRUE(system_->IsActive(first->query_id));
  EXPECT_FALSE(system_->IsActive(rejected->query_id));

  workload::PhotonGenConfig gen;
  gen.hot_regions = {{120.0, 138.0, -49.0, -40.0}};
  gen.hot_weights = {2.0};
  workload::PhotonGenerator generator(gen);
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  items["photons"] = generator.Generate(500);
  ASSERT_TRUE(system_->Run(items).ok());
  EXPECT_GT(first->sink->item_count(), 0u);

  // A rejected query was never deployed: unsubscribing it is NotFound
  // with the admission story in the message.
  Status unsub = system_->Unsubscribe(rejected->query_id);
  EXPECT_TRUE(unsub.IsNotFound()) << unsub;
  EXPECT_NE(unsub.message().find("rejected at admission"),
            std::string::npos)
      << unsub.message();
}

TEST_F(SystemTest, StreamSharingSurvivesLimitsThatKillDataShipping) {
  SystemConfig config;
  config.enforce_limits = true;
  // Capacity fits exactly one full evaluation of Q1 (the selection alone
  // costs ~100 work units at 100 items/s) and one raw-stream flow per
  // link — the second data-shipped copy overloads, shared copies do not.
  network::Topology tiny =
      network::Topology::ExtendedExample(/*bandwidth_kbps=*/150.0,
                                         /*max_load=*/130.0);

  auto build = [&](Strategy strategy) {
    StreamShareSystem system(tiny, config);
    EXPECT_TRUE(system
                    .RegisterStream("photons",
                                    workload::PhotonGenerator::Schema(),
                                    100.0, 4)
                    .ok());
    EXPECT_TRUE(
        system.SetRange("photons", P("coord/cel/ra"), {0.0, 360.0}).ok());
    EXPECT_TRUE(
        system.SetRange("photons", P("coord/cel/dec"), {-90.0, 90.0}).ok());
    EXPECT_TRUE(system.SetRange("photons", P("en"), {0.1, 2.4}).ok());
    int rejected = 0;
    for (int i = 0; i < 8; ++i) {
      Result<RegistrationResult> result =
          system.RegisterQuery(workload::kQuery1, 3, strategy);
      EXPECT_TRUE(result.ok());
      if (result.ok() && !result->accepted) ++rejected;
    }
    return rejected;
  };

  int data_rejected = build(Strategy::kDataShipping);
  int sharing_rejected = build(Strategy::kStreamSharing);
  EXPECT_GT(data_rejected, 0);
  // Identical queries share one stream: nothing new to overload.
  EXPECT_EQ(sharing_rejected, 0);
}

TEST_F(SystemTest, RunFailsForUnknownStream) {
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  items["nope"] = {};
  EXPECT_TRUE(system_->Run(items).IsNotFound());
}

TEST_F(SystemTest, MultiInputQueriesDeployAndPlanPerInput) {
  ASSERT_TRUE(system_
                  ->RegisterStream("photons2",
                                   workload::PhotonGenerator::Schema(),
                                   100.0, 2)
                  .ok());
  Result<RegistrationResult> result = system_->RegisterQuery(
      "<o> { for $p in stream(\"photons\")/photons/photon "
      "for $q in stream(\"photons2\")/photons/photon "
      "where $p/en >= 1 and $q/en >= 1 "
      "return ( $p/en, $q/en ) } </o>",
      1, Strategy::kStreamSharing);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->accepted);
  ASSERT_EQ(result->plan.inputs.size(), 2u);
  EXPECT_EQ(result->plan.inputs[0].input_stream_name, "photons");
  EXPECT_EQ(result->plan.inputs[1].input_stream_name, "photons2");
}

TEST_F(SystemTest, DescribeDeploymentSnapshots) {
  ASSERT_TRUE(
      system_->RegisterQuery(workload::kQuery1, 1, Strategy::kStreamSharing)
          .ok());
  ASSERT_TRUE(
      system_->RegisterQuery(workload::kQuery2, 7, Strategy::kStreamSharing)
          .ok());
  std::string report = system_->DescribeDeployment();
  EXPECT_NE(report.find("original 'photons'"), std::string::npos);
  EXPECT_NE(report.find("consumers"), std::string::npos);
  EXPECT_NE(report.find("q0 [active]"), std::string::npos);
  EXPECT_NE(report.find("q1 [active]"), std::string::npos);
  ASSERT_TRUE(system_->UnregisterQuery(1).ok());
  report = system_->DescribeDeployment();
  EXPECT_NE(report.find("q1 [deregistered]"), std::string::npos);
  EXPECT_NE(report.find("[retired]"), std::string::npos);
}

TEST_F(SystemTest, StrategyNames) {
  EXPECT_EQ(StrategyToString(Strategy::kDataShipping), "data shipping");
  EXPECT_EQ(StrategyToString(Strategy::kQueryShipping), "query shipping");
  EXPECT_EQ(StrategyToString(Strategy::kStreamSharing), "stream sharing");
}

}  // namespace
}  // namespace streamshare::sharing
