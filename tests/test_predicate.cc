// Unit tests for atomic predicates: normalization to difference bounds and
// evaluation against XML items.

#include <gtest/gtest.h>

#include "predicate/atomic.h"
#include "predicate/eval.h"
#include "xml/xml_parser.h"

namespace streamshare::predicate {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }
Decimal D(const char* text) { return Decimal::Parse(text).value(); }

TEST(AtomicPredicateTest, ToStringForms) {
  EXPECT_EQ(AtomicPredicate::Compare(P("en"), ComparisonOp::kGe, D("1.3"))
                .ToString(),
            "en >= 1.3");
  EXPECT_EQ(AtomicPredicate::CompareVars(P("a"), ComparisonOp::kLe, P("b"),
                                         D("3"))
                .ToString(),
            "a <= b + 3");
  EXPECT_EQ(AtomicPredicate::CompareVars(P("a"), ComparisonOp::kLt, P("b"),
                                         D("-2"))
                .ToString(),
            "a < b - 2");
  EXPECT_EQ(AtomicPredicate::CompareVars(P("a"), ComparisonOp::kEq, P("b"),
                                         Decimal())
                .ToString(),
            "a = b");
}

TEST(NormalizeTest, LessEqualBecomesOneBound) {
  auto constraints = Normalize(
      AtomicPredicate::Compare(P("ra"), ComparisonOp::kLe, D("138.0")));
  ASSERT_EQ(constraints.size(), 1u);
  EXPECT_EQ(constraints[0].source, P("ra"));
  EXPECT_TRUE(constraints[0].target.empty());  // zero node
  EXPECT_EQ(constraints[0].bound.value, D("138.0"));
  EXPECT_FALSE(constraints[0].bound.strict);
}

TEST(NormalizeTest, GreaterEqualFlips) {
  auto constraints = Normalize(
      AtomicPredicate::Compare(P("ra"), ComparisonOp::kGe, D("120.0")));
  ASSERT_EQ(constraints.size(), 1u);
  EXPECT_TRUE(constraints[0].source.empty());
  EXPECT_EQ(constraints[0].target, P("ra"));
  EXPECT_EQ(constraints[0].bound.value, D("-120.0"));
}

TEST(NormalizeTest, StrictOpsCarryStrictness) {
  auto lt = Normalize(
      AtomicPredicate::Compare(P("x"), ComparisonOp::kLt, D("5")));
  ASSERT_EQ(lt.size(), 1u);
  EXPECT_TRUE(lt[0].bound.strict);
  auto gt = Normalize(
      AtomicPredicate::Compare(P("x"), ComparisonOp::kGt, D("5")));
  ASSERT_EQ(gt.size(), 1u);
  EXPECT_TRUE(gt[0].bound.strict);
}

TEST(NormalizeTest, EqualityBecomesTwoBounds) {
  auto constraints = Normalize(AtomicPredicate::CompareVars(
      P("a"), ComparisonOp::kEq, P("b"), D("2")));
  ASSERT_EQ(constraints.size(), 2u);
  EXPECT_EQ(constraints[0].bound.value, D("2"));
  EXPECT_EQ(constraints[1].bound.value, D("-2"));
}

TEST(BoundTest, ImplicationOrdering) {
  Bound tight{D("3"), false};
  Bound tighter{D("2"), false};
  Bound strict3{D("3"), true};
  EXPECT_TRUE(tighter.ImpliesBound(tight));
  EXPECT_FALSE(tight.ImpliesBound(tighter));
  EXPECT_TRUE(strict3.ImpliesBound(tight));   // x<3 ⇒ x≤3
  EXPECT_FALSE(tight.ImpliesBound(strict3));  // x≤3 ⇏ x<3
  EXPECT_TRUE(tight.ImpliesBound(tight));
  EXPECT_TRUE(tighter.TighterThan(tight));
  EXPECT_FALSE(tight.TighterThan(tight));
}

TEST(BoundTest, CompositionAddsAndInfectsStrictness) {
  Bound a{D("1.5"), false};
  Bound b{D("2"), true};
  Bound sum = a + b;
  EXPECT_EQ(sum.value, D("3.5"));
  EXPECT_TRUE(sum.strict);
}

TEST(BoundTest, InfeasibleCycles) {
  EXPECT_TRUE((Bound{D("-1"), false}).IsInfeasibleCycle());
  EXPECT_TRUE((Bound{D("0"), true}).IsInfeasibleCycle());
  EXPECT_FALSE((Bound{D("0"), false}).IsInfeasibleCycle());
  EXPECT_FALSE((Bound{D("1"), true}).IsInfeasibleCycle());
}

class EvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto doc = xml::ParseDocument(
        "<photon><coord><cel><ra>130.0</ra><dec>-45.5</dec></cel></coord>"
        "<en>1.3</en><bad>oops</bad></photon>");
    ASSERT_TRUE(doc.ok());
    item_ = std::move(doc).value();
  }
  std::unique_ptr<xml::XmlNode> item_;
};

TEST_F(EvalTest, ExtractValue) {
  Result<Decimal> ra = ExtractValue(*item_, P("coord/cel/ra"));
  ASSERT_TRUE(ra.ok());
  EXPECT_EQ(*ra, D("130.0"));
  EXPECT_TRUE(ExtractValue(*item_, P("missing")).status().IsNotFound());
  EXPECT_TRUE(ExtractValue(*item_, P("bad")).status().IsParseError());
}

TEST_F(EvalTest, EvaluateComparisons) {
  auto eval = [&](ComparisonOp op, const char* constant) {
    return EvaluatePredicate(
               AtomicPredicate::Compare(P("en"), op, D(constant)), *item_)
        .value();
  };
  EXPECT_TRUE(eval(ComparisonOp::kGe, "1.3"));
  EXPECT_TRUE(eval(ComparisonOp::kLe, "1.3"));
  EXPECT_TRUE(eval(ComparisonOp::kEq, "1.3"));
  EXPECT_FALSE(eval(ComparisonOp::kLt, "1.3"));
  EXPECT_FALSE(eval(ComparisonOp::kGt, "1.3"));
  EXPECT_TRUE(eval(ComparisonOp::kGt, "1.2"));
}

TEST_F(EvalTest, VariableVsVariablePlusConstant) {
  // ra <= dec + 176:  130.0 <= -45.5 + 176 = 130.5  → true.
  Result<bool> result = EvaluatePredicate(
      AtomicPredicate::CompareVars(P("coord/cel/ra"), ComparisonOp::kLe,
                                   P("coord/cel/dec"), D("176")),
      *item_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(*result);
  // ra <= dec + 175: 130.0 <= 129.5 → false.
  result = EvaluatePredicate(
      AtomicPredicate::CompareVars(P("coord/cel/ra"), ComparisonOp::kLe,
                                   P("coord/cel/dec"), D("175")),
      *item_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST_F(EvalTest, MissingElementEvaluatesFalse) {
  Result<bool> result = EvaluatePredicate(
      AtomicPredicate::Compare(P("nothere"), ComparisonOp::kGe, D("0")),
      *item_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
}

TEST_F(EvalTest, ConjunctionShortCircuitsToFalse) {
  std::vector<AtomicPredicate> conjunction{
      AtomicPredicate::Compare(P("en"), ComparisonOp::kGe, D("1.0")),
      AtomicPredicate::Compare(P("coord/cel/ra"), ComparisonOp::kGe,
                               D("135.0")),
  };
  Result<bool> result = EvaluateConjunction(conjunction, *item_);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(*result);
  EXPECT_TRUE(EvaluateConjunction({}, *item_).value());  // empty = true
}

}  // namespace
}  // namespace streamshare::predicate
