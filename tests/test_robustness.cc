// Robustness tests: malformed, truncated, and randomly mutated inputs
// must produce error Statuses — never crashes, hangs, or corrupted
// system state.

#include <gtest/gtest.h>

#include <random>

#include "sharing/system.h"
#include "workload/paper_queries.h"
#include "workload/photon_gen.h"
#include "wxquery/parser.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace streamshare {
namespace {

TEST(RobustnessTest, RandomBytesToXmlParser) {
  std::mt19937_64 rng(1);
  std::uniform_int_distribution<int> len_dist(0, 200);
  std::uniform_int_distribution<int> byte_dist(1, 126);
  for (int round = 0; round < 500; ++round) {
    std::string garbage;
    int len = len_dist(rng);
    for (int i = 0; i < len; ++i) {
      garbage += static_cast<char>(byte_dist(rng));
    }
    // Must terminate with either a tree or an error.
    Result<std::unique_ptr<xml::XmlNode>> parsed =
        xml::ParseDocument(garbage);
    if (parsed.ok()) {
      EXPECT_NE(*parsed, nullptr);
    }
  }
}

TEST(RobustnessTest, MutatedPhotonDocuments) {
  workload::PhotonGenerator generator(workload::PhotonGenConfig{});
  std::string document = "<photons>";
  for (const engine::ItemPtr& photon : generator.Generate(5)) {
    document += xml::WriteCompact(*photon);
  }
  document += "</photons>";

  std::mt19937_64 rng(2);
  std::uniform_int_distribution<size_t> pos_dist(0, document.size() - 1);
  std::uniform_int_distribution<int> byte_dist(1, 126);
  for (int round = 0; round < 500; ++round) {
    std::string mutated = document;
    // 1-3 random byte flips.
    int flips = 1 + round % 3;
    for (int f = 0; f < flips; ++f) {
      mutated[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
    }
    xml::XmlItemReader reader(mutated);
    // Drain items until error or end; must terminate.
    for (int guard = 0; guard < 100; ++guard) {
      Result<std::unique_ptr<xml::XmlNode>> item = reader.NextItem();
      if (!item.ok() || *item == nullptr) break;
    }
  }
}

TEST(RobustnessTest, TruncatedDocumentsError) {
  workload::PhotonGenerator generator(workload::PhotonGenConfig{});
  std::string document =
      "<photons>" + xml::WriteCompact(*generator.Next()) + "</photons>";
  for (size_t cut = 1; cut < document.size(); cut += 7) {
    Result<std::unique_ptr<xml::XmlNode>> parsed =
        xml::ParseDocument(document.substr(0, cut));
    EXPECT_FALSE(parsed.ok()) << "cut=" << cut;
  }
}

TEST(RobustnessTest, MutatedQueriesToParser) {
  std::string base = workload::kQuery3;
  std::mt19937_64 rng(3);
  std::uniform_int_distribution<size_t> pos_dist(0, base.size() - 1);
  std::uniform_int_distribution<int> byte_dist(32, 126);
  int parsed_ok = 0;
  for (int round = 0; round < 1000; ++round) {
    std::string mutated = base;
    mutated[pos_dist(rng)] = static_cast<char>(byte_dist(rng));
    Result<wxquery::ExprPtr> parsed = wxquery::ParseQuery(mutated);
    if (parsed.ok()) ++parsed_ok;
  }
  // Some mutations are benign (e.g. inside constants); most are not.
  EXPECT_LT(parsed_ok, 1000);
}

TEST(RobustnessTest, TruncatedQueriesError) {
  std::string base = workload::kQuery4;
  for (size_t cut = 1; cut < base.size(); cut += 5) {
    Result<wxquery::ExprPtr> parsed =
        wxquery::ParseQuery(std::string_view(base).substr(0, cut));
    // Truncations parse successfully only if they end exactly at a
    // whitespace suffix of the full query; all real cuts must error.
    if (parsed.ok()) {
      EXPECT_GE(cut, base.find_last_not_of(" \n\t") + 1);
    }
  }
}

TEST(RobustnessTest, SystemSurvivesGarbageRegistrations) {
  sharing::SystemConfig config;
  config.keep_results = true;
  sharing::StreamShareSystem system(network::Topology::ExtendedExample(),
                                    config);
  ASSERT_TRUE(system
                  .RegisterStream("photons",
                                  workload::PhotonGenerator::Schema(),
                                  100.0, 4)
                  .ok());

  std::mt19937_64 rng(4);
  std::uniform_int_distribution<int> byte_dist(32, 126);
  for (int round = 0; round < 100; ++round) {
    std::string garbage;
    for (int i = 0; i < 60; ++i) {
      garbage += static_cast<char>(byte_dist(rng));
    }
    Result<sharing::RegistrationResult> result = system.RegisterQuery(
        garbage, 1, sharing::Strategy::kStreamSharing);
    EXPECT_FALSE(result.ok());
  }
  // Failed registrations leave no residue: no phantom streams, no usage.
  EXPECT_EQ(system.registry().streams().size(), 1u);
  for (size_t link = 0; link < system.topology().link_count(); ++link) {
    EXPECT_DOUBLE_EQ(
        system.state().UsedBandwidthKbps(static_cast<int>(link)), 0.0);
  }

  // The system still works afterwards.
  Result<sharing::RegistrationResult> good = system.RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(good.ok()) << good.status();
  workload::PhotonGenConfig gen_config;
  gen_config.hot_regions = {{120.0, 138.0, -49.0, -40.0}};
  gen_config.hot_weights = {2.0};
  workload::PhotonGenerator generator(gen_config);
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  items["photons"] = generator.Generate(300);
  ASSERT_TRUE(system.Run(items).ok());
  EXPECT_GT(good->sink->item_count(), 0u);
}

TEST(RobustnessTest, ChunkedFeedingAtRandomBoundaries) {
  workload::PhotonGenerator generator(workload::PhotonGenConfig{});
  std::string document = "<photons>";
  std::vector<engine::ItemPtr> originals = generator.Generate(20);
  for (const engine::ItemPtr& photon : originals) {
    document += xml::WriteCompact(*photon);
  }
  document += "</photons>";

  std::mt19937_64 rng(5);
  for (int round = 0; round < 50; ++round) {
    xml::XmlItemReader reader;
    size_t pos = 0;
    std::uniform_int_distribution<size_t> chunk_dist(1, 37);
    size_t count = 0;
    while (pos < document.size() || !reader.AtEnd()) {
      if (pos < document.size()) {
        size_t chunk = std::min(chunk_dist(rng), document.size() - pos);
        reader.Feed(document.substr(pos, chunk));
        pos += chunk;
        if (pos == document.size()) reader.Finalize();
      }
      while (true) {
        Result<std::unique_ptr<xml::XmlNode>> item = reader.NextItem();
        ASSERT_TRUE(item.ok()) << item.status();
        if (*item == nullptr) break;
        ASSERT_LT(count, originals.size());
        EXPECT_TRUE((*item)->Equals(*originals[count]));
        ++count;
      }
      if (reader.AtEnd()) break;
    }
    EXPECT_EQ(count, originals.size());
  }
}

}  // namespace
}  // namespace streamshare
