// Codec tests for the serve CONTROL plane: request/response/reply
// roundtrips, RESULT frame stamp semantics, serve EOS, and the drain
// checkpoint's binary format (atomic save, replay-exact load, scenario
// fingerprint discrimination).

#include <cstdio>
#include <string>

#include "gtest/gtest.h"
#include "serve/checkpoint.h"
#include "serve/control.h"
#include "workload/scenario.h"

namespace streamshare::serve {
namespace {

TEST(ServeProtocol, RequestRoundtripsEveryVerb) {
  ControlRequest hello;
  hello.request_id = 7;
  hello.verb = Verb::kHello;
  hello.protocol = kServeProtocolVersion;
  hello.client_name = "smoke";
  auto decoded = DecodeRequest(EncodeRequest(hello));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->request_id, 7u);
  EXPECT_EQ(decoded->verb, Verb::kHello);
  EXPECT_EQ(decoded->client_name, "smoke");

  ControlRequest subscribe;
  subscribe.request_id = 8;
  subscribe.verb = Verb::kSubscribe;
  subscribe.query_text = "wxquery text";
  subscribe.vq = 3;
  subscribe.strategy = 2;
  subscribe.attach_query_plus1 = 5;
  subscribe.resume_from = 42;
  decoded = DecodeRequest(EncodeRequest(subscribe));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->query_text, "wxquery text");
  EXPECT_EQ(decoded->vq, 3);
  EXPECT_EQ(decoded->strategy, 2);
  EXPECT_EQ(decoded->attach_query_plus1, 5u);
  EXPECT_EQ(decoded->resume_from, 42u);

  ControlRequest unsubscribe;
  unsubscribe.verb = Verb::kUnsubscribe;
  unsubscribe.query_id = -1;  // zigzag must survive the sentinel
  decoded = DecodeRequest(EncodeRequest(unsubscribe));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->query_id, -1);

  ControlRequest cut;
  cut.verb = Verb::kCutLink;
  cut.link_a = 1;
  cut.link_b = 4;
  decoded = DecodeRequest(EncodeRequest(cut));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->link_a, 1);
  EXPECT_EQ(decoded->link_b, 4);

  ControlRequest feed;
  feed.verb = Verb::kFeed;
  feed.feed_items = 1000;
  decoded = DecodeRequest(EncodeRequest(feed));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->feed_items, 1000u);

  ControlRequest drain;
  drain.verb = Verb::kDrain;
  drain.final_drain = true;
  decoded = DecodeRequest(EncodeRequest(drain));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->final_drain);

  ControlRequest batch;
  batch.verb = Verb::kSubscribeBatch;
  batch.batch.push_back({"query one", 3, 2});
  batch.batch.push_back({"query two", -1, 0});  // zigzag'd vq sentinel
  decoded = DecodeRequest(EncodeRequest(batch));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->batch.size(), 2u);
  EXPECT_EQ(decoded->batch[0].query_text, "query one");
  EXPECT_EQ(decoded->batch[0].vq, 3);
  EXPECT_EQ(decoded->batch[0].strategy, 2);
  EXPECT_EQ(decoded->batch[1].query_text, "query two");
  EXPECT_EQ(decoded->batch[1].vq, -1);
  EXPECT_EQ(decoded->batch[1].strategy, 0);

  ControlRequest reoptimize;
  reoptimize.verb = Verb::kReoptimize;
  reoptimize.max_migrations = -1;  // "no cap" must survive the zigzag
  decoded = DecodeRequest(EncodeRequest(reoptimize));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->max_migrations, -1);
}

TEST(ServeProtocol, BatchAndReoptimizeRepliesRoundtrip) {
  SubscribeBatchReply batch;
  batch.analyze_cache_hits = 5;
  batch.plan_memo_hits = 2;
  SubscribeReply accepted;
  accepted.query_id = 0;
  accepted.accepted = true;
  batch.entries.push_back(accepted);
  SubscribeReply rejected;
  rejected.query_id = 1;
  rejected.accepted = false;
  rejected.reject_reason = "link SP2-SP3 bandwidth exceeded";
  batch.entries.push_back(rejected);
  auto decoded_batch =
      DecodeSubscribeBatchReply(EncodeSubscribeBatchReply(batch));
  ASSERT_TRUE(decoded_batch.ok()) << decoded_batch.status();
  EXPECT_EQ(decoded_batch->analyze_cache_hits, 5u);
  EXPECT_EQ(decoded_batch->plan_memo_hits, 2u);
  ASSERT_EQ(decoded_batch->entries.size(), 2u);
  EXPECT_TRUE(decoded_batch->entries[0].accepted);
  EXPECT_FALSE(decoded_batch->entries[1].accepted);
  EXPECT_EQ(decoded_batch->entries[1].reject_reason,
            "link SP2-SP3 bandwidth exceeded");

  ReoptimizeReply reoptimize;
  reoptimize.examined = 12;
  reoptimize.migrated = 3;
  reoptimize.torn_down = 1;
  reoptimize.lost_windows = 7;
  reoptimize.cost_before = 1234.5625;
  reoptimize.cost_after = 0.1;  // not exactly representable: the wire
                                // format must round-trip the bits anyway
  auto decoded_reopt =
      DecodeReoptimizeReply(EncodeReoptimizeReply(reoptimize));
  ASSERT_TRUE(decoded_reopt.ok()) << decoded_reopt.status();
  EXPECT_EQ(decoded_reopt->examined, 12u);
  EXPECT_EQ(decoded_reopt->migrated, 3u);
  EXPECT_EQ(decoded_reopt->torn_down, 1u);
  EXPECT_EQ(decoded_reopt->lost_windows, 7u);
  EXPECT_EQ(decoded_reopt->cost_before, 1234.5625);
  EXPECT_EQ(decoded_reopt->cost_after, 0.1);
}

TEST(ServeProtocol, RejectsUnknownVerbAndTrailingBytes) {
  ControlRequest stats;
  stats.verb = Verb::kStats;
  std::string encoded = EncodeRequest(stats);
  encoded.push_back('x');
  EXPECT_TRUE(DecodeRequest(encoded).status().IsParseError());

  // Verb 99 is beyond this build's protocol.
  std::string unknown;
  unknown.push_back(0);   // request id 0
  unknown.push_back(99);  // verb
  EXPECT_TRUE(DecodeRequest(unknown).status().IsUnsupported());
}

TEST(ServeProtocol, ResponseCarriesStatusAndPayload) {
  ControlResponse response;
  response.request_id = 12;
  response.code = static_cast<uint64_t>(StatusCode::kOverload);
  response.message = "bandwidth exceeded";
  response.payload = "opaque-reply";
  auto decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->request_id, 12u);
  EXPECT_EQ(decoded->payload, "opaque-reply");
  Status status = ResponseStatus(*decoded);
  EXPECT_TRUE(status.IsOverload());
  EXPECT_EQ(status.message(), "bandwidth exceeded");

  // An out-of-range code from a newer peer degrades to kInternal
  // instead of a bogus enum value.
  decoded->code = 200;
  EXPECT_TRUE(ResponseStatus(*decoded).IsInternal());

  decoded->code = 0;
  EXPECT_TRUE(ResponseStatus(*decoded).ok());
}

TEST(ServeProtocol, RepliesRoundtrip) {
  SubscribeReply subscribe;
  subscribe.query_id = 17;
  subscribe.accepted = false;
  subscribe.reject_reason = "peer SP3 load exceeded";
  subscribe.forward_from = 9;
  auto sub = DecodeSubscribeReply(EncodeSubscribeReply(subscribe));
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ(sub->query_id, 17);
  EXPECT_FALSE(sub->accepted);
  EXPECT_EQ(sub->reject_reason, "peer SP3 load exceeded");
  EXPECT_EQ(sub->forward_from, 9u);

  StatsReply stats;
  stats.epoch = 2;
  stats.draining = true;
  stats.items_fed = 500;
  stats.attached_clients = 3;
  stats.admitted = 10;
  stats.rejected = 2;
  stats.results_forwarded = 1234;
  QueryStat query;
  query.query_id = 4;
  query.accepted = true;
  query.active = true;
  query.items = 77;
  query.bytes = 8080;
  query.content_hash = 0xdeadbeefull;
  stats.queries.push_back(query);
  auto decoded = DecodeStatsReply(EncodeStatsReply(stats));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->epoch, 2u);
  EXPECT_TRUE(decoded->draining);
  ASSERT_EQ(decoded->queries.size(), 1u);
  EXPECT_EQ(decoded->queries[0].content_hash, 0xdeadbeefull);

  RecoveryReply recovery;
  recovery.replans = 3;
  recovery.lost_queries = 1;
  recovery.dead_targets = 2;
  recovery.lost_windows = 40;
  auto rec = DecodeRecoveryReply(EncodeRecoveryReply(recovery));
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->replans, 3u);
  EXPECT_EQ(rec->lost_windows, 40u);
}

TEST(ServeProtocol, ResultFrameStampReconstructsTicks) {
  std::string item_bytes = "\x01\x02\x03pretend-encoded-item";
  std::string body =
      EncodeResultFrame(/*query_id=*/5, /*seq=*/9, /*delivery_us=*/1000,
                        /*send_us=*/1450, item_bytes);
  auto frame = DecodeResultFrame(body);
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->query_id, 5);
  EXPECT_EQ(frame->seq, 9u);
  EXPECT_TRUE(frame->stamped);
  EXPECT_EQ(frame->send_us, 1450u);
  EXPECT_EQ(frame->delivery_us, 1000u);
  EXPECT_EQ(frame->residency_us, 450u);
  EXPECT_EQ(frame->transport_us, 0u);
  EXPECT_EQ(frame->item, item_bytes);
}

TEST(ServeProtocol, ServeEosRoundtrips) {
  ServeEos eos;
  eos.results_forwarded = 321;
  eos.final_drain = true;
  auto decoded = DecodeServeEos(EncodeServeEos(eos));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->results_forwarded, 321u);
  EXPECT_TRUE(decoded->final_drain);
}

TEST(ServeCheckpoint, SaveLoadRoundtrips) {
  Checkpoint checkpoint;
  checkpoint.scenario_fingerprint = 0x1234abcdull;
  checkpoint.epoch = 1;
  checkpoint.items_fed = 640;

  LogEvent subscribe;
  subscribe.kind = LogEvent::Kind::kSubscribe;
  subscribe.at_items = 0;
  subscribe.query_text = "some query";
  subscribe.vq = 2;
  subscribe.strategy = 2;
  checkpoint.events.push_back(subscribe);

  LogEvent fail;
  fail.kind = LogEvent::Kind::kFailPeer;
  fail.at_items = 320;
  fail.peer = 3;
  checkpoint.events.push_back(fail);

  LogEvent unsubscribe;
  unsubscribe.kind = LogEvent::Kind::kUnsubscribe;
  unsubscribe.at_items = 400;
  unsubscribe.query_id = 0;
  checkpoint.events.push_back(unsubscribe);

  LogEvent reoptimize;
  reoptimize.kind = LogEvent::Kind::kReoptimize;
  reoptimize.at_items = 480;
  reoptimize.max_migrations = -1;
  checkpoint.events.push_back(reoptimize);

  DeliverySnapshot delivery;
  delivery.query_id = 0;
  delivery.items = 93;
  delivery.content_hash = 0x5555ull;
  checkpoint.deliveries.push_back(delivery);

  std::string path =
      ::testing::TempDir() + "/serve_checkpoint_roundtrip.bin";
  std::remove(path.c_str());
  ASSERT_TRUE(SaveCheckpoint(path, checkpoint).ok());
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->scenario_fingerprint, 0x1234abcdull);
  EXPECT_EQ(loaded->epoch, 1u);
  EXPECT_EQ(loaded->items_fed, 640u);
  ASSERT_EQ(loaded->events.size(), 4u);
  EXPECT_EQ(loaded->events[0].kind, LogEvent::Kind::kSubscribe);
  EXPECT_EQ(loaded->events[0].query_text, "some query");
  EXPECT_EQ(loaded->events[1].kind, LogEvent::Kind::kFailPeer);
  EXPECT_EQ(loaded->events[1].peer, 3);
  EXPECT_EQ(loaded->events[1].at_items, 320u);
  EXPECT_EQ(loaded->events[2].query_id, 0);
  EXPECT_EQ(loaded->events[3].kind, LogEvent::Kind::kReoptimize);
  EXPECT_EQ(loaded->events[3].at_items, 480u);
  EXPECT_EQ(loaded->events[3].max_migrations, -1);
  ASSERT_EQ(loaded->deliveries.size(), 1u);
  EXPECT_EQ(loaded->deliveries[0].items, 93u);
  std::remove(path.c_str());
}

TEST(ServeCheckpoint, LoadRejectsGarbageAndMissing) {
  EXPECT_TRUE(LoadCheckpoint(::testing::TempDir() + "/no_such_ckpt.bin")
                  .status()
                  .IsNotFound());

  std::string path = ::testing::TempDir() + "/garbage_ckpt.bin";
  std::FILE* file = std::fopen(path.c_str(), "wb");
  ASSERT_NE(file, nullptr);
  std::fputs("definitely not a checkpoint", file);
  std::fclose(file);
  EXPECT_TRUE(LoadCheckpoint(path).status().IsParseError());
  std::remove(path.c_str());
}

TEST(ServeCheckpoint, FingerprintDiscriminatesScenarios) {
  workload::ScenarioSpec a = workload::ExtendedExampleScenario();
  workload::ScenarioSpec b = workload::GridScenario();
  workload::ScenarioSpec a2 = workload::ExtendedExampleScenario();
  EXPECT_EQ(ScenarioFingerprint(a), ScenarioFingerprint(a2));
  EXPECT_NE(ScenarioFingerprint(a), ScenarioFingerprint(b));

  // A different generator seed is a different input history — the
  // fingerprint must catch it.
  workload::ScenarioSpec a3 = workload::ExtendedExampleScenario(99);
  EXPECT_NE(ScenarioFingerprint(a), ScenarioFingerprint(a3));
}

}  // namespace
}  // namespace streamshare::serve
