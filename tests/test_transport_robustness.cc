// Transport robustness: codec round-trips on adversarial item shapes
// (deep nesting, empty text, many distinct names past the dictionary cap,
// large payloads), the decoder's depth safety rail, and flow control when
// a FaultPlan swallows CREDIT frames — including the dropped-final-CREDIT
// case, where the sender must fail with DeadlineExceeded, not hang.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "transport/codec.h"
#include "transport/flow.h"
#include "transport/loopback.h"
#include "xml/xml_node.h"

namespace streamshare {
namespace {

using transport::ChannelReceiver;
using transport::ChannelSender;
using transport::FaultPlan;
using transport::FlowOptions;
using transport::FrameType;
using transport::ItemDecoder;
using transport::ItemEncoder;
using transport::LoopbackTransport;
using transport::PipePair;

std::unique_ptr<xml::XmlNode> RoundTrip(const xml::XmlNode& node,
                                        ItemEncoder* encoder,
                                        ItemDecoder* decoder) {
  std::string wire;
  encoder->Encode(node, &wire);
  std::unique_ptr<xml::XmlNode> decoded;
  Status status = decoder->Decode(wire, &decoded);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return decoded;
}

// --- Codec round-trips on adversarial shapes ------------------------------

TEST(CodecRobustnessTest, DeeplyNestedItemRoundTrips) {
  // A chain nested well past any realistic schema but inside the decoder's
  // safety rail.
  constexpr size_t kDepth = transport::kMaxDecodeDepth - 1;
  xml::XmlNode root("d0");
  xml::XmlNode* tip = &root;
  for (size_t i = 1; i < kDepth; ++i) {
    tip = tip->AddChild("d" + std::to_string(i % 7));
  }
  tip->set_text("bottom");

  ItemEncoder encoder;
  ItemDecoder decoder;
  auto decoded = RoundTrip(root, &encoder, &decoder);
  ASSERT_NE(decoded, nullptr);
  EXPECT_TRUE(decoded->Equals(root));
}

TEST(CodecRobustnessTest, OverDeepItemFailsToDecodeCleanly) {
  constexpr size_t kDepth = transport::kMaxDecodeDepth + 8;
  xml::XmlNode root("d");
  xml::XmlNode* tip = &root;
  for (size_t i = 1; i < kDepth; ++i) tip = tip->AddChild("d");

  ItemEncoder encoder;
  std::string wire;
  encoder.Encode(root, &wire);
  ItemDecoder decoder;
  std::unique_ptr<xml::XmlNode> decoded;
  Status status = decoder.Decode(wire, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kParseError) << status.ToString();
}

TEST(CodecRobustnessTest, EmptyTextAndEmptyElementsRoundTrip) {
  xml::XmlNode root("photon");
  root.AddChild("empty");                     // no text, no children
  root.AddChild("blank")->set_text("");       // explicitly empty text
  root.AddChild("en")->set_text("1.25");
  xml::XmlNode* nested = root.AddChild("coord");
  nested->AddChild("cel");                    // empty interior node

  ItemEncoder encoder;
  ItemDecoder decoder;
  auto decoded = RoundTrip(root, &encoder, &decoder);
  ASSERT_NE(decoded, nullptr);
  EXPECT_TRUE(decoded->Equals(root));
}

TEST(CodecRobustnessTest, NamesPastDictionaryCapStillRoundTrip) {
  // More distinct names than the per-link dictionary holds: the overflow
  // names travel literally every time, but stay correct, and both ends
  // agree on the dictionary size.
  constexpr size_t kNames = transport::kMaxDictionaryNames + 64;
  ItemEncoder encoder;
  ItemDecoder decoder;

  // Spread the names over several items so the cap is crossed mid-stream.
  constexpr size_t kPerItem = 512;
  size_t next_name = 0;
  while (next_name < kNames) {
    xml::XmlNode item("batch");
    for (size_t i = 0; i < kPerItem && next_name < kNames; ++i) {
      item.AddChild("name_" + std::to_string(next_name++))
          ->set_text(std::to_string(next_name));
    }
    auto decoded = RoundTrip(item, &encoder, &decoder);
    ASSERT_NE(decoded, nullptr);
    ASSERT_TRUE(decoded->Equals(item));
  }
  EXPECT_EQ(encoder.dictionary_size(), transport::kMaxDictionaryNames);
  EXPECT_EQ(decoder.dictionary_size(), transport::kMaxDictionaryNames);

  // Repeats of both dictionary and overflow names still decode.
  xml::XmlNode again("batch");
  again.AddChild("name_0")->set_text("in-dictionary");
  again.AddChild("name_" + std::to_string(kNames - 1))
      ->set_text("overflowed");
  auto decoded = RoundTrip(again, &encoder, &decoder);
  ASSERT_NE(decoded, nullptr);
  EXPECT_TRUE(decoded->Equals(again));
}

TEST(CodecRobustnessTest, LargePayloadRoundTripsOverChannel) {
  // A maximal single item — megabyte text blob plus a wide fanout —
  // through encode → flow control → decode, end to end.
  xml::XmlNode big("blob");
  std::string text(1 << 20, 'x');
  for (size_t i = 0; i < text.size(); i += 4096) text[i] = 'y';
  big.AddChild("payload")->set_text(text);
  for (int i = 0; i < 1000; ++i) {
    big.AddChild("row")->set_text(std::to_string(i));
  }

  LoopbackTransport transport;
  PipePair pair;
  ASSERT_TRUE(transport.CreatePipe("big", &pair).ok());
  ChannelSender sender("big", std::move(pair.ends[0]), FlowOptions{}, {});
  ChannelReceiver receiver("big", std::move(pair.ends[1]), FlowOptions{});

  ItemEncoder encoder;
  std::string wire;
  encoder.Encode(big, &wire);
  ASSERT_TRUE(sender.SendItem(3, wire).ok());
  ASSERT_TRUE(sender.SendEos().ok());

  ChannelReceiver::Incoming incoming;
  ASSERT_TRUE(receiver.Recv(&incoming).ok());
  ASSERT_EQ(incoming.type, FrameType::kData);
  EXPECT_EQ(incoming.target, 3u);
  ItemDecoder decoder;
  std::unique_ptr<xml::XmlNode> decoded;
  Status status = decoder.Decode(incoming.item_bytes, &decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(decoded->Equals(big));
  ASSERT_TRUE(receiver.Recv(&incoming).ok());
  EXPECT_EQ(incoming.type, FrameType::kEos);
}

// --- Credit-drop fault ----------------------------------------------------

TEST(CreditFaultTest, DroppedFinalCreditFailsWithDeadlineNotHang) {
  // Credit window of 1: every item needs the credit from its predecessor.
  // The receiver drops the grant for the final in-flight item, so the
  // sender's next SendItem must exhaust its retries and fail with
  // DeadlineExceeded — bounded, visible, no hang.
  LoopbackTransport transport;
  PipePair pair;
  ASSERT_TRUE(transport.CreatePipe("fault", &pair).ok());
  FlowOptions options;
  options.initial_credits = 1;
  options.send_timeout_ms = 20;
  options.max_retries = 2;
  options.retry_backoff_ms = 1;
  FaultPlan faults;
  faults.credit_drop_period = 3;  // grants 1, 2 pass; grant 3 vanishes
  ChannelSender sender("fault", std::move(pair.ends[0]), options, {});
  ChannelReceiver receiver("fault", std::move(pair.ends[1]), options,
                           faults);

  std::vector<Status> send_status(4);
  std::thread sender_thread([&] {
    for (int i = 0; i < 4; ++i) {
      send_status[i] = sender.SendItem(0, "item-" + std::to_string(i));
    }
  });
  // Receive the three items that can arrive, granting after each — the
  // third grant is the one the fault swallows.
  for (int i = 0; i < 3; ++i) {
    ChannelReceiver::Incoming incoming;
    Status status = receiver.Recv(&incoming);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(incoming.type, FrameType::kData);
    receiver.GrantCredit(1);
  }
  sender_thread.join();

  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(send_status[i].ok()) << send_status[i].ToString();
  }
  EXPECT_EQ(send_status[3].code(), StatusCode::kDeadlineExceeded)
      << send_status[3].ToString();
  EXPECT_EQ(receiver.stats().faults_credits_dropped, 1u);
  EXPECT_GE(sender.stats().retries, 1u);
}

TEST(CreditFaultTest, OccasionalCreditLossIsAbsorbedByLaterGrants) {
  // With a wider window, a periodically dropped CREDIT only thins the
  // window; later grants keep the stream moving and everything arrives.
  LoopbackTransport transport;
  PipePair pair;
  ASSERT_TRUE(transport.CreatePipe("thin", &pair).ok());
  FlowOptions options;
  options.initial_credits = 8;
  FaultPlan faults;
  faults.credit_drop_period = 5;
  ChannelSender sender("thin", std::move(pair.ends[0]), options, {});
  ChannelReceiver receiver("thin", std::move(pair.ends[1]), options, faults);

  constexpr int kItems = 40;
  std::vector<std::string> received;
  Status final_status;
  std::thread receiver_thread([&] {
    for (;;) {
      ChannelReceiver::Incoming incoming;
      Status status = receiver.Recv(&incoming);
      if (!status.ok()) {
        final_status = status;
        return;
      }
      if (incoming.type != FrameType::kData) return;
      received.push_back(incoming.item_bytes);
      receiver.GrantCredit(1);
    }
  });
  for (int i = 0; i < kItems; ++i) {
    Status status = sender.SendItem(0, "item-" + std::to_string(i));
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  ASSERT_TRUE(sender.SendEos().ok());
  receiver_thread.join();

  ASSERT_TRUE(final_status.ok()) << final_status.ToString();
  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  EXPECT_EQ(receiver.stats().faults_credits_dropped,
            static_cast<uint64_t>(kItems / 5));
}

}  // namespace
}  // namespace streamshare
