// The headline correctness property of the whole system, tested
// end-to-end and randomized: *sharing is invisible*. For any workload of
// subscriptions, registering them under stream sharing (where plans reuse
// and transform each other's streams, recombine windows, and re-filter
// aggregates) must deliver exactly the same result items to every
// subscriber as evaluating each query independently over the raw stream
// (data shipping). Parameterized over generator seeds; each seed
// exercises a different mix of selection, contained-selection, and
// window-aggregation subscriptions.

#include <gtest/gtest.h>

#include "sharing/system.h"
#include "workload/scenario.h"
#include "xml/xml_writer.h"

namespace streamshare {
namespace {

class SharingInvisibilitySweep : public ::testing::TestWithParam<int> {};

TEST_P(SharingInvisibilitySweep, ResultsIdenticalToIndependentEvaluation) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(seed, /*query_count=*/16);

  auto run = [&](sharing::Strategy strategy, bool widening)
      -> Result<std::unique_ptr<sharing::StreamShareSystem>> {
    sharing::SystemConfig config;
    config.keep_results = true;
    config.planner.enable_widening = widening;
    SS_ASSIGN_OR_RETURN(auto system,
                        workload::BuildSystem(scenario, config));
    for (const workload::QuerySpec& query : scenario.queries) {
      SS_ASSIGN_OR_RETURN(
          sharing::RegistrationResult result,
          system->RegisterQuery(query.text, query.target, strategy));
      EXPECT_TRUE(result.accepted);
    }
    workload::PhotonGenerator generator(scenario.streams[0].gen);
    std::map<std::string, std::vector<engine::ItemPtr>> items;
    items["photons"] = generator.Generate(1200);
    SS_RETURN_IF_ERROR(system->Run(items));
    return system;
  };

  Result<std::unique_ptr<sharing::StreamShareSystem>> shared =
      run(sharing::Strategy::kStreamSharing, /*widening=*/false);
  ASSERT_TRUE(shared.ok()) << shared.status();
  Result<std::unique_ptr<sharing::StreamShareSystem>> widened =
      run(sharing::Strategy::kStreamSharing, /*widening=*/true);
  ASSERT_TRUE(widened.ok()) << widened.status();
  Result<std::unique_ptr<sharing::StreamShareSystem>> independent =
      run(sharing::Strategy::kDataShipping, /*widening=*/false);
  ASSERT_TRUE(independent.ok()) << independent.status();

  const auto& shared_regs = (*shared)->registrations();
  const auto& widened_regs = (*widened)->registrations();
  const auto& independent_regs = (*independent)->registrations();
  ASSERT_EQ(shared_regs.size(), independent_regs.size());
  ASSERT_EQ(widened_regs.size(), independent_regs.size());

  uint64_t total_results = 0;
  for (size_t q = 0; q < shared_regs.size(); ++q) {
    ASSERT_NE(shared_regs[q].sink, nullptr);
    ASSERT_NE(independent_regs[q].sink, nullptr);
    ASSERT_EQ(shared_regs[q].sink->item_count(),
              independent_regs[q].sink->item_count())
        << "query " << q << " plan:\n"
        << shared_regs[q].plan.ToString() << "\nquery text:\n"
        << scenario.queries[q].text;
    ASSERT_EQ(widened_regs[q].sink->item_count(),
              independent_regs[q].sink->item_count())
        << "query " << q << " (widening) plan:\n"
        << widened_regs[q].plan.ToString();
    total_results += shared_regs[q].sink->item_count();
    for (size_t i = 0; i < shared_regs[q].sink->items().size(); ++i) {
      const xml::XmlNode& shared_item = *shared_regs[q].sink->items()[i];
      const xml::XmlNode& independent_item =
          *independent_regs[q].sink->items()[i];
      ASSERT_TRUE(shared_item.Equals(independent_item))
          << "query " << q << " item " << i << "\nshared:\n"
          << xml::WriteCompact(shared_item) << "\nindependent:\n"
          << xml::WriteCompact(independent_item);
      ASSERT_TRUE(
          widened_regs[q].sink->items()[i]->Equals(independent_item))
          << "query " << q << " item " << i << " (widening)";
    }
  }
  // The comparison must not be vacuous.
  EXPECT_GT(total_results, 50u) << "seed " << seed;

  // And sharing must actually have shared something.
  int derived_reuses = 0;
  for (const sharing::RegistrationResult& r : shared_regs) {
    if (!(*shared)->registry()
             .stream(r.plan.inputs[0].reused_stream)
             .IsOriginal()) {
      ++derived_reuses;
    }
  }
  EXPECT_GT(derived_reuses, 0) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharingInvisibilitySweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606,
                                           707, 808));

}  // namespace
}  // namespace streamshare
