// SubscribeBatch determinism: registering a batch of N queries must be
// observationally identical to N sequential RegisterQuery calls in
// query-id order — same query ids, same admission decisions, same chosen
// plans, and same delivered sink results — while the batch machinery
// (shared analysis cache, epoch-guarded plan memo) only saves work, never
// changes outcomes. Includes the admission-control path: a rejection
// mid-batch must neither stop the batch nor perturb later plans, and a
// hard error mid-batch must leave exactly the registered prefix behind.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sharing/system.h"
#include "workload/paper_queries.h"
#include "workload/photon_gen.h"
#include "workload/scenario.h"

namespace streamshare {
namespace {

using sharing::RegistrationResult;
using sharing::StreamShareSystem;
using sharing::SystemConfig;
using BatchQuery = StreamShareSystem::BatchQuery;
using BatchStats = StreamShareSystem::BatchStats;

void ExpectSameRegistrations(const StreamShareSystem& batched,
                             const StreamShareSystem& sequential) {
  const auto& batch_regs = batched.registrations();
  const auto& seq_regs = sequential.registrations();
  ASSERT_EQ(batch_regs.size(), seq_regs.size());
  for (size_t q = 0; q < batch_regs.size(); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    EXPECT_EQ(batch_regs[q].query_id, seq_regs[q].query_id);
    EXPECT_EQ(batch_regs[q].accepted, seq_regs[q].accepted);
    EXPECT_EQ(batch_regs[q].reject_reason, seq_regs[q].reject_reason);
    // The installed plan, structurally: ToString covers reuse decisions,
    // operator chains, routes, and costs.
    EXPECT_EQ(batch_regs[q].plan.ToString(), seq_regs[q].plan.ToString());
    EXPECT_EQ(batch_regs[q].plan.TotalCost(), seq_regs[q].plan.TotalCost());
  }
}

TEST(SubscribeBatch, BatchOfNEqualsNSequentialRegistrations) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/23, /*query_count=*/16);
  SystemConfig config;
  config.keep_results = true;

  Result<std::unique_ptr<StreamShareSystem>> batched =
      workload::BuildSystem(scenario, config);
  ASSERT_TRUE(batched.ok()) << batched.status();
  Result<std::unique_ptr<StreamShareSystem>> sequential =
      workload::BuildSystem(scenario, config);
  ASSERT_TRUE(sequential.ok()) << sequential.status();

  std::vector<BatchQuery> batch;
  for (const workload::QuerySpec& query : scenario.queries) {
    batch.push_back({query.text, query.target,
                     sharing::Strategy::kStreamSharing});
    Result<RegistrationResult> result = (*sequential)->RegisterQuery(
        query.text, query.target, sharing::Strategy::kStreamSharing);
    ASSERT_TRUE(result.ok()) << result.status();
    if (result->sink != nullptr) result->sink->EnableContentHash();
  }
  BatchStats stats;
  Result<std::vector<RegistrationResult>> results =
      (*batched)->SubscribeBatch(batch, &stats);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), batch.size());
  EXPECT_EQ(stats.queries, static_cast<int>(batch.size()));
  EXPECT_EQ(stats.registered, static_cast<int>(batch.size()));
  for (const RegistrationResult& result : *results) {
    if (result.sink != nullptr) result.sink->EnableContentHash();
  }

  ExpectSameRegistrations(**batched, **sequential);

  // Same deliveries, item for item.
  workload::PhotonGenerator generator(scenario.streams[0].gen);
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  items[scenario.streams[0].name] = generator.Generate(800);
  ASSERT_TRUE((*batched)->Run(items).ok());
  ASSERT_TRUE((*sequential)->Run(items).ok());
  const auto& batch_regs = (*batched)->registrations();
  const auto& seq_regs = (*sequential)->registrations();
  for (size_t q = 0; q < batch_regs.size(); ++q) {
    SCOPED_TRACE("query " + std::to_string(q));
    ASSERT_EQ(batch_regs[q].sink != nullptr, seq_regs[q].sink != nullptr);
    if (batch_regs[q].sink == nullptr) continue;
    EXPECT_EQ(batch_regs[q].sink->item_count(),
              seq_regs[q].sink->item_count());
    EXPECT_EQ(batch_regs[q].sink->total_bytes(),
              seq_regs[q].sink->total_bytes());
    EXPECT_EQ(batch_regs[q].sink->content_hash(),
              seq_regs[q].sink->content_hash());
  }
}

TEST(SubscribeBatch, ClusteringCountersReflectSharedWork) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/29, /*query_count=*/4);
  Result<std::unique_ptr<StreamShareSystem>> system =
      workload::BuildSystem(scenario, SystemConfig());
  ASSERT_TRUE(system.ok()) << system.status();

  // The same template at three different target peers: one analysis,
  // three distinct plans (the memo key includes vq).
  std::vector<BatchQuery> batch = {
      {scenario.queries[0].text, 1, sharing::Strategy::kStreamSharing},
      {scenario.queries[0].text, 2, sharing::Strategy::kStreamSharing},
      {scenario.queries[0].text, 3, sharing::Strategy::kStreamSharing},
  };
  BatchStats stats;
  Result<std::vector<RegistrationResult>> results =
      (*system)->SubscribeBatch(batch, &stats);
  ASSERT_TRUE(results.ok()) << results.status();
  EXPECT_EQ(stats.analyze_cache_hits, 2);
  // Accepted deployments invalidate the plan memo (they commit resources
  // and may register streams), and these targets differ anyway.
  EXPECT_EQ(stats.plan_memo_hits, 0);
}

TEST(SubscribeBatch, AdmissionRejectionMidBatchMatchesSequential) {
  // Tiny capacities (as in the E6 overload experiment): repeated data
  // shipping saturates after a few queries, so the batch crosses the
  // accept→reject boundary mid-way.
  auto build = []() {
    SystemConfig config;
    config.enforce_limits = true;
    network::Topology tiny =
        network::Topology::ExtendedExample(/*bandwidth_kbps=*/150.0,
                                           /*max_load=*/60.0);
    auto system = std::make_unique<StreamShareSystem>(tiny, config);
    EXPECT_TRUE(system
                    ->RegisterStream("photons",
                                     workload::PhotonGenerator::Schema(),
                                     100.0, 4)
                    .ok());
    auto range = [&](const char* path, double lo, double hi) {
      EXPECT_TRUE(system
                      ->SetRange("photons", xml::Path::Parse(path).value(),
                                 {lo, hi})
                      .ok());
    };
    range("coord/cel/ra", 0.0, 360.0);
    range("coord/cel/dec", -90.0, 90.0);
    range("en", 0.1, 2.4);
    return system;
  };
  std::unique_ptr<StreamShareSystem> batched = build();
  std::unique_ptr<StreamShareSystem> sequential = build();

  std::vector<BatchQuery> batch(
      8, BatchQuery{workload::kQuery1, 3, sharing::Strategy::kDataShipping});
  BatchStats stats;
  Result<std::vector<RegistrationResult>> results =
      batched->SubscribeBatch(batch, &stats);
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_EQ(results->size(), batch.size());
  EXPECT_EQ(stats.registered, static_cast<int>(batch.size()));

  int rejected = 0;
  for (const BatchQuery& query : batch) {
    Result<RegistrationResult> result = sequential->RegisterQuery(
        query.text, query.vq, query.strategy);
    ASSERT_TRUE(result.ok()) << result.status();
    if (!result->accepted) ++rejected;
  }
  // The capacities are sized so the boundary is crossed mid-batch.
  ASSERT_GT(rejected, 0);
  ASSERT_LT(rejected, static_cast<int>(batch.size()));
  ExpectSameRegistrations(*batched, *sequential);

  // Identical rejected registrations don't change system state, so the
  // memo stays valid across them: every rejection after the first is a
  // memo hit.
  EXPECT_EQ(stats.plan_memo_hits, rejected - 1);
}

TEST(SubscribeBatch, HardErrorMidBatchKeepsRegisteredPrefix) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/31, /*query_count=*/4);
  Result<std::unique_ptr<StreamShareSystem>> system =
      workload::BuildSystem(scenario, SystemConfig());
  ASSERT_TRUE(system.ok()) << system.status();

  std::vector<BatchQuery> batch = {
      {scenario.queries[0].text, 1, sharing::Strategy::kStreamSharing},
      {"this is not wxquery", 1, sharing::Strategy::kStreamSharing},
      {scenario.queries[1].text, 2, sharing::Strategy::kStreamSharing},
  };
  BatchStats stats;
  Result<std::vector<RegistrationResult>> results =
      (*system)->SubscribeBatch(batch, &stats);
  ASSERT_FALSE(results.ok());
  // Sequential semantics: the valid prefix is installed and stays.
  EXPECT_EQ(stats.registered, 1);
  ASSERT_EQ((*system)->registrations().size(), 1u);
  EXPECT_TRUE((*system)->registrations()[0].accepted);
}

}  // namespace
}  // namespace streamshare
