// Unit tests for the WXQuery parser: all seven grammar forms of
// Definition 2.1, window syntax, condition forms, error reporting, and the
// print/parse round-trip property.

#include "wxquery/parser.h"

#include <gtest/gtest.h>

#include "workload/paper_queries.h"
#include "workload/query_gen.h"

namespace streamshare::wxquery {
namespace {

ExprPtr MustParse(std::string_view text) {
  Result<ExprPtr> parsed = ParseQuery(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status() << "\nquery: " << text;
  return parsed.ok() ? std::move(parsed).value() : nullptr;
}

TEST(ParserTest, EmptyElementConstructor) {
  ExprPtr expr = MustParse("<t/>");
  ASSERT_NE(expr, nullptr);
  const auto* element = expr->As<ElementExpr>();
  ASSERT_NE(element, nullptr);
  EXPECT_EQ(element->tag, "t");
  EXPECT_TRUE(element->content.empty());
}

TEST(ParserTest, NestedElementConstructors) {
  ExprPtr expr = MustParse("<a><b/><c><d/></c></a>");
  const auto* a = expr->As<ElementExpr>();
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->content.size(), 2u);
  EXPECT_EQ(a->content[0]->As<ElementExpr>()->tag, "b");
  EXPECT_EQ(a->content[1]->As<ElementExpr>()->tag, "c");
}

TEST(ParserTest, MismatchedTagsRejected) {
  EXPECT_FALSE(ParseQuery("<a></b>").ok());
  EXPECT_FALSE(ParseQuery("<a>").ok());
}

TEST(ParserTest, PaperQuery1Structure) {
  ExprPtr expr = MustParse(workload::kQuery1);
  const auto* wrapper = expr->As<ElementExpr>();
  ASSERT_NE(wrapper, nullptr);
  EXPECT_EQ(wrapper->tag, "photons");
  ASSERT_EQ(wrapper->content.size(), 1u);
  const auto* flwr = wrapper->content[0]->As<FlwrExpr>();
  ASSERT_NE(flwr, nullptr);
  ASSERT_EQ(flwr->clauses.size(), 1u);
  const auto& for_clause = std::get<ForClause>(flwr->clauses[0]);
  EXPECT_EQ(for_clause.var, "p");
  EXPECT_EQ(for_clause.source_stream, "photons");
  EXPECT_EQ(for_clause.path.ToString(), "photons/photon");
  EXPECT_FALSE(for_clause.window.has_value());
  EXPECT_EQ(flwr->where.size(), 4u);
  EXPECT_EQ(flwr->where[0].lhs.var, "p");
  EXPECT_EQ(flwr->where[0].lhs.path.ToString(), "coord/cel/ra");
  EXPECT_EQ(flwr->where[0].op, predicate::ComparisonOp::kGe);
  EXPECT_EQ(flwr->where[0].constant, Decimal::Parse("120.0").value());
}

TEST(ParserTest, PaperQuery3WindowAndLet) {
  ExprPtr expr = MustParse(workload::kQuery3);
  const auto* flwr =
      expr->As<ElementExpr>()->content[0]->As<FlwrExpr>();
  ASSERT_NE(flwr, nullptr);
  ASSERT_EQ(flwr->clauses.size(), 2u);
  const auto& for_clause = std::get<ForClause>(flwr->clauses[0]);
  EXPECT_EQ(for_clause.path_conditions.size(), 4u);
  ASSERT_TRUE(for_clause.window.has_value());
  EXPECT_EQ(for_clause.window->type, properties::WindowType::kDiff);
  EXPECT_EQ(for_clause.window->reference.ToString(), "det_time");
  EXPECT_EQ(for_clause.window->size, Decimal::FromInt(20));
  EXPECT_EQ(for_clause.window->step, Decimal::FromInt(10));
  const auto& let_clause = std::get<LetClause>(flwr->clauses[1]);
  EXPECT_EQ(let_clause.var, "a");
  EXPECT_EQ(let_clause.func, properties::AggregateFunc::kAvg);
  EXPECT_EQ(let_clause.source_var, "w");
  EXPECT_EQ(let_clause.path.ToString(), "en");
}

TEST(ParserTest, CountWindowDefaultsStepToSize) {
  ExprPtr expr = MustParse(
      "for $w in stream(\"s\")/root/item |count 20| "
      "let $a := sum($w/x) return <r> { $a } </r>");
  const auto* flwr = expr->As<FlwrExpr>();
  const auto& for_clause = std::get<ForClause>(flwr->clauses[0]);
  ASSERT_TRUE(for_clause.window.has_value());
  EXPECT_EQ(for_clause.window->type, properties::WindowType::kCount);
  EXPECT_EQ(for_clause.window->size, Decimal::FromInt(20));
  EXPECT_EQ(for_clause.window->step, Decimal::FromInt(20));
}

TEST(ParserTest, CountWindowWithStep) {
  ExprPtr expr = MustParse(
      "for $w in stream(\"s\")/root/item |count 20 step 10| "
      "let $a := min($w/x) return <r> { $a } </r>");
  const auto& for_clause =
      std::get<ForClause>(expr->As<FlwrExpr>()->clauses[0]);
  EXPECT_EQ(for_clause.window->step, Decimal::FromInt(10));
}

TEST(ParserTest, AllAggregateFunctions) {
  for (const char* func : {"min", "max", "sum", "count", "avg"}) {
    std::string text = std::string("for $w in stream(\"s\")/r/i |count 5| "
                                   "let $a := ") +
                       func + "($w/x) return <r> { $a } </r>";
    EXPECT_TRUE(ParseQuery(text).ok()) << func;
  }
  EXPECT_FALSE(
      ParseQuery("for $w in stream(\"s\")/r/i |count 5| "
                 "let $a := median($w/x) return <r> { $a } </r>")
          .ok());
}

TEST(ParserTest, IfThenElse) {
  ExprPtr expr = MustParse(
      "for $p in stream(\"s\")/r/i where $p/x >= 1 "
      "return if $p/x >= 5 then <big> { $p/x } </big> "
      "else <small> { $p/x } </small>");
  const auto* flwr = expr->As<FlwrExpr>();
  const auto* branch = flwr->return_expr->As<IfExpr>();
  ASSERT_NE(branch, nullptr);
  EXPECT_EQ(branch->condition.size(), 1u);
  EXPECT_EQ(branch->then_expr->As<ElementExpr>()->tag, "big");
  EXPECT_EQ(branch->else_expr->As<ElementExpr>()->tag, "small");
}

TEST(ParserTest, SequenceExpression) {
  ExprPtr expr = MustParse(
      "for $p in stream(\"s\")/r/i return ( $p/a, $p/b, <x/> )");
  const auto* sequence =
      expr->As<FlwrExpr>()->return_expr->As<SequenceExpr>();
  ASSERT_NE(sequence, nullptr);
  EXPECT_EQ(sequence->items.size(), 3u);
  EXPECT_NE(sequence->items[0]->As<PathOutputExpr>(), nullptr);
}

TEST(ParserTest, EmptySequence) {
  ExprPtr expr = MustParse("for $p in stream(\"s\")/r/i return ()");
  EXPECT_TRUE(
      expr->As<FlwrExpr>()->return_expr->As<SequenceExpr>()->items.empty());
}

TEST(ParserTest, VariableVsVariablePlusConstant) {
  ExprPtr expr = MustParse(
      "for $p in stream(\"s\")/r/i where $p/a <= $p/b + 3.5 "
      "return <r/>");
  const auto& atom = expr->As<FlwrExpr>()->where[0];
  ASSERT_TRUE(atom.rhs.has_value());
  EXPECT_EQ(atom.rhs->path.ToString(), "b");
  EXPECT_EQ(atom.constant, Decimal::Parse("3.5").value());
}

TEST(ParserTest, VariableMinusConstant) {
  ExprPtr expr = MustParse(
      "for $p in stream(\"s\")/r/i where $p/a > $p/b - 2 return <r/>");
  const auto& atom = expr->As<FlwrExpr>()->where[0];
  EXPECT_EQ(atom.constant, Decimal::Parse("-2").value());
}

TEST(ParserTest, ConstantOnLeftIsFlipped) {
  ExprPtr expr = MustParse(
      "for $p in stream(\"s\")/r/i where 5 <= $p/a return <r/>");
  const auto& atom = expr->As<FlwrExpr>()->where[0];
  EXPECT_EQ(atom.lhs.path.ToString(), "a");
  EXPECT_EQ(atom.op, predicate::ComparisonOp::kGe);
  EXPECT_EQ(atom.constant, Decimal::FromInt(5));
}

TEST(ParserTest, MidPathConditionsParseAndRoundTrip) {
  const char* text =
      "for $p in stream(\"s\")/r/i where $p/n >= 0 "
      "return <o> { $p/sensor[quality >= 5 and quality <= 9]/"
      "reading[v >= 10] } </o>";
  ExprPtr expr = MustParse(text);
  ASSERT_NE(expr, nullptr);
  const auto* path_out = expr->As<FlwrExpr>()
                             ->return_expr->As<ElementExpr>()
                             ->content[0]
                             ->As<PathOutputExpr>();
  ASSERT_NE(path_out, nullptr);
  ASSERT_EQ(path_out->steps.size(), 2u);
  EXPECT_EQ(path_out->steps[0].name, "sensor");
  EXPECT_EQ(path_out->steps[0].conditions.size(), 2u);
  EXPECT_EQ(path_out->steps[1].name, "reading");
  EXPECT_EQ(path_out->steps[1].conditions.size(), 1u);
  EXPECT_EQ(path_out->PlainPath().ToString(), "sensor/reading");
  EXPECT_TRUE(path_out->HasConditions());
  // Round trip.
  std::string printed = PrintExpr(*expr);
  ExprPtr reparsed = MustParse(printed);
  ASSERT_NE(reparsed, nullptr);
  EXPECT_EQ(printed, PrintExpr(*reparsed));
}

TEST(ParserTest, XQueryCommentsAreSkipped) {
  EXPECT_TRUE(ParseQuery("(: header :) <a> (: inner (: nested :) :) "
                         "{ for $p in stream(\"s\")/r/i return <b/> } "
                         "</a>")
                  .ok());
}

TEST(ParserTest, ErrorsCarryPositions) {
  Result<ExprPtr> bad = ParseQuery("for $p in stream(\"s\")/r/i return");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find(" at "), std::string::npos);
}

TEST(ParserTest, RejectsVariousMalformedQueries) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("for in stream(\"s\")/r/i return <a/>").ok());
  EXPECT_FALSE(ParseQuery("for $p stream(\"s\")/r/i return <a/>").ok());
  EXPECT_FALSE(
      ParseQuery("for $p in stream(s)/r/i return <a/>").ok());  // quotes
  EXPECT_FALSE(
      ParseQuery("for $p in stream(\"s\")/r/i where return <a/>").ok());
  EXPECT_FALSE(ParseQuery("<a> { } </a>").ok());
  EXPECT_FALSE(ParseQuery("<a/> trailing").ok());
  EXPECT_FALSE(ParseQuery("for $w in stream(\"s\")/r/i |count 0| "
                          "let $a := avg($w/x) return <r/>")
                   .ok());  // zero-size window
  EXPECT_FALSE(ParseQuery("for $w in stream(\"s\")/r/i |diff 5| "
                          "let $a := avg($w/x) return <r/>")
                   .ok());  // diff needs a reference element
}

TEST(ParserTest, PrintParseRoundTrip) {
  const char* queries[] = {workload::kQuery1, workload::kQuery2,
                           workload::kQuery3, workload::kQuery4};
  for (const char* text : queries) {
    ExprPtr first = MustParse(text);
    ASSERT_NE(first, nullptr);
    std::string printed = PrintExpr(*first);
    ExprPtr second = MustParse(printed);
    ASSERT_NE(second, nullptr) << printed;
    EXPECT_EQ(printed, PrintExpr(*second)) << printed;
  }
}

TEST(ParserTest, GeneratedQueriesAllParse) {
  workload::QueryGenerator generator(
      workload::QueryGenConfig::Default(99));
  for (const std::string& text : generator.Generate(200)) {
    Result<ExprPtr> parsed = ParseQuery(text);
    EXPECT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    if (parsed.ok()) {
      // Round-trip stability.
      std::string printed = PrintExpr(**parsed);
      Result<ExprPtr> reparsed = ParseQuery(printed);
      ASSERT_TRUE(reparsed.ok()) << printed;
      EXPECT_EQ(printed, PrintExpr(**reparsed));
    }
  }
}

}  // namespace
}  // namespace streamshare::wxquery
