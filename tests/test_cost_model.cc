// Unit tests for the cost model: selectivity estimation, size/frequency
// derivation (§3.2's size(p) and freq(p)), operator loads, and the cost
// function C(P) with its exponential overload penalty.

#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "wxquery/analyzer.h"
#include "workload/paper_queries.h"
#include "workload/photon_gen.h"

namespace streamshare::cost {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    StreamStatistics stats(workload::PhotonGenerator::Schema(),
                           /*item_frequency_hz=*/100.0);
    stats.SetRange(P("coord/cel/ra"), {0.0, 360.0});
    stats.SetRange(P("coord/cel/dec"), {-90.0, 90.0});
    stats.SetRange(P("en"), {0.1, 2.4});
    stats.SetAvgIncrement(P("det_time"), 0.5);
    registry_.Register("photons", std::move(stats));
    model_ = std::make_unique<CostModel>(&registry_, CostParams{});
  }

  properties::InputStreamProperties PropsOf(const char* text) {
    Result<wxquery::AnalyzedQuery> analyzed =
        wxquery::ParseAndAnalyze(text);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status();
    return analyzed->props.inputs()[0];
  }

  StatisticsRegistry registry_;
  std::unique_ptr<CostModel> model_;
};

TEST_F(CostModelTest, OriginalStreamEstimate) {
  properties::InputStreamProperties original;
  original.stream_name = "photons";
  Result<StreamEstimate> estimate = model_->EstimateStream(original);
  ASSERT_TRUE(estimate.ok()) << estimate.status();
  EXPECT_DOUBLE_EQ(estimate->frequency_hz, 100.0);
  EXPECT_NEAR(estimate->item_size_bytes,
              workload::PhotonGenerator::Schema()->AvgItemSize(), 1e-9);
  EXPECT_GT(estimate->RateKbps(), 0.0);
}

TEST_F(CostModelTest, UnknownStreamFails) {
  properties::InputStreamProperties props;
  props.stream_name = "neutrinos";
  EXPECT_TRUE(model_->EstimateStream(props).status().IsNotFound());
}

TEST_F(CostModelTest, SelectionReducesFrequencyByBoxFraction) {
  Result<StreamEstimate> estimate =
      model_->EstimateStream(PropsOf(workload::kQuery1));
  ASSERT_TRUE(estimate.ok());
  // Q1's box: ra ∈ [120,138] of 360 (5%), dec ∈ [−49,−40] of 180 (5%).
  double expected_sel = (18.0 / 360.0) * (9.0 / 180.0);
  EXPECT_NEAR(estimate->frequency_hz, 100.0 * expected_sel, 1e-9);
}

TEST_F(CostModelTest, ProjectionReducesItemSize) {
  Result<StreamEstimate> estimate =
      model_->EstimateStream(PropsOf(workload::kQuery1));
  ASSERT_TRUE(estimate.ok());
  double full = workload::PhotonGenerator::Schema()->AvgItemSize();
  EXPECT_LT(estimate->item_size_bytes, full);
  EXPECT_GT(estimate->item_size_bytes, 0.0);
  // Q1 keeps ra, dec, phc, en, det_time — drops the coord/det subtree.
  double det_subtree = workload::PhotonGenerator::Schema()->AvgSubtreeSize(
      P("coord/det"));
  EXPECT_NEAR(estimate->item_size_bytes, full - det_subtree, 1e-9);
}

TEST_F(CostModelTest, AggregateEstimateUsesWindowStep) {
  Result<StreamEstimate> estimate =
      model_->EstimateStream(PropsOf(workload::kQuery3));
  ASSERT_TRUE(estimate.ok());
  // Time-based windows update once per µ reference units regardless of
  // the pre-selection: selection thins the items but stretches the
  // survivor increment by the same factor. With raw frequency 100/s and
  // avg det_time increment 0.5, the axis advances 50 units/s; step 10 ⇒
  // 5 windows per second.
  double expected_freq = 100.0 * 0.5 / 10.0;
  EXPECT_NEAR(estimate->frequency_hz, expected_freq, 1e-9);
  EXPECT_DOUBLE_EQ(estimate->item_size_bytes,
                   model_->params().aggregate_item_size);
}

TEST_F(CostModelTest, ResultFilterThinsAggregateStream) {
  Result<StreamEstimate> filtered =
      model_->EstimateStream(PropsOf(workload::kQuery4));
  ASSERT_TRUE(filtered.ok());
  // Q4 filters $a >= 1.3 over en ∈ [0.1, 2.4]: fraction (2.4−1.3)/2.3.
  Result<StreamEstimate> unfiltered =
      model_->EstimateStream(PropsOf(workload::kQuery3));
  ASSERT_TRUE(unfiltered.ok());
  // Q4 also has a coarser step (40 vs 10 ⇒ ×1/4 frequency).
  double expected =
      unfiltered->frequency_hz / 4.0 * ((2.4 - 1.3) / 2.3);
  EXPECT_NEAR(filtered->frequency_hz, expected, 1e-9);
}

TEST_F(CostModelTest, SelectivityForWindowDivisor) {
  predicate::PredicateGraph box = predicate::PredicateGraph::Build({
      predicate::AtomicPredicate::Compare(
          P("en"), predicate::ComparisonOp::kGe,
          Decimal::Parse("1.25").value()),
  });
  Result<double> selectivity = model_->SelectivityFor("photons", box);
  ASSERT_TRUE(selectivity.ok());
  EXPECT_NEAR(*selectivity, (2.4 - 1.25) / 2.3, 1e-9);

  properties::WindowSpec count = properties::WindowSpec::Count(30, 15).value();
  EXPECT_DOUBLE_EQ(model_->WindowUpdateDivisor("photons", count).value(),
                   15.0);
  properties::WindowSpec diff =
      properties::WindowSpec::Diff(P("det_time"), Decimal::FromInt(20),
                                   Decimal::FromInt(10))
          .value();
  EXPECT_DOUBLE_EQ(model_->WindowUpdateDivisor("photons", diff).value(),
                   10.0 / 0.5);
}

TEST_F(CostModelTest, UnconstrainedRangeGivesSelectivityOne) {
  predicate::PredicateGraph graph = predicate::PredicateGraph::Build({
      predicate::AtomicPredicate::Compare(
          P("unknown_element"), predicate::ComparisonOp::kGe,
          Decimal::FromInt(0)),
  });
  // No range statistics for the element: no reduction.
  EXPECT_DOUBLE_EQ(model_->SelectivityFor("photons", graph).value(), 1.0);
}

TEST_F(CostModelTest, VarVarPredicatesUseHeuristicFactor) {
  predicate::PredicateGraph graph = predicate::PredicateGraph::Build({
      predicate::AtomicPredicate::CompareVars(
          P("coord/cel/ra"), predicate::ComparisonOp::kLe,
          P("coord/cel/dec"), Decimal::FromInt(0)),
  });
  EXPECT_DOUBLE_EQ(model_->SelectivityFor("photons", graph).value(),
                   model_->params().var_var_selectivity);
}

TEST(PlanCostTest, GammaWeighting) {
  std::vector<ResourceUsage> connections{{0.4, 1.0}};
  std::vector<ResourceUsage> peers{{0.2, 1.0}};
  EXPECT_DOUBLE_EQ(PlanCost(connections, peers, 1.0), 0.4);
  EXPECT_DOUBLE_EQ(PlanCost(connections, peers, 0.0), 0.2);
  EXPECT_DOUBLE_EQ(PlanCost(connections, peers, 0.5), 0.3);
}

TEST(PlanCostTest, OverloadPenaltyIsExponential) {
  // u − a = 0.5 overload: penalty 0.5·e^0.5 on top of u.
  std::vector<ResourceUsage> overloaded{{1.0, 0.5}};
  double expected = 1.0 + 0.5 * std::exp(0.5);
  EXPECT_NEAR(PlanCost(overloaded, {}, 1.0), expected, 1e-12);
  // No penalty at or below capacity.
  std::vector<ResourceUsage> exact{{0.5, 0.5}};
  EXPECT_DOUBLE_EQ(PlanCost(exact, {}, 1.0), 0.5);
}

TEST(PlanCostTest, EmptyPlanCostsNothing) {
  EXPECT_DOUBLE_EQ(PlanCost({}, {}, 0.5), 0.0);
}

}  // namespace
}  // namespace streamshare::cost
