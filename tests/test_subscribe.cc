// Unit tests for the Planner: Algorithm 1 (Subscribe), the two baseline
// strategies, residual-operator derivation, plan costing, and search
// pruning.

#include "sharing/subscribe.h"

#include <gtest/gtest.h>

#include "workload/paper_queries.h"
#include "workload/photon_gen.h"

namespace streamshare::sharing {
namespace {

using network::NodeId;
using network::RegisteredStream;
using network::StreamId;

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topology_ = network::Topology::ExtendedExample();
    state_ = std::make_unique<network::NetworkState>(&topology_);

    cost::StreamStatistics stats(workload::PhotonGenerator::Schema(),
                                 100.0);
    stats.SetRange(P("coord/cel/ra"), {0.0, 360.0});
    stats.SetRange(P("coord/cel/dec"), {-90.0, 90.0});
    stats.SetRange(P("en"), {0.1, 2.4});
    stats.SetAvgIncrement(P("det_time"), 0.5);
    statistics_.Register("photons", std::move(stats));
    cost_model_ =
        std::make_unique<cost::CostModel>(&statistics_, cost::CostParams{});

    // Original photons stream at SP4.
    RegisteredStream original;
    original.variant_of = "photons";
    original.props.stream_name = "photons";
    original.source_node = 4;
    original.target_node = 4;
    original.route = {4};
    original.rate_kbps =
        cost_model_->EstimateStream(original.props)->RateKbps();
    registry_.Register(std::move(original));

    planner_ = std::make_unique<Planner>(&topology_, state_.get(),
                                         &registry_, cost_model_.get(),
                                         PlannerOptions{});
  }

  wxquery::AnalyzedQuery Analyze(const char* text) {
    Result<wxquery::AnalyzedQuery> analyzed =
        wxquery::ParseAndAnalyze(text);
    EXPECT_TRUE(analyzed.ok()) << analyzed.status();
    return std::move(analyzed).value();
  }

  /// Registers the derived stream a plan would create, so later plans can
  /// reuse it (mimics StreamShareSystem::DeployPlan's bookkeeping).
  void CommitPlan(const InputPlan& plan) {
    if (!plan.new_stream.has_value()) return;
    RegisteredStream stream;
    stream.variant_of = plan.input_stream_name;
    stream.props = plan.new_stream->props;
    stream.source_node = plan.new_stream->source_node;
    stream.target_node = plan.new_stream->target_node;
    stream.route = plan.new_stream->route;
    stream.rate_kbps = plan.new_stream->rate_kbps;
    registry_.Register(std::move(stream));
    for (const auto& [link, kbps] : plan.added_bandwidth_kbps) {
      state_->AddBandwidth(link, kbps);
    }
    for (const auto& [peer, load] : plan.added_load) {
      state_->AddLoad(peer, load);
    }
  }

  network::Topology topology_;
  std::unique_ptr<network::NetworkState> state_;
  network::StreamRegistry registry_;
  cost::StatisticsRegistry statistics_;
  std::unique_ptr<cost::CostModel> cost_model_;
  std::unique_ptr<Planner> planner_;
};

TEST_F(PlannerTest, DataShippingShipsRawToTarget) {
  wxquery::AnalyzedQuery query = Analyze(workload::kQuery1);
  Result<EvaluationPlan> plan = planner_->DataShipping(query, 1);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const InputPlan& input = plan->inputs[0];
  EXPECT_TRUE(input.ships_raw_stream);
  EXPECT_EQ(input.reuse_node, 4);
  ASSERT_TRUE(input.new_stream.has_value());
  EXPECT_TRUE(input.new_stream->props.operators.empty());  // raw
  EXPECT_EQ(input.new_stream->route.front(), 4);
  EXPECT_EQ(input.new_stream->route.back(), 1);
  // All operators run at the query's super-peer.
  for (const EngineOpSpec& op : input.ops) {
    EXPECT_EQ(op.node, 1);
  }
  EXPECT_EQ(input.ops.size(), 2u);  // select + project
}

TEST_F(PlannerTest, QueryShippingEvaluatesAtSource) {
  wxquery::AnalyzedQuery query = Analyze(workload::kQuery1);
  Result<EvaluationPlan> plan = planner_->QueryShipping(query, 1);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const InputPlan& input = plan->inputs[0];
  EXPECT_FALSE(input.ships_raw_stream);
  for (const EngineOpSpec& op : input.ops) {
    EXPECT_EQ(op.node, 4);  // the source super-peer
  }
  ASSERT_TRUE(input.new_stream.has_value());
  EXPECT_FALSE(input.new_stream->props.operators.empty());  // transformed
}

TEST_F(PlannerTest, QueryShippingCheaperThanDataShippingOnTraffic) {
  wxquery::AnalyzedQuery query = Analyze(workload::kQuery1);
  double data_rate =
      planner_->DataShipping(query, 1)->inputs[0].new_stream->rate_kbps;
  double query_rate =
      planner_->QueryShipping(query, 1)->inputs[0].new_stream->rate_kbps;
  EXPECT_LT(query_rate, data_rate / 10);
}

TEST_F(PlannerTest, SubscribePrefersInNetworkEvaluation) {
  // With nothing else in the network, Subscribe should behave like query
  // shipping (filter at the source, ship the small stream).
  wxquery::AnalyzedQuery query = Analyze(workload::kQuery1);
  SearchStats stats;
  Result<EvaluationPlan> plan = planner_->Subscribe(query, 1, &stats);
  ASSERT_TRUE(plan.ok()) << plan.status();
  const InputPlan& input = plan->inputs[0];
  EXPECT_FALSE(input.ships_raw_stream);
  EXPECT_EQ(input.reuse_node, 4);
  EXPECT_EQ(input.reused_stream, 0);
  EXPECT_GT(stats.plans_generated, 0);
  EXPECT_GT(stats.nodes_visited, 0);
}

TEST_F(PlannerTest, SubscribeReusesExistingDerivedStream) {
  wxquery::AnalyzedQuery q1 = Analyze(workload::kQuery1);
  Result<EvaluationPlan> p1 = planner_->Subscribe(q1, 1);
  ASSERT_TRUE(p1.ok());
  CommitPlan(p1->inputs[0]);

  wxquery::AnalyzedQuery q2 = Analyze(workload::kQuery2);
  Result<EvaluationPlan> p2 = planner_->Subscribe(q2, 7);
  ASSERT_TRUE(p2.ok());
  const InputPlan& input = p2->inputs[0];
  EXPECT_EQ(input.reused_stream, 1);  // Q1's derived stream
  // Q1's stream route (4→…→1) passes SP7 or SP5; the tap node must be on
  // that route.
  const RegisteredStream& reused = registry_.stream(1);
  EXPECT_NE(std::find(reused.route.begin(), reused.route.end(),
                      input.reuse_node),
            reused.route.end());
}

TEST_F(PlannerTest, IdenticalQueryReusedWithoutNewOperators) {
  wxquery::AnalyzedQuery q1 = Analyze(workload::kQuery1);
  Result<EvaluationPlan> p1 = planner_->Subscribe(q1, 1);
  ASSERT_TRUE(p1.ok());
  CommitPlan(p1->inputs[0]);

  // The same query registered at the same super-peer again: tap in place,
  // no ops, no new stream.
  wxquery::AnalyzedQuery q1_again = Analyze(workload::kQuery1);
  Result<EvaluationPlan> p2 = planner_->Subscribe(q1_again, 1);
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->inputs[0].reused_stream, 1);
  EXPECT_TRUE(p2->inputs[0].ops.empty());
  EXPECT_FALSE(p2->inputs[0].new_stream.has_value());
  EXPECT_LT(p2->inputs[0].cost, p1->inputs[0].cost);
}

TEST_F(PlannerTest, AggregateReusePlansCombineAndFilter) {
  wxquery::AnalyzedQuery q3 = Analyze(workload::kQuery3);
  Result<EvaluationPlan> p3 = planner_->Subscribe(q3, 3);
  ASSERT_TRUE(p3.ok());
  // Q3 over an empty network: full aggregation chain at the source.
  bool has_window_agg = false;
  for (const EngineOpSpec& op : p3->inputs[0].ops) {
    if (op.kind == EngineOpSpec::Kind::kWindowAgg) has_window_agg = true;
  }
  EXPECT_TRUE(has_window_agg);
  CommitPlan(p3->inputs[0]);

  wxquery::AnalyzedQuery q4 = Analyze(workload::kQuery4);
  Result<EvaluationPlan> p4 = planner_->Subscribe(q4, 0);
  ASSERT_TRUE(p4.ok());
  const InputPlan& input = p4->inputs[0];
  EXPECT_EQ(input.reused_stream, 1);  // Q3's aggregate stream
  bool has_combine = false, has_filter = false, has_agg = false;
  for (const EngineOpSpec& op : input.ops) {
    if (op.kind == EngineOpSpec::Kind::kAggCombine) has_combine = true;
    if (op.kind == EngineOpSpec::Kind::kAggFilter) has_filter = true;
    if (op.kind == EngineOpSpec::Kind::kWindowAgg) has_agg = true;
  }
  EXPECT_TRUE(has_combine);
  EXPECT_TRUE(has_filter);
  EXPECT_FALSE(has_agg);  // no re-aggregation from raw items
}

TEST_F(PlannerTest, UnknownStreamIsRejected) {
  wxquery::AnalyzedQuery query = Analyze(
      "<o> { for $p in stream(\"neutrinos\")/ns/n where $p/e >= 1 "
      "return <x> { $p/e } </x> } </o>");
  EXPECT_TRUE(planner_->Subscribe(query, 1).status().IsNotFound());
  EXPECT_TRUE(planner_->DataShipping(query, 1).status().IsNotFound());
  EXPECT_TRUE(planner_->QueryShipping(query, 1).status().IsNotFound());
}

TEST_F(PlannerTest, PruningVisitsFewerNodes) {
  // Commit Q1 so there is something to find.
  wxquery::AnalyzedQuery q1 = Analyze(workload::kQuery1);
  Result<EvaluationPlan> p1 = planner_->Subscribe(q1, 1);
  ASSERT_TRUE(p1.ok());
  CommitPlan(p1->inputs[0]);

  PlannerOptions unpruned_options;
  unpruned_options.prune_search = false;
  Planner unpruned(&topology_, state_.get(), &registry_, cost_model_.get(),
                   unpruned_options);

  wxquery::AnalyzedQuery q2 = Analyze(workload::kQuery2);
  SearchStats pruned_stats, unpruned_stats;
  Result<EvaluationPlan> pruned_plan =
      planner_->Subscribe(q2, 7, &pruned_stats);
  Result<EvaluationPlan> unpruned_plan =
      unpruned.Subscribe(q2, 7, &unpruned_stats);
  ASSERT_TRUE(pruned_plan.ok());
  ASSERT_TRUE(unpruned_plan.ok());
  EXPECT_LT(pruned_stats.nodes_visited, unpruned_stats.nodes_visited);
  // Pruning must not lose the winning plan here (streams span the
  // relevant region).
  EXPECT_DOUBLE_EQ(pruned_plan->TotalCost(), unpruned_plan->TotalCost());
}

TEST_F(PlannerTest, OverloadMarksPlanInfeasible) {
  // Saturate every link out of SP4 so the raw stream cannot be shipped.
  for (size_t link = 0; link < topology_.link_count(); ++link) {
    state_->AddBandwidth(static_cast<network::LinkId>(link),
                         topology_.link(link).bandwidth_kbps);
  }
  for (size_t peer = 0; peer < topology_.peer_count(); ++peer) {
    state_->AddLoad(static_cast<NodeId>(peer),
                    topology_.peer(peer).max_load);
  }
  wxquery::AnalyzedQuery query = Analyze(workload::kQuery1);
  Result<EvaluationPlan> plan = planner_->DataShipping(query, 1);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->Feasible());
  // The overload penalty makes the saturated plan cost more than the same
  // plan on an empty network.
  network::NetworkState fresh(&topology_);
  Planner fresh_planner(&topology_, &fresh, &registry_, cost_model_.get(),
                        PlannerOptions{});
  Result<EvaluationPlan> unloaded = fresh_planner.DataShipping(query, 1);
  ASSERT_TRUE(unloaded.ok());
  EXPECT_TRUE(unloaded->Feasible());
  EXPECT_GT(plan->TotalCost(), unloaded->TotalCost());
}

TEST_F(PlannerTest, CostReflectsRouteLength) {
  wxquery::AnalyzedQuery query = Analyze(workload::kQuery1);
  // Registering at the far corner costs more than next to the source.
  Result<EvaluationPlan> near = planner_->QueryShipping(query, 5);
  Result<EvaluationPlan> far = planner_->QueryShipping(query, 3);
  ASSERT_TRUE(near.ok());
  ASSERT_TRUE(far.ok());
  EXPECT_LT(near->TotalCost(), far->TotalCost());
}

}  // namespace
}  // namespace streamshare::sharing
