// Tests for the statistics collector: schema inference, occurrence and
// size statistics, value ranges, and monotone reference-element
// increments — checked against the known configuration of the photon
// generator.

#include "cost/collector.h"

#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "workload/photon_gen.h"
#include "xml/xml_parser.h"

namespace streamshare::cost {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

TEST(CollectorTest, RejectsForeignItemsAndEmptyBuilds) {
  StatisticsCollector collector("photons", "photon");
  xml::XmlNode wrong("neutrino");
  EXPECT_TRUE(collector.Observe(wrong).IsInvalidArgument());
  EXPECT_TRUE(collector.Build(10.0).status().IsInvalidArgument());

  xml::XmlNode photon("photon");
  photon.AddLeaf("en", "1.0");
  ASSERT_TRUE(collector.Observe(photon).ok());
  EXPECT_TRUE(collector.Build(0.0).status().IsInvalidArgument());
  EXPECT_TRUE(collector.Build(1.0).ok());
}

TEST(CollectorTest, InfersSchemaFromGeneratedPhotons) {
  workload::PhotonGenConfig config;
  workload::PhotonGenerator generator(config);
  StatisticsCollector collector("photons", "photon");
  const size_t kCount = 600;
  for (const engine::ItemPtr& photon : generator.Generate(kCount)) {
    ASSERT_TRUE(collector.Observe(*photon).ok());
  }
  ASSERT_EQ(collector.observed(), kCount);

  // 600 items at 100 Hz span 6 seconds.
  Result<StreamStatistics> stats = collector.Build(6.0);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_DOUBLE_EQ(stats->item_frequency_hz(), 100.0);

  // The inferred schema matches the generator's declared one in structure
  // and approximately in sizes.
  auto declared = workload::PhotonGenerator::Schema();
  for (const xml::Path& path : declared->AllPaths()) {
    EXPECT_TRUE(stats->schema().Contains(path)) << path.ToString();
    EXPECT_DOUBLE_EQ(stats->schema().OccurrencePerItem(path), 1.0)
        << path.ToString();
  }
  EXPECT_NEAR(stats->schema().AvgItemSize(), declared->AvgItemSize(),
              declared->AvgItemSize() * 0.1);

  // Ranges cover observed values and respect the generator's bounds.
  std::optional<ValueRange> en = stats->Range(P("en"));
  ASSERT_TRUE(en.has_value());
  EXPECT_GE(en->min, config.en_min);
  EXPECT_LE(en->max, config.en_max);
  EXPECT_GT(en->Width(), 1.0);  // the sample spans most of the band

  // det_time is detected as monotone with roughly the configured mean
  // increment; ra is not monotone.
  std::optional<double> increment = stats->AvgIncrement(P("det_time"));
  ASSERT_TRUE(increment.has_value());
  EXPECT_NEAR(*increment, config.det_time_increment_mean,
              config.det_time_increment_mean);
  EXPECT_FALSE(stats->AvgIncrement(P("coord/cel/ra")).has_value());
}

TEST(CollectorTest, RepeatedElementsGetFractionalOccurrence) {
  StatisticsCollector collector("s", "item");
  for (int i = 0; i < 4; ++i) {
    xml::XmlNode item("item");
    item.AddLeaf("a", "1");
    item.AddLeaf("a", "2");
    if (i % 2 == 0) item.AddLeaf("b", "3");
    ASSERT_TRUE(collector.Observe(item).ok());
  }
  Result<StreamStatistics> stats = collector.Build(1.0);
  ASSERT_TRUE(stats.ok());
  EXPECT_DOUBLE_EQ(stats->schema().OccurrencePerItem(P("a")), 2.0);
  EXPECT_DOUBLE_EQ(stats->schema().OccurrencePerItem(P("b")), 0.5);
}

TEST(CollectorTest, NonNumericLeavesGetNoRange) {
  StatisticsCollector collector("s", "item");
  xml::XmlNode item("item");
  item.AddLeaf("name", "vela");
  item.AddLeaf("value", "1.5");
  ASSERT_TRUE(collector.Observe(item).ok());
  Result<StreamStatistics> stats = collector.Build(1.0);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->Range(P("name")).has_value());
  EXPECT_TRUE(stats->Range(P("value")).has_value());
}

TEST(CollectorTest, HistogramsCaptureSkew) {
  // A sky with a strong hot region: the uniform range estimate for the
  // hot box is far too small; the collected histogram must recover most
  // of the concentration on the marginal.
  workload::PhotonGenConfig config;
  config.hot_regions = {{120.0, 138.0, -49.0, -40.0}};
  config.hot_weights = {6.0};
  config.base_weight = 4.0;  // 60% of photons in the box
  workload::PhotonGenerator generator(config);
  StatisticsCollector collector("photons", "photon");
  for (const engine::ItemPtr& photon : generator.Generate(3000)) {
    ASSERT_TRUE(collector.Observe(*photon).ok());
  }
  Result<StreamStatistics> stats = collector.Build(30.0);
  ASSERT_TRUE(stats.ok());
  const ValueHistogram* ra_hist = stats->Histogram(P("coord/cel/ra"));
  ASSERT_NE(ra_hist, nullptr);
  // ~62% of ra values lie in [120, 138] (60% hot + 2% of the uniform
  // base); the uniform assumption would say 5%.
  double mass = ra_hist->MassIn(120.0, 138.0);
  EXPECT_GT(mass, 0.5);
  EXPECT_LT(mass, 0.75);
  // Full range has mass ~1; disjoint interval is near empty.
  EXPECT_NEAR(ra_hist->MassIn(0.0, 360.0), 1.0, 1e-9);
  EXPECT_LT(ra_hist->MassIn(200.0, 300.0), 0.25);

  // And the cost model uses it: the selection selectivity for the hot
  // box tracks the real fraction instead of the uniform 0.25%.
  StatisticsRegistry registry;
  registry.Register("photons", std::move(stats).value());
  CostModel model(&registry, CostParams{});
  predicate::PredicateGraph box = predicate::PredicateGraph::Build({
      predicate::AtomicPredicate::Compare(
          P("coord/cel/ra"), predicate::ComparisonOp::kGe,
          Decimal::Parse("120.0").value()),
      predicate::AtomicPredicate::Compare(
          P("coord/cel/ra"), predicate::ComparisonOp::kLe,
          Decimal::Parse("138.0").value()),
      predicate::AtomicPredicate::Compare(
          P("coord/cel/dec"), predicate::ComparisonOp::kGe,
          Decimal::Parse("-49.0").value()),
      predicate::AtomicPredicate::Compare(
          P("coord/cel/dec"), predicate::ComparisonOp::kLe,
          Decimal::Parse("-40.0").value()),
  });
  double selectivity = model.SelectivityFor("photons", box).value();
  // Product of marginals: ~0.62 × ~0.64 ≈ 0.4 (the true joint is 0.6 —
  // marginal independence is the estimator's documented limit), versus
  // 0.0025 under the uniform assumption.
  EXPECT_GT(selectivity, 0.2);
  EXPECT_LT(selectivity, 0.6);
}

TEST(CollectorTest, CollectedStatisticsDriveTheCostModel) {
  // The collector's output plugs straight into the cost model.
  workload::PhotonGenerator generator(workload::PhotonGenConfig{});
  StatisticsCollector collector("photons", "photon");
  for (const engine::ItemPtr& photon : generator.Generate(400)) {
    ASSERT_TRUE(collector.Observe(*photon).ok());
  }
  Result<StreamStatistics> stats = collector.Build(4.0);
  ASSERT_TRUE(stats.ok());

  StatisticsRegistry registry;
  registry.Register("photons", std::move(stats).value());
  CostModel model(&registry, CostParams{});
  properties::InputStreamProperties original;
  original.stream_name = "photons";
  Result<StreamEstimate> estimate = model.EstimateStream(original);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate->frequency_hz, 100.0, 1e-9);
  EXPECT_GT(estimate->item_size_bytes, 100.0);
}

}  // namespace
}  // namespace streamshare::cost
