// The differential-testing harness tested against itself: generator
// determinism, JSON replay round-trips, the oracle passing clean seeds in
// every execution mode, and — the critical property — a deliberately
// injected equivalence bug being caught, shrunk to a minimal scenario,
// and emitted as a compilable reproducer.

#include <gtest/gtest.h>

#include <string>

#include "testing/fuzz_scenario.h"
#include "testing/oracle.h"
#include "testing/reproducer.h"
#include "testing/scenario_json.h"
#include "testing/shrink.h"
#include "wxquery/analyzer.h"

namespace streamshare::testing {
namespace {

// --- Generator ------------------------------------------------------------

TEST(FuzzScenarioTest, SameSeedGeneratesIdenticalScenario) {
  FuzzScenario a = GenerateScenario(42);
  FuzzScenario b = GenerateScenario(42);
  EXPECT_EQ(ToJson(a), ToJson(b));
  EXPECT_EQ(a.ToString(), b.ToString());
}

TEST(FuzzScenarioTest, DifferentSeedsDiffer) {
  EXPECT_NE(ToJson(GenerateScenario(1)), ToJson(GenerateScenario(2)));
}

TEST(FuzzScenarioTest, GeneratedScenariosAreWellFormed) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    FuzzScenario scenario = GenerateScenario(seed);
    EXPECT_GE(scenario.topology.peers, 3);
    EXPECT_GE(scenario.queries.size(), 2u);
    EXPECT_GE(scenario.streams.size(), 1u);
    auto topology = scenario.topology.Build();
    ASSERT_TRUE(topology.ok()) << "seed " << seed << ": "
                               << topology.status().ToString();
    for (const auto& q : scenario.queries) {
      EXPECT_LT(q.target, scenario.topology.peers) << "seed " << seed;
      EXPECT_FALSE(q.ToQueryText().empty());
    }
  }
}

TEST(FuzzScenarioTest, RenderedQueriesAlwaysParse) {
  // Every query text the generator can emit must be valid WXQuery —
  // otherwise fuzz coverage silently narrows to the parsable subset.
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    FuzzScenario scenario = GenerateScenario(seed);
    for (size_t i = 0; i < scenario.queries.size(); ++i) {
      auto analyzed =
          wxquery::ParseAndAnalyze(scenario.queries[i].ToQueryText());
      EXPECT_TRUE(analyzed.ok())
          << "seed " << seed << " q" << i << ": " << analyzed.status()
          << "\n" << scenario.queries[i].ToQueryText();
    }
  }
}

// --- JSON replay ----------------------------------------------------------

TEST(ScenarioJsonTest, RoundTripIsExact) {
  for (uint64_t seed : {1ull, 7ull, 99ull, 12345ull}) {
    FuzzScenario scenario = GenerateScenario(seed);
    auto replayed = FromJson(ToJson(scenario));
    ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
    EXPECT_EQ(ToJson(*replayed), ToJson(scenario)) << "seed " << seed;
    EXPECT_EQ(replayed->ToString(), scenario.ToString());
  }
}

TEST(ScenarioJsonTest, RejectsGarbage) {
  EXPECT_FALSE(FromJson("").ok());
  EXPECT_FALSE(FromJson("{").ok());
  EXPECT_FALSE(FromJson("[1, 2]").ok());
  EXPECT_FALSE(FromJson("{\"seed\": \"1\"}").ok());  // missing fields
}

// --- The oracle on clean seeds --------------------------------------------

TEST(OracleTest, CleanSeedsPassAllModes) {
  OracleOptions options;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    FuzzScenario scenario = GenerateScenario(seed);
    auto report = RunOracle(scenario, options);
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.status().ToString();
    EXPECT_TRUE(report->ok()) << "seed " << seed << ": "
                              << report->failure;
    EXPECT_GT(report->accepted, 0) << "seed " << seed;
  }
}

TEST(OracleTest, ServeArmMatchesSerialReference) {
  // The fifth arm: the same scenario hosted by a live daemon, every
  // subscription installed over the CONTROL plane, deliveries streamed
  // back over real localhost TCP. A clean seed must agree with the
  // serial reference byte for byte; a churned seed diffs against the
  // serial churned run (the daemon applies the same FailPeer/CutLink
  // events through its verbs).
  OracleOptions options;
  options.run_serve = true;
  options.run_parallel = false;  // speed; the serve arm is under test
  options.run_loopback = false;
  options.run_tcp = false;
  GeneratorOptions gen;
  gen.churn_probability = 0.5;
  int serve_modes = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    auto report = RunOracle(GenerateScenario(seed, gen), options);
    ASSERT_TRUE(report.ok()) << "seed " << seed << ": "
                             << report.status().ToString();
    EXPECT_TRUE(report->serve_ok) << "seed " << seed << ": "
                                  << report->failure;
    for (const ModeObservation& mode : report->modes) {
      if (mode.mode == "serve") ++serve_modes;
    }
  }
  EXPECT_EQ(serve_modes, 6) << "the serve arm must actually run";
}

TEST(OracleTest, SweepExercisesSharing) {
  // Across a batch of seeds the generator's box-pool bias must actually
  // produce plans that reuse derived streams — otherwise the sharing
  // oracle is vacuous.
  OracleOptions options;
  options.run_tcp = false;  // speed; sharing is mode-independent
  options.run_loopback = false;
  int reuses = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    auto report = RunOracle(GenerateScenario(seed), options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->ok()) << "seed " << seed << ": " << report->failure;
    reuses += report->shared_reuses;
  }
  EXPECT_GT(reuses, 0);
}

// --- The acceptance demo: injected bug → caught → shrunk → reproducer ----

/// Finds a seed whose scenario trips the injected divergence (it needs an
/// accepted aggregation query with a window at least `min_window` wide).
uint64_t FindInjectableSeed(const OracleOptions& options) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    auto report = RunOracle(GenerateScenario(seed), options);
    if (report.ok() && !report->ok()) return seed;
  }
  return 0;
}

TEST(InjectedBugTest, DivergenceIsCaughtAndShrunkToMinimalReproducer) {
  OracleOptions options;
  options.run_tcp = false;  // loopback already covers the transport path
  options.inject_divergence_mode = "parallel";
  options.inject_min_window = 1;

  uint64_t seed = FindInjectableSeed(options);
  ASSERT_NE(seed, 0u) << "no seed tripped the injected bug";
  FuzzScenario scenario = GenerateScenario(seed);
  auto report = RunOracle(scenario, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->ok());
  EXPECT_FALSE(report->equivalence_ok);
  EXPECT_NE(report->failure.find("parallel"), std::string::npos)
      << report->failure;

  // Shrink to a minimal scenario that still trips the same oracle.
  ShrinkStats stats;
  FuzzScenario minimal = Shrink(
      scenario,
      [&](const FuzzScenario& candidate) {
        auto r = RunOracle(candidate, options);
        return r.ok() && !r->ok();
      },
      /*max_rounds=*/4, &stats);
  EXPECT_GT(stats.accepted_steps, 0);

  // The injection only fires on aggregation queries, so a correct shrink
  // ends at exactly one query — an aggregation — and still fails.
  ASSERT_EQ(minimal.queries.size(), 1u);
  EXPECT_EQ(minimal.queries[0].kind, FuzzQuerySpec::Kind::kAggregation);
  EXPECT_LE(minimal.items_per_stream, scenario.items_per_stream);
  auto minimal_report = RunOracle(minimal, options);
  ASSERT_TRUE(minimal_report.ok());
  EXPECT_FALSE(minimal_report->ok());

  // And the clean oracle passes the minimal scenario: the failure is the
  // injected bug, not a latent one.
  auto clean = RunOracle(minimal, OracleOptions{});
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_TRUE(clean->ok()) << clean->failure;

  // The reproducer embeds a replayable copy of the minimal scenario.
  std::string snippet = ReproducerTestSnippet(minimal, "InjectedDemo",
                                              minimal_report->failure);
  EXPECT_NE(snippet.find("TEST(FuzzRegression, InjectedDemo)"),
            std::string::npos);
  size_t open = snippet.find("R\"json(");
  size_t close = snippet.find(")json\"");
  ASSERT_NE(open, std::string::npos);
  ASSERT_NE(close, std::string::npos);
  std::string embedded =
      snippet.substr(open + 7, close - (open + 7));
  auto replayed = FromJson(embedded);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_EQ(ToJson(*replayed), ToJson(minimal));
}

}  // namespace
}  // namespace streamshare::testing
