// Transport pipes and the credit-based flow-control protocol: basic
// send/recv and close semantics on both transports, in-order delivery
// between two threads, credit starvation surfacing as DeadlineExceeded,
// and each injected fault producing its documented symptom (drop → data
// loss error, duplicate → discarded and counted, delay → just late).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "transport/flow.h"
#include "transport/loopback.h"
#include "transport/tcp.h"
#include "transport/wire.h"

namespace streamshare {
namespace {

using transport::ChannelReceiver;
using transport::ChannelSender;
using transport::FaultPlan;
using transport::FlowOptions;
using transport::FrameType;
using transport::LoopbackTransport;
using transport::PipePair;
using transport::TcpTransport;
using transport::Transport;

// --- PipeEnd basics, parameterized over both transports ------------------

class PipeEndTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Transport> Make() {
    if (std::string(GetParam()) == "tcp") {
      return std::make_unique<TcpTransport>();
    }
    return std::make_unique<LoopbackTransport>();
  }
};

TEST_P(PipeEndTest, FramesCrossInBothDirections) {
  auto transport = Make();
  PipePair pair;
  ASSERT_TRUE(transport->CreatePipe("t", &pair).ok());

  ASSERT_TRUE(pair.ends[0]->SendFrame(FrameType::kData, "ping").ok());
  FrameType type;
  std::string body;
  ASSERT_TRUE(pair.ends[1]->RecvFrame(&type, &body, 2000).ok());
  EXPECT_EQ(type, FrameType::kData);
  EXPECT_EQ(body, "ping");

  ASSERT_TRUE(pair.ends[1]->SendFrame(FrameType::kCredit, "pong").ok());
  ASSERT_TRUE(pair.ends[0]->RecvFrame(&type, &body, 2000).ok());
  EXPECT_EQ(type, FrameType::kCredit);
  EXPECT_EQ(body, "pong");
}

TEST_P(PipeEndTest, RecvTimesOutOnSilence) {
  auto transport = Make();
  PipePair pair;
  ASSERT_TRUE(transport->CreatePipe("t", &pair).ok());
  FrameType type;
  std::string body;
  Status status = pair.ends[1]->RecvFrame(&type, &body, 20);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
}

TEST_P(PipeEndTest, PeerCloseDrainsThenReportsUnavailable) {
  auto transport = Make();
  PipePair pair;
  ASSERT_TRUE(transport->CreatePipe("t", &pair).ok());
  ASSERT_TRUE(pair.ends[0]->SendFrame(FrameType::kData, "last").ok());
  pair.ends[0]->Close();

  // The queued frame still arrives, then the close is visible.
  FrameType type;
  std::string body;
  ASSERT_TRUE(pair.ends[1]->RecvFrame(&type, &body, 2000).ok());
  EXPECT_EQ(body, "last");
  Status status = pair.ends[1]->RecvFrame(&type, &body, 2000);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();
}

INSTANTIATE_TEST_SUITE_P(Transports, PipeEndTest,
                         ::testing::Values("loopback", "tcp"));

TEST(TcpPipeTest, ReportsWireBytes) {
  TcpTransport transport;
  PipePair pair;
  ASSERT_TRUE(transport.CreatePipe("t", &pair).ok());
  ASSERT_TRUE(pair.ends[0]->SendFrame(FrameType::kData, "0123456789").ok());
  FrameType type;
  std::string body;
  ASSERT_TRUE(pair.ends[1]->RecvFrame(&type, &body, 2000).ok());
  // length prefix (1) + version (1) + type (1) + 10 body bytes.
  EXPECT_EQ(pair.ends[0]->wire_bytes_sent(), 13u);
  EXPECT_EQ(pair.ends[1]->wire_bytes_sent(), 0u);
}

// --- Credit protocol ------------------------------------------------------

struct Channel {
  std::unique_ptr<ChannelSender> sender;
  std::unique_ptr<ChannelReceiver> receiver;
};

Channel MakeChannel(Transport* transport, FlowOptions options,
                    FaultPlan faults = {}) {
  PipePair pair;
  Status status = transport->CreatePipe("chan", &pair);
  EXPECT_TRUE(status.ok()) << status.ToString();
  Channel channel;
  channel.sender = std::make_unique<ChannelSender>(
      "chan", std::move(pair.ends[0]), options, faults);
  channel.receiver = std::make_unique<ChannelReceiver>(
      "chan", std::move(pair.ends[1]), options);
  return channel;
}

/// Runs the receive loop until EOS/ERROR, granting one credit per item —
/// the same cadence the runner uses after a LinkQueue push.
struct ReceiveResult {
  std::vector<std::pair<uint64_t, std::string>> items;
  Status final_status = Status::Ok();
};

ReceiveResult DrainChannel(ChannelReceiver* receiver) {
  ReceiveResult result;
  for (;;) {
    ChannelReceiver::Incoming incoming;
    Status status = receiver->Recv(&incoming);
    if (!status.ok()) {
      result.final_status = status;
      return result;
    }
    if (incoming.type == FrameType::kEos) return result;
    if (incoming.type == FrameType::kError) {
      result.final_status = Status::Internal(incoming.error);
      return result;
    }
    result.items.emplace_back(incoming.target, incoming.item_bytes);
    receiver->GrantCredit(1);
  }
}

TEST(FlowControlTest, DeliversInOrderWithSmallCreditWindow) {
  LoopbackTransport transport;
  FlowOptions options;
  options.initial_credits = 4;  // force many credit round trips
  Channel channel = MakeChannel(&transport, options);

  constexpr int kItems = 200;
  ReceiveResult result;
  std::thread receiver_thread(
      [&] { result = DrainChannel(channel.receiver.get()); });
  for (int i = 0; i < kItems; ++i) {
    Status status = channel.sender->SendItem(
        static_cast<uint64_t>(i % 7), "item-" + std::to_string(i));
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  ASSERT_TRUE(channel.sender->SendEos().ok());
  receiver_thread.join();

  ASSERT_TRUE(result.final_status.ok()) << result.final_status.ToString();
  ASSERT_EQ(result.items.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(result.items[i].first, static_cast<uint64_t>(i % 7));
    EXPECT_EQ(result.items[i].second, "item-" + std::to_string(i));
  }
  const transport::ChannelStats& sent = channel.sender->stats();
  EXPECT_EQ(sent.frames_sent, static_cast<uint64_t>(kItems));
  EXPECT_GT(sent.credit_stalls, 0u);  // window of 4 over 200 items
  EXPECT_EQ(channel.receiver->stats().items_delivered,
            static_cast<uint64_t>(kItems));
}

TEST(FlowControlTest, CreditStarvationHitsDeadline) {
  LoopbackTransport transport;
  FlowOptions options;
  options.initial_credits = 1;
  options.send_timeout_ms = 10;
  options.max_retries = 1;
  options.retry_backoff_ms = 1;
  Channel channel = MakeChannel(&transport, options);

  // Nobody is receiving, so the second item never gets a credit.
  ASSERT_TRUE(channel.sender->SendItem(0, "first").ok());
  Status status = channel.sender->SendItem(0, "second");
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
  EXPECT_GE(channel.sender->stats().retries, 1u);
}

TEST(FlowControlTest, DroppedFrameSurfacesAsDataLoss) {
  LoopbackTransport transport;
  FaultPlan faults;
  faults.drop_period = 3;  // drop every 3rd DATA frame
  Channel channel = MakeChannel(&transport, {}, faults);

  ReceiveResult result;
  std::thread receiver_thread(
      [&] { result = DrainChannel(channel.receiver.get()); });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(channel.sender->SendItem(0, "x").ok());
  }
  ASSERT_TRUE(channel.sender->SendEos().ok());
  receiver_thread.join();

  EXPECT_EQ(result.final_status.code(), StatusCode::kUnavailable)
      << result.final_status.ToString();
  EXPECT_GT(channel.sender->stats().faults_dropped, 0u);
}

TEST(FlowControlTest, DuplicatesAreDiscardedAndCounted) {
  LoopbackTransport transport;
  FaultPlan faults;
  faults.duplicate_period = 2;  // every 2nd DATA frame goes out twice
  Channel channel = MakeChannel(&transport, {}, faults);

  constexpr int kItems = 20;
  ReceiveResult result;
  std::thread receiver_thread(
      [&] { result = DrainChannel(channel.receiver.get()); });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(
        channel.sender->SendItem(0, "item-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(channel.sender->SendEos().ok());
  receiver_thread.join();

  ASSERT_TRUE(result.final_status.ok()) << result.final_status.ToString();
  ASSERT_EQ(result.items.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(result.items[i].second, "item-" + std::to_string(i));
  }
  EXPECT_EQ(channel.sender->stats().faults_duplicated,
            static_cast<uint64_t>(kItems / 2));
  EXPECT_EQ(channel.receiver->stats().duplicates_discarded,
            static_cast<uint64_t>(kItems / 2));
}

TEST(FlowControlTest, DelayedFramesStillArrive) {
  LoopbackTransport transport;
  FaultPlan faults;
  faults.delay_period = 4;
  faults.delay_ms = 5;
  Channel channel = MakeChannel(&transport, {}, faults);

  constexpr int kItems = 12;
  ReceiveResult result;
  std::thread receiver_thread(
      [&] { result = DrainChannel(channel.receiver.get()); });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(
        channel.sender->SendItem(0, "item-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(channel.sender->SendEos().ok());
  receiver_thread.join();

  ASSERT_TRUE(result.final_status.ok()) << result.final_status.ToString();
  ASSERT_EQ(result.items.size(), static_cast<size_t>(kItems));
  EXPECT_EQ(channel.sender->stats().faults_delayed,
            static_cast<uint64_t>(kItems / 4));
}

TEST(FlowControlTest, ErrorFramePropagatesMessage) {
  LoopbackTransport transport;
  Channel channel = MakeChannel(&transport, {});
  ASSERT_TRUE(channel.sender->SendItem(2, "payload").ok());
  ASSERT_TRUE(channel.sender->SendError("upstream exploded").ok());

  ChannelReceiver::Incoming incoming;
  ASSERT_TRUE(channel.receiver->Recv(&incoming).ok());
  EXPECT_EQ(incoming.type, FrameType::kData);
  EXPECT_EQ(incoming.target, 2u);
  channel.receiver->GrantCredit(1);
  ASSERT_TRUE(channel.receiver->Recv(&incoming).ok());
  EXPECT_EQ(incoming.type, FrameType::kError);
  EXPECT_EQ(incoming.error, "upstream exploded");
}

TEST(FlowControlTest, ProtocolRunsOverTcp) {
  TcpTransport transport;
  FlowOptions options;
  options.initial_credits = 8;
  Channel channel = MakeChannel(&transport, options);

  constexpr int kItems = 100;
  ReceiveResult result;
  std::thread receiver_thread(
      [&] { result = DrainChannel(channel.receiver.get()); });
  for (int i = 0; i < kItems; ++i) {
    ASSERT_TRUE(
        channel.sender->SendItem(0, "item-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(channel.sender->SendEos().ok());
  receiver_thread.join();

  ASSERT_TRUE(result.final_status.ok()) << result.final_status.ToString();
  ASSERT_EQ(result.items.size(), static_cast<size_t>(kItems));
  EXPECT_GT(channel.sender->stats().bytes_sent, 0u);
}

}  // namespace
}  // namespace streamshare
