// Trace recorder: emitted Chrome trace_event JSON must actually parse,
// carry the required fields on every event, and keep each thread track's
// complete-spans properly nested. A minimal recursive-descent JSON parser
// lives in this test so well-formedness is checked for real (no external
// dependency), not by substring poking.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "engine/parallel_executor.h"
#include "obs/trace.h"

namespace streamshare {
namespace {

using engine::ItemPtr;
using obs::TraceArg;
using obs::TraceRecorder;
using obs::TraceSpan;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser (objects, arrays, strings, numbers, bools,
// null). Throws nothing: Parse reports failure via ok().
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const {
    return type == Type::kObject && object.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue kNullValue;
    auto it = object.find(key);
    return it == object.end() ? kNullValue : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out) {
    bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseLiteral(const char* literal) {
    size_t len = std::string(literal).size();
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        char escape = text_[pos_++];
        switch (escape) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            // Decode only for validity; non-ASCII code points are kept as
            // '?' (the recorder never emits them).
            std::string hex = text_.substr(pos_, 4);
            pos_ += 4;
            int code = 0;
            for (char h : hex) {
              if (!std::isxdigit(static_cast<unsigned char>(h))) {
                return false;
              }
              code = code * 16 + (std::isdigit(
                                      static_cast<unsigned char>(h))
                                      ? h - '0'
                                      : (std::tolower(h) - 'a' + 10));
            }
            out->push_back(code < 128 ? static_cast<char>(code) : '?');
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;  // unterminated
  }
  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->type = JsonValue::Type::kObject;
      SkipSpace();
      if (Consume('}')) return true;
      while (true) {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) return false;
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->object.emplace(std::move(key), std::move(value));
        if (Consume(',')) continue;
        return Consume('}');
      }
    }
    if (c == '[') {
      ++pos_;
      out->type = JsonValue::Type::kArray;
      SkipSpace();
      if (Consume(']')) return true;
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) return false;
        out->array.push_back(std::move(value));
        if (Consume(',')) continue;
        return Consume(']');
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      out->boolean = false;
      return ParseLiteral("false");
    }
    if (c == 'n') return ParseLiteral("null");
    return ParseNumber(out);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// Parses `json` and returns the traceEvents array, failing the test on
// malformed input.
std::vector<JsonValue> TraceEvents(const std::string& json) {
  JsonValue root;
  JsonParser parser(json);
  EXPECT_TRUE(parser.Parse(&root)) << "malformed trace JSON: " << json;
  EXPECT_EQ(root.type, JsonValue::Type::kObject);
  EXPECT_TRUE(root.Has("traceEvents"));
  EXPECT_EQ(root.At("traceEvents").type, JsonValue::Type::kArray);
  return root.At("traceEvents").array;
}

// Every event needs name/ph/pid/tid; "X" events need ts and dur, "M"
// metadata events carry the thread name argument.
void CheckRequiredFields(const std::vector<JsonValue>& events) {
  for (const JsonValue& event : events) {
    ASSERT_EQ(event.type, JsonValue::Type::kObject);
    EXPECT_TRUE(event.Has("name"));
    EXPECT_TRUE(event.Has("ph"));
    EXPECT_TRUE(event.Has("pid"));
    EXPECT_TRUE(event.Has("tid"));
    const std::string& phase = event.At("ph").string;
    if (phase == "X") {
      EXPECT_TRUE(event.Has("ts"));
      EXPECT_TRUE(event.Has("dur"));
      EXPECT_TRUE(event.Has("cat"));
    } else if (phase == "M") {
      EXPECT_EQ(event.At("name").string, "thread_name");
      EXPECT_TRUE(event.At("args").Has("name"));
    } else if (phase == "i") {
      EXPECT_TRUE(event.Has("ts"));
      EXPECT_EQ(event.At("s").string, "t");
    } else {
      ADD_FAILURE() << "unexpected phase " << phase;
    }
  }
}

// Complete spans on one track must nest: sorted by (start asc, dur desc),
// each span either starts after the enclosing span ended or ends within
// it. RAII spans and the executor's manual dispatch spans both guarantee
// this per thread; interleaved (partially overlapping) spans on a track
// would render as garbage in the trace viewer.
void CheckNestingPerTrack(const std::vector<JsonValue>& events) {
  struct Span {
    uint64_t start, end;
    std::string name;
  };
  std::map<double, std::vector<Span>> by_tid;
  for (const JsonValue& event : events) {
    if (event.At("ph").string != "X") continue;
    Span span;
    span.start = static_cast<uint64_t>(event.At("ts").number);
    span.end = span.start + static_cast<uint64_t>(event.At("dur").number);
    span.name = event.At("name").string;
    by_tid[event.At("tid").number].push_back(span);
  }
  for (auto& [tid, spans] : by_tid) {
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      if (a.start != b.start) return a.start < b.start;
      return (a.end - a.start) > (b.end - b.start);
    });
    std::vector<Span> stack;
    for (const Span& span : spans) {
      while (!stack.empty() && stack.back().end <= span.start) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        EXPECT_LE(span.end, stack.back().end)
            << "span '" << span.name << "' overlaps '"
            << stack.back().name << "' on tid " << tid;
      }
      stack.push_back(span);
    }
  }
}

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;
  EXPECT_FALSE(recorder.enabled());
  recorder.RecordComplete("span", "test", 0, 10);
  recorder.RecordInstant("point", "test");
  TraceSpan span(&recorder, "raii", "test");
  EXPECT_FALSE(span.active());
  EXPECT_EQ(recorder.event_count(), 0u);
  std::vector<JsonValue> events = TraceEvents(recorder.ToJson());
  EXPECT_TRUE(events.empty());
}

TEST(TraceRecorderTest, NestedSpansSerializeWellFormed) {
#if !STREAMSHARE_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out";
#endif
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  recorder.SetThreadName("main-track");
  {
    TraceSpan outer(&recorder, "outer", "test");
    ASSERT_TRUE(outer.active());
    outer.AddArg(TraceArg::Num("C(P)", 0.125));
    outer.AddArg(TraceArg::Str("peer", "SP3"));
    {
      TraceSpan inner(&recorder, "inner", "test");
      recorder.RecordInstant("tick", "test",
                             {TraceArg::Num("items", 7)});
    }
  }
  EXPECT_EQ(recorder.event_count(), 3u);

  std::vector<JsonValue> events = TraceEvents(recorder.ToJson());
  // 3 recorded events + 1 thread_name metadata record.
  ASSERT_EQ(events.size(), 4u);
  CheckRequiredFields(events);
  CheckNestingPerTrack(events);

  bool saw_metadata = false, saw_outer = false;
  for (const JsonValue& event : events) {
    if (event.At("ph").string == "M") {
      saw_metadata = true;
      EXPECT_EQ(event.At("args").At("name").string, "main-track");
    }
    if (event.At("name").string == "outer") {
      saw_outer = true;
      EXPECT_DOUBLE_EQ(event.At("args").At("C(P)").number, 0.125);
      EXPECT_EQ(event.At("args").At("peer").string, "SP3");
    }
  }
  EXPECT_TRUE(saw_metadata);
  EXPECT_TRUE(saw_outer);
}

TEST(TraceRecorderTest, EscapesSpecialCharactersInStrings) {
#if !STREAMSHARE_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out";
#endif
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  recorder.RecordComplete("quote\" slash\\ newline\n tab\t", "cat\"egory",
                          0, 1,
                          {TraceArg::Str("k\"ey", "va\\lue\n")});
  std::vector<JsonValue> events = TraceEvents(recorder.ToJson());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].At("name").string, "quote\" slash\\ newline\n tab\t");
  EXPECT_EQ(events[0].At("cat").string, "cat\"egory");
  EXPECT_EQ(events[0].At("args").At("k\"ey").string, "va\\lue\n");
}

TEST(TraceRecorderTest, ThreadsGetDistinctTracks) {
#if !STREAMSHARE_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out";
#endif
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      recorder.SetThreadName("thread-" + std::to_string(t));
      for (int i = 0; i < 3; ++i) {
        TraceSpan span(&recorder, "work", "test");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  std::vector<JsonValue> events = TraceEvents(recorder.ToJson());
  CheckRequiredFields(events);
  CheckNestingPerTrack(events);
  std::map<double, int> spans_per_tid;
  int metadata = 0;
  for (const JsonValue& event : events) {
    if (event.At("ph").string == "X") {
      spans_per_tid[event.At("tid").number]++;
    } else if (event.At("ph").string == "M") {
      ++metadata;
    }
  }
  EXPECT_EQ(spans_per_tid.size(), static_cast<size_t>(kThreads));
  EXPECT_EQ(metadata, kThreads);
  for (const auto& [tid, count] : spans_per_tid) EXPECT_EQ(count, 3);
}

TEST(TraceRecorderTest, ClearDropsEventsAndResetsEpoch) {
#if !STREAMSHARE_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out";
#endif
  TraceRecorder recorder;
  recorder.SetEnabled(true);
  recorder.RecordComplete("before", "test", 0, 1);
  EXPECT_EQ(recorder.event_count(), 1u);
  recorder.Clear();
  EXPECT_EQ(recorder.event_count(), 0u);
  recorder.RecordComplete("after", "test", 0, 1);
  std::vector<JsonValue> events = TraceEvents(recorder.ToJson());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].At("name").string, "after");
}

ItemPtr Leaf(const std::string& name, const std::string& text) {
  auto node = std::make_unique<xml::XmlNode>(name);
  node->set_text(text);
  return engine::MakeItem(std::move(node));
}

// End-to-end: the parallel executor's built-in instrumentation (worker
// tracks, dispatch spans, the parallel.run span) must produce a parseable
// trace with well-nested spans on every track.
TEST(TraceRecorderTest, ParallelRunEmitsWellNestedTrace) {
#if !STREAMSHARE_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out";
#endif
  TraceRecorder& recorder = TraceRecorder::Default();
  recorder.Clear();
  recorder.SetEnabled(true);

  engine::OperatorGraph graph;
  auto* entry = graph.Add<engine::PassOp>("entry");
  auto* sink = graph.Add<engine::SinkOp>("sink");
  entry->AddDownstream(sink);
  std::vector<ItemPtr> items;
  for (int i = 0; i < 300; ++i) items.push_back(Leaf("n", std::to_string(i)));
  engine::ParallelExecutor executor;
  Status status = executor.Run(entry, items);

  recorder.SetEnabled(false);
  ASSERT_TRUE(status.ok());
  std::string json = recorder.ToJson();
  recorder.Clear();

  std::vector<JsonValue> events = TraceEvents(json);
  CheckRequiredFields(events);
  CheckNestingPerTrack(events);
  bool saw_run = false, saw_dispatch = false, saw_worker_track = false;
  for (const JsonValue& event : events) {
    if (event.At("name").string == "parallel.run") saw_run = true;
    if (event.At("cat").string == "op") saw_dispatch = true;
    if (event.At("ph").string == "M" &&
        event.At("args").At("name").string.find("worker-") == 0) {
      saw_worker_track = true;
    }
  }
  EXPECT_TRUE(saw_run);
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_worker_track);
}

}  // namespace
}  // namespace streamshare
