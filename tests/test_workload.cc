// Unit tests for the workload generators and scenario builders.

#include <gtest/gtest.h>

#include <set>

#include "predicate/eval.h"
#include "workload/photon_gen.h"
#include "workload/query_gen.h"
#include "workload/scenario.h"
#include "wxquery/analyzer.h"

namespace streamshare::workload {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

TEST(PhotonGeneratorTest, ProducesSchemaConformingItems) {
  PhotonGenConfig config;
  PhotonGenerator generator(config);
  auto schema = PhotonGenerator::Schema();
  for (int i = 0; i < 100; ++i) {
    engine::ItemPtr photon = generator.Next();
    EXPECT_EQ(photon->name(), "photon");
    for (const xml::Path& leaf : schema->LeafPaths()) {
      const xml::XmlNode* node = leaf.EvaluateFirst(*photon);
      ASSERT_NE(node, nullptr) << leaf.ToString();
      EXPECT_TRUE(Decimal::Parse(node->text()).ok())
          << leaf.ToString() << " = " << node->text();
    }
  }
}

TEST(PhotonGeneratorTest, DetTimeIsStrictlyIncreasing) {
  PhotonGenerator generator(PhotonGenConfig{});
  Decimal last = Decimal::Parse("-1").value();
  for (int i = 0; i < 200; ++i) {
    engine::ItemPtr photon = generator.Next();
    Decimal t =
        predicate::ExtractValue(*photon, P("det_time")).value();
    EXPECT_GT(t, last);
    last = t;
  }
}

TEST(PhotonGeneratorTest, ValuesStayInConfiguredRanges) {
  PhotonGenConfig config;
  PhotonGenerator generator(config);
  for (int i = 0; i < 200; ++i) {
    engine::ItemPtr photon = generator.Next();
    double ra = predicate::ExtractValue(*photon, P("coord/cel/ra"))
                    .value()
                    .ToDouble();
    double dec = predicate::ExtractValue(*photon, P("coord/cel/dec"))
                     .value()
                     .ToDouble();
    double en =
        predicate::ExtractValue(*photon, P("en")).value().ToDouble();
    EXPECT_GE(ra, 0.0);
    EXPECT_LE(ra, 360.0);
    EXPECT_GE(dec, -90.0);
    EXPECT_LE(dec, 90.0);
    EXPECT_GE(en, config.en_min);
    EXPECT_LE(en, config.en_max);
  }
}

TEST(PhotonGeneratorTest, HotRegionsGetElevatedDensity) {
  PhotonGenConfig config;
  config.hot_regions = {{120.0, 138.0, -49.0, -40.0}};
  config.hot_weights = {4.0};
  config.base_weight = 4.0;  // half the photons land in the vela box
  PhotonGenerator generator(config);
  int in_box = 0;
  const int kCount = 2000;
  for (int i = 0; i < kCount; ++i) {
    engine::ItemPtr photon = generator.Next();
    double ra = predicate::ExtractValue(*photon, P("coord/cel/ra"))
                    .value()
                    .ToDouble();
    double dec = predicate::ExtractValue(*photon, P("coord/cel/dec"))
                     .value()
                     .ToDouble();
    if (ra >= 120.0 && ra <= 138.0 && dec >= -49.0 && dec <= -40.0) {
      ++in_box;
    }
  }
  // ≥ 50% by the hot weight (plus a sliver of uniform hits).
  EXPECT_GT(in_box, kCount * 0.45);
  EXPECT_LT(in_box, kCount * 0.65);
}

TEST(PhotonGeneratorTest, SeedsAreReproducible) {
  PhotonGenConfig config;
  config.seed = 1234;
  PhotonGenerator a(config);
  PhotonGenerator b(config);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(a.Next()->Equals(*b.Next()));
  }
}

TEST(QueryGeneratorTest, AllGeneratedQueriesAnalyze) {
  QueryGenerator generator(QueryGenConfig::Default(5));
  for (const std::string& text : generator.Generate(300)) {
    Result<wxquery::AnalyzedQuery> analyzed =
        wxquery::ParseAndAnalyze(text);
    ASSERT_TRUE(analyzed.ok()) << analyzed.status() << "\n" << text;
    EXPECT_EQ(analyzed->bindings.size(), 1u);
    EXPECT_EQ(analyzed->bindings[0].stream_name, "photons");
  }
}

TEST(QueryGeneratorTest, MixContainsAllTemplates) {
  QueryGenerator generator(QueryGenConfig::Default(6));
  int aggregates = 0, plain = 0;
  for (const std::string& text : generator.Generate(200)) {
    Result<wxquery::AnalyzedQuery> analyzed =
        wxquery::ParseAndAnalyze(text);
    ASSERT_TRUE(analyzed.ok());
    if (analyzed->bindings[0].aggregate.has_value()) {
      ++aggregates;
    } else {
      ++plain;
    }
  }
  EXPECT_GT(aggregates, 20);
  EXPECT_GT(plain, 80);
}

TEST(QueryGeneratorTest, ConstantsComeFromPredefinedSets) {
  // Repeated boxes are the source of shareability: with 200 queries over
  // 5 predefined boxes, distinct selection-only predicates must repeat.
  QueryGenConfig config = QueryGenConfig::Default(7);
  config.contained_weight = 0.0;  // contained boxes are randomized
  config.aggregation_weight = 0.0;
  QueryGenerator generator(config);
  std::set<std::string> distinct;
  int count = 0;
  for (const std::string& text : generator.Generate(100)) {
    distinct.insert(text);
    ++count;
  }
  EXPECT_LT(distinct.size(), static_cast<size_t>(count) / 2);
}

TEST(ScenarioTest, ExtendedExampleShape) {
  ScenarioSpec scenario = ExtendedExampleScenario(11, 25);
  EXPECT_EQ(scenario.topology.peer_count(), 8u);
  EXPECT_EQ(scenario.streams.size(), 1u);
  EXPECT_EQ(scenario.streams[0].source, 4);
  EXPECT_EQ(scenario.queries.size(), 25u);
  // The first four are the paper's Q1..Q4 at their super-peers.
  EXPECT_EQ(scenario.queries[0].target, 1);
  EXPECT_EQ(scenario.queries[1].target, 7);
  EXPECT_EQ(scenario.queries[2].target, 3);
  EXPECT_EQ(scenario.queries[3].target, 0);
}

TEST(ScenarioTest, GridShape) {
  ScenarioSpec scenario = GridScenario(13, 100);
  EXPECT_EQ(scenario.topology.peer_count(), 16u);
  EXPECT_EQ(scenario.streams.size(), 2u);
  EXPECT_EQ(scenario.queries.size(), 100u);
  std::set<std::string> streams_used;
  for (const QuerySpec& query : scenario.queries) {
    if (query.text.find("photons2") != std::string::npos) {
      streams_used.insert("photons2");
    } else {
      streams_used.insert("photons");
    }
    EXPECT_GE(query.target, 0);
    EXPECT_LT(query.target, 16);
  }
  EXPECT_EQ(streams_used.size(), 2u);
}

TEST(ScenarioTest, RunScenarioSmoke) {
  ScenarioSpec scenario = ExtendedExampleScenario(11, 8);
  Result<ScenarioRun> run = RunScenario(
      scenario, sharing::Strategy::kStreamSharing, sharing::SystemConfig{},
      200);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->registration_failures, 0);
  EXPECT_EQ(run->accepted, 8);
  EXPECT_GT(run->duration_s, 0.0);
  EXPECT_GT(run->system->metrics().TotalWork(), 0.0);
}

}  // namespace
}  // namespace streamshare::workload
