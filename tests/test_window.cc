// Unit tests for window specifications.

#include "properties/window.h"

#include <gtest/gtest.h>

namespace streamshare::properties {
namespace {

TEST(WindowSpecTest, CountWindowDefaults) {
  Result<WindowSpec> window = WindowSpec::Count(20);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->type, WindowType::kCount);
  EXPECT_EQ(window->size, Decimal::FromInt(20));
  EXPECT_EQ(window->step, Decimal::FromInt(20));  // tumbling default
  EXPECT_EQ(window->ToString(), "|count 20|");
}

TEST(WindowSpecTest, CountWindowWithStep) {
  Result<WindowSpec> window = WindowSpec::Count(20, 10);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->ToString(), "|count 20 step 10|");
}

TEST(WindowSpecTest, DiffWindow) {
  Result<WindowSpec> window =
      WindowSpec::Diff(xml::Path::Parse("det_time").value(),
                       Decimal::FromInt(60), Decimal::FromInt(40));
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->type, WindowType::kDiff);
  EXPECT_EQ(window->ToString(), "|det_time diff 60 step 40|");
}

TEST(WindowSpecTest, DiffWindowDefaultsStep) {
  Result<WindowSpec> window = WindowSpec::Diff(
      xml::Path::Parse("t").value(), Decimal::Parse("2.5").value());
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->step, Decimal::Parse("2.5").value());
  EXPECT_EQ(window->ToString(), "|t diff 2.5|");
}

TEST(WindowSpecTest, ValidationRejectsBadSpecs) {
  EXPECT_TRUE(WindowSpec::Count(0).status().IsInvalidArgument());
  EXPECT_TRUE(WindowSpec::Count(-5).status().IsInvalidArgument());
  EXPECT_TRUE(WindowSpec::Count(10, -1).status().IsInvalidArgument());
  EXPECT_TRUE(WindowSpec::Diff(xml::Path(), Decimal::FromInt(10))
                  .status()
                  .IsInvalidArgument());  // no reference element
  EXPECT_TRUE(WindowSpec::Diff(xml::Path::Parse("t").value(), Decimal())
                  .status()
                  .IsInvalidArgument());  // zero size

  // Count windows with fractional size/step are rejected at Validate.
  WindowSpec bad;
  bad.type = WindowType::kCount;
  bad.size = Decimal::Parse("2.5").value();
  bad.step = Decimal::FromInt(1);
  EXPECT_TRUE(bad.Validate().IsInvalidArgument());

  WindowSpec ref_on_count;
  ref_on_count.type = WindowType::kCount;
  ref_on_count.size = Decimal::FromInt(5);
  ref_on_count.step = Decimal::FromInt(5);
  ref_on_count.reference = xml::Path::Parse("t").value();
  EXPECT_TRUE(ref_on_count.Validate().IsInvalidArgument());
}

TEST(WindowSpecTest, Equality) {
  WindowSpec a = WindowSpec::Count(20, 10).value();
  WindowSpec b = WindowSpec::Count(20, 10).value();
  WindowSpec c = WindowSpec::Count(20, 5).value();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace streamshare::properties
