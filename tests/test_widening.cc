// Tests for the stream-widening extension (paper §6 future work): the DBM
// join of predicate graphs, widening plan generation, in-place operator
// reconfiguration, and — crucially — that widening a deployed stream never
// changes any subscriber's results (compensation operators).

#include <gtest/gtest.h>

#include <random>

#include "predicate/graph.h"
#include "sharing/system.h"
#include "workload/photon_gen.h"

namespace streamshare {
namespace {

using predicate::AtomicPredicate;
using predicate::ComparisonOp;
using predicate::PredicateGraph;

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }
Decimal D(const char* text) { return Decimal::Parse(text).value(); }

AtomicPredicate Cmp(const char* path, ComparisonOp op, const char* c) {
  return AtomicPredicate::Compare(P(path), op, D(c));
}

TEST(PredicateUnionTest, BoxUnionTakesLooserBounds) {
  PredicateGraph a = PredicateGraph::Build({
      Cmp("ra", ComparisonOp::kGe, "120.0"),
      Cmp("ra", ComparisonOp::kLe, "138.0"),
      Cmp("dec", ComparisonOp::kGe, "-49.0"),
      Cmp("dec", ComparisonOp::kLe, "-40.0"),
  });
  PredicateGraph b = PredicateGraph::Build({
      Cmp("ra", ComparisonOp::kGe, "100.0"),
      Cmp("ra", ComparisonOp::kLe, "130.0"),
      Cmp("dec", ComparisonOp::kGe, "-45.0"),
      Cmp("dec", ComparisonOp::kLe, "-30.0"),
  });
  PredicateGraph joined = PredicateGraph::UnionOf(a, b);
  // The union box: ra ∈ [100, 138], dec ∈ [−49, −30].
  EXPECT_TRUE(a.Implies(joined));
  EXPECT_TRUE(b.Implies(joined));
  PredicateGraph expected = PredicateGraph::Build({
      Cmp("ra", ComparisonOp::kGe, "100.0"),
      Cmp("ra", ComparisonOp::kLe, "138.0"),
      Cmp("dec", ComparisonOp::kGe, "-49.0"),
      Cmp("dec", ComparisonOp::kLe, "-30.0"),
  });
  EXPECT_TRUE(joined.EquivalentTo(expected)) << joined.ToString();
}

TEST(PredicateUnionTest, VariablesConstrainedInOnlyOneInputAreDropped) {
  PredicateGraph a = PredicateGraph::Build({
      Cmp("x", ComparisonOp::kLe, "10"),
      Cmp("y", ComparisonOp::kGe, "0"),
  });
  PredicateGraph b = PredicateGraph::Build({
      Cmp("x", ComparisonOp::kLe, "20"),
  });
  PredicateGraph joined = PredicateGraph::UnionOf(a, b);
  EXPECT_TRUE(a.Implies(joined));
  EXPECT_TRUE(b.Implies(joined));
  // y is unconstrained in b, so it must be unconstrained in the union.
  std::optional<int> y = joined.FindNode(P("y"));
  if (y.has_value()) {
    EXPECT_TRUE(joined.EdgesConnectedTo(*y).empty());
  }
  // x keeps the looser bound 20.
  PredicateGraph expected =
      PredicateGraph::Build({Cmp("x", ComparisonOp::kLe, "20")});
  EXPECT_TRUE(joined.EquivalentTo(expected));
}

TEST(PredicateUnionTest, StrictnessJoinsCorrectly) {
  PredicateGraph strict =
      PredicateGraph::Build({Cmp("x", ComparisonOp::kLt, "5")});
  PredicateGraph nonstrict =
      PredicateGraph::Build({Cmp("x", ComparisonOp::kLe, "5")});
  PredicateGraph joined = PredicateGraph::UnionOf(strict, nonstrict);
  // x < 5 ∨ x ≤ 5 ⇒ x ≤ 5 (looser of the two).
  EXPECT_TRUE(joined.EquivalentTo(nonstrict)) << joined.ToString();
}

TEST(PredicateUnionTest, RandomizedSoundness) {
  // For random satisfiable graphs: both inputs imply their union.
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int> const_dist(-10, 10);
  std::uniform_int_distribution<int> var_dist(0, 2);
  std::uniform_int_distribution<int> op_dist(0, 3);
  static const char* const kVars[] = {"u", "v", "w"};
  static const ComparisonOp kOps[] = {ComparisonOp::kLt, ComparisonOp::kLe,
                                      ComparisonOp::kGt,
                                      ComparisonOp::kGe};
  auto random_graph = [&]() {
    std::vector<AtomicPredicate> preds;
    int count = 1 + var_dist(rng);
    for (int i = 0; i < count; ++i) {
      preds.push_back(AtomicPredicate::Compare(
          P(kVars[var_dist(rng)]), kOps[op_dist(rng)],
          Decimal::FromInt(const_dist(rng))));
    }
    return PredicateGraph::Build(preds);
  };
  int tested = 0;
  for (int round = 0; round < 200; ++round) {
    PredicateGraph a = random_graph();
    PredicateGraph b = random_graph();
    if (!a.IsSatisfiable() || !b.IsSatisfiable()) continue;
    a.Minimize();
    b.Minimize();
    PredicateGraph joined = PredicateGraph::UnionOf(a, b);
    EXPECT_TRUE(a.Implies(joined)) << a.ToString() << joined.ToString();
    EXPECT_TRUE(b.Implies(joined)) << b.ToString() << joined.ToString();
    EXPECT_TRUE(joined.IsSatisfiable());
    ++tested;
  }
  EXPECT_GT(tested, 100);
}

// --- system-level widening --------------------------------------------------

constexpr const char* kBoxA =
    "<out> { for $p in stream(\"photons\")/photons/photon "
    "where $p/coord/cel/ra >= 120.0 and $p/coord/cel/ra <= 138.0 "
    "and $p/coord/cel/dec >= -49.0 and $p/coord/cel/dec <= -40.0 "
    "return <a> { $p/coord/cel/ra } { $p/coord/cel/dec } { $p/en } </a> } "
    "</out>";

// Overlapping but NOT contained box: plain sharing cannot reuse A's
// stream; widening can.
constexpr const char* kBoxB =
    "<out> { for $p in stream(\"photons\")/photons/photon "
    "where $p/coord/cel/ra >= 110.0 and $p/coord/cel/ra <= 130.0 "
    "and $p/coord/cel/dec >= -49.0 and $p/coord/cel/dec <= -40.0 "
    "return <b> { $p/coord/cel/ra } { $p/coord/cel/dec } { $p/en } </b> } "
    "</out>";

class WideningSystemTest : public ::testing::Test {
 protected:
  std::unique_ptr<sharing::StreamShareSystem> MakeSystem(bool widening) {
    sharing::SystemConfig config;
    config.keep_results = true;
    config.planner.enable_widening = widening;
    auto system = std::make_unique<sharing::StreamShareSystem>(
        network::Topology::ExtendedExample(), config);
    EXPECT_TRUE(system
                    ->RegisterStream("photons",
                                     workload::PhotonGenerator::Schema(),
                                     100.0, 4)
                    .ok());
    EXPECT_TRUE(
        system->SetRange("photons", P("coord/cel/ra"), {0.0, 360.0}).ok());
    EXPECT_TRUE(
        system->SetRange("photons", P("coord/cel/dec"), {-90.0, 90.0})
            .ok());
    EXPECT_TRUE(system->SetRange("photons", P("en"), {0.1, 2.4}).ok());
    return system;
  }

  workload::PhotonGenConfig PhotonConfig() {
    workload::PhotonGenConfig config;
    config.hot_regions = {{100.0, 140.0, -50.0, -30.0}};
    config.hot_weights = {4.0};
    return config;
  }

  Status Run(sharing::StreamShareSystem* system, size_t count) {
    workload::PhotonGenerator generator(PhotonConfig());
    std::map<std::string, std::vector<engine::ItemPtr>> items;
    items["photons"] = generator.Generate(count);
    return system->Run(items);
  }
};

TEST_F(WideningSystemTest, OverlappingBoxTriggersWidening) {
  auto system = MakeSystem(/*widening=*/true);
  Result<sharing::RegistrationResult> a = system->RegisterQuery(
      kBoxA, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(a.ok()) << a.status();
  Result<sharing::RegistrationResult> b = system->RegisterQuery(
      kBoxB, 3, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(b.ok()) << b.status();

  // B's plan must widen A's stream (stream #1) rather than tap the
  // original (#0): the original sits one hop further from SP3's side and
  // the widened stream is far thinner than the raw one.
  ASSERT_TRUE(b->plan.inputs[0].widening.has_value())
      << b->plan.ToString();
  EXPECT_EQ(b->plan.inputs[0].widening->stream, 1);
  EXPECT_EQ(b->plan.inputs[0].reused_stream, 1);

  // The registry now describes the widened content.
  const network::RegisteredStream& widened = system->registry().stream(1);
  const properties::SelectionOp* selection = widened.props.selection();
  ASSERT_NE(selection, nullptr);
  PredicateGraph expected = PredicateGraph::Build({
      Cmp("coord/cel/ra", ComparisonOp::kGe, "110.0"),
      Cmp("coord/cel/ra", ComparisonOp::kLe, "138.0"),
      Cmp("coord/cel/dec", ComparisonOp::kGe, "-49.0"),
      Cmp("coord/cel/dec", ComparisonOp::kLe, "-40.0"),
  });
  EXPECT_TRUE(selection->graph.EquivalentTo(expected))
      << selection->graph.ToString();
}

TEST_F(WideningSystemTest, WideningPreservesAllSubscribersResults) {
  // Twin systems: widening on (B reuses A's widened stream) vs. data
  // shipping (independent evaluation). Both must produce identical
  // results for BOTH queries — in particular A, whose stream got widened
  // underneath it after registration.
  auto shared_system = MakeSystem(/*widening=*/true);
  Result<sharing::RegistrationResult> a1 = shared_system->RegisterQuery(
      kBoxA, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(a1.ok());
  Result<sharing::RegistrationResult> b1 = shared_system->RegisterQuery(
      kBoxB, 3, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b1->plan.inputs[0].widening.has_value());
  ASSERT_TRUE(Run(shared_system.get(), 2000).ok());

  auto shipping_system = MakeSystem(/*widening=*/false);
  Result<sharing::RegistrationResult> a2 = shipping_system->RegisterQuery(
      kBoxA, 1, sharing::Strategy::kDataShipping);
  ASSERT_TRUE(a2.ok());
  Result<sharing::RegistrationResult> b2 = shipping_system->RegisterQuery(
      kBoxB, 3, sharing::Strategy::kDataShipping);
  ASSERT_TRUE(b2.ok());
  ASSERT_TRUE(Run(shipping_system.get(), 2000).ok());

  ASSERT_GT(a1->sink->item_count(), 10u);
  ASSERT_GT(b1->sink->item_count(), 10u);
  ASSERT_EQ(a1->sink->item_count(), a2->sink->item_count());
  ASSERT_EQ(b1->sink->item_count(), b2->sink->item_count());
  for (size_t i = 0; i < a1->sink->items().size(); ++i) {
    EXPECT_TRUE(a1->sink->items()[i]->Equals(*a2->sink->items()[i]));
  }
  for (size_t i = 0; i < b1->sink->items().size(); ++i) {
    EXPECT_TRUE(b1->sink->items()[i]->Equals(*b2->sink->items()[i]));
  }
}

TEST_F(WideningSystemTest, DisabledWideningFallsBackToOriginal) {
  auto system = MakeSystem(/*widening=*/false);
  ASSERT_TRUE(
      system->RegisterQuery(kBoxA, 1, sharing::Strategy::kStreamSharing)
          .ok());
  Result<sharing::RegistrationResult> b = system->RegisterQuery(
      kBoxB, 3, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(b->plan.inputs[0].widening.has_value());
  EXPECT_EQ(b->plan.inputs[0].reused_stream, 0);  // the original
}

TEST_F(WideningSystemTest, AggregateStreamsAreNotWidened) {
  auto system = MakeSystem(/*widening=*/true);
  const char* agg_a =
      "<out> { for $w in stream(\"photons\")/photons/photon "
      "[coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0] "
      "|det_time diff 20 step 20| let $s := avg($w/en) "
      "return <v> { $s } </v> } </out>";
  const char* agg_b =
      "<out> { for $w in stream(\"photons\")/photons/photon "
      "[coord/cel/ra >= 110.0 and coord/cel/ra <= 130.0] "
      "|det_time diff 20 step 20| let $s := avg($w/en) "
      "return <v> { $s } </v> } </out>";
  ASSERT_TRUE(
      system->RegisterQuery(agg_a, 1, sharing::Strategy::kStreamSharing)
          .ok());
  Result<sharing::RegistrationResult> b = system->RegisterQuery(
      agg_b, 3, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(b.ok()) << b.status();
  // The aggregate stream must not be widened (different pre-selection is
  // a hard wall for aggregates); the planner falls back to the original.
  EXPECT_FALSE(b->plan.inputs[0].widening.has_value())
      << b->plan.ToString();
  EXPECT_EQ(b->plan.inputs[0].reused_stream, 0);
}

TEST_F(WideningSystemTest, WideningAccountsBandwidthDelta) {
  auto system = MakeSystem(/*widening=*/true);
  ASSERT_TRUE(
      system->RegisterQuery(kBoxA, 1, sharing::Strategy::kStreamSharing)
          .ok());
  double before = 0.0;
  for (size_t link = 0; link < system->topology().link_count(); ++link) {
    before += system->state().UsedBandwidthKbps(static_cast<int>(link));
  }
  Result<sharing::RegistrationResult> b = system->RegisterQuery(
      kBoxB, 3, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(b->plan.inputs[0].widening.has_value());
  double after = 0.0;
  for (size_t link = 0; link < system->topology().link_count(); ++link) {
    after += system->state().UsedBandwidthKbps(static_cast<int>(link));
  }
  EXPECT_GT(after, before);  // the widened stream carries more data
}

}  // namespace
}  // namespace streamshare
