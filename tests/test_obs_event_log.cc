// Structured event log: field formatting, severity filtering, the
// canonical FormatLogEvent rendering, and the satellite guarantee that
// the serial and parallel executors wrap an operator failure into the
// exact same error string (and emit the same structured error event).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/executor.h"
#include "engine/parallel_executor.h"
#include "obs/event_log.h"

namespace streamshare {
namespace {

using engine::ItemPtr;
using obs::EventLog;
using obs::F;
using obs::LogEvent;
using obs::MemorySink;
using obs::Severity;

TEST(EventLogTest, FieldConstructorsFormatValues) {
  EXPECT_EQ(F("s", std::string("text")).value, "text");
  EXPECT_EQ(F("sv", std::string_view("view")).value, "view");
  EXPECT_EQ(F("c", "chars").value, "chars");
  EXPECT_EQ(F("i", 42).value, "42");
  EXPECT_EQ(F("u", size_t{7}).value, "7");
  EXPECT_EQ(F("n", -3).value, "-3");
  EXPECT_EQ(F("b", true).value, "true");
  EXPECT_EQ(F("b2", false).value, "false");
  // Doubles use shortest round-trip-ish %g formatting.
  EXPECT_EQ(F("d", 2.5).value, "2.5");
}

TEST(EventLogTest, SilentWithoutSink) {
  EventLog log;
  EXPECT_FALSE(log.ShouldLog(Severity::kError));
  // Logging without a sink is a no-op, not a crash.
  log.Log(Severity::kError, "test", "nobody listening");
}

TEST(EventLogTest, MemorySinkCapturesStructuredEvents) {
#if !STREAMSHARE_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out";
#endif
  EventLog log;
  auto sink = std::make_shared<MemorySink>();
  log.SetSink(sink);
  EXPECT_TRUE(log.ShouldLog(Severity::kInfo));

  log.Log(Severity::kWarn, "sharing", "query rejected",
          {F("query", 3), F("reason", "peer overloaded")});
  ASSERT_EQ(sink->size(), 1u);
  std::vector<LogEvent> events = sink->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].severity, Severity::kWarn);
  EXPECT_EQ(events[0].component, "sharing");
  EXPECT_EQ(events[0].message, "query rejected");
  ASSERT_EQ(events[0].fields.size(), 2u);
  EXPECT_EQ(events[0].fields[0].key, "query");
  EXPECT_EQ(events[0].fields[0].value, "3");
  EXPECT_EQ(events[0].fields[1].key, "reason");
  EXPECT_EQ(events[0].fields[1].value, "peer overloaded");
  EXPECT_EQ(sink->size(), 0u);  // TakeEvents drains
}

TEST(EventLogTest, MinSeverityFilters) {
#if !STREAMSHARE_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out";
#endif
  EventLog log;
  auto sink = std::make_shared<MemorySink>();
  log.SetSink(sink);
  log.SetMinSeverity(Severity::kWarn);
  EXPECT_FALSE(log.ShouldLog(Severity::kDebug));
  EXPECT_FALSE(log.ShouldLog(Severity::kInfo));
  EXPECT_TRUE(log.ShouldLog(Severity::kWarn));
  EXPECT_TRUE(log.ShouldLog(Severity::kError));

  log.Log(Severity::kInfo, "test", "dropped");
  log.Log(Severity::kError, "test", "kept");
  std::vector<LogEvent> events = sink->TakeEvents();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].message, "kept");
}

TEST(EventLogTest, FormatMatchesCanonicalRendering) {
  LogEvent event;
  event.severity = Severity::kError;
  event.component = "engine";
  event.message = "operator failed";
  event.fields = {F("action", "push"), F("operator", "select[q3]")};
  event.ts_us = 1500000;  // 1.5 s
  std::string line = FormatLogEvent(event);
  // "ts [severity] component: message key=value ..." — the component and
  // message join through the same separator Status contexts use, so log
  // lines and error strings read identically.
  EXPECT_EQ(line,
            "  1.500000 [error] engine: operator failed action=push "
            "operator=select[q3]");
}

ItemPtr Leaf(const std::string& name, const std::string& text) {
  auto node = std::make_unique<xml::XmlNode>(name);
  node->set_text(text);
  return engine::MakeItem(std::move(node));
}

/// Fails on the first item it sees.
class AlwaysFailOp final : public engine::Operator {
 public:
  explicit AlwaysFailOp(std::string label)
      : engine::Operator(std::move(label)) {}

 protected:
  Status Process(const ItemPtr&) override {
    return Status::Internal("injected failure");
  }
};

// Satellite guarantee: a failing operator produces the identical error
// string whether the deployment runs serially or partitioned across
// worker threads — both executors wrap through WrapOperatorFailure.
TEST(EventLogTest, SerialAndParallelWrapFailuresIdentically) {
  std::vector<ItemPtr> items;
  for (int i = 0; i < 50; ++i) items.push_back(Leaf("n", "x"));

  engine::OperatorGraph serial_graph;
  auto* serial_entry = serial_graph.Add<engine::PassOp>("entry[q7]");
  auto* serial_fail = serial_graph.Add<AlwaysFailOp>("boom");
  serial_entry->AddDownstream(serial_fail);
  Status serial_status = engine::RunStream(serial_entry, items);

  engine::OperatorGraph parallel_graph;
  auto* parallel_entry = parallel_graph.Add<engine::PassOp>("entry[q7]");
  auto* parallel_fail = parallel_graph.Add<AlwaysFailOp>("boom");
  parallel_entry->AddDownstream(parallel_fail);
  engine::ParallelExecutor executor;
  Status parallel_status = executor.Run(parallel_entry, items);

  ASSERT_FALSE(serial_status.ok());
  ASSERT_FALSE(parallel_status.ok());
  // Both executors wrap the failure at the operator they pushed into —
  // the entry — via WrapOperatorFailure, so the strings match exactly.
  EXPECT_EQ(serial_status.ToString(), parallel_status.ToString());
  EXPECT_NE(serial_status.ToString().find("push entry[q7]"),
            std::string::npos);
  EXPECT_NE(serial_status.ToString().find("injected failure"),
            std::string::npos);
}

TEST(EventLogTest, OperatorFailureEmitsStructuredErrorEvent) {
#if !STREAMSHARE_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out";
#endif
  auto sink = std::make_shared<MemorySink>();
  EventLog::Default().SetSink(sink);

  engine::OperatorGraph graph;
  auto* entry = graph.Add<engine::PassOp>("entry");
  auto* fail = graph.Add<AlwaysFailOp>("boom");
  entry->AddDownstream(fail);
  std::vector<ItemPtr> items;
  items.push_back(Leaf("n", "x"));
  Status status = engine::RunStream(entry, items);
  EventLog::Default().SetSink(nullptr);  // restore the silent default

  ASSERT_FALSE(status.ok());
  std::vector<LogEvent> events = sink->TakeEvents();
  ASSERT_GE(events.size(), 1u);
  const LogEvent& event = events[0];
  EXPECT_EQ(event.severity, Severity::kError);
  EXPECT_EQ(event.component, "engine");
  EXPECT_EQ(event.message, "operator failed");
  bool saw_action = false, saw_operator = false;
  for (const obs::LogField& field : event.fields) {
    if (field.key == "action") {
      saw_action = true;
      EXPECT_EQ(field.value, "push");
    }
    if (field.key == "operator") {
      saw_operator = true;
      EXPECT_EQ(field.value, "entry");
    }
  }
  EXPECT_TRUE(saw_action);
  EXPECT_TRUE(saw_operator);
}

}  // namespace
}  // namespace streamshare
