// Unit tests for stream schemas and their size/occurrence statistics.

#include "xml/schema.h"

#include <gtest/gtest.h>

#include "workload/photon_gen.h"
#include "xml/xml_writer.h"

namespace streamshare::xml {
namespace {

StreamSchema MakePhotonSchema() {
  StreamSchema schema("photons", "photon");
  SchemaElement& photon = schema.item();
  photon.AddChild("phc", 1.0, 3.0);
  SchemaElement* coord = photon.AddChild("coord");
  SchemaElement* cel = coord->AddChild("cel");
  cel->AddChild("ra", 1.0, 8.0);
  cel->AddChild("dec", 1.0, 8.0);
  photon.AddChild("en", 1.0, 5.0);
  return schema;
}

TEST(SchemaTest, ResolvePaths) {
  StreamSchema schema = MakePhotonSchema();
  EXPECT_TRUE(schema.Contains(Path::Parse("coord/cel/ra").value()));
  EXPECT_TRUE(schema.Contains(Path::Parse("en").value()));
  EXPECT_FALSE(schema.Contains(Path::Parse("coord/det").value()));
  EXPECT_TRUE(schema.Contains(Path()));  // the item itself
}

TEST(SchemaTest, OccurrencesMultiplyAlongPath) {
  StreamSchema schema("s", "item");
  SchemaElement* group = schema.item().AddChild("group", 2.0);
  group->AddChild("member", 3.0, 4.0);
  EXPECT_DOUBLE_EQ(
      schema.OccurrencePerItem(Path::Parse("group/member").value()), 6.0);
  EXPECT_DOUBLE_EQ(schema.OccurrencePerItem(Path::Parse("group").value()),
                   2.0);
  EXPECT_DOUBLE_EQ(schema.OccurrencePerItem(Path::Parse("nope").value()),
                   0.0);
}

TEST(SchemaTest, LeafAndAllPaths) {
  StreamSchema schema = MakePhotonSchema();
  std::vector<Path> leaves = schema.LeafPaths();
  EXPECT_EQ(leaves.size(), 4u);  // phc, ra, dec, en
  std::vector<Path> all = schema.AllPaths();
  EXPECT_EQ(all.size(), 6u);  // + coord, cel
}

TEST(SchemaTest, AvgItemSizeMatchesGeneratedPhotons) {
  // The schema's size model must track the actual serialized size of
  // generated photons within a small tolerance (text sizes are averages).
  auto schema = workload::PhotonGenerator::Schema();
  workload::PhotonGenConfig config;
  workload::PhotonGenerator generator(config);
  double total = 0.0;
  const int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    total += static_cast<double>(generator.Next()->SerializedSize());
  }
  double measured = total / kCount;
  double estimated = schema->AvgItemSize();
  EXPECT_NEAR(estimated, measured, measured * 0.1)
      << "estimated=" << estimated << " measured=" << measured;
}

TEST(SchemaTest, SubtreeSizeIsAdditive) {
  StreamSchema schema = MakePhotonSchema();
  double cel = schema.AvgSubtreeSize(Path::Parse("coord/cel").value());
  double ra = schema.AvgSubtreeSize(Path::Parse("coord/cel/ra").value());
  double dec = schema.AvgSubtreeSize(Path::Parse("coord/cel/dec").value());
  // <cel> wrapper adds 2*3+5 = 11 bytes around ra + dec.
  EXPECT_DOUBLE_EQ(cel, ra + dec + 11.0);
}

}  // namespace
}  // namespace streamshare::xml
