// Wire primitives and the binary item codec: varint and frame round
// trips, malformed-input rejection, dictionary behavior (repeats shrink,
// lockstep reset, one-sided reset detected), and a property-style sweep
// of randomized trees — deep nesting, empty elements, many distinct
// names, large text — that must round-trip to byte-identical XML text.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "transport/codec.h"
#include "transport/wire.h"
#include "xml/xml_node.h"
#include "xml/xml_writer.h"

namespace streamshare {
namespace {

using transport::FrameType;
using transport::ItemDecoder;
using transport::ItemEncoder;

TEST(VarintTest, RoundTripsBoundaryValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             300,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             UINT64_MAX};
  for (uint64_t value : values) {
    std::string buffer;
    transport::PutVarint(&buffer, value);
    EXPECT_LE(buffer.size(), 10u);
    std::string_view view = buffer;
    uint64_t decoded = 0;
    ASSERT_TRUE(transport::GetVarint(&view, &decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_TRUE(view.empty());
  }
}

TEST(VarintTest, RejectsTruncatedAndOverlongInput) {
  std::string buffer;
  transport::PutVarint(&buffer, UINT64_MAX);
  std::string_view truncated(buffer.data(), buffer.size() - 1);
  uint64_t value = 0;
  EXPECT_FALSE(transport::GetVarint(&truncated, &value));

  // Eleven continuation bytes cannot be a valid 64-bit varint.
  std::string overlong(11, '\x80');
  std::string_view view = overlong;
  EXPECT_FALSE(transport::GetVarint(&view, &value));
}

TEST(FrameTest, RoundTripsEveryType) {
  for (FrameType type : {FrameType::kData, FrameType::kEos,
                         FrameType::kCredit, FrameType::kError}) {
    std::string buffer;
    transport::AppendFrame(&buffer, type, "payload");
    transport::Frame frame;
    size_t consumed = 0;
    ASSERT_EQ(transport::ParseFrame(buffer, &frame, &consumed),
              transport::ParseResult::kFrame);
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.body, "payload");
    EXPECT_EQ(consumed, buffer.size());
  }
}

TEST(FrameTest, PartialBufferNeedsMore) {
  std::string buffer;
  transport::AppendFrame(&buffer, FrameType::kData, "some item bytes");
  transport::Frame frame;
  size_t consumed = 0;
  for (size_t cut = 0; cut < buffer.size(); ++cut) {
    EXPECT_EQ(transport::ParseFrame(std::string_view(buffer.data(), cut),
                                    &frame, &consumed),
              transport::ParseResult::kNeedMore)
        << "prefix of " << cut << " bytes";
  }
}

TEST(FrameTest, UnknownVersionOrTypeIsSkippableNotFatal) {
  // A well-framed frame we cannot dispatch (newer peer) must come back
  // kUnsupported with `consumed` covering the whole frame, so a receiver
  // can skip it, answer with a decodable error, and keep the connection.
  std::string good;
  transport::AppendFrame(&good, FrameType::kData, "x");
  transport::Frame frame;
  size_t consumed = 0;

  std::string bad_version = good;
  bad_version[1] = static_cast<char>(transport::kWireVersion + 1);
  EXPECT_EQ(transport::ParseFrame(bad_version, &frame, &consumed),
            transport::ParseResult::kUnsupported);
  EXPECT_EQ(consumed, bad_version.size());
  EXPECT_EQ(frame.version, transport::kWireVersion + 1);

  std::string bad_type = good;
  bad_type[2] = 0x7f;
  consumed = 0;
  EXPECT_EQ(transport::ParseFrame(bad_type, &frame, &consumed),
            transport::ParseResult::kUnsupported);
  EXPECT_EQ(consumed, bad_type.size());
  EXPECT_EQ(frame.raw_type, 0x7f);

  // A frame following the unsupported one must still parse: the stream
  // survives the vocabulary mismatch.
  std::string mixed = bad_type + good;
  ASSERT_EQ(transport::ParseFrame(mixed, &frame, &consumed),
            transport::ParseResult::kUnsupported);
  mixed.erase(0, consumed);
  ASSERT_EQ(transport::ParseFrame(mixed, &frame, &consumed),
            transport::ParseResult::kFrame);
  EXPECT_EQ(frame.type, FrameType::kData);
  EXPECT_EQ(frame.body, "x");
}

TEST(FrameTest, RejectsOversizedLength) {
  // A length prefix beyond the payload cap must be rejected before any
  // allocation happens.
  transport::Frame frame;
  size_t consumed = 0;
  std::string huge;
  transport::PutVarint(&huge, transport::kMaxFramePayload + 3);
  EXPECT_EQ(transport::ParseFrame(huge, &frame, &consumed),
            transport::ParseResult::kMalformed);
}

// --- Wire-format versioning (the v2 latency-stamp extension) ------------

TEST(FrameVersionTest, DefaultFramesAreByteIdenticalToPriorWire) {
  // A frame without the stamp extension must serialize exactly as wire
  // version 1 did before the extension existed: len varint, version byte
  // 1, type byte, body. Old decoders keep working on every frame the new
  // code emits for EOS/CREDIT/ERROR and unstamped DATA.
  std::string frame;
  transport::AppendFrame(&frame, FrameType::kData, "abc");
  std::string expected;
  transport::PutVarint(&expected, 3 + 2);
  expected.push_back(static_cast<char>(transport::kBaseWireVersion));
  expected.push_back(static_cast<char>(FrameType::kData));
  expected += "abc";
  EXPECT_EQ(frame, expected);

  std::string explicit_v1;
  transport::AppendFrame(&explicit_v1, FrameType::kData, "abc",
                         transport::kBaseWireVersion);
  EXPECT_EQ(explicit_v1, frame);
}

TEST(FrameVersionTest, BothVersionsRoundTripAndReportTheirVersion) {
  for (uint8_t version :
       {transport::kBaseWireVersion, transport::kWireVersion}) {
    std::string buffer;
    transport::AppendFrame(&buffer, FrameType::kData, "payload", version);
    transport::Frame frame;
    size_t consumed = 0;
    ASSERT_EQ(transport::ParseFrame(buffer, &frame, &consumed),
              transport::ParseResult::kFrame)
        << "version " << int{version};
    EXPECT_EQ(frame.version, version);
    EXPECT_EQ(frame.body, "payload");
    EXPECT_EQ(consumed, buffer.size());
  }
}

TEST(FrameVersionTest, PriorVersionFrameStillDecodes) {
  // A byte stream captured from the pre-extension wire (version byte 1)
  // must parse unchanged — mixed-version peers interoperate.
  std::string old_wire;
  transport::PutVarint(&old_wire, 2 + 7);
  old_wire.push_back(1);  // the literal pre-extension version byte
  old_wire.push_back(static_cast<char>(FrameType::kError));
  old_wire += "oh dear";
  transport::Frame frame;
  size_t consumed = 0;
  ASSERT_EQ(transport::ParseFrame(old_wire, &frame, &consumed),
            transport::ParseResult::kFrame);
  EXPECT_EQ(frame.version, transport::kBaseWireVersion);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.body, "oh dear");
}

// --- Item codec ---------------------------------------------------------

std::unique_ptr<xml::XmlNode> Photon(int id) {
  auto photon = std::make_unique<xml::XmlNode>("photon");
  photon->AddLeaf("ra", std::to_string(180.0 + id));
  photon->AddLeaf("decl", std::to_string(-30.0 + id));
  photon->AddLeaf("energy", std::to_string(1000 + id));
  auto* obs = photon->AddChild("observation");
  obs->AddLeaf("telescope", "HESS");
  obs->AddLeaf("time", std::to_string(1234567 + id));
  return photon;
}

/// Round-trips one tree through the given encoder/decoder pair and
/// demands structural equality plus byte-identical compact XML text.
void ExpectRoundTrip(ItemEncoder* encoder, ItemDecoder* decoder,
                     const xml::XmlNode& tree) {
  std::string encoded;
  encoder->Encode(tree, &encoded);
  std::unique_ptr<xml::XmlNode> back;
  Status status = decoder->Decode(encoded, &back);
  ASSERT_TRUE(status.ok()) << status.ToString();
  ASSERT_NE(back, nullptr);
  EXPECT_TRUE(tree.Equals(*back));
  EXPECT_EQ(xml::WriteCompact(tree), xml::WriteCompact(*back));
}

TEST(ItemCodecTest, RoundTripsTypicalItem) {
  ItemEncoder encoder;
  ItemDecoder decoder;
  ExpectRoundTrip(&encoder, &decoder, *Photon(1));
  EXPECT_EQ(encoder.dictionary_size(), decoder.dictionary_size());
  EXPECT_EQ(encoder.dictionary_size(), 7u);  // distinct names registered
}

TEST(ItemCodecTest, DictionaryShrinksRepeatedItems) {
  ItemEncoder encoder;
  ItemDecoder decoder;
  std::string first, second;
  encoder.Encode(*Photon(1), &first);
  encoder.Encode(*Photon(2), &second);
  // Same shape, same-length values: the second item references every
  // name by id (~1 byte each) instead of spelling it out.
  EXPECT_LT(second.size(), first.size());
  // And both stay decodable in order.
  std::unique_ptr<xml::XmlNode> a, b;
  ASSERT_TRUE(decoder.Decode(first, &a).ok());
  ASSERT_TRUE(decoder.Decode(second, &b).ok());
  EXPECT_TRUE(Photon(1)->Equals(*a));
  EXPECT_TRUE(Photon(2)->Equals(*b));
  // Binary form beats the XML text form even on the first item (no
  // closing tags, no entity escaping).
  EXPECT_LT(first.size(), xml::WriteCompact(*Photon(1)).size());
}

TEST(ItemCodecTest, LockstepResetWorksOneSidedResetFails) {
  ItemEncoder encoder;
  ItemDecoder decoder;
  ExpectRoundTrip(&encoder, &decoder, *Photon(1));

  // Link restart: both ends reset together, the stream continues.
  encoder.Reset();
  decoder.Reset();
  EXPECT_EQ(encoder.dictionary_size(), 0u);
  EXPECT_EQ(decoder.dictionary_size(), 0u);
  ExpectRoundTrip(&encoder, &decoder, *Photon(2));

  // One-sided reset: the encoder still references dictionary ids the
  // decoder no longer has — a decode error, not silent corruption.
  decoder.Reset();
  std::string encoded;
  encoder.Encode(*Photon(3), &encoded);
  std::unique_ptr<xml::XmlNode> out;
  Status status = decoder.Decode(encoded, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("dictionary"), std::string::npos)
      << status.ToString();
}

TEST(ItemCodecTest, RejectsTrailingBytesAndTruncation) {
  ItemEncoder encoder;
  ItemDecoder decoder;
  std::string encoded;
  encoder.Encode(*Photon(1), &encoded);

  std::unique_ptr<xml::XmlNode> out;
  std::string trailing = encoded + "junk";
  EXPECT_FALSE(decoder.Decode(trailing, &out).ok());

  ItemDecoder fresh;
  std::string truncated = encoded.substr(0, encoded.size() / 2);
  EXPECT_FALSE(fresh.Decode(truncated, &out).ok());
}

TEST(ItemCodecTest, RejectsOverDeepNesting) {
  auto root = std::make_unique<xml::XmlNode>("n");
  xml::XmlNode* tip = root.get();
  for (size_t i = 0; i < transport::kMaxDecodeDepth + 10; ++i) {
    tip = tip->AddChild("n");
  }
  ItemEncoder encoder;
  ItemDecoder decoder;
  std::string encoded;
  encoder.Encode(*root, &encoded);
  std::unique_ptr<xml::XmlNode> out;
  Status status = decoder.Decode(encoded, &out);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("deep"), std::string::npos)
      << status.ToString();
}

// --- Property-style randomized sweep ------------------------------------

/// Random tree generator exercising the codec's edge shapes: deep chains,
/// wide fan-out, empty elements, empty and large text, names drawn from a
/// small pool (dictionary hits) and fresh names (literals).
class TreeGen {
 public:
  explicit TreeGen(uint64_t seed) : rng_(seed) {}

  std::unique_ptr<xml::XmlNode> Tree() {
    int shape = Pick(4);
    if (shape == 0) return Chain(Pick(60) + 1);
    return Random(/*depth=*/0, /*max_depth=*/2 + Pick(5));
  }

 private:
  int Pick(int bound) {
    return static_cast<int>(rng_() % static_cast<uint64_t>(bound));
  }

  std::string Name() {
    // Mostly from a pool (repeats), sometimes brand new.
    static const char* kPool[] = {"photon", "ra",   "decl", "energy",
                                  "obs",    "time", "id",   "flux"};
    if (Pick(5) != 0) return kPool[Pick(8)];
    return "name" + std::to_string(next_fresh_++);
  }

  std::string Text() {
    switch (Pick(5)) {
      case 0:
        return "";
      case 1: {  // characters the XML form must escape, raw here
        return "a<b&c>d";
      }
      case 2: {  // large text payload
        return std::string(static_cast<size_t>(512 + Pick(4096)), 'x');
      }
      default:
        return std::to_string(rng_());
    }
  }

  std::unique_ptr<xml::XmlNode> Chain(int depth) {
    auto root = std::make_unique<xml::XmlNode>(Name());
    xml::XmlNode* tip = root.get();
    for (int i = 0; i < depth; ++i) tip = tip->AddChild(Name());
    tip->set_text(Text());
    return root;
  }

  std::unique_ptr<xml::XmlNode> Random(int depth, int max_depth) {
    auto node = std::make_unique<xml::XmlNode>(Name());
    if (Pick(3) != 0) node->set_text(Text());
    if (depth < max_depth) {
      int children = Pick(depth == 0 ? 6 : 4);
      for (int i = 0; i < children; ++i) {
        node->AddChild(Random(depth + 1, max_depth));
      }
    }
    return node;
  }

  std::mt19937_64 rng_;
  int next_fresh_ = 0;
};

TEST(ItemCodecPropertyTest, RandomizedTreesRoundTripByteIdentically) {
  TreeGen gen(/*seed=*/20260807);
  ItemEncoder encoder;
  ItemDecoder decoder;
  for (int i = 0; i < 300; ++i) {
    std::unique_ptr<xml::XmlNode> tree = gen.Tree();
    SCOPED_TRACE("tree " + std::to_string(i));
    ExpectRoundTrip(&encoder, &decoder, *tree);
    // Dictionaries stay in lockstep across the whole stream.
    ASSERT_EQ(encoder.dictionary_size(), decoder.dictionary_size());
  }
}

TEST(ItemCodecPropertyTest, FreshDecoderPerItemAlsoWorksAfterReset) {
  // The same stream with a reset between every item: no state may leak.
  TreeGen gen(/*seed=*/7);
  ItemEncoder encoder;
  ItemDecoder decoder;
  for (int i = 0; i < 50; ++i) {
    encoder.Reset();
    decoder.Reset();
    std::unique_ptr<xml::XmlNode> tree = gen.Tree();
    SCOPED_TRACE("tree " + std::to_string(i));
    ExpectRoundTrip(&encoder, &decoder, *tree);
  }
}

TEST(ItemCodecTest, EncodeReservesFromSerializedSize) {
  // The binary form never exceeds the compact XML text form (that bound
  // is what Encode's reserve call relies on).
  TreeGen gen(/*seed=*/99);
  for (int i = 0; i < 100; ++i) {
    ItemEncoder encoder;  // fresh dictionary: worst case, all literals
    std::unique_ptr<xml::XmlNode> tree = gen.Tree();
    std::string encoded;
    encoder.Encode(*tree, &encoded);
    EXPECT_LE(encoded.size(), tree->SerializedSize())
        << xml::WriteCompact(*tree).substr(0, 200);
  }
}

}  // namespace
}  // namespace streamshare
