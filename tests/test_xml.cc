// Unit tests for the XML substrate: node trees, parsing (including
// incremental feeding and malformed input), serialization, and the item
// reader.

#include <gtest/gtest.h>

#include "xml/xml_node.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace streamshare::xml {
namespace {

TEST(XmlNodeTest, BuildAndNavigate) {
  XmlNode photon("photon");
  photon.AddLeaf("en", "1.3");
  XmlNode* coord = photon.AddChild("coord");
  coord->AddLeaf("ra", "120.5");
  coord->AddLeaf("dec", "-45.0");

  EXPECT_EQ(photon.children().size(), 2u);
  ASSERT_NE(photon.FirstChild("en"), nullptr);
  EXPECT_EQ(photon.FirstChild("en")->text(), "1.3");
  EXPECT_EQ(photon.FirstChild("nope"), nullptr);
  EXPECT_EQ(photon.Children("coord").size(), 1u);
  EXPECT_TRUE(photon.FirstChild("en")->IsLeaf());
  EXPECT_FALSE(photon.IsLeaf());
}

TEST(XmlNodeTest, CloneIsDeepAndEqual) {
  XmlNode root("a");
  root.AddLeaf("b", "x")->append_text("y");
  root.AddChild("c")->AddLeaf("d", "z");
  auto copy = root.Clone();
  EXPECT_TRUE(root.Equals(*copy));
  copy->AddLeaf("e", "w");
  EXPECT_FALSE(root.Equals(*copy));
}

TEST(XmlNodeTest, SerializedSizeMatchesWriter) {
  XmlNode root("photon");
  root.AddLeaf("en", "1.3");
  XmlNode* coord = root.AddChild("coord");
  coord->AddLeaf("ra", "120.5");
  root.AddChild("empty");
  root.AddLeaf("esc", "a<b&c");
  EXPECT_EQ(root.SerializedSize(), WriteCompact(root).size());
}

TEST(XmlNodeTest, TagAndTextHelpersComposeToSerializedSize) {
  // The static per-piece estimators (used by the cost model on schemas,
  // where no node exists yet) must agree byte-for-byte with the writer.
  EXPECT_EQ(XmlNode::TagBytes(5, /*empty=*/true),
            std::string("<empty/>").size());
  EXPECT_EQ(XmlNode::TagBytes(1, /*empty=*/false),
            std::string("<a></a>").size());
  EXPECT_EQ(XmlNode::EscapedTextBytes("a<b>&c"),
            std::string("a&lt;b&gt;&amp;c").size());
  EXPECT_EQ(XmlNode::EscapedTextBytes("plain"), 5u);
  EXPECT_EQ(XmlNode::EscapedTextBytes(""), 0u);

  // Composing them by hand reproduces SerializedSize exactly.
  XmlNode leaf("esc");
  leaf.set_text("a<b&c");
  EXPECT_EQ(leaf.SerializedSize(),
            XmlNode::TagBytes(3, false) +
                XmlNode::EscapedTextBytes("a<b&c"));
  EXPECT_EQ(leaf.SerializedSize(), WriteCompact(leaf).size());

  XmlNode empty("hollow");
  EXPECT_EQ(empty.SerializedSize(), XmlNode::TagBytes(6, true));
  EXPECT_EQ(empty.SerializedSize(), WriteCompact(empty).size());
}

TEST(XmlWriterTest, CompactForm) {
  XmlNode root("a");
  root.AddLeaf("b", "1");
  root.AddChild("c");
  EXPECT_EQ(WriteCompact(root), "<a><b>1</b><c/></a>");
}

TEST(XmlWriterTest, EscapesSpecialCharacters) {
  XmlNode root("t");
  root.set_text("a<b>&c");
  EXPECT_EQ(WriteCompact(root), "<t>a&lt;b&gt;&amp;c</t>");
}

TEST(XmlParserTest, ParseRoundTrip) {
  const char* doc = "<photon><en>1.3</en><coord><ra>120.5</ra></coord>"
                    "<flag/></photon>";
  Result<std::unique_ptr<XmlNode>> parsed = ParseDocument(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(WriteCompact(**parsed), doc);
}

TEST(XmlParserTest, DecodesEntities) {
  Result<std::unique_ptr<XmlNode>> parsed =
      ParseDocument("<t>a&lt;b&gt;&amp;&quot;&apos;&#65;&#x42;</t>");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->text(), "a<b>&\"'AB");
}

TEST(XmlParserTest, AttributesBecomeChildElements) {
  Result<std::unique_ptr<XmlNode>> parsed =
      ParseDocument("<photon en=\"1.3\" id='7'><phc>3</phc></photon>");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_NE((*parsed)->FirstChild("en"), nullptr);
  EXPECT_EQ((*parsed)->FirstChild("en")->text(), "1.3");
  EXPECT_EQ((*parsed)->FirstChild("id")->text(), "7");
  EXPECT_EQ((*parsed)->FirstChild("phc")->text(), "3");
}

TEST(XmlParserTest, SkipsPrologCommentsAndCdata) {
  const char* doc =
      "<?xml version=\"1.0\"?><!DOCTYPE photons [<!ELEMENT x (y)>]>"
      "<!-- comment --><t><![CDATA[raw <text>]]></t>";
  Result<std::unique_ptr<XmlNode>> parsed = ParseDocument(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->text(), "raw <text>");
}

TEST(XmlParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseDocument("").ok());
  EXPECT_FALSE(ParseDocument("<a><b></a></b>").ok());
  EXPECT_FALSE(ParseDocument("<a>").ok());
  EXPECT_FALSE(ParseDocument("<a/><b/>").ok());
  EXPECT_FALSE(ParseDocument("text outside").ok());
  EXPECT_FALSE(ParseDocument("<a>&bogus;</a>").ok());
  EXPECT_FALSE(ParseDocument("<a x=unquoted></a>").ok());
  EXPECT_FALSE(ParseDocument("<1tag/>").ok());
}

TEST(XmlParserTest, WhitespaceBetweenElementsIsInsignificant) {
  Result<std::unique_ptr<XmlNode>> parsed =
      ParseDocument("<a>\n  <b>1</b>\n  <c/>\n</a>");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ((*parsed)->text(), "");
  EXPECT_EQ((*parsed)->children().size(), 2u);
}

TEST(XmlPullParserTest, IncrementalFeedAcrossTagBoundaries) {
  // Split the document at hostile positions: inside tags, names, and
  // entities.
  const std::string doc =
      "<photons><photon><en>1&#46;3</en></photon></photons>";
  for (size_t split = 1; split + 1 < doc.size(); ++split) {
    XmlPullParser parser;
    parser.Feed(doc.substr(0, split));
    std::vector<XmlEvent::Kind> kinds;
    bool fed_rest = false;
    while (true) {
      Result<XmlEvent> event = parser.Next();
      ASSERT_TRUE(event.ok()) << event.status() << " split=" << split;
      if (event->kind == XmlEvent::Kind::kNeedMoreData) {
        ASSERT_FALSE(fed_rest) << "stuck after full feed, split=" << split;
        parser.Feed(doc.substr(split));
        parser.Finalize();
        fed_rest = true;
        continue;
      }
      if (event->kind == XmlEvent::Kind::kEndOfDocument) break;
      kinds.push_back(event->kind);
    }
    EXPECT_EQ(kinds.size(), 7u) << "split=" << split;
  }
}

TEST(XmlItemReaderTest, YieldsItemsOneByOne) {
  XmlItemReader reader(
      "<photons><photon><en>1.0</en></photon>"
      "<photon><en>2.0</en></photon></photons>");
  Result<std::unique_ptr<XmlNode>> first = reader.NextItem();
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_NE(*first, nullptr);
  EXPECT_EQ((*first)->FirstChild("en")->text(), "1.0");
  EXPECT_EQ(reader.stream_name(), "photons");

  Result<std::unique_ptr<XmlNode>> second = reader.NextItem();
  ASSERT_TRUE(second.ok());
  ASSERT_NE(*second, nullptr);
  EXPECT_EQ((*second)->FirstChild("en")->text(), "2.0");

  Result<std::unique_ptr<XmlNode>> done = reader.NextItem();
  ASSERT_TRUE(done.ok());
  EXPECT_EQ(*done, nullptr);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(XmlItemReaderTest, IncrementalFeeding) {
  XmlItemReader reader;
  reader.Feed("<photons><photon><en>1.");
  Result<std::unique_ptr<XmlNode>> item = reader.NextItem();
  ASSERT_TRUE(item.ok()) << item.status();
  EXPECT_EQ(*item, nullptr);  // incomplete
  EXPECT_FALSE(reader.AtEnd());

  reader.Feed("0</en></photon></photons>");
  reader.Finalize();
  item = reader.NextItem();
  ASSERT_TRUE(item.ok()) << item.status();
  ASSERT_NE(*item, nullptr);
  EXPECT_EQ((*item)->FirstChild("en")->text(), "1.0");

  item = reader.NextItem();
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(*item, nullptr);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(XmlItemReaderTest, EmptyStream) {
  XmlItemReader reader("<photons></photons>");
  Result<std::unique_ptr<XmlNode>> item = reader.NextItem();
  ASSERT_TRUE(item.ok());
  EXPECT_EQ(*item, nullptr);
  EXPECT_TRUE(reader.AtEnd());
}

}  // namespace
}  // namespace streamshare::xml
