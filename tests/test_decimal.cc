// Unit tests for fixed-point decimal arithmetic.

#include "common/decimal.h"

#include <gtest/gtest.h>

namespace streamshare {
namespace {

TEST(DecimalTest, ParseIntegers) {
  Result<Decimal> value = Decimal::Parse("42");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->unscaled(), 42);
  EXPECT_EQ(value->scale(), 0);
  EXPECT_EQ(value->ToString(), "42");
}

TEST(DecimalTest, ParseNegative) {
  Result<Decimal> value = Decimal::Parse("-120");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->unscaled(), -120);
  EXPECT_EQ(value->ToString(), "-120");
}

TEST(DecimalTest, ParseFractions) {
  Result<Decimal> value = Decimal::Parse("1.3");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->unscaled(), 13);
  EXPECT_EQ(value->scale(), 1);
  EXPECT_EQ(value->ToString(), "1.3");
}

TEST(DecimalTest, ParseNegativeFraction) {
  Result<Decimal> value = Decimal::Parse("-49.0");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->unscaled(), -490);
  EXPECT_EQ(value->scale(), 1);
  EXPECT_EQ(value->ToString(), "-49.0");
}

TEST(DecimalTest, ParseLeadingDot) {
  Result<Decimal> value = Decimal::Parse(".5");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->ToDouble(), 0.5);
}

TEST(DecimalTest, ParseTrailingDot) {
  Result<Decimal> value = Decimal::Parse("7.");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->unscaled(), 7);
  EXPECT_EQ(value->scale(), 0);
}

TEST(DecimalTest, ParsePlusSign) {
  Result<Decimal> value = Decimal::Parse("+3.25");
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value->ToString(), "3.25");
}

TEST(DecimalTest, ParseRejectsGarbage) {
  EXPECT_FALSE(Decimal::Parse("").ok());
  EXPECT_FALSE(Decimal::Parse("abc").ok());
  EXPECT_FALSE(Decimal::Parse("1.2.3").ok());
  EXPECT_FALSE(Decimal::Parse("1e5").ok());
  EXPECT_FALSE(Decimal::Parse("-").ok());
  EXPECT_FALSE(Decimal::Parse(".").ok());
  EXPECT_FALSE(Decimal::Parse("12,5").ok());
}

TEST(DecimalTest, ParseRejectsTooManyFractionalDigits) {
  EXPECT_FALSE(Decimal::Parse("0.1234567890123456").ok());
  EXPECT_TRUE(Decimal::Parse("0.123456789012345").ok());
}

TEST(DecimalTest, CompareAcrossScales) {
  Decimal a = Decimal::Parse("1.3").value();
  Decimal b = Decimal::Parse("1.30").value();
  Decimal c = Decimal::Parse("1.31").value();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, c);
  EXPECT_GT(c, b);
}

TEST(DecimalTest, CompareNegativeValues) {
  Decimal a = Decimal::Parse("-49.0").value();
  Decimal b = Decimal::Parse("-40").value();
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
}

TEST(DecimalTest, AdditionAlignsScales) {
  Decimal a = Decimal::Parse("1.25").value();
  Decimal b = Decimal::Parse("2.5").value();
  EXPECT_EQ((a + b).ToString(), "3.75");
  EXPECT_EQ((b - a).ToString(), "1.25");
}

TEST(DecimalTest, NegationAndUlp) {
  Decimal a = Decimal::Parse("1.3").value();
  EXPECT_EQ((-a).ToString(), "-1.3");
  EXPECT_EQ(a.Ulp().ToString(), "0.1");
  EXPECT_EQ((a - a.Ulp()).ToString(), "1.2");
}

TEST(DecimalTest, FromDoubleRounds) {
  EXPECT_EQ(Decimal::FromDouble(1.25, 1).ToString(), "1.3");
  EXPECT_EQ(Decimal::FromDouble(-0.04999, 1).ToString(), "0.0");
  EXPECT_EQ(Decimal::FromDouble(3.14159, 4).ToString(), "3.1416");
}

TEST(DecimalTest, ToDoubleRoundTrip) {
  Decimal a = Decimal::Parse("132.6604").value();
  EXPECT_DOUBLE_EQ(a.ToDouble(), 132.6604);
}

TEST(DecimalTest, RescalingPreservesValue) {
  Decimal a = Decimal::Parse("1.3").value();
  Decimal rescaled = a.Rescaled(4);
  EXPECT_EQ(rescaled.scale(), 4);
  EXPECT_EQ(rescaled.unscaled(), 13000);
  EXPECT_EQ(a, rescaled);
}

TEST(DecimalTest, ZeroFormsCompareEqual) {
  EXPECT_EQ(Decimal::Parse("0").value(), Decimal::Parse("0.00").value());
  EXPECT_EQ(Decimal::Parse("-0.0").value(), Decimal());
}

}  // namespace
}  // namespace streamshare
