// Unit tests for string helpers.

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace streamshare {
namespace {

TEST(StringUtilTest, SplitBasic) {
  EXPECT_EQ(Split("a/b/c", '/'),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a//b", '/'), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("/a", '/'), (std::vector<std::string>{"", "a"}));
  EXPECT_EQ(Split("a/", '/'), (std::vector<std::string>{"a", ""}));
  EXPECT_EQ(Split("", '/'), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  std::vector<std::string> parts{"coord", "cel", "ra"};
  EXPECT_EQ(Join(parts, "/"), "coord/cel/ra");
  EXPECT_EQ(Join({}, "/"), "");
  EXPECT_EQ(Join({"x"}, ", "), "x");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  abc \t\n"), "abc");
  EXPECT_EQ(Trim("abc"), "abc");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" a b "), "a b");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("photons", "pho"));
  EXPECT_FALSE(StartsWith("pho", "photons"));
  EXPECT_TRUE(EndsWith("det_time", "time"));
  EXPECT_FALSE(EndsWith("time", "det_time"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringUtilTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0123456789"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits("-12"));
  EXPECT_FALSE(IsAllDigits("1.2"));
}

}  // namespace
}  // namespace streamshare
