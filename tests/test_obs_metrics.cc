// Metrics registry: shard-merge associativity, histogram bucket edges,
// gauge semantics, snapshot/reset behavior, and counter consistency under
// genuinely concurrent increments (raw threads and the parallel
// executor's pinned-shard instrumentation).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "engine/parallel_executor.h"
#include "obs/metrics_registry.h"
#include "obs/obs.h"

namespace streamshare {
namespace {

using engine::ItemPtr;
using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::kMetricShards;
using obs::MetricSnapshot;
using obs::MetricsRegistry;
using obs::ScopedShard;

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x.calls");
  Counter* b = registry.GetCounter("x.calls");
  EXPECT_EQ(a, b);
  Gauge* g1 = registry.GetGauge("x.depth");
  Gauge* g2 = registry.GetGauge("x.depth");
  EXPECT_EQ(g1, g2);
  Histogram* h1 =
      registry.GetHistogram("x.micros", Histogram::LinearBounds(1, 1, 4));
  // Bounds are fixed by the first Get; a second Get with different bounds
  // still returns the original histogram.
  Histogram* h2 =
      registry.GetHistogram("x.micros", Histogram::LinearBounds(5, 5, 2));
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds(), Histogram::LinearBounds(1, 1, 4));
}

TEST(MetricsRegistryTest, CounterShardMergeIsOrderIndependent) {
  Counter counter;
  // Distinct value per shard so any mis-merge changes the total.
  uint64_t expected = 0;
  for (size_t shard = 0; shard < kMetricShards; ++shard) {
    uint64_t value = (shard + 1) * 17;
    counter.AddToShard(shard, value);
    expected += value;
  }
  EXPECT_EQ(counter.Value(), expected);

  // Folding by hand in two different shard orders must agree with Value():
  // the fold is a plain sum, so merge order cannot matter.
  std::vector<size_t> shards(kMetricShards);
  std::iota(shards.begin(), shards.end(), 0);
  uint64_t forward = 0;
  for (size_t shard : shards) forward += counter.ShardValue(shard);
  std::reverse(shards.begin(), shards.end());
  uint64_t backward = 0;
  for (size_t shard : shards) backward += counter.ShardValue(shard);
  EXPECT_EQ(forward, expected);
  EXPECT_EQ(backward, expected);
}

TEST(MetricsRegistryTest, ScopedShardPinsAndRestores) {
  ScopedShard outer(3);
  EXPECT_EQ(obs::CurrentShard(), 3u);
  {
    ScopedShard inner(7 + kMetricShards);  // wraps to 7
    EXPECT_EQ(obs::CurrentShard(), 7u);
  }
  EXPECT_EQ(obs::CurrentShard(), 3u);
}

TEST(MetricsRegistryTest, HistogramBucketEdgesAreInclusiveUpper) {
  Histogram histogram({1.0, 2.0, 4.0});
  ASSERT_EQ(histogram.bucket_count(), 4u);
  EXPECT_EQ(histogram.BucketFor(0.0), 0u);
  EXPECT_EQ(histogram.BucketFor(0.5), 0u);
  EXPECT_EQ(histogram.BucketFor(1.0), 0u);  // edge is inclusive
  EXPECT_EQ(histogram.BucketFor(1.0001), 1u);
  EXPECT_EQ(histogram.BucketFor(2.0), 1u);
  EXPECT_EQ(histogram.BucketFor(4.0), 2u);
  EXPECT_EQ(histogram.BucketFor(4.0001), 3u);  // overflow bucket
  EXPECT_EQ(histogram.BucketFor(1e18), 3u);

  for (double value : {0.5, 1.0, 2.0, 4.0, 9.0}) histogram.Observe(value);
  EXPECT_EQ(histogram.BucketValue(0), 2u);
  EXPECT_EQ(histogram.BucketValue(1), 1u);
  EXPECT_EQ(histogram.BucketValue(2), 1u);
  EXPECT_EQ(histogram.BucketValue(3), 1u);
  EXPECT_EQ(histogram.Count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 16.5);
}

TEST(MetricsRegistryTest, HistogramBoundsHelpers) {
  EXPECT_EQ(Histogram::ExponentialBounds(1, 2, 4),
            (std::vector<double>{1, 2, 4, 8}));
  EXPECT_EQ(Histogram::LinearBounds(10, 5, 3),
            (std::vector<double>{10, 15, 20}));
}

TEST(MetricsRegistryTest, GaugeSetOverwritesAddAccumulates) {
  Gauge gauge;
  gauge.Set(2.5);
  gauge.Set(1.25);  // last write wins — re-exports don't double-count
  EXPECT_DOUBLE_EQ(gauge.Value(), 1.25);
  gauge.Add(0.75);
  EXPECT_DOUBLE_EQ(gauge.Value(), 2.0);
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndTyped) {
  MetricsRegistry registry;
  registry.GetCounter("b.calls")->Add(3);
  registry.GetGauge("a.depth")->Set(4.5);
  registry.GetHistogram("c.micros", {1.0, 2.0})->Observe(1.5);

  std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "a.depth");
  EXPECT_EQ(snapshot[0].kind, MetricSnapshot::Kind::kGauge);
  EXPECT_DOUBLE_EQ(snapshot[0].value, 4.5);
  EXPECT_EQ(snapshot[1].name, "b.calls");
  EXPECT_EQ(snapshot[1].kind, MetricSnapshot::Kind::kCounter);
  EXPECT_DOUBLE_EQ(snapshot[1].value, 3.0);
  EXPECT_EQ(snapshot[2].name, "c.micros");
  EXPECT_EQ(snapshot[2].kind, MetricSnapshot::Kind::kHistogram);
  EXPECT_EQ(snapshot[2].count, 1u);
  EXPECT_DOUBLE_EQ(snapshot[2].sum, 1.5);
  ASSERT_EQ(snapshot[2].buckets.size(), 3u);
  EXPECT_EQ(snapshot[2].buckets[1], 1u);
}

TEST(MetricsRegistryTest, ResetAllZeroesButKeepsIdentities) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("r.calls");
  Histogram* histogram = registry.GetHistogram("r.micros", {1.0});
  Gauge* gauge = registry.GetGauge("r.depth");
  counter->Add(5);
  histogram->Observe(0.5);
  gauge->Set(9.0);

  registry.ResetAll();
  EXPECT_EQ(counter, registry.GetCounter("r.calls"));
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram->Sum(), 0.0);
  EXPECT_EQ(histogram->BucketValue(0), 0u);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
}

TEST(MetricsRegistryTest, ConcurrentIncrementsLoseNothing) {
  Counter counter;
  Histogram histogram(Histogram::LinearBounds(1, 1, 8));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram, t] {
      ScopedShard pinned(static_cast<size_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add(1);
        histogram.Observe(static_cast<double>(t % 4));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---------------- bucket-interpolating quantiles (p50/p95/p99) ----------

TEST(HistogramQuantileTest, EmptyHistogramReportsZero) {
  Histogram histogram({1.0, 2.0});
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 0.0);
  EXPECT_DOUBLE_EQ(
      Histogram::QuantileFromBuckets({1.0, 2.0}, {}, 0.5, 0.0), 0.0);
}

TEST(HistogramQuantileTest, SingleBucketInterpolatesAndClampsToMax) {
  Histogram histogram({10.0});
  for (int i = 0; i < 4; ++i) histogram.Observe(5.0);
  // Rank q*4 interpolates linearly across the [0,10] bucket: rank 1 of 4
  // lands a quarter of the way in. q=0 clamps its rank up to the first
  // observation rather than reporting the impossible value 0-of-4.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.0), 2.5);
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 5.0);
  // The interpolated upper edge (10) exceeds anything actually observed;
  // the tracked max (5) caps the report.
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 5.0);
}

TEST(HistogramQuantileTest, InterpolatesAcrossBuckets) {
  Histogram histogram({10.0, 20.0, 30.0});
  for (double value : {5.0, 15.0, 15.0, 25.0}) histogram.Observe(value);
  // rank 2 of 4 falls in the (10,20] bucket holding observations 2..3:
  // halfway through it.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.5), 15.0);
  // rank 3 of 4 is that bucket's last observation: its upper edge.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.75), 20.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 25.0);
}

TEST(HistogramQuantileTest, OverflowBucketReportsTrackedMax) {
  Histogram histogram({1.0, 2.0});
  histogram.Observe(0.5);
  histogram.Observe(50.0);
  histogram.Observe(80.0);
  // p99's rank lands in the overflow bucket, which has no finite upper
  // edge: the tracked max is the honest answer.
  EXPECT_DOUBLE_EQ(histogram.Quantile(0.99), 80.0);
  // Counts merged without a max (max_value = 0) fall back to the last
  // finite bound instead of claiming a max nobody tracked.
  EXPECT_DOUBLE_EQ(
      Histogram::QuantileFromBuckets({1.0, 2.0}, {0, 0, 3}, 0.5, 0.0),
      2.0);
}

TEST(HistogramQuantileTest, MergeCountsFoldsRemoteShardIn) {
  Histogram histogram({1.0, 2.0});
  histogram.Observe(0.5);
  // A worker process's serialized shard: bucket counts, count, sum, max.
  histogram.MergeCounts({1, 2, 1}, 4, 7.0, 5.0);
  EXPECT_EQ(histogram.Count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 7.5);
  EXPECT_DOUBLE_EQ(histogram.Max(), 5.0);
  EXPECT_EQ(histogram.BucketValue(0), 2u);
  EXPECT_EQ(histogram.BucketValue(1), 2u);
  EXPECT_EQ(histogram.BucketValue(2), 1u);
  EXPECT_DOUBLE_EQ(histogram.Quantile(1.0), 5.0);
}

TEST(HistogramQuantileTest, SnapshotQuantileMatchesLiveHistogram) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("q.micros", {10.0, 20.0, 30.0});
  for (double value : {5.0, 15.0, 15.0, 25.0}) histogram->Observe(value);
  std::vector<MetricSnapshot> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_DOUBLE_EQ(snapshot[0].Quantile(0.5), histogram->Quantile(0.5));
  EXPECT_DOUBLE_EQ(snapshot[0].Quantile(0.99), histogram->Quantile(0.99));
  EXPECT_DOUBLE_EQ(snapshot[0].max, 25.0);
}

ItemPtr Leaf(const std::string& name, const std::string& text) {
  auto node = std::make_unique<xml::XmlNode>(name);
  node->set_text(text);
  return engine::MakeItem(std::move(node));
}

// The parallel executor's built-in instrumentation updates
// engine.parallel.{items,batches,batch_items} from every worker thread on
// pinned shards. Whatever the interleaving, the counters and the
// histogram must tell one consistent story: every dispatched batch is one
// batches increment, one histogram observation, and its item count summed
// into items.
TEST(MetricsRegistryTest, ParallelExecutorCountersStayConsistent) {
#if !STREAMSHARE_OBS_ENABLED
  GTEST_SKIP() << "observability compiled out";
#endif
  if (!obs::Enabled()) GTEST_SKIP() << "observability disabled";
  MetricsRegistry& registry = MetricsRegistry::Default();
  Counter* items = registry.GetCounter("engine.parallel.items");
  Counter* batches = registry.GetCounter("engine.parallel.batches");
  Histogram* batch_items = registry.GetHistogram(
      "engine.parallel.batch_items",
      Histogram::ExponentialBounds(1, 2, 12));
  const uint64_t items_before = items->Value();
  const uint64_t batches_before = batches->Value();
  const uint64_t observations_before = batch_items->Count();
  const double observed_items_before = batch_items->Sum();

  engine::OperatorGraph graph;
  auto* entry = graph.Add<engine::PassOp>("entry");
  auto* sink = graph.Add<engine::SinkOp>("sink");
  entry->AddDownstream(sink);
  std::vector<ItemPtr> fed;
  for (int i = 0; i < 500; ++i) fed.push_back(Leaf("n", std::to_string(i)));

  engine::ParallelExecutor executor;
  ASSERT_TRUE(executor.Run(entry, fed).ok());

  const uint64_t items_delta = items->Value() - items_before;
  const uint64_t batches_delta = batches->Value() - batches_before;
  EXPECT_GE(items_delta, 500u);
  EXPECT_GE(batches_delta, 1u);
  EXPECT_EQ(batch_items->Count() - observations_before, batches_delta);
  EXPECT_DOUBLE_EQ(batch_items->Sum() - observed_items_before,
                   static_cast<double>(items_delta));
}

}  // namespace
}  // namespace streamshare
