// Unit tests for Status / Result error handling.

#include "common/status.h"

#include <gtest/gtest.h>

namespace streamshare {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("no such stream");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.message(), "no such stream");
  EXPECT_EQ(status.ToString(), "not found: no such stream");
}

TEST(StatusTest, AllFactoryPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Unsupported("x").IsUnsupported());
  EXPECT_TRUE(Status::Unsatisfiable("x").IsUnsatisfiable());
  EXPECT_TRUE(Status::Overload("x").IsOverload());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, WithContextPrepends) {
  Status status = Status::ParseError("bad digit").WithContext("line 3");
  EXPECT_EQ(status.message(), "line 3: bad digit");
  EXPECT_TRUE(status.IsParseError());
  // OK statuses pass through untouched.
  EXPECT_TRUE(Status::Ok().WithContext("ctx").ok());
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status status = Status::Internal("boom");
  Status copy = status;
  EXPECT_EQ(copy.message(), "boom");
  EXPECT_TRUE(copy.IsInternal());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.value_or(7), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("gone");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

namespace {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseMacros(int x, int* out) {
  SS_ASSIGN_OR_RETURN(int value, ParsePositive(x));
  SS_RETURN_IF_ERROR(Status::Ok());
  *out = value * 2;
  return Status::Ok();
}

}  // namespace

TEST(ResultTest, MacrosPropagateErrors) {
  int out = 0;
  EXPECT_TRUE(UseMacros(21, &out).ok());
  EXPECT_EQ(out, 42);
  Status failed = UseMacros(-1, &out);
  EXPECT_TRUE(failed.IsInvalidArgument());
  EXPECT_EQ(out, 42);  // unchanged on failure
}

}  // namespace
}  // namespace streamshare
