// Tests for the hierarchical-subnet extension (paper §6): subnet
// partitions, gateway detection, subnet-restricted Subscribe, and the
// correctness guarantee that hierarchical registration still delivers
// exactly the same results.

#include "sharing/hierarchy.h"

#include <gtest/gtest.h>

#include "network/subnet.h"
#include "workload/scenario.h"

namespace streamshare {
namespace {

using network::SubnetPartition;
using network::Topology;

TEST(SubnetPartitionTest, CreateValidatesAssignment) {
  Topology grid = Topology::Grid(2, 2);
  EXPECT_FALSE(SubnetPartition::Create(&grid, {0, 1}).ok());  // short
  EXPECT_FALSE(SubnetPartition::Create(&grid, {0, -1, 0, 0}).ok());
  EXPECT_FALSE(
      SubnetPartition::Create(&grid, {0, 0, 2, 2}).ok());  // gap (no 1)
  Result<SubnetPartition> ok = SubnetPartition::Create(&grid, {0, 0, 1, 1});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->subnet_count(), 2);
  EXPECT_EQ(ok->subnet_of(0), 0);
  EXPECT_EQ(ok->subnet_of(3), 1);
}

TEST(SubnetPartitionTest, GatewaysCrossSubnetLinks) {
  // 2x2 grid: 0-1 horizontal, 0-2, 1-3 vertical, 2-3 horizontal.
  Topology grid = Topology::Grid(2, 2);
  SubnetPartition partition =
      SubnetPartition::Create(&grid, {0, 0, 1, 1}).value();
  // Links 0-2 and 1-3 cross; all four nodes are gateways here.
  EXPECT_TRUE(partition.IsGateway(0));
  EXPECT_TRUE(partition.IsGateway(2));
  EXPECT_EQ(partition.GatewaysOf(0).size(), 2u);

  // A line of 4: 0-1-2-3 split {0,1} | {2,3}: only 1 and 2 are gateways.
  Topology line = Topology::Grid(1, 4);
  SubnetPartition line_partition =
      SubnetPartition::Create(&line, {0, 0, 1, 1}).value();
  EXPECT_FALSE(line_partition.IsGateway(0));
  EXPECT_TRUE(line_partition.IsGateway(1));
  EXPECT_TRUE(line_partition.IsGateway(2));
  EXPECT_FALSE(line_partition.IsGateway(3));
}

TEST(SubnetPartitionTest, GridQuadrants) {
  Topology grid = Topology::Grid(4, 4);
  Result<SubnetPartition> partition =
      SubnetPartition::GridQuadrants(&grid, 4, 4);
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->subnet_count(), 4);
  EXPECT_EQ(partition->nodes_in(0).size(), 4u);
  EXPECT_EQ(partition->subnet_of(0), 0);   // top-left
  EXPECT_EQ(partition->subnet_of(3), 1);   // top-right
  EXPECT_EQ(partition->subnet_of(12), 2);  // bottom-left
  EXPECT_EQ(partition->subnet_of(15), 3);  // bottom-right
  EXPECT_FALSE(SubnetPartition::GridQuadrants(&grid, 3, 3).ok());
}

TEST(HierarchyTest, SubnetSearchVisitsFewerNodes) {
  workload::ScenarioSpec scenario = workload::GridScenario(17, 60);

  auto run = [&](bool hierarchical) -> Result<std::pair<long, double>> {
    sharing::SystemConfig config;
    if (hierarchical) {
      config.subnet_assignment.resize(16);
      for (int r = 0; r < 4; ++r) {
        for (int c = 0; c < 4; ++c) {
          config.subnet_assignment[r * 4 + c] =
              (r >= 2 ? 2 : 0) + (c >= 2 ? 1 : 0);
        }
      }
    }
    SS_ASSIGN_OR_RETURN(auto system,
                        workload::BuildSystem(scenario, config));
    long nodes = 0;
    double cost = 0.0;
    for (const workload::QuerySpec& query : scenario.queries) {
      SS_ASSIGN_OR_RETURN(
          sharing::RegistrationResult result,
          system->RegisterQuery(query.text, query.target,
                                sharing::Strategy::kStreamSharing));
      nodes += result.search.nodes_visited;
      cost += result.plan.TotalCost();
    }
    return std::make_pair(nodes, cost);
  };

  Result<std::pair<long, double>> flat = run(false);
  Result<std::pair<long, double>> hierarchical = run(true);
  ASSERT_TRUE(flat.ok()) << flat.status();
  ASSERT_TRUE(hierarchical.ok()) << hierarchical.status();
  // The subnet-restricted search does less work...
  EXPECT_LT(hierarchical->first, flat->first);
  // ...at a bounded plan-quality loss (fallback keeps it close).
  EXPECT_LT(hierarchical->second, flat->second * 1.5 + 0.1);
}

TEST(HierarchyTest, DisabledFallbackStaysSubnetLocal) {
  // Without global fallback, a query whose only shareable streams live in
  // another subnet must settle for the original stream.
  workload::ScenarioSpec scenario = workload::GridScenario(29, 0);
  sharing::SystemConfig config;
  config.subnet_assignment.resize(16);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      config.subnet_assignment[r * 4 + c] =
          (r >= 2 ? 2 : 0) + (c >= 2 ? 1 : 0);
    }
  }
  config.hierarchy.fallback_to_global = false;
  Result<std::unique_ptr<sharing::StreamShareSystem>> built =
      workload::BuildSystem(scenario, config);
  ASSERT_TRUE(built.ok());
  auto& system = *built;

  const char* query =
      "<o> { for $p in stream(\"photons\")/photons/photon "
      "where $p/en >= 1.0 return <h> { $p/en } </h> } </o>";
  // First registration in subnet 3 (bottom-right, SP15) creates a stream
  // whose route stays on the SP0→SP15 diagonal side.
  Result<sharing::RegistrationResult> first = system->RegisterQuery(
      query, 15, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(first.ok());
  // An identical query in subnet 0 at SP5: the shareable stream's route
  // (0→…→15) may clip other subnets, but whether it is visible depends on
  // subnet-local availability only. SP5's subnet is {0,1,4,5}; the route
  // passes through nodes of that subnet only near the source.
  Result<sharing::RegistrationResult> second = system->RegisterQuery(
      query, 5, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(second.ok());
  // With fallback disabled, the search never left subnet 0 ∪ {source}:
  // visited nodes must be few.
  EXPECT_LE(second->search.nodes_visited, 5);
}

TEST(HierarchyTest, HierarchicalResultsStillCorrect) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(23, 10);

  auto run = [&](bool hierarchical)
      -> Result<std::unique_ptr<sharing::StreamShareSystem>> {
    sharing::SystemConfig config;
    config.keep_results = true;
    if (hierarchical) {
      // Split the 2x4 example: left half subnet 0, right half subnet 1.
      config.subnet_assignment = {0, 1, 1, 1, 0, 0, 0, 1};
    }
    SS_ASSIGN_OR_RETURN(auto system,
                        workload::BuildSystem(scenario, config));
    for (const workload::QuerySpec& query : scenario.queries) {
      SS_ASSIGN_OR_RETURN(
          sharing::RegistrationResult result,
          system->RegisterQuery(query.text, query.target,
                                sharing::Strategy::kStreamSharing));
      EXPECT_TRUE(result.accepted);
    }
    workload::PhotonGenerator generator(scenario.streams[0].gen);
    std::map<std::string, std::vector<engine::ItemPtr>> items;
    items["photons"] = generator.Generate(800);
    SS_RETURN_IF_ERROR(system->Run(items));
    return system;
  };

  auto flat = run(false);
  auto hierarchical = run(true);
  ASSERT_TRUE(flat.ok()) << flat.status();
  ASSERT_TRUE(hierarchical.ok()) << hierarchical.status();
  const auto& flat_regs = (*flat)->registrations();
  const auto& hier_regs = (*hierarchical)->registrations();
  ASSERT_EQ(flat_regs.size(), hier_regs.size());
  for (size_t q = 0; q < flat_regs.size(); ++q) {
    ASSERT_EQ(flat_regs[q].sink->item_count(),
              hier_regs[q].sink->item_count())
        << "query " << q;
    for (size_t i = 0; i < flat_regs[q].sink->items().size(); ++i) {
      EXPECT_TRUE(flat_regs[q].sink->items()[i]->Equals(
          *hier_regs[q].sink->items()[i]));
    }
  }
}

}  // namespace
}  // namespace streamshare
