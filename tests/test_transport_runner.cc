// The partitioned transport runner's contract: results and merged
// metrics identical to a serial run — over loopback threads, TCP
// threads, and (outside TSAN) TCP with every worker fork()ed into its
// own OS process — plus serial-wiring restore, measured traffic stats,
// fault-injection failure propagation, and sink content hashes that
// survive the cross-process report.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/metrics.h"
#include "engine/operator.h"
#include "engine/parallel_executor.h"
#include "network/topology.h"
#include "transport/loopback.h"
#include "transport/runner.h"
#include "transport/tcp.h"
#include "workload/scenario.h"

// fork() and TSAN don't mix: TSAN's runtime owns threads the child
// can't inherit safely. Process-mode cases run everywhere else.
#if defined(__SANITIZE_THREAD__)
#define STREAMSHARE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define STREAMSHARE_TSAN 1
#endif
#endif
#ifndef STREAMSHARE_TSAN
#define STREAMSHARE_TSAN 0
#endif

namespace streamshare {
namespace {

using engine::ItemPtr;
using engine::Operator;
using transport::LoopbackTransport;
using transport::PartitionedRunner;
using transport::RunnerOptions;
using transport::TcpTransport;

ItemPtr Leaf(const std::string& name, const std::string& text) {
  auto node = std::make_unique<xml::XmlNode>(name);
  node->set_text(text);
  return engine::MakeItem(std::move(node));
}

/// One transport/mode combination under test.
struct RunnerCase {
  const char* label;
  const char* transport;  // "loopback" | "tcp"
  RunnerOptions::Mode mode;
};

std::unique_ptr<transport::Transport> MakeTransport(const char* name) {
  if (std::string(name) == "tcp") return std::make_unique<TcpTransport>();
  return std::make_unique<LoopbackTransport>();
}

std::vector<RunnerCase> AllCases() {
  std::vector<RunnerCase> cases = {
      {"loopback-threads", "loopback", RunnerOptions::Mode::kThreads},
      {"tcp-threads", "tcp", RunnerOptions::Mode::kThreads},
  };
#if !STREAMSHARE_TSAN
  cases.push_back(
      {"tcp-processes", "tcp", RunnerOptions::Mode::kProcesses});
#endif
  return cases;
}

/// Runs the extended-example scenario (Fig. 6: 8 super-peers, 25
/// queries) serial and over the given transport on two identically
/// built systems and demands item-for-item identical sink contents and
/// equal merged metrics — the acceptance bar from the paper repro: the
/// distribution mechanism must be invisible in the results.
void ExpectTransportMatchesSerial(const RunnerCase& test_case) {
  SCOPED_TRACE(test_case.label);
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/25);

  sharing::SystemConfig serial_config;
  serial_config.keep_results = true;

  sharing::SystemConfig transport_config = serial_config;
  transport_config.executor = sharing::ExecutorKind::kTransport;
  transport_config.transport = test_case.transport;
  transport_config.transport_processes =
      test_case.mode == RunnerOptions::Mode::kProcesses;

  constexpr size_t kItems = 300;
  Result<workload::ScenarioRun> serial = workload::RunScenario(
      scenario, sharing::Strategy::kStreamSharing, serial_config, kItems);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  Result<workload::ScenarioRun> over_wire =
      workload::RunScenario(scenario, sharing::Strategy::kStreamSharing,
                            transport_config, kItems);
  ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();

  const auto& serial_regs = serial->system->registrations();
  const auto& wire_regs = over_wire->system->registrations();
  ASSERT_EQ(serial_regs.size(), wire_regs.size());
  size_t sinks_with_output = 0;
  for (size_t q = 0; q < serial_regs.size(); ++q) {
    if (serial_regs[q].sink == nullptr) {
      EXPECT_EQ(wire_regs[q].sink, nullptr);
      continue;
    }
    ASSERT_NE(wire_regs[q].sink, nullptr);
    EXPECT_EQ(serial_regs[q].sink->item_count(),
              wire_regs[q].sink->item_count())
        << "query " << q << " result count diverged";
    EXPECT_EQ(serial_regs[q].sink->total_bytes(),
              wire_regs[q].sink->total_bytes())
        << "query " << q << " result bytes diverged";
    if (serial_regs[q].sink->item_count() > 0) ++sinks_with_output;
    // In process mode the items themselves stayed in the children; the
    // order-insensitive content hash came back in the report and must
    // match a hash of the serial results.
    engine::SinkOp hasher("h");
    hasher.EnableContentHash();
    for (const ItemPtr& item : serial_regs[q].sink->items()) {
      ASSERT_TRUE(hasher.Push(item).ok());
    }
    EXPECT_EQ(hasher.content_hash(), wire_regs[q].sink->content_hash())
        << "query " << q << " content hash diverged";
  }
  EXPECT_GT(sinks_with_output, 0u) << "workload produced no output at all";

  // Merged metrics equal the serial counters (work within FP merge
  // tolerance), exactly like the in-process parallel executor.
  const engine::Metrics& sm = serial->system->metrics();
  const engine::Metrics& tm = over_wire->system->metrics();
  ASSERT_EQ(sm.link_count(), tm.link_count());
  ASSERT_EQ(sm.peer_count(), tm.peer_count());
  for (size_t link = 0; link < sm.link_count(); ++link) {
    EXPECT_EQ(sm.BytesOnLink(static_cast<int>(link)),
              tm.BytesOnLink(static_cast<int>(link)))
        << "link " << link;
  }
  for (size_t peer = 0; peer < sm.peer_count(); ++peer) {
    EXPECT_EQ(sm.OperatorInvocationsAtPeer(static_cast<int>(peer)),
              tm.OperatorInvocationsAtPeer(static_cast<int>(peer)))
        << "peer " << peer;
    EXPECT_NEAR(sm.WorkAtPeer(static_cast<int>(peer)),
                tm.WorkAtPeer(static_cast<int>(peer)),
                1e-6 * (1.0 + sm.WorkAtPeer(static_cast<int>(peer))))
        << "peer " << peer;
  }

  // The run went over the wire: partitioned across several workers,
  // with measured traffic on the cross edges.
  const transport::TransportRunStats& stats =
      over_wire->system->transport_stats();
  EXPECT_EQ(stats.transport, test_case.transport);
  EXPECT_GT(stats.workers.size(), 1u);
  EXPECT_FALSE(stats.edges.empty());
  EXPECT_FALSE(stats.channels.empty());
  uint64_t items_crossed = 0, encoded_bytes = 0;
  for (const transport::EdgeTrafficStats& edge : stats.edges) {
    items_crossed += edge.items;
    encoded_bytes += edge.encoded_bytes;
  }
  EXPECT_GT(items_crossed, 0u);
  EXPECT_GT(encoded_bytes, 0u);
  uint64_t frames = 0;
  for (const transport::ChannelTrafficStats& channel : stats.channels) {
    frames += channel.stats.frames_sent;
  }
  EXPECT_EQ(frames, items_crossed)
      << "every cross-edge item travels as exactly one DATA frame";
  if (test_case.mode == RunnerOptions::Mode::kProcesses) {
    EXPECT_EQ(stats.process_count, stats.workers.size());
  } else {
    EXPECT_EQ(stats.process_count, 0u);
  }
}

TEST(TransportRunnerTest, MatchesSerialOnExtendedWorkload) {
  for (const RunnerCase& test_case : AllCases()) {
    ExpectTransportMatchesSerial(test_case);
  }
}

TEST(TransportRunnerTest, TinyQueuesAndCreditsBackpressureWithoutDeadlock) {
  // Capacity-1 queues and a 2-credit window: every handoff stalls, both
  // locally and across the wire, and the run must still complete.
  RunnerCase test_case{"loopback-threads", "loopback",
                       RunnerOptions::Mode::kThreads};
  SCOPED_TRACE("squeezed");
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/10);

  sharing::SystemConfig config;
  config.keep_results = true;
  config.executor = sharing::ExecutorKind::kTransport;
  config.transport = test_case.transport;
  config.parallel.queue_capacity = 1;
  config.parallel.batch_size = 1;
  config.flow.initial_credits = 2;

  Result<workload::ScenarioRun> run = workload::RunScenario(
      scenario, sharing::Strategy::kStreamSharing, config, /*items=*/150);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  uint64_t stalls = 0;
  for (const auto& channel : run->system->transport_stats().channels) {
    stalls += channel.stats.credit_stalls;
  }
  EXPECT_GT(stalls, 0u) << "a 2-credit window never stalling is a bug";
}

// --- Direct runner tests on a hand-built two-peer graph ------------------

struct SmallGraph {
  engine::OperatorGraph graph;
  std::unique_ptr<engine::Metrics> metrics;
  Operator* entry = nullptr;
  engine::SinkOp* sink = nullptr;
  network::LinkId link = -1;
  network::NodeId p0 = -1, p1 = -1;
};

/// entry(p0) → link(p0→p1) → remote pass(p1) → sink: the one edge
/// crosses a worker boundary, so every item travels the transport.
void BuildSmallGraph(SmallGraph* g) {
  network::Topology topology;
  g->p0 = topology.AddPeer("SP0");
  g->p1 = topology.AddPeer("SP1");
  Result<network::LinkId> link = topology.AddLink(g->p0, g->p1);
  ASSERT_TRUE(link.ok());
  g->link = *link;
  g->metrics = std::make_unique<engine::Metrics>(topology);

  auto* entry = g->graph.Add<engine::PassOp>("entry");
  auto* link_op =
      g->graph.Add<engine::LinkOp>("link", g->metrics.get(), g->link);
  auto* remote = g->graph.Add<engine::PassOp>("remote");
  auto* sink = g->graph.Add<engine::SinkOp>("sink", /*keep_items=*/true);
  entry->SetAccounting(g->metrics.get(), g->p0, 1.0);
  link_op->SetAccounting(g->metrics.get(), g->p0, 0.5);
  remote->SetAccounting(g->metrics.get(), g->p1, 2.0);
  entry->AddDownstream(link_op);
  link_op->AddDownstream(remote);
  remote->AddDownstream(sink);
  g->entry = entry;
  g->sink = sink;
}

TEST(TransportRunnerTest, RestoresSerialWiring) {
  SmallGraph g;
  BuildSmallGraph(&g);
  ASSERT_TRUE(g.entry != nullptr);

  std::vector<std::vector<Operator*>> before;
  for (Operator* op = g.entry; op != nullptr;
       op = op->downstreams().empty() ? nullptr : op->downstreams()[0]) {
    before.push_back(op->downstreams());
  }

  std::vector<ItemPtr> items;
  for (int i = 0; i < 100; ++i) items.push_back(Leaf("n", std::to_string(i)));

  LoopbackTransport transport;
  PartitionedRunner runner(&transport, RunnerOptions{});
  ASSERT_TRUE(runner.Run({g.entry}, {items}).ok());

  std::vector<std::vector<Operator*>> after;
  for (Operator* op = g.entry; op != nullptr;
       op = op->downstreams().empty() ? nullptr : op->downstreams()[0]) {
    after.push_back(op->downstreams());
  }
  EXPECT_EQ(before, after);

  ASSERT_EQ(g.sink->item_count(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(g.sink->items()[i]->text(), std::to_string(i));
  }
  // The cross edge is attributed to the topology link the LinkOp rides.
  const transport::TransportRunStats& stats = runner.run_stats();
  ASSERT_EQ(stats.edges.size(), 1u);
  EXPECT_EQ(stats.edges[0].link, g.link);
  EXPECT_EQ(stats.edges[0].items, 100u);
}

TEST(TransportRunnerTest, DropFaultFailsTheRunCleanly) {
  SmallGraph g;
  BuildSmallGraph(&g);

  std::vector<ItemPtr> items;
  for (int i = 0; i < 50; ++i) items.push_back(Leaf("n", "x"));

  RunnerOptions options;
  options.faults.drop_period = 10;
  LoopbackTransport transport;
  PartitionedRunner runner(&transport, options);
  Status status = runner.Run({g.entry}, {items});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("loss"), std::string::npos)
      << status.ToString();
}

TEST(TransportRunnerTest, DuplicateFaultIsAbsorbedByTheReceiver) {
  SmallGraph g;
  BuildSmallGraph(&g);

  std::vector<ItemPtr> items;
  for (int i = 0; i < 60; ++i) items.push_back(Leaf("n", std::to_string(i)));

  RunnerOptions options;
  options.faults.duplicate_period = 4;
  LoopbackTransport transport;
  PartitionedRunner runner(&transport, options);
  ASSERT_TRUE(runner.Run({g.entry}, {items}).ok());

  // Duplicates were discarded before delivery: results are untouched.
  ASSERT_EQ(g.sink->item_count(), 60u);
  for (int i = 0; i < 60; ++i) {
    EXPECT_EQ(g.sink->items()[i]->text(), std::to_string(i));
  }
  uint64_t discarded = 0;
  for (const auto& channel : runner.run_stats().channels) {
    discarded += channel.stats.duplicates_discarded;
  }
  EXPECT_EQ(discarded, 15u);  // every 4th of 60 frames
}

TEST(TransportRunnerTest, OperatorFailurePropagatesAcrossTheWire) {
  // The failing operator lives downstream of the cross edge; its error
  // must travel back out of the worker (and, in process mode, out of the
  // child process) without wedging any channel.
  class FailAfterOp final : public Operator {
   public:
    FailAfterOp(std::string label, int fail_after)
        : Operator(std::move(label)), remaining_(fail_after) {}

   protected:
    Status Process(const ItemPtr& item) override {
      if (remaining_-- <= 0) return Status::Internal("injected failure");
      return Emit(item);
    }

   private:
    int remaining_;
  };

  network::Topology topology;
  network::NodeId p0 = topology.AddPeer("SP0");
  network::NodeId p1 = topology.AddPeer("SP1");
  Result<network::LinkId> link = topology.AddLink(p0, p1);
  ASSERT_TRUE(link.ok());
  engine::Metrics metrics(topology);

  for (const RunnerCase& test_case : AllCases()) {
    SCOPED_TRACE(test_case.label);
    engine::OperatorGraph graph;
    auto* entry = graph.Add<engine::PassOp>("entry");
    auto* link_op = graph.Add<engine::LinkOp>("link", &metrics, *link);
    auto* fail = graph.Add<FailAfterOp>("fail", 5);
    auto* sink = graph.Add<engine::SinkOp>("sink");
    entry->SetAccounting(&metrics, p0, 1.0);
    link_op->SetAccounting(&metrics, p0, 0.5);
    fail->SetAccounting(&metrics, p1, 1.0);
    entry->AddDownstream(link_op);
    link_op->AddDownstream(fail);
    fail->AddDownstream(sink);

    std::vector<ItemPtr> items;
    for (int i = 0; i < 500; ++i) items.push_back(Leaf("n", "x"));

    auto transport = MakeTransport(test_case.transport);
    RunnerOptions options;
    options.mode = test_case.mode;
    PartitionedRunner runner(transport.get(), options);
    Status status = runner.Run({entry}, {items});
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.ToString().find("injected failure"),
              std::string::npos)
        << status.ToString();
  }
}

TEST(TransportRunnerTest, EmptyStreamStillFinishes) {
  SmallGraph g;
  BuildSmallGraph(&g);
  LoopbackTransport transport;
  PartitionedRunner runner(&transport, RunnerOptions{});
  ASSERT_TRUE(runner.Run({g.entry}, {{}}).ok());
  EXPECT_EQ(g.sink->item_count(), 0u);
}

TEST(TransportRunnerTest, ProcessModeRequiresForkSafeTransport) {
  SmallGraph g;
  BuildSmallGraph(&g);
  RunnerOptions options;
  options.mode = RunnerOptions::Mode::kProcesses;
  LoopbackTransport transport;  // SupportsProcesses() == false
  PartitionedRunner runner(&transport, options);
  Status status = runner.Run({g.entry}, {{Leaf("n", "x")}});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
      << status.ToString();
}

}  // namespace
}  // namespace streamshare
