// The parallel executor's contract: results item-for-item identical to
// the serial executor (per-stream order preserved), merged metrics equal
// to serial metrics, backpressure on tiny queues without deadlock, and
// clean error propagation across workers.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "engine/executor.h"
#include "engine/link_queue.h"
#include "engine/parallel_executor.h"
#include "workload/scenario.h"

namespace streamshare {
namespace {

using engine::ItemPtr;
using engine::LinkQueue;
using engine::Operator;
using engine::ParallelExecutor;
using engine::ParallelOptions;

ItemPtr Leaf(const std::string& name, const std::string& text) {
  auto node = std::make_unique<xml::XmlNode>(name);
  node->set_text(text);
  return engine::MakeItem(std::move(node));
}

/// One-item queue entry (the granularity these queue tests exercise).
LinkQueue::Entry SingleEntry(Operator* target, const ItemPtr& item) {
  LinkQueue::Entry entry;
  entry.target = target;
  entry.batch.AppendItem(item, /*adopt=*/false);
  return entry;
}

TEST(LinkQueueTest, BoundedFifoAcrossThreads) {
  LinkQueue queue(/*capacity=*/4);
  engine::OperatorGraph graph;
  Operator* target = graph.Add<engine::PassOp>("t");

  constexpr int kCount = 1000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      queue.Push(SingleEntry(target, Leaf("n", std::to_string(i))));
    }
    queue.Push(LinkQueue::Entry{});  // pill
  });

  std::vector<LinkQueue::Entry> batch;
  int next = 0;
  bool done = false;
  while (!done) {
    batch.clear();
    queue.PopBatch(&batch, 16);
    EXPECT_LE(batch.size(), 16u);
    for (LinkQueue::Entry& entry : batch) {
      if (entry.target == nullptr) {
        done = true;
        continue;
      }
      EXPECT_EQ(entry.batch.Materialize(0)->text(), std::to_string(next));
      ++next;
    }
  }
  producer.join();
  EXPECT_EQ(next, kCount);
  EXPECT_EQ(queue.pushed_count(), static_cast<uint64_t>(kCount + 1));
  // Capacity 4 against 1000 items: the producer must have hit a full
  // queue at least once.
  EXPECT_GT(queue.producer_blocked_ns(), 0u);
}

TEST(LinkQueueTest, PushBatchKeepsOrderAndRespectsCapacity) {
  LinkQueue queue(/*capacity=*/2);
  engine::OperatorGraph graph;
  Operator* target = graph.Add<engine::PassOp>("t");

  std::vector<LinkQueue::Entry> batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back(SingleEntry(target, Leaf("n", std::to_string(i))));
  }
  std::thread producer([&] { queue.PushBatch(&batch); });

  std::vector<LinkQueue::Entry> out;
  while (out.size() < 100) {
    queue.PopBatch(&out, 7);
  }
  producer.join();
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i].batch.Materialize(0)->text(), std::to_string(i));
  }
  EXPECT_TRUE(batch.empty());  // consumed by PushBatch
}

TEST(LinkQueueTest, ResetStatsZeroesEveryCounter) {
  LinkQueue queue(/*capacity=*/4);
  engine::OperatorGraph graph;
  Operator* target = graph.Add<engine::PassOp>("t");

  // First "run": generate some traffic, including a blocked producer.
  std::thread producer([&] {
    for (int i = 0; i < 50; ++i) {
      queue.Push(SingleEntry(target, Leaf("n", std::to_string(i))));
    }
  });
  std::vector<LinkQueue::Entry> batch;
  size_t popped = 0;
  while (popped < 50) {
    batch.clear();
    queue.PopBatch(&batch, 8);
    popped += batch.size();
  }
  producer.join();
  EXPECT_EQ(queue.pushed_count(), 50u);
  EXPECT_GT(queue.max_depth(), 0u);

  // A queue reused for the next run reports per-run stats, not all-time.
  queue.ResetStats();
  EXPECT_EQ(queue.pushed_count(), 0u);
  EXPECT_EQ(queue.producer_blocked_ns(), 0u);
  EXPECT_EQ(queue.consumer_blocked_ns(), 0u);
  EXPECT_EQ(queue.max_depth(), 0u);

  queue.Push(SingleEntry(target, Leaf("n", "after")));
  EXPECT_EQ(queue.pushed_count(), 1u);
  EXPECT_EQ(queue.max_depth(), 1u);
  batch.clear();
  queue.PopBatch(&batch, 8);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].batch.Materialize(0)->text(), "after");
}

TEST(RunStreamsTest, SkipsExhaustedStreamsRoundRobin) {
  engine::OperatorGraph graph;
  auto* sink_a = graph.Add<engine::SinkOp>("a", /*keep_items=*/true);
  auto* sink_b = graph.Add<engine::SinkOp>("b", /*keep_items=*/true);
  // Unequal lengths: stream B exhausts first, A must keep flowing.
  std::vector<ItemPtr> a_items, b_items;
  for (int i = 0; i < 5; ++i) a_items.push_back(Leaf("a", std::to_string(i)));
  for (int i = 0; i < 2; ++i) b_items.push_back(Leaf("b", std::to_string(i)));
  ASSERT_TRUE(
      engine::RunStreams({sink_a, sink_b}, {a_items, b_items}).ok());
  ASSERT_EQ(sink_a->item_count(), 5u);
  ASSERT_EQ(sink_b->item_count(), 2u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(sink_a->items()[i]->text(), std::to_string(i));
  }
  for (int i = 0; i < 2; ++i) {
    EXPECT_EQ(sink_b->items()[i]->text(), std::to_string(i));
  }
}

/// Runs the extended-example scenario (Fig. 6: 8 super-peers, 25 queries)
/// serial and parallel on two identically-built systems and demands
/// item-for-item identical sink contents and equal merged metrics.
void ExpectParallelMatchesSerial(const engine::ParallelOptions& options) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/25);

  sharing::SystemConfig serial_config;
  serial_config.keep_results = true;

  sharing::SystemConfig parallel_config = serial_config;
  parallel_config.executor = sharing::ExecutorKind::kParallel;
  parallel_config.parallel = options;

  constexpr size_t kItems = 400;
  Result<workload::ScenarioRun> serial = workload::RunScenario(
      scenario, sharing::Strategy::kStreamSharing, serial_config, kItems);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  Result<workload::ScenarioRun> parallel = workload::RunScenario(
      scenario, sharing::Strategy::kStreamSharing, parallel_config, kItems);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  const auto& serial_regs = serial->system->registrations();
  const auto& parallel_regs = parallel->system->registrations();
  ASSERT_EQ(serial_regs.size(), parallel_regs.size());
  size_t sinks_with_output = 0;
  for (size_t q = 0; q < serial_regs.size(); ++q) {
    if (serial_regs[q].sink == nullptr) {
      EXPECT_EQ(parallel_regs[q].sink, nullptr);
      continue;
    }
    const auto& expect_items = serial_regs[q].sink->items();
    const auto& got_items = parallel_regs[q].sink->items();
    ASSERT_EQ(expect_items.size(), got_items.size())
        << "query " << q << " result count diverged";
    if (!expect_items.empty()) ++sinks_with_output;
    for (size_t i = 0; i < expect_items.size(); ++i) {
      EXPECT_TRUE(expect_items[i]->Equals(*got_items[i]))
          << "query " << q << " item " << i << " diverged";
    }
  }
  EXPECT_GT(sinks_with_output, 0u) << "workload produced no output at all";

  // Merged shard metrics must equal the serial counters: bytes and
  // invocation counts exactly, work within FP merge tolerance.
  const engine::Metrics& sm = serial->system->metrics();
  const engine::Metrics& pm = parallel->system->metrics();
  ASSERT_EQ(sm.link_count(), pm.link_count());
  ASSERT_EQ(sm.peer_count(), pm.peer_count());
  for (size_t link = 0; link < sm.link_count(); ++link) {
    EXPECT_EQ(sm.BytesOnLink(static_cast<int>(link)),
              pm.BytesOnLink(static_cast<int>(link)))
        << "link " << link;
  }
  for (size_t peer = 0; peer < sm.peer_count(); ++peer) {
    EXPECT_EQ(sm.OperatorInvocationsAtPeer(static_cast<int>(peer)),
              pm.OperatorInvocationsAtPeer(static_cast<int>(peer)))
        << "peer " << peer;
    EXPECT_NEAR(sm.WorkAtPeer(static_cast<int>(peer)),
                pm.WorkAtPeer(static_cast<int>(peer)),
                1e-6 * (1.0 + sm.WorkAtPeer(static_cast<int>(peer))))
        << "peer " << peer;
  }

  // The deployment spans several peers, so the run must actually have
  // been partitioned across more than one worker.
  EXPECT_GT(parallel->system->parallel_stats().size(), 1u);
}

TEST(ParallelExecutorTest, MatchesSerialOnExtendedWorkload) {
  engine::ParallelOptions options;
  // Pin the worker cap: the default (hardware_concurrency) would coalesce
  // everything into one worker on a single-core runner, and this test is
  // about multi-worker equivalence.
  options.max_workers = 8;
  ExpectParallelMatchesSerial(options);
}

TEST(ParallelExecutorTest, TinyQueueBackpressureWithoutDeadlock) {
  engine::ParallelOptions options;
  options.max_workers = 8;
  options.queue_capacity = 1;  // every handoff hits a full queue
  options.batch_size = 1;
  ExpectParallelMatchesSerial(options);
}

TEST(ParallelExecutorTest, RestoresSerialWiringAndShardedMetrics) {
  // Two peers joined by one link: entry and link op bill peer 0, the
  // sink's upstream pass bills peer 1 — the edge between them crosses a
  // worker boundary and gets a queue spliced in for the run. Afterwards
  // the downstream lists must be byte-for-byte the serial wiring again,
  // and the merged metrics must equal a serial run's.
  network::Topology topology;
  network::NodeId p0 = topology.AddPeer("SP0");
  network::NodeId p1 = topology.AddPeer("SP1");
  Result<network::LinkId> link = topology.AddLink(p0, p1);
  ASSERT_TRUE(link.ok());

  auto build = [&](engine::OperatorGraph* graph, engine::Metrics* metrics,
                   engine::Operator** entry_out,
                   engine::SinkOp** sink_out) {
    auto* entry = graph->Add<engine::PassOp>("entry");
    auto* link_op =
        graph->Add<engine::LinkOp>("link", metrics, *link);
    auto* remote = graph->Add<engine::PassOp>("remote");
    auto* sink = graph->Add<engine::SinkOp>("sink", /*keep_items=*/true);
    entry->SetAccounting(metrics, p0, 1.0);
    link_op->SetAccounting(metrics, p0, 0.5);
    remote->SetAccounting(metrics, p1, 2.0);
    entry->AddDownstream(link_op);
    link_op->AddDownstream(remote);
    remote->AddDownstream(sink);
    *entry_out = entry;
    *sink_out = sink;
  };

  std::vector<ItemPtr> items;
  for (int i = 0; i < 200; ++i) items.push_back(Leaf("n", std::to_string(i)));

  engine::OperatorGraph serial_graph;
  engine::Metrics serial_metrics(topology);
  engine::Operator* serial_entry = nullptr;
  engine::SinkOp* serial_sink = nullptr;
  build(&serial_graph, &serial_metrics, &serial_entry, &serial_sink);
  ASSERT_TRUE(engine::RunStream(serial_entry, items).ok());

  engine::OperatorGraph graph;
  engine::Metrics metrics(topology);
  engine::Operator* entry = nullptr;
  engine::SinkOp* sink = nullptr;
  build(&graph, &metrics, &entry, &sink);
  std::vector<std::vector<Operator*>> before;
  for (Operator* op = entry; op != nullptr;
       op = op->downstreams().empty() ? nullptr : op->downstreams()[0]) {
    before.push_back(op->downstreams());
  }

  ParallelOptions options;
  options.max_workers = 4;     // don't coalesce on single-core runners
  options.queue_capacity = 8;  // force some backpressure
  ParallelExecutor executor(options);
  ASSERT_TRUE(executor.Run(entry, items).ok());
  EXPECT_EQ(executor.worker_stats().size(), 2u);

  std::vector<std::vector<Operator*>> after;
  for (Operator* op = entry; op != nullptr;
       op = op->downstreams().empty() ? nullptr : op->downstreams()[0]) {
    after.push_back(op->downstreams());
  }
  EXPECT_EQ(before, after);

  ASSERT_EQ(sink->item_count(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(sink->items()[i]->text(), std::to_string(i));
  }
  EXPECT_EQ(metrics.BytesOnLink(*link), serial_metrics.BytesOnLink(*link));
  EXPECT_EQ(metrics.OperatorInvocationsAtPeer(p0),
            serial_metrics.OperatorInvocationsAtPeer(p0));
  EXPECT_EQ(metrics.OperatorInvocationsAtPeer(p1),
            serial_metrics.OperatorInvocationsAtPeer(p1));
  EXPECT_DOUBLE_EQ(metrics.WorkAtPeer(p0), serial_metrics.WorkAtPeer(p0));
  EXPECT_DOUBLE_EQ(metrics.WorkAtPeer(p1), serial_metrics.WorkAtPeer(p1));
}

/// An operator that fails after a fixed number of items — exercises error
/// propagation out of a worker thread.
class FailAfterOp final : public Operator {
 public:
  FailAfterOp(std::string label, int fail_after)
      : Operator(std::move(label)), remaining_(fail_after) {}

 protected:
  Status Process(const ItemPtr& item) override {
    if (remaining_-- <= 0) {
      return Status::Internal("injected failure");
    }
    return Emit(item);
  }

 private:
  int remaining_;
};

TEST(ParallelExecutorTest, PropagatesOperatorErrorWithoutHanging) {
  engine::OperatorGraph graph;
  auto* entry = graph.Add<engine::PassOp>("entry");
  auto* fail = graph.Add<FailAfterOp>("fail", 10);
  auto* sink = graph.Add<engine::SinkOp>("sink");
  entry->AddDownstream(fail);
  fail->AddDownstream(sink);

  std::vector<ItemPtr> items;
  for (int i = 0; i < 1000; ++i) items.push_back(Leaf("n", "x"));

  ParallelExecutor executor;
  Status status = executor.Run(entry, items);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("injected failure"), std::string::npos);
}

TEST(ParallelExecutorTest, EmptyStreamStillFinishes) {
  engine::OperatorGraph graph;
  auto* entry = graph.Add<engine::PassOp>("entry");
  auto* sink = graph.Add<engine::SinkOp>("sink", /*keep_items=*/true);
  entry->AddDownstream(sink);
  ParallelExecutor executor;
  ASSERT_TRUE(executor.Run(entry, {}).ok());
  EXPECT_EQ(sink->item_count(), 0u);
}

}  // namespace
}  // namespace streamshare
