// Tests for subscription deregistration: chain detachment, stream
// retirement, resource release, consumer protection, and correctness of
// the surviving subscriptions.

#include <gtest/gtest.h>

#include "sharing/system.h"
#include "workload/paper_queries.h"
#include "workload/photon_gen.h"

namespace streamshare {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

class UnregisterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sharing::SystemConfig config;
    config.keep_results = true;
    system_ = std::make_unique<sharing::StreamShareSystem>(
        network::Topology::ExtendedExample(), config);
    ASSERT_TRUE(system_
                    ->RegisterStream("photons",
                                     workload::PhotonGenerator::Schema(),
                                     100.0, 4)
                    .ok());
    ASSERT_TRUE(
        system_->SetRange("photons", P("coord/cel/ra"), {0.0, 360.0}).ok());
    ASSERT_TRUE(
        system_->SetRange("photons", P("coord/cel/dec"), {-90.0, 90.0})
            .ok());
    ASSERT_TRUE(system_->SetRange("photons", P("en"), {0.1, 2.4}).ok());
    ASSERT_TRUE(
        system_->SetAvgIncrement("photons", P("det_time"), 0.5).ok());
  }

  double TotalBandwidth() {
    double total = 0.0;
    for (size_t link = 0; link < system_->topology().link_count(); ++link) {
      total += system_->state().UsedBandwidthKbps(static_cast<int>(link));
    }
    return total;
  }

  Status Run(size_t count) {
    workload::PhotonGenConfig config;
    config.hot_regions = {{120.0, 138.0, -49.0, -40.0}};
    config.hot_weights = {2.0};
    workload::PhotonGenerator generator(config);
    std::map<std::string, std::vector<engine::ItemPtr>> items;
    items["photons"] = generator.Generate(count);
    return system_->Run(items);
  }

  std::unique_ptr<sharing::StreamShareSystem> system_;
};

TEST_F(UnregisterTest, ReleasesResourcesAndRetiresStreams) {
  Result<sharing::RegistrationResult> q1 = system_->RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(q1.ok());
  EXPECT_TRUE(system_->IsActive(q1->query_id));
  double used = TotalBandwidth();
  EXPECT_GT(used, 0.0);

  ASSERT_TRUE(system_->UnregisterQuery(q1->query_id).ok());
  EXPECT_FALSE(system_->IsActive(q1->query_id));
  EXPECT_NEAR(TotalBandwidth(), 0.0, 1e-9);
  // The derived stream is retired: a fresh identical query cannot reuse
  // it and taps the original instead.
  Result<sharing::RegistrationResult> again = system_->RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->plan.inputs[0].reused_stream, 0);
}

TEST_F(UnregisterTest, DetachedQueriesReceiveNothing) {
  Result<sharing::RegistrationResult> keep = system_->RegisterQuery(
      workload::kQuery2, 7, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(keep.ok());
  Result<sharing::RegistrationResult> drop = system_->RegisterQuery(
      workload::kQuery3, 3, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(drop.ok());
  ASSERT_TRUE(system_->UnregisterQuery(drop->query_id).ok());

  ASSERT_TRUE(Run(1500).ok());
  EXPECT_GT(keep->sink->item_count(), 0u);
  EXPECT_EQ(drop->sink->item_count(), 0u);
}

TEST_F(UnregisterTest, ConsumersBlockDeregistration) {
  Result<sharing::RegistrationResult> q1 = system_->RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(q1.ok());
  Result<sharing::RegistrationResult> q2 = system_->RegisterQuery(
      workload::kQuery2, 7, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(q2.ok());
  ASSERT_GT(q2->plan.inputs[0].reused_stream, 0);  // q2 consumes q1's

  Status blocked = system_->UnregisterQuery(q1->query_id);
  EXPECT_TRUE(blocked.IsInvalidArgument()) << blocked;
  EXPECT_TRUE(system_->IsActive(q1->query_id));

  // Consumers-first order works.
  ASSERT_TRUE(system_->UnregisterQuery(q2->query_id).ok());
  ASSERT_TRUE(system_->UnregisterQuery(q1->query_id).ok());
  EXPECT_NEAR(TotalBandwidth(), 0.0, 1e-9);
}

TEST_F(UnregisterTest, SurvivingQueriesUnaffected) {
  Result<sharing::RegistrationResult> q1 = system_->RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(q1.ok());
  Result<sharing::RegistrationResult> q3 = system_->RegisterQuery(
      workload::kQuery3, 3, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(q3.ok());
  // q3 reuses q1's stream, so remove q3 (the leaf) and verify q1 still
  // produces exactly its own results.
  ASSERT_TRUE(system_->UnregisterQuery(q3->query_id).ok());
  ASSERT_TRUE(Run(1000).ok());
  EXPECT_GT(q1->sink->item_count(), 0u);
  EXPECT_EQ(q3->sink->item_count(), 0u);
}

TEST_F(UnregisterTest, InvalidIdsRejected) {
  EXPECT_TRUE(system_->UnregisterQuery(-1).IsNotFound());
  EXPECT_TRUE(system_->UnregisterQuery(99).IsNotFound());
  EXPECT_FALSE(system_->IsActive(0));
  Result<sharing::RegistrationResult> q1 = system_->RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(system_->UnregisterQuery(q1->query_id).ok());
  // Double deregistration is rejected.
  EXPECT_TRUE(system_->UnregisterQuery(q1->query_id).IsNotFound());
}

TEST_F(UnregisterTest, DoubleUnsubscribeIsNotFoundOnBothPlanes) {
  Result<sharing::RegistrationResult> q1 = system_->RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(system_->Unsubscribe(q1->query_id).ok());

  // Every not-an-active-subscription shape answers NotFound, with a
  // message naming why, on the recovery-aware Unsubscribe path and the
  // plain UnregisterQuery path alike.
  Status removed = system_->Unsubscribe(q1->query_id);
  EXPECT_TRUE(removed.IsNotFound()) << removed;
  EXPECT_NE(removed.message().find("already unsubscribed"),
            std::string::npos)
      << removed.message();

  Status never = system_->Unsubscribe(777);
  EXPECT_TRUE(never.IsNotFound()) << never;
  EXPECT_NE(never.message().find("never registered"), std::string::npos)
      << never.message();

  EXPECT_TRUE(system_->UnregisterQuery(q1->query_id).IsNotFound());
  EXPECT_TRUE(system_->UnregisterQuery(777).IsNotFound());

  // CheckActiveSubscription is the shared predicate behind both.
  EXPECT_TRUE(system_->CheckActiveSubscription(q1->query_id).IsNotFound());
  EXPECT_TRUE(system_->CheckActiveSubscription(-1).IsNotFound());
}

TEST_F(UnregisterTest, WideningQueriesCannotUnregister) {
  sharing::SystemConfig config;
  config.planner.enable_widening = true;
  system_ = std::make_unique<sharing::StreamShareSystem>(
      network::Topology::ExtendedExample(), config);
  ASSERT_TRUE(system_
                  ->RegisterStream("photons",
                                   workload::PhotonGenerator::Schema(),
                                   100.0, 4)
                  .ok());
  ASSERT_TRUE(
      system_->SetRange("photons", P("coord/cel/ra"), {0.0, 360.0}).ok());
  ASSERT_TRUE(
      system_->SetRange("photons", P("coord/cel/dec"), {-90.0, 90.0}).ok());
  ASSERT_TRUE(
      system_
          ->RegisterQuery(workload::kQuery1, 1,
                          sharing::Strategy::kStreamSharing)
          .ok());
  // An overlapping (non-nested) box widens Q1's stream.
  const char* overlapping =
      "<out> { for $p in stream(\"photons\")/photons/photon "
      "where $p/coord/cel/ra >= 110.0 and $p/coord/cel/ra <= 130.0 "
      "and $p/coord/cel/dec >= -49.0 and $p/coord/cel/dec <= -40.0 "
      "return <b> { $p/coord/cel/ra } { $p/en } </b> } </out>";
  Result<sharing::RegistrationResult> widener = system_->RegisterQuery(
      overlapping, 3, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(widener.ok());
  ASSERT_TRUE(widener->plan.inputs[0].widening.has_value());
  EXPECT_TRUE(
      system_->UnregisterQuery(widener->query_id).IsInvalidArgument());
}

}  // namespace
}  // namespace streamshare
