// Tests for the latency extension (§3.2: "Other parameters, e.g., latency
// of network connections, could easily be added"): per-link latencies,
// path latency accumulation, per-plan latency estimates, and
// latency-aware candidate choice when latency_weight > 0.

#include <gtest/gtest.h>

#include "sharing/subscribe.h"
#include "workload/paper_queries.h"
#include "workload/photon_gen.h"

namespace streamshare::sharing {
namespace {

using network::NodeId;
using network::RegisteredStream;

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

TEST(LatencyTest, PathLatencyAccumulates) {
  network::Topology topology;
  NodeId a = topology.AddPeer("A");
  NodeId b = topology.AddPeer("B");
  NodeId c = topology.AddPeer("C");
  ASSERT_TRUE(topology.AddLink(a, b, 1000.0, /*latency_ms=*/2.5).ok());
  ASSERT_TRUE(topology.AddLink(b, c, 1000.0, /*latency_ms=*/7.5).ok());
  Result<double> latency = topology.PathLatencyMs({a, b, c});
  ASSERT_TRUE(latency.ok());
  EXPECT_DOUBLE_EQ(*latency, 10.0);
  EXPECT_DOUBLE_EQ(topology.PathLatencyMs({a}).value(), 0.0);
  EXPECT_FALSE(topology.PathLatencyMs({a, c}).ok());  // no direct link
}

class LatencyPlannerTest : public ::testing::Test {
 protected:
  // A diamond: source SP0; two disjoint 2-hop paths to SP3 — a fast one
  // via SP1 (1 ms per hop) and a slow one via SP2 (50 ms per hop).
  void SetUp() override {
    NodeId sp0 = topology_.AddPeer("SP0", 5000.0);
    NodeId sp1 = topology_.AddPeer("SP1", 5000.0);
    NodeId sp2 = topology_.AddPeer("SP2", 5000.0);
    NodeId sp3 = topology_.AddPeer("SP3", 5000.0);
    ASSERT_TRUE(topology_.AddLink(sp0, sp1, 100000.0, 1.0).ok());
    ASSERT_TRUE(topology_.AddLink(sp1, sp3, 100000.0, 1.0).ok());
    ASSERT_TRUE(topology_.AddLink(sp0, sp2, 100000.0, 50.0).ok());
    ASSERT_TRUE(topology_.AddLink(sp2, sp3, 100000.0, 50.0).ok());
    state_ = std::make_unique<network::NetworkState>(&topology_);

    cost::StreamStatistics stats(workload::PhotonGenerator::Schema(),
                                 100.0);
    stats.SetRange(P("coord/cel/ra"), {0.0, 360.0});
    stats.SetRange(P("coord/cel/dec"), {-90.0, 90.0});
    stats.SetRange(P("en"), {0.1, 2.4});
    statistics_.Register("photons", std::move(stats));

    // Original stream at SP0.
    RegisteredStream original;
    original.variant_of = "photons";
    original.props.stream_name = "photons";
    original.source_node = 0;
    original.target_node = 0;
    original.route = {0};
    registry_.Register(std::move(original));

    // Two identical derived streams (Q1's canonical content), one flowing
    // over the fast path, one over the slow path, both ending at SP3.
    Result<wxquery::AnalyzedQuery> q1 =
        wxquery::ParseAndAnalyze(workload::kQuery1);
    ASSERT_TRUE(q1.ok());
    for (auto [route, latency] :
         {std::make_pair(std::vector<NodeId>{0, 1, 3}, 0.0),
          std::make_pair(std::vector<NodeId>{0, 2, 3}, 0.0)}) {
      RegisteredStream derived;
      derived.variant_of = "photons";
      derived.props = q1->props.inputs()[0];
      derived.source_node = route.front();
      derived.target_node = route.back();
      derived.route = route;
      derived.upstream = 0;
      derived.source_latency_ms = latency;
      registry_.Register(std::move(derived));
    }
  }

  Planner MakePlanner(double latency_weight) {
    cost::CostParams params;
    params.latency_weight = latency_weight;
    cost_model_ =
        std::make_unique<cost::CostModel>(&statistics_, params);
    return Planner(&topology_, state_.get(), &registry_,
                   cost_model_.get(), PlannerOptions{});
  }

  network::Topology topology_;
  std::unique_ptr<network::NetworkState> state_;
  network::StreamRegistry registry_;
  cost::StatisticsRegistry statistics_;
  std::unique_ptr<cost::CostModel> cost_model_;
};

TEST_F(LatencyPlannerTest, PlanCarriesLatencyEstimate) {
  Planner planner = MakePlanner(0.0);
  Result<wxquery::AnalyzedQuery> q1 =
      wxquery::ParseAndAnalyze(workload::kQuery1);
  ASSERT_TRUE(q1.ok());
  Result<EvaluationPlan> plan = planner.Subscribe(*q1, 3);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Tapping either derived stream at SP3 directly: latency = that
  // stream's path; the fast one is 2 ms end to end.
  EXPECT_GT(plan->inputs[0].estimated_latency_ms, 0.0);
}

TEST_F(LatencyPlannerTest, LatencyWeightSteersCandidateChoice) {
  Result<wxquery::AnalyzedQuery> q1 =
      wxquery::ParseAndAnalyze(workload::kQuery1);
  ASSERT_TRUE(q1.ok());

  // With latency in the cost, the plan must end up on the fast path
  // (latency 2 ms), never the slow one (100 ms).
  Planner weighted = MakePlanner(/*latency_weight=*/0.01);
  Result<EvaluationPlan> plan = weighted.Subscribe(*q1, 3);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_LE(plan->inputs[0].estimated_latency_ms, 2.5)
      << plan->inputs[0].ToString();
  // Stream #1 is the fast-path stream (route 0-1-3).
  EXPECT_EQ(plan->inputs[0].reused_stream, 1);
}

TEST_F(LatencyPlannerTest, ZeroWeightReproducesPaperCost) {
  // With weight 0 the two identical candidates cost the same; the plan
  // cost must not contain any latency term.
  Planner unweighted = MakePlanner(0.0);
  Result<wxquery::AnalyzedQuery> q1 =
      wxquery::ParseAndAnalyze(workload::kQuery1);
  ASSERT_TRUE(q1.ok());
  Result<InputPlan> fast = unweighted.GenerateSharedPlan(
      registry_.stream(1), 3, 3, q1->bindings[0], q1->props.inputs()[0]);
  Result<InputPlan> slow = unweighted.GenerateSharedPlan(
      registry_.stream(2), 3, 3, q1->bindings[0], q1->props.inputs()[0]);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_DOUBLE_EQ(fast->cost, slow->cost);
  EXPECT_LT(fast->estimated_latency_ms, slow->estimated_latency_ms);
}

}  // namespace
}  // namespace streamshare::sharing
