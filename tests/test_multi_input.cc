// Tests for multi-input subscriptions: the CombineOp's nested-loop
// semantics, join conditions, per-input sharing, and equivalence with a
// hand-computed reference.

#include <gtest/gtest.h>

#include "engine/combine.h"
#include "predicate/eval.h"
#include "engine/executor.h"
#include "sharing/system.h"
#include "workload/photon_gen.h"
#include "xml/xml_writer.h"

namespace streamshare {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

engine::ItemPtr Item(const char* name, const char* field, int value) {
  auto node = std::make_unique<xml::XmlNode>(name);
  node->AddLeaf(field, std::to_string(value));
  return engine::MakeItem(std::move(node));
}

std::shared_ptr<const wxquery::AnalyzedQuery> Analyze(const char* text) {
  Result<wxquery::AnalyzedQuery> analyzed =
      wxquery::ParseAndAnalyze(text);
  EXPECT_TRUE(analyzed.ok()) << analyzed.status() << "\n" << text;
  return std::make_shared<const wxquery::AnalyzedQuery>(
      std::move(analyzed).value());
}

TEST(CombineOpTest, CartesianProductInNestedLoopOrder) {
  auto query = Analyze(
      "<o> { for $p in stream(\"s\")/r/i for $q in stream(\"t\")/r/j "
      "where $p/a >= 0 and $q/b >= 0 "
      "return <pair> { $p/a } { $q/b } </pair> } </o>");
  engine::OperatorGraph graph;
  auto* combiner = graph.Add<engine::CombineOp>("c", query);
  auto* port0 = graph.Add<engine::CombinePortOp>("p0", combiner, 0);
  auto* port1 = graph.Add<engine::CombinePortOp>("p1", combiner, 1);
  auto* sink = graph.Add<engine::SinkOp>("sink", true);
  combiner->AddDownstream(sink);

  ASSERT_TRUE(port0->Push(Item("i", "a", 1)).ok());
  ASSERT_TRUE(port0->Push(Item("i", "a", 2)).ok());
  ASSERT_TRUE(port1->Push(Item("j", "b", 10)).ok());
  ASSERT_TRUE(port1->Push(Item("j", "b", 20)).ok());
  ASSERT_TRUE(port0->Finish().ok());
  EXPECT_EQ(sink->item_count(), 0u);  // waits for all inputs
  ASSERT_TRUE(port1->Finish().ok());

  ASSERT_EQ(sink->item_count(), 4u);
  // Outer binding ($p) varies slowest.
  EXPECT_EQ(xml::WriteCompact(*sink->items()[0]),
            "<pair><a>1</a><b>10</b></pair>");
  EXPECT_EQ(xml::WriteCompact(*sink->items()[1]),
            "<pair><a>1</a><b>20</b></pair>");
  EXPECT_EQ(xml::WriteCompact(*sink->items()[2]),
            "<pair><a>2</a><b>10</b></pair>");
  EXPECT_EQ(xml::WriteCompact(*sink->items()[3]),
            "<pair><a>2</a><b>20</b></pair>");
}

TEST(CombineOpTest, JoinConditionsFilterTuples) {
  auto query = Analyze(
      "<o> { for $p in stream(\"s\")/r/i for $q in stream(\"t\")/r/j "
      "where $p/a = $q/b return <m> { $p/a } </m> } </o>");
  engine::OperatorGraph graph;
  auto* combiner = graph.Add<engine::CombineOp>("c", query);
  auto* port0 = graph.Add<engine::CombinePortOp>("p0", combiner, 0);
  auto* port1 = graph.Add<engine::CombinePortOp>("p1", combiner, 1);
  auto* sink = graph.Add<engine::SinkOp>("sink", true);
  combiner->AddDownstream(sink);

  for (int a : {1, 2, 3}) ASSERT_TRUE(port0->Push(Item("i", "a", a)).ok());
  for (int b : {2, 3, 4}) ASSERT_TRUE(port1->Push(Item("j", "b", b)).ok());
  ASSERT_TRUE(port0->Finish().ok());
  ASSERT_TRUE(port1->Finish().ok());

  ASSERT_EQ(sink->item_count(), 2u);  // matches on 2 and 3
  EXPECT_EQ(sink->items()[0]->FirstChild("a")->text(), "2");
  EXPECT_EQ(sink->items()[1]->FirstChild("a")->text(), "3");
}

TEST(CombineOpTest, EmptyInputYieldsEmptyProduct) {
  auto query = Analyze(
      "<o> { for $p in stream(\"s\")/r/i for $q in stream(\"t\")/r/j "
      "where $p/a >= 0 and $q/b >= 0 return <m/> } </o>");
  engine::OperatorGraph graph;
  auto* combiner = graph.Add<engine::CombineOp>("c", query);
  auto* port0 = graph.Add<engine::CombinePortOp>("p0", combiner, 0);
  auto* port1 = graph.Add<engine::CombinePortOp>("p1", combiner, 1);
  auto* sink = graph.Add<engine::SinkOp>("sink", true);
  combiner->AddDownstream(sink);
  ASSERT_TRUE(port0->Push(Item("i", "a", 1)).ok());
  ASSERT_TRUE(port0->Finish().ok());
  ASSERT_TRUE(port1->Finish().ok());
  EXPECT_EQ(sink->item_count(), 0u);
}

class MultiInputSystemTest : public ::testing::Test {
 protected:
  std::unique_ptr<sharing::StreamShareSystem> MakeSystem() {
    sharing::SystemConfig config;
    config.keep_results = true;
    auto system = std::make_unique<sharing::StreamShareSystem>(
        network::Topology::ExtendedExample(), config);
    for (auto [name, node] :
         {std::make_pair("photons", 4), std::make_pair("photons2", 2)}) {
      EXPECT_TRUE(system
                      ->RegisterStream(name,
                                       workload::PhotonGenerator::Schema(),
                                       100.0, node)
                      .ok());
      EXPECT_TRUE(
          system->SetRange(name, P("coord/cel/ra"), {0.0, 360.0}).ok());
      EXPECT_TRUE(system->SetRange(name, P("en"), {0.1, 2.4}).ok());
    }
    return system;
  }

  std::map<std::string, std::vector<engine::ItemPtr>> MakeItems(
      size_t count) {
    std::map<std::string, std::vector<engine::ItemPtr>> items;
    workload::PhotonGenConfig first;
    first.seed = 1;
    workload::PhotonGenConfig second;
    second.seed = 2;
    items["photons"] = workload::PhotonGenerator(first).Generate(count);
    items["photons2"] = workload::PhotonGenerator(second).Generate(count);
    return items;
  }
};

// Coincidence search: photon pairs from the two detectors with nearly
// equal energies.
constexpr const char* kCoincidence =
    "<pairs> { for $p in stream(\"photons\")/photons/photon "
    "for $q in stream(\"photons2\")/photons/photon "
    "where $p/en >= 2.2 and $q/en >= 2.2 and $p/en <= $q/en + 0.1 "
    "and $q/en <= $p/en + 0.1 "
    "return <pair> { $p/en } { $q/en } </pair> } </pairs>";

TEST_F(MultiInputSystemTest, CoincidenceQueryEndToEnd) {
  auto system = MakeSystem();
  Result<sharing::RegistrationResult> result = system->RegisterQuery(
      kCoincidence, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(result.ok()) << result.status();
  auto items = MakeItems(400);
  ASSERT_TRUE(system->Run(items).ok());

  // Reference: brute-force over the same inputs.
  size_t expected = 0;
  for (const engine::ItemPtr& p : items["photons"]) {
    double ep = predicate::ExtractValue(*p, P("en")).value().ToDouble();
    if (ep < 2.2) continue;
    for (const engine::ItemPtr& q : items["photons2"]) {
      double eq = predicate::ExtractValue(*q, P("en")).value().ToDouble();
      if (eq < 2.2) continue;
      if (ep <= eq + 0.1 + 1e-12 && eq <= ep + 0.1 + 1e-12) ++expected;
    }
  }
  EXPECT_EQ(result->sink->item_count(), expected);
  EXPECT_GT(expected, 0u);
}

TEST_F(MultiInputSystemTest, PerInputSharingStillApplies) {
  auto system = MakeSystem();
  // A single-input query over photons first; the multi-input query's
  // photons side must reuse its stream.
  const char* single =
      "<o> { for $p in stream(\"photons\")/photons/photon "
      "where $p/en >= 2.0 return <h> { $p/en } </h> } </o>";
  ASSERT_TRUE(
      system->RegisterQuery(single, 1, sharing::Strategy::kStreamSharing)
          .ok());
  Result<sharing::RegistrationResult> multi = system->RegisterQuery(
      kCoincidence, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(multi.ok()) << multi.status();
  EXPECT_GT(multi->plan.inputs[0].reused_stream, 1)
      << multi->plan.ToString();
}

TEST_F(MultiInputSystemTest, MatchesDataShipping) {
  auto shared_system = MakeSystem();
  Result<sharing::RegistrationResult> shared =
      shared_system->RegisterQuery(kCoincidence, 3,
                                   sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(shared.ok());
  auto items = MakeItems(300);
  ASSERT_TRUE(shared_system->Run(items).ok());

  auto shipping_system = MakeSystem();
  Result<sharing::RegistrationResult> shipped =
      shipping_system->RegisterQuery(kCoincidence, 3,
                                     sharing::Strategy::kDataShipping);
  ASSERT_TRUE(shipped.ok());
  ASSERT_TRUE(shipping_system->Run(items).ok());

  ASSERT_EQ(shared->sink->item_count(), shipped->sink->item_count());
  for (size_t i = 0; i < shared->sink->items().size(); ++i) {
    EXPECT_TRUE(
        shared->sink->items()[i]->Equals(*shipped->sink->items()[i]));
  }
}

}  // namespace
}  // namespace streamshare
