// Unit tests for Algorithm 2 (MatchProperties) and MatchAggregations,
// including a parameterized sweep of the window-compatibility rules
// Δ′ mod Δ = 0, Δ mod µ = 0, µ′ mod µ = 0.

#include <gtest/gtest.h>

#include "matching/match_aggregations.h"
#include "matching/match_properties.h"
#include "wxquery/analyzer.h"
#include "workload/paper_queries.h"

namespace streamshare::matching {
namespace {

using properties::AggregateFunc;
using properties::AggregationOp;
using properties::InputStreamProperties;
using properties::ProjectionOp;
using properties::SelectionOp;
using properties::UserDefinedOp;
using properties::WindowSpec;

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }
Decimal D(const char* text) { return Decimal::Parse(text).value(); }

predicate::AtomicPredicate Ge(const char* path, const char* constant) {
  return predicate::AtomicPredicate::Compare(
      P(path), predicate::ComparisonOp::kGe, D(constant));
}
predicate::AtomicPredicate Le(const char* path, const char* constant) {
  return predicate::AtomicPredicate::Compare(
      P(path), predicate::ComparisonOp::kLe, D(constant));
}

InputStreamProperties PropsOf(const char* query_text) {
  Result<wxquery::AnalyzedQuery> analyzed =
      wxquery::ParseAndAnalyze(query_text);
  EXPECT_TRUE(analyzed.ok()) << analyzed.status();
  return analyzed->props.inputs()[0];
}

TEST(MatchPropertiesTest, DifferentInputStreamsNeverMatch) {
  InputStreamProperties a;
  a.stream_name = "photons";
  InputStreamProperties b;
  b.stream_name = "neutrinos";
  EXPECT_FALSE(MatchProperties(a, b));
}

TEST(MatchPropertiesTest, OriginalStreamMatchesEverything) {
  InputStreamProperties original;
  original.stream_name = "photons";
  EXPECT_TRUE(MatchProperties(original, PropsOf(workload::kQuery1)));
  EXPECT_TRUE(MatchProperties(original, PropsOf(workload::kQuery3)));
}

TEST(MatchPropertiesTest, PaperQ1StreamServesQ2) {
  EXPECT_TRUE(MatchProperties(PropsOf(workload::kQuery1),
                              PropsOf(workload::kQuery2)));
  // Not the other way around: Q2's stream is narrower and lacks phc.
  EXPECT_FALSE(MatchProperties(PropsOf(workload::kQuery2),
                               PropsOf(workload::kQuery1)));
}

TEST(MatchPropertiesTest, Q1StreamServesQ3Aggregate) {
  // Q3 aggregates over the same sky box Q1 filters; Q1's stream carries
  // ra, dec, en, det_time — everything Q3 needs.
  EXPECT_TRUE(MatchProperties(PropsOf(workload::kQuery1),
                              PropsOf(workload::kQuery3)));
}

TEST(MatchPropertiesTest, Q3StreamServesQ4ButNotViceVersa) {
  EXPECT_TRUE(MatchProperties(PropsOf(workload::kQuery3),
                              PropsOf(workload::kQuery4)));
  // Q4's stream is filtered ($a >= 1.3) and coarser; Q3 needs unfiltered
  // finer windows.
  EXPECT_FALSE(MatchProperties(PropsOf(workload::kQuery4),
                               PropsOf(workload::kQuery3)));
}

TEST(MatchPropertiesTest, AggregateStreamCannotServePlainQuery) {
  EXPECT_FALSE(MatchProperties(PropsOf(workload::kQuery3),
                               PropsOf(workload::kQuery1)));
  EXPECT_FALSE(MatchProperties(PropsOf(workload::kQuery3),
                               PropsOf(workload::kQuery2)));
}

TEST(MatchPropertiesTest, SelectionContainmentDirection) {
  InputStreamProperties wide;
  wide.stream_name = "s";
  wide.operators.push_back(
      SelectionOp::Create({Ge("x", "0"), Le("x", "100")}).value());

  InputStreamProperties narrow;
  narrow.stream_name = "s";
  narrow.operators.push_back(
      SelectionOp::Create({Ge("x", "10"), Le("x", "20")}).value());

  EXPECT_TRUE(MatchProperties(wide, narrow));
  EXPECT_FALSE(MatchProperties(narrow, wide));
}

TEST(MatchPropertiesTest, SelectedStreamRejectsUnselectedSubscription) {
  InputStreamProperties selected;
  selected.stream_name = "s";
  selected.operators.push_back(SelectionOp::Create({Ge("x", "0")}).value());
  InputStreamProperties everything;
  everything.stream_name = "s";
  // The subscription needs the whole stream; a filtered one won't do.
  EXPECT_FALSE(MatchProperties(selected, everything));
  EXPECT_TRUE(MatchProperties(everything, selected));
}

TEST(MatchPropertiesTest, ProjectionCoverage) {
  InputStreamProperties projected;
  projected.stream_name = "s";
  ProjectionOp proj;
  proj.output = {P("coord/cel"), P("en")};
  proj.referenced = proj.output;
  projected.operators.push_back(proj);

  InputStreamProperties sub_covered;
  sub_covered.stream_name = "s";
  ProjectionOp need_covered;
  need_covered.referenced = {P("coord/cel/ra"), P("en")};
  need_covered.output = need_covered.referenced;
  sub_covered.operators.push_back(need_covered);
  EXPECT_TRUE(MatchProperties(projected, sub_covered));

  InputStreamProperties sub_missing;
  sub_missing.stream_name = "s";
  ProjectionOp need_missing;
  need_missing.referenced = {P("coord/det/dx")};
  need_missing.output = need_missing.referenced;
  sub_missing.operators.push_back(need_missing);
  EXPECT_FALSE(MatchProperties(projected, sub_missing));
}

TEST(MatchPropertiesTest, UserDefinedOperatorsRequireIdenticalInvocation) {
  InputStreamProperties stream;
  stream.stream_name = "s";
  stream.operators.push_back(UserDefinedOp{"blur", {"3", "fast"}});

  InputStreamProperties same = stream;
  EXPECT_TRUE(MatchProperties(stream, same));

  InputStreamProperties different_params;
  different_params.stream_name = "s";
  different_params.operators.push_back(UserDefinedOp{"blur", {"5", "fast"}});
  EXPECT_FALSE(MatchProperties(stream, different_params));

  InputStreamProperties different_name;
  different_name.stream_name = "s";
  different_name.operators.push_back(
      UserDefinedOp{"sharpen", {"3", "fast"}});
  EXPECT_FALSE(MatchProperties(stream, different_name));
}

TEST(MatchPropertiesTest, EdgeLocalVsCompleteOption) {
  // Derived bound x ≤ 3 (via y) implies x ≤ 5 only for the complete test.
  InputStreamProperties stream;
  stream.stream_name = "s";
  stream.operators.push_back(SelectionOp::Create({Le("x", "5")}).value());

  InputStreamProperties sub;
  sub.stream_name = "s";
  sub.operators.push_back(
      SelectionOp::Create(
          {predicate::AtomicPredicate::CompareVars(
               P("x"), predicate::ComparisonOp::kLe, P("y"), Decimal()),
           Le("y", "3")})
          .value());

  MatchOptions edge_local;
  EXPECT_FALSE(MatchProperties(stream, sub, edge_local));
  MatchOptions complete;
  complete.edge_local_predicates = false;
  EXPECT_TRUE(MatchProperties(stream, sub, complete));
}

TEST(ProjectionCoversTest, PrefixSemantics) {
  std::vector<xml::Path> output{P("coord/cel"), P("en")};
  EXPECT_TRUE(ProjectionCovers(output, {P("coord/cel/ra")}));
  EXPECT_TRUE(ProjectionCovers(output, {P("coord/cel"), P("en")}));
  EXPECT_FALSE(ProjectionCovers(output, {P("coord")}));
  EXPECT_FALSE(ProjectionCovers(output, {P("det_time")}));
  EXPECT_TRUE(ProjectionCovers(output, {}));
  EXPECT_FALSE(ProjectionCovers({}, {P("en")}));
}

// --- MatchAggregations ----------------------------------------------------

AggregationOp MakeAgg(AggregateFunc func, const char* element, int size,
                      int step,
                      std::vector<predicate::AtomicPredicate> pre = {},
                      std::vector<predicate::AtomicPredicate> filter = {}) {
  WindowSpec window =
      WindowSpec::Diff(P("det_time"), Decimal::FromInt(size),
                       Decimal::FromInt(step))
          .value();
  return AggregationOp::Create(func, P(element), window, std::move(pre),
                               std::move(filter))
      .value();
}

TEST(MatchAggregationsTest, PaperQ3Q4Windows) {
  AggregationOp q3 = MakeAgg(AggregateFunc::kAvg, "en", 20, 10,
                             {Ge("coord/cel/ra", "120.0")});
  predicate::AtomicPredicate filter = Ge("$agg", "1.3");
  filter.lhs = properties::AggregateValuePath();
  AggregationOp q4 = MakeAgg(AggregateFunc::kAvg, "en", 60, 40,
                             {Ge("coord/cel/ra", "120.0")}, {filter});
  EXPECT_TRUE(MatchAggregations(q3, q4));
  EXPECT_FALSE(MatchAggregations(q4, q3));  // filtered + coarser
}

TEST(MatchAggregationsTest, DifferentElementOrPreSelectionRejected) {
  AggregationOp en = MakeAgg(AggregateFunc::kAvg, "en", 20, 10);
  AggregationOp phc = MakeAgg(AggregateFunc::kAvg, "phc", 20, 10);
  EXPECT_FALSE(MatchAggregations(en, phc));

  AggregationOp with_pre = MakeAgg(AggregateFunc::kAvg, "en", 20, 10,
                                   {Ge("coord/cel/ra", "120.0")});
  EXPECT_FALSE(MatchAggregations(en, with_pre));
  EXPECT_FALSE(MatchAggregations(with_pre, en));
  // Pre-selection equality must be semantic, not syntactic.
  AggregationOp same_pre_reordered =
      MakeAgg(AggregateFunc::kAvg, "en", 40, 20,
              {Ge("coord/cel/ra", "120.0")});
  EXPECT_TRUE(MatchAggregations(with_pre, same_pre_reordered));
}

TEST(MatchAggregationsTest, AvgServesSumAndCount) {
  AggregationOp avg = MakeAgg(AggregateFunc::kAvg, "en", 20, 10);
  AggregationOp sum = MakeAgg(AggregateFunc::kSum, "en", 20, 10);
  AggregationOp count = MakeAgg(AggregateFunc::kCount, "en", 20, 10);
  AggregationOp min = MakeAgg(AggregateFunc::kMin, "en", 20, 10);
  EXPECT_TRUE(MatchAggregations(avg, sum));
  EXPECT_TRUE(MatchAggregations(avg, count));
  EXPECT_FALSE(MatchAggregations(avg, min));
  EXPECT_FALSE(MatchAggregations(sum, avg));  // sum alone can't make avg
  EXPECT_FALSE(MatchAggregations(count, sum));
}

TEST(MatchAggregationsTest, FilteredStreamRequiresIdenticalWindow) {
  predicate::AtomicPredicate filter;
  filter.lhs = properties::AggregateValuePath();
  filter.op = predicate::ComparisonOp::kGe;
  filter.constant = D("1.0");
  AggregationOp filtered =
      MakeAgg(AggregateFunc::kAvg, "en", 20, 10, {}, {filter});

  // Identical window + same filter: shareable.
  AggregationOp same = MakeAgg(AggregateFunc::kAvg, "en", 20, 10, {},
                               {filter});
  EXPECT_TRUE(MatchAggregations(filtered, same));

  // Identical window + stricter filter: shareable.
  predicate::AtomicPredicate stricter = filter;
  stricter.constant = D("1.5");
  AggregationOp strict_sub =
      MakeAgg(AggregateFunc::kAvg, "en", 20, 10, {}, {stricter});
  EXPECT_TRUE(MatchAggregations(filtered, strict_sub));

  // Identical window + weaker filter: not shareable.
  predicate::AtomicPredicate weaker = filter;
  weaker.constant = D("0.5");
  AggregationOp weak_sub =
      MakeAgg(AggregateFunc::kAvg, "en", 20, 10, {}, {weaker});
  EXPECT_FALSE(MatchAggregations(filtered, weak_sub));

  // Coarser window: never shareable from a filtered stream.
  AggregationOp coarser =
      MakeAgg(AggregateFunc::kAvg, "en", 40, 20, {}, {stricter});
  EXPECT_FALSE(MatchAggregations(filtered, coarser));
}

TEST(MatchAggregationsTest, CountVsDiffWindowsIncompatible) {
  AggregationOp diff = MakeAgg(AggregateFunc::kSum, "en", 20, 10);
  WindowSpec count_window = WindowSpec::Count(20, 10).value();
  AggregationOp count_agg =
      AggregationOp::Create(AggregateFunc::kSum, P("en"), count_window)
          .value();
  EXPECT_FALSE(MatchAggregations(diff, count_agg));
  EXPECT_FALSE(MatchAggregations(count_agg, diff));
}

TEST(MatchAggregationsTest, DifferentReferenceElementsIncompatible) {
  WindowSpec by_time =
      WindowSpec::Diff(P("det_time"), Decimal::FromInt(20)).value();
  WindowSpec by_energy =
      WindowSpec::Diff(P("en"), Decimal::FromInt(20)).value();
  AggregationOp a =
      AggregationOp::Create(AggregateFunc::kSum, P("en"), by_time).value();
  AggregationOp b =
      AggregationOp::Create(AggregateFunc::kSum, P("en"), by_energy)
          .value();
  EXPECT_FALSE(MatchAggregations(a, b));
}

// Parameterized sweep of the three divisibility rules.
struct WindowCase {
  int fine_size, fine_step, coarse_size, coarse_step;
  bool compatible;
};

class WindowCompatSweep : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowCompatSweep, DivisibilityRules) {
  const WindowCase& c = GetParam();
  WindowSpec fine = WindowSpec::Diff(P("t"), Decimal::FromInt(c.fine_size),
                                     Decimal::FromInt(c.fine_step))
                        .value();
  WindowSpec coarse =
      WindowSpec::Diff(P("t"), Decimal::FromInt(c.coarse_size),
                       Decimal::FromInt(c.coarse_step))
          .value();
  EXPECT_EQ(WindowsCompatible(fine, coarse), c.compatible)
      << "fine " << fine.ToString() << " coarse " << coarse.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Rules, WindowCompatSweep,
    ::testing::Values(
        WindowCase{20, 10, 60, 40, true},    // the paper's Q3/Q4 pair
        WindowCase{20, 10, 20, 10, true},    // identical
        WindowCase{20, 10, 40, 10, true},    // coarser size, same step
        WindowCase{20, 10, 60, 15, false},   // µ′ mod µ ≠ 0
        WindowCase{20, 10, 50, 40, false},   // Δ′ mod Δ ≠ 0
        WindowCase{20, 15, 60, 30, false},   // Δ mod µ ≠ 0 (no tiling)
        WindowCase{10, 10, 100, 50, true},   // tumbling fine windows
        WindowCase{10, 20, 100, 40, false},  // sampling fine (Δ mod µ ≠ 0)
        WindowCase{20, 10, 20, 40, true},    // sampling coarse is fine
        WindowCase{20, 10, 10, 10, false},   // finer than reused
        WindowCase{1, 1, 1000, 1, true}));   // extreme ratio

TEST(DecimalDividesTest, ExactDecimalArithmetic) {
  EXPECT_TRUE(DecimalDivides(D("0.5"), D("2.0")));
  EXPECT_TRUE(DecimalDivides(D("0.25"), D("1")));
  EXPECT_FALSE(DecimalDivides(D("0.3"), D("1")));
  EXPECT_FALSE(DecimalDivides(D("0"), D("1")));
  EXPECT_TRUE(DecimalDivides(D("7"), D("49")));
  EXPECT_FALSE(DecimalDivides(D("7"), D("50")));
}

}  // namespace
}  // namespace streamshare::matching
