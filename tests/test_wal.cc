// The durability plane's on-disk formats under deliberate damage. The
// WAL round-trips every record kind; then a recorded log is truncated
// at EVERY byte boundary and each record's CRC (and every payload byte)
// is bit-flipped, and recovery must hand back an exact prefix of the
// appended records or a decodable refusal — never a crash, a hang, or a
// silently divergent record. The checkpoint writer's fault seam
// (SaveCheckpointFaulted) proves the crash-atomicity half: a write that
// dies at any byte of the temp file leaves the previous checkpoint
// loadable and intact.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "serve/checkpoint.h"
#include "serve/wal.h"

namespace streamshare::serve {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "ss_wal_" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  ASSERT_EQ(std::fclose(f), 0);
}

std::string ReadBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.append(buf, n);
  }
  std::fclose(f);
  return bytes;
}

/// One record of every kind the daemon ever appends, with every LogEvent
/// field exercised somewhere.
std::vector<WalRecord> SampleRecords() {
  std::vector<WalRecord> records;

  LogEvent sub;
  sub.kind = LogEvent::Kind::kSubscribe;
  sub.at_items = 7;
  sub.query_text = "/site/detector[energy > 3]/photon";
  sub.vq = 3;
  sub.strategy = 2;
  records.push_back(WalRecord::Event(sub));

  records.push_back(WalRecord::Feed(13));

  LogEvent fail;
  fail.kind = LogEvent::Kind::kFailPeer;
  fail.at_items = 13;
  fail.peer = 4;
  records.push_back(WalRecord::Event(fail));

  LogEvent cut;
  cut.kind = LogEvent::Kind::kCutLink;
  cut.at_items = 20;
  cut.link_a = 0;
  cut.link_b = 2;
  records.push_back(WalRecord::Event(cut));

  LogEvent reopt;
  reopt.kind = LogEvent::Kind::kReoptimize;
  reopt.at_items = 26;
  reopt.max_migrations = 5;
  records.push_back(WalRecord::Event(reopt));

  LogEvent unsub;
  unsub.kind = LogEvent::Kind::kUnsubscribe;
  unsub.at_items = 31;
  unsub.query_id = 1;
  records.push_back(WalRecord::Event(unsub));

  records.push_back(WalRecord::Feed(40));
  return records;
}

void ExpectSameRecord(const WalRecord& got, const WalRecord& want,
                      size_t index) {
  SCOPED_TRACE("record " + std::to_string(index));
  ASSERT_EQ(got.kind, want.kind);
  if (want.kind == WalRecord::Kind::kFeed) {
    EXPECT_EQ(got.items_fed, want.items_fed);
    return;
  }
  EXPECT_EQ(got.event.kind, want.event.kind);
  EXPECT_EQ(got.event.at_items, want.event.at_items);
  EXPECT_EQ(got.event.query_text, want.event.query_text);
  EXPECT_EQ(got.event.vq, want.event.vq);
  EXPECT_EQ(got.event.strategy, want.event.strategy);
  EXPECT_EQ(got.event.query_id, want.event.query_id);
  EXPECT_EQ(got.event.peer, want.event.peer);
  EXPECT_EQ(got.event.link_a, want.event.link_a);
  EXPECT_EQ(got.event.link_b, want.event.link_b);
  EXPECT_EQ(got.event.max_migrations, want.event.max_migrations);
}

/// Writes the sample records through the real writer and returns the raw
/// file image plus the record-boundary offsets (first boundary is the
/// header end).
std::string RecordedLog(const std::string& path,
                        const std::vector<WalRecord>& records,
                        std::vector<size_t>* boundaries) {
  WalHeader header;
  header.scenario_fingerprint = 0x5ca1ab1eULL;
  header.epoch = 3;
  header.base_generation = 2;
  auto wal = WriteAheadLog::Create(path, header);
  EXPECT_TRUE(wal.ok()) << wal.status().ToString();
  std::vector<size_t> cuts;
  std::string image = ReadBytes(path);
  cuts.push_back(image.size());  // header length
  for (const auto& record : records) {
    EXPECT_TRUE(wal->Append(record).ok());
    cuts.push_back(cuts.back() + EncodeWalRecord(record).size());
  }
  wal->Close();
  if (boundaries != nullptr) *boundaries = cuts;
  return ReadBytes(path);
}

TEST(Crc32, MatchesTheIsoHdlcCheckValue) {
  // The standard check value for CRC-32/ISO-HDLC (zlib's crc32).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Sensitivity: one flipped bit changes the sum.
  EXPECT_NE(Crc32("123456789"), Crc32("123456788"));
}

TEST(Wal, RoundTripsEveryRecordKind) {
  const std::string path = TestPath("roundtrip");
  const std::vector<WalRecord> records = SampleRecords();
  std::vector<size_t> boundaries;
  const std::string image = RecordedLog(path, records, &boundaries);

  auto recovered = RecoverWal(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->header.scenario_fingerprint, 0x5ca1ab1eULL);
  EXPECT_EQ(recovered->header.epoch, 3u);
  EXPECT_EQ(recovered->header.base_generation, 2u);
  EXPECT_FALSE(recovered->torn_tail);
  EXPECT_FALSE(recovered->torn_header);
  EXPECT_EQ(recovered->valid_bytes, image.size());
  ASSERT_EQ(recovered->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ExpectSameRecord(recovered->records[i], records[i], i);
  }
  std::remove(path.c_str());
}

TEST(Wal, MissingFileIsNotFound) {
  auto recovered = RecoverWal(TestPath("never_written"));
  EXPECT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsNotFound());
}

TEST(Wal, ForeignFileIsADecodableParseError) {
  const std::string path = TestPath("foreign");
  WriteBytes(path, "definitely not a write-ahead log, much longer "
                   "than one header");
  auto recovered = RecoverWal(path);
  EXPECT_FALSE(recovered.ok());
  EXPECT_TRUE(recovered.status().IsParseError());
  std::remove(path.c_str());
}

// The tentpole's table test: cut the recorded log at EVERY byte
// boundary. Recovery must return the exact record prefix that fits
// below the cut, flag the remainder as a torn tail (or a torn header
// when the cut lands inside the header), and never error — a truncation
// of a real log is a normal crash outcome, not a foreign file.
TEST(Wal, TruncationAtEveryByteRecoversAnExactPrefix) {
  const std::string path = TestPath("torn_src");
  const std::vector<WalRecord> records = SampleRecords();
  std::vector<size_t> boundaries;
  const std::string image = RecordedLog(path, records, &boundaries);
  const size_t header_len = boundaries[0];
  const std::string cut_path = TestPath("torn_cut");

  for (size_t cut = 0; cut <= image.size(); ++cut) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    WriteBytes(cut_path, image.substr(0, cut));
    auto recovered = RecoverWal(cut_path);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

    if (cut < header_len) {
      // Crash during Create: no usable state, decodably so.
      EXPECT_TRUE(recovered->torn_header);
      EXPECT_TRUE(recovered->records.empty());
      continue;
    }
    EXPECT_FALSE(recovered->torn_header);

    // The longest record prefix whose frames fit wholly below the cut.
    size_t fit = 0;
    while (fit < records.size() && boundaries[fit + 1] <= cut) ++fit;
    ASSERT_EQ(recovered->records.size(), fit);
    for (size_t i = 0; i < fit; ++i) {
      ExpectSameRecord(recovered->records[i], records[i], i);
    }
    EXPECT_EQ(recovered->valid_bytes, boundaries[fit]);
    EXPECT_EQ(recovered->torn_tail, cut != boundaries[fit]);
    EXPECT_EQ(recovered->torn_bytes, cut - boundaries[fit]);
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

// Bit-flip every bit of every record's stored CRC: the scan must stop
// exactly at the damaged record, keeping the intact prefix.
TEST(Wal, CrcBitFlipsStopTheScanAtTheDamagedRecord) {
  const std::string path = TestPath("crc_src");
  const std::vector<WalRecord> records = SampleRecords();
  std::vector<size_t> boundaries;
  const std::string image = RecordedLog(path, records, &boundaries);
  const std::string flip_path = TestPath("crc_flip");

  for (size_t r = 0; r < records.size(); ++r) {
    // The 4-byte CRC field sits after the 4-byte length prefix.
    const size_t crc_offset = boundaries[r] + 4;
    for (int bit = 0; bit < 32; ++bit) {
      SCOPED_TRACE("record " + std::to_string(r) + " crc bit " +
                   std::to_string(bit));
      std::string damaged = image;
      damaged[crc_offset + bit / 8] ^= static_cast<char>(1 << (bit % 8));
      WriteBytes(flip_path, damaged);
      auto recovered = RecoverWal(flip_path);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_FALSE(recovered->torn_header);
      ASSERT_EQ(recovered->records.size(), r);
      for (size_t i = 0; i < r; ++i) {
        ExpectSameRecord(recovered->records[i], records[i], i);
      }
      EXPECT_TRUE(recovered->torn_tail);
      EXPECT_EQ(recovered->valid_bytes, boundaries[r]);
    }
  }
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

// Payload corruption (not just the CRC field) is caught by the CRC: flip
// one bit in every payload byte of every record.
TEST(Wal, PayloadBitFlipsAreCaughtByTheCrc) {
  const std::string path = TestPath("payload_src");
  const std::vector<WalRecord> records = SampleRecords();
  std::vector<size_t> boundaries;
  const std::string image = RecordedLog(path, records, &boundaries);
  const std::string flip_path = TestPath("payload_flip");

  for (size_t r = 0; r < records.size(); ++r) {
    const size_t payload_begin = boundaries[r] + 8;
    for (size_t off = payload_begin; off < boundaries[r + 1]; ++off) {
      SCOPED_TRACE("record " + std::to_string(r) + " payload byte " +
                   std::to_string(off - payload_begin));
      std::string damaged = image;
      damaged[off] ^= 0x40;
      WriteBytes(flip_path, damaged);
      auto recovered = RecoverWal(flip_path);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      ASSERT_EQ(recovered->records.size(), r);
      EXPECT_TRUE(recovered->torn_tail);
      EXPECT_EQ(recovered->valid_bytes, boundaries[r]);
    }
  }
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

// A bit-flip inside the header's own CRC (or fields) is a torn header:
// no usable records, but still a recovery outcome, not an error.
TEST(Wal, HeaderBitFlipsAreATornHeaderNotAnError) {
  const std::string path = TestPath("header_src");
  std::vector<size_t> boundaries;
  const std::string image = RecordedLog(path, SampleRecords(), &boundaries);
  const size_t header_len = boundaries[0];
  const std::string flip_path = TestPath("header_flip");

  // Skip the 8-byte magic — damaging it is the foreign-file case tested
  // above; every other header byte must come back as torn_header.
  for (size_t off = 8; off < header_len; ++off) {
    SCOPED_TRACE("header byte " + std::to_string(off));
    std::string damaged = image;
    damaged[off] ^= 0x10;
    WriteBytes(flip_path, damaged);
    auto recovered = RecoverWal(flip_path);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(recovered->torn_header);
    EXPECT_TRUE(recovered->records.empty());
  }
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

// Create truncates an existing log: a stale predecessor never leaks
// records into the new epoch's scan.
TEST(Wal, CreateDiscardsAPreviousLog)
{
  const std::string path = TestPath("recreate");
  RecordedLog(path, SampleRecords(), nullptr);

  WalHeader header;
  header.scenario_fingerprint = 9;
  header.epoch = 8;
  header.base_generation = 7;
  auto wal = WriteAheadLog::Create(path, header);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ASSERT_TRUE(wal->Append(WalRecord::Feed(99)).ok());
  EXPECT_EQ(wal->counters().appends, 1u);
  EXPECT_GT(wal->counters().bytes, 0u);
  wal->Close();

  auto recovered = RecoverWal(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->header.epoch, 8u);
  EXPECT_EQ(recovered->header.base_generation, 7u);
  ASSERT_EQ(recovered->records.size(), 1u);
  EXPECT_EQ(recovered->records[0].kind, WalRecord::Kind::kFeed);
  EXPECT_EQ(recovered->records[0].items_fed, 99u);
  std::remove(path.c_str());
}

Checkpoint SampleCheckpoint(uint64_t generation, uint64_t items_fed) {
  Checkpoint checkpoint;
  checkpoint.scenario_fingerprint = 0xfeedULL;
  checkpoint.epoch = generation;
  checkpoint.generation = generation;
  checkpoint.items_fed = items_fed;
  for (const auto& record : SampleRecords()) {
    if (record.kind == WalRecord::Kind::kEvent) {
      checkpoint.events.push_back(record.event);
    }
  }
  DeliverySnapshot delivery;
  delivery.query_id = 0;
  delivery.items = items_fed;
  delivery.content_hash = 0x1234 + generation;
  checkpoint.deliveries.push_back(delivery);
  return checkpoint;
}

void ExpectSameCheckpoint(const Checkpoint& got, const Checkpoint& want) {
  EXPECT_EQ(got.scenario_fingerprint, want.scenario_fingerprint);
  EXPECT_EQ(got.epoch, want.epoch);
  EXPECT_EQ(got.generation, want.generation);
  EXPECT_EQ(got.items_fed, want.items_fed);
  ASSERT_EQ(got.events.size(), want.events.size());
  for (size_t i = 0; i < want.events.size(); ++i) {
    ExpectSameRecord(WalRecord::Event(got.events[i]),
                     WalRecord::Event(want.events[i]), i);
  }
  ASSERT_EQ(got.deliveries.size(), want.deliveries.size());
  for (size_t i = 0; i < want.deliveries.size(); ++i) {
    EXPECT_EQ(got.deliveries[i].query_id, want.deliveries[i].query_id);
    EXPECT_EQ(got.deliveries[i].items, want.deliveries[i].items);
    EXPECT_EQ(got.deliveries[i].content_hash,
              want.deliveries[i].content_hash);
  }
}

// The crash-atomicity satellite: a checkpoint write that dies after ANY
// number of temp-file bytes leaves the previous checkpoint loadable and
// byte-identical. The fault seam sweeps every prefix length of the new
// image; the old image must survive each one.
TEST(Checkpoint, AFaultedSaveNeverCorruptsThePreviousCheckpoint) {
  const std::string path = TestPath("ckpt_atomic");
  const Checkpoint previous = SampleCheckpoint(/*generation=*/3,
                                               /*items_fed=*/26);
  const Checkpoint next = SampleCheckpoint(/*generation=*/4,
                                           /*items_fed=*/52);
  ASSERT_TRUE(SaveCheckpoint(path, previous).ok());

  size_t faulted_writes = 0;
  for (size_t fail_after = 0;; ++fail_after) {
    Status faulted = SaveCheckpointFaulted(path, next, fail_after);
    if (faulted.IsInvalidArgument()) break;  // past the encoded size
    ASSERT_FALSE(faulted.ok()) << "fault seam ignored at byte "
                               << fail_after;
    ++faulted_writes;
    auto loaded = LoadCheckpoint(path);
    ASSERT_TRUE(loaded.ok())
        << "previous checkpoint unreadable after a crash at temp byte "
        << fail_after << ": " << loaded.status().ToString();
    ExpectSameCheckpoint(*loaded, previous);
  }
  EXPECT_GT(faulted_writes, 36u);  // the sweep really covered the image

  // And after all that abuse a clean save still replaces it whole.
  ASSERT_TRUE(SaveCheckpoint(path, next).ok());
  auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectSameCheckpoint(*loaded, next);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace streamshare::serve
