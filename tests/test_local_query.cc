// Tests for the local (single-process) WXQuery evaluator, including its
// role as the reference for the distributed execution path.

#include "engine/local_query.h"

#include <gtest/gtest.h>

#include "sharing/system.h"
#include "workload/paper_queries.h"
#include "workload/photon_gen.h"
#include "xml/xml_writer.h"

namespace streamshare::engine {
namespace {

TEST(LocalQueryTest, FilterOverDocument) {
  const char* document =
      "<photons>"
      "<photon><coord><cel><ra>125.0</ra><dec>-45.0</dec></cel></coord>"
      "<phc>3</phc><en>1.5</en><det_time>1.0</det_time></photon>"
      "<photon><coord><cel><ra>200.0</ra><dec>-45.0</dec></cel></coord>"
      "<phc>4</phc><en>1.5</en><det_time>2.0</det_time></photon>"
      "</photons>";
  Result<LocalQueryResult> result =
      RunLocalQuery(workload::kQuery1, document);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->wrapper_tag, "photons");
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0]->name(), "vela");
  EXPECT_EQ(result->items[0]->FirstChild("ra")->text(), "125.0");
  // The wrapped document form.
  EXPECT_EQ(result->ToDocument().substr(0, 9), "<photons>");
}

TEST(LocalQueryTest, AggregateOverDocument) {
  std::string document = "<photons>";
  for (int i = 0; i < 40; ++i) {
    document += "<photon><coord><cel><ra>125.0</ra><dec>-45.0</dec></cel>"
                "</coord><en>2.0</en><det_time>" +
                std::to_string(i) + ".0</det_time></photon>";
  }
  document += "</photons>";
  Result<LocalQueryResult> result =
      RunLocalQuery(workload::kQuery3, document);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_GT(result->items.size(), 1u);
  EXPECT_EQ(result->items[0]->name(), "avg_en");
  // Constant energy 2.0: every window average is 2.
  EXPECT_EQ(Decimal::Parse(result->items[0]->text()).value(),
            Decimal::FromInt(2));
}

TEST(LocalQueryTest, RootMismatchRejected) {
  Status status =
      RunLocalQuery(workload::kQuery1, "<neutrinos></neutrinos>")
          .status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
}

TEST(LocalQueryTest, ParseErrorsPropagate) {
  EXPECT_TRUE(RunLocalQuery("nonsense", "<photons/>")
                  .status()
                  .IsParseError());
  EXPECT_TRUE(RunLocalQuery(workload::kQuery1, "<photons><broken")
                  .status()
                  .IsParseError());
}

TEST(LocalQueryTest, MatchesDistributedExecution) {
  // The local evaluator is the semantic reference: the distributed system
  // must produce the same items for the same query and input.
  workload::PhotonGenConfig gen_config;
  gen_config.hot_regions = {{120.0, 138.0, -49.0, -40.0}};
  gen_config.hot_weights = {3.0};
  workload::PhotonGenerator generator(gen_config);
  std::vector<ItemPtr> photons = generator.Generate(1000);

  Result<wxquery::AnalyzedQuery> query =
      wxquery::ParseAndAnalyze(workload::kQuery2);
  ASSERT_TRUE(query.ok());
  Result<LocalQueryResult> local = RunLocalQuery(*query, photons);
  ASSERT_TRUE(local.ok()) << local.status();

  sharing::SystemConfig config;
  config.keep_results = true;
  sharing::StreamShareSystem system(network::Topology::ExtendedExample(),
                                    config);
  ASSERT_TRUE(system
                  .RegisterStream("photons",
                                  workload::PhotonGenerator::Schema(),
                                  100.0, 4)
                  .ok());
  Result<sharing::RegistrationResult> registered = system.RegisterQuery(
      workload::kQuery2, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(registered.ok()) << registered.status();
  std::map<std::string, std::vector<ItemPtr>> items;
  items["photons"] = photons;
  ASSERT_TRUE(system.Run(items).ok());

  ASSERT_GT(local->items.size(), 0u);
  ASSERT_EQ(local->items.size(), registered->sink->item_count());
  for (size_t i = 0; i < local->items.size(); ++i) {
    EXPECT_TRUE(local->items[i]->Equals(*registered->sink->items()[i]))
        << "item " << i;
  }
}

TEST(LocalQueryTest, WindowContentsLocally) {
  const char* query =
      "<out> { for $w in stream(\"s\")/s/m |count 2| "
      "return <pair> { $w/x } </pair> } </out>";
  const char* document =
      "<s><m><x>1</x></m><m><x>2</x></m><m><x>3</x></m></s>";
  Result<LocalQueryResult> result = RunLocalQuery(query, document);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->items.size(), 2u);
  EXPECT_EQ(xml::WriteCompact(*result->items[0]),
            "<pair><x>1</x><x>2</x></pair>");
  EXPECT_EQ(xml::WriteCompact(*result->items[1]),
            "<pair><x>3</x></pair>");
}

}  // namespace
}  // namespace streamshare::engine
