// PeerHealth state-machine tests: the kAlive → kSuspect → kDead lattice,
// terminal death, link cuts (explicit and via MarkDead), and the
// aggregate counters routing relies on.

#include <gtest/gtest.h>

#include "network/health.h"
#include "network/topology.h"

namespace streamshare::network {
namespace {

class PeerHealthTest : public ::testing::Test {
 protected:
  PeerHealthTest()
      : topology_(Topology::ExtendedExample()), health_(&topology_) {}

  /// Index of the first link incident to `peer`.
  LinkId IncidentLink(NodeId peer) {
    for (size_t link = 0; link < topology_.link_count(); ++link) {
      const Link& l = topology_.link(link);
      if (l.a == peer || l.b == peer) return static_cast<LinkId>(link);
    }
    ADD_FAILURE() << "peer " << peer << " has no links";
    return 0;
  }

  Topology topology_;
  PeerHealth health_;
};

TEST_F(PeerHealthTest, StartsAllHealthy) {
  EXPECT_TRUE(health_.AllHealthy());
  EXPECT_EQ(health_.dead_peer_count(), 0u);
  EXPECT_EQ(health_.suspect_peer_count(), 0u);
  EXPECT_EQ(health_.down_link_count(), 0u);
  for (size_t peer = 0; peer < topology_.peer_count(); ++peer) {
    EXPECT_TRUE(health_.IsAlive(static_cast<NodeId>(peer)));
    EXPECT_TRUE(health_.RoutesThrough(static_cast<NodeId>(peer)));
    EXPECT_EQ(health_.reason(static_cast<NodeId>(peer)), "");
  }
  for (size_t link = 0; link < topology_.link_count(); ++link) {
    EXPECT_TRUE(health_.LinkUp(static_cast<LinkId>(link)));
  }
}

TEST_F(PeerHealthTest, SuspectIsAdvisory) {
  EXPECT_TRUE(health_.MarkSuspect(3, "credit deadline"));
  EXPECT_EQ(health_.status(3), PeerStatus::kSuspect);
  EXPECT_FALSE(health_.IsAlive(3));
  // Advisory: a suspected peer still routes traffic.
  EXPECT_TRUE(health_.RoutesThrough(3));
  EXPECT_EQ(health_.reason(3), "credit deadline");
  EXPECT_EQ(health_.suspect_peer_count(), 1u);
  EXPECT_FALSE(health_.AllHealthy());
  // Links stay up — only confirmation cuts them.
  EXPECT_EQ(health_.down_link_count(), 0u);
}

TEST_F(PeerHealthTest, SuspectKeepsFirstReason) {
  EXPECT_TRUE(health_.MarkSuspect(3, "first"));
  EXPECT_FALSE(health_.MarkSuspect(3, "second"));
  EXPECT_EQ(health_.reason(3), "first");
  EXPECT_EQ(health_.suspect_peer_count(), 1u);
}

TEST_F(PeerHealthTest, MarkAliveWithdrawsSuspicion) {
  ASSERT_TRUE(health_.MarkSuspect(3, "deadline"));
  EXPECT_TRUE(health_.MarkAlive(3));
  EXPECT_TRUE(health_.IsAlive(3));
  EXPECT_EQ(health_.reason(3), "");
  EXPECT_TRUE(health_.AllHealthy());
  // Re-suspecting after recovery records the fresh reason.
  EXPECT_TRUE(health_.MarkSuspect(3, "again"));
  EXPECT_EQ(health_.reason(3), "again");
}

TEST_F(PeerHealthTest, MarkAliveOnAlivePeerIsNoop) {
  EXPECT_FALSE(health_.MarkAlive(2));
  EXPECT_TRUE(health_.IsAlive(2));
}

TEST_F(PeerHealthTest, DeadCutsIncidentLinks) {
  size_t incident = 0;
  for (size_t link = 0; link < topology_.link_count(); ++link) {
    const Link& l = topology_.link(link);
    if (l.a == 4 || l.b == 4) ++incident;
  }
  ASSERT_GT(incident, 0u);

  EXPECT_TRUE(health_.MarkDead(4, "operator"));
  EXPECT_TRUE(health_.IsDead(4));
  EXPECT_FALSE(health_.RoutesThrough(4));
  EXPECT_EQ(health_.reason(4), "operator");
  EXPECT_EQ(health_.dead_peer_count(), 1u);
  EXPECT_EQ(health_.down_link_count(), incident);
  for (size_t link = 0; link < topology_.link_count(); ++link) {
    const Link& l = topology_.link(link);
    EXPECT_EQ(health_.LinkUp(static_cast<LinkId>(link)),
              l.a != 4 && l.b != 4);
  }
}

TEST_F(PeerHealthTest, DeadIsTerminal) {
  ASSERT_TRUE(health_.MarkDead(4, "operator"));
  EXPECT_FALSE(health_.MarkDead(4, "again"));
  EXPECT_FALSE(health_.MarkAlive(4));
  EXPECT_FALSE(health_.MarkSuspect(4, "too late"));
  EXPECT_TRUE(health_.IsDead(4));
  EXPECT_EQ(health_.reason(4), "operator");
  EXPECT_EQ(health_.dead_peer_count(), 1u);
}

TEST_F(PeerHealthTest, SuspectEscalatesToDead) {
  ASSERT_TRUE(health_.MarkSuspect(5, "deadline"));
  EXPECT_TRUE(health_.MarkDead(5, "confirmed"));
  EXPECT_TRUE(health_.IsDead(5));
  EXPECT_EQ(health_.reason(5), "confirmed");
  // The suspicion converted; it must not linger in the counter.
  EXPECT_EQ(health_.suspect_peer_count(), 0u);
  EXPECT_EQ(health_.dead_peer_count(), 1u);
}

TEST_F(PeerHealthTest, CutLinkIsIdempotent) {
  LinkId link = IncidentLink(2);
  EXPECT_TRUE(health_.CutLink(link));
  EXPECT_FALSE(health_.LinkUp(link));
  EXPECT_EQ(health_.down_link_count(), 1u);
  EXPECT_FALSE(health_.CutLink(link));
  EXPECT_EQ(health_.down_link_count(), 1u);
  // Both endpoints stay alive — a cut link is not a dead peer.
  const Link& l = topology_.link(link);
  EXPECT_TRUE(health_.IsAlive(l.a));
  EXPECT_TRUE(health_.IsAlive(l.b));
}

TEST_F(PeerHealthTest, MarkDeadAfterManualCutCountsLinksOnce) {
  LinkId link = IncidentLink(4);
  ASSERT_TRUE(health_.CutLink(link));
  size_t incident = 0;
  for (size_t i = 0; i < topology_.link_count(); ++i) {
    const Link& l = topology_.link(i);
    if (l.a == 4 || l.b == 4) ++incident;
  }
  ASSERT_TRUE(health_.MarkDead(4, "operator"));
  // The pre-cut link must not be double-counted.
  EXPECT_EQ(health_.down_link_count(), incident);
}

}  // namespace
}  // namespace streamshare::network
