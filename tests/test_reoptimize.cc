// Background re-optimization (the A6 registration-order gap): a
// Reoptimize pass migrates installed queries onto strictly cheaper plans
// via the epoch-safe stream handover, and the pass is safe to run from a
// background loop — it reaches a fixed point (a second pass migrates
// nothing), it never counts on a stream its own parking would retire,
// and a migration changes which streams carry a query's data, never the
// data the query delivers.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sharing/system.h"
#include "workload/photon_gen.h"
#include "workload/scenario.h"

namespace streamshare {
namespace {

using sharing::RegistrationResult;
using sharing::StreamShareSystem;
using sharing::SystemConfig;

/// The adversarial registration order from experiment A6: reversing the
/// scenario's query order makes early queries plant streams far from
/// where later, better donors end up, so a re-optimization pass has real
/// migrations to find.
std::unique_ptr<StreamShareSystem> BuildReversedGrid(SystemConfig config) {
  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/17, /*query_count=*/40);
  std::reverse(scenario.queries.begin(), scenario.queries.end());
  auto built = workload::BuildSystem(scenario, config);
  EXPECT_TRUE(built.ok()) << built.status();
  std::unique_ptr<StreamShareSystem> system = std::move(*built);
  for (const workload::QuerySpec& query : scenario.queries) {
    auto result = system->RegisterQuery(query.text, query.target,
                                        sharing::Strategy::kStreamSharing);
    EXPECT_TRUE(result.ok()) << result.status();
  }
  return system;
}

TEST(Reoptimize, MigratesBadRegistrationOrderAndReachesFixedPoint) {
  std::unique_ptr<StreamShareSystem> system =
      BuildReversedGrid(SystemConfig());

  auto first = system->Reoptimize();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->examined, 40);
  EXPECT_GT(first->migrated, 0);
  EXPECT_EQ(first->torn_down, 0);
  EXPECT_LT(first->cost_after, first->cost_before);

  // A second pass over the migrated population finds nothing: the pass
  // converges instead of re-migrating the same queries forever (which a
  // background loop would amplify into endless window churn).
  auto second = system->Reoptimize();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->examined, 40);
  EXPECT_EQ(second->migrated, 0);
  EXPECT_EQ(second->lost_windows, 0u);
  EXPECT_EQ(second->cost_after, second->cost_before);
  EXPECT_EQ(second->cost_before, first->cost_after);
}

TEST(Reoptimize, MigrationIsGapNotGarbage) {
  // Migration rebuilds a query's window operators in resume mode, just
  // like failure recovery: windows straddling the handover never open,
  // output restarts at the next boundary. So the reference for a
  // migrated query is a resume-mode run of the same workload (exactly
  // the recovery oracle's restricted reference), while an untouched
  // query must still match a plain run bit for bit. Neither may ever
  // see garbage — only the bounded boundary gap.
  SystemConfig config;
  config.keep_results = true;
  std::unique_ptr<StreamShareSystem> migrated = BuildReversedGrid(config);
  std::unique_ptr<StreamShareSystem> untouched = BuildReversedGrid(config);
  SystemConfig resume_config = config;
  resume_config.resume_mode = true;
  std::unique_ptr<StreamShareSystem> resumed =
      BuildReversedGrid(resume_config);

  std::vector<std::string> plans_before;
  for (const RegistrationResult& reg : migrated->registrations()) {
    plans_before.push_back(reg.plan.ToString());
  }
  auto report = migrated->Reoptimize();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GT(report->migrated, 0);
  // No items were fed yet, so no open windows existed to destroy.
  EXPECT_EQ(report->lost_windows, 0u);

  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/17, /*query_count=*/40);
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  for (const workload::StreamSpec& stream : scenario.streams) {
    workload::PhotonGenerator generator(stream.gen);
    items[stream.name] = generator.Generate(600);
  }
  for (auto* system : {migrated.get(), untouched.get(), resumed.get()}) {
    for (const RegistrationResult& reg : system->registrations()) {
      if (reg.sink != nullptr) reg.sink->EnableContentHash();
    }
    ASSERT_TRUE(system->Run(items).ok());
  }

  const auto& migrated_regs = migrated->registrations();
  const auto& untouched_regs = untouched->registrations();
  const auto& resumed_regs = resumed->registrations();
  ASSERT_EQ(migrated_regs.size(), untouched_regs.size());
  ASSERT_EQ(migrated_regs.size(), resumed_regs.size());
  int moved = 0;
  uint64_t total = 0;
  for (size_t q = 0; q < migrated_regs.size(); ++q) {
    const bool was_migrated =
        migrated_regs[q].plan.ToString() != plans_before[q];
    SCOPED_TRACE("query " + std::to_string(q) +
                 (was_migrated ? " (migrated)" : " (untouched)"));
    const engine::SinkOp* reference = was_migrated
                                          ? resumed_regs[q].sink
                                          : untouched_regs[q].sink;
    ASSERT_NE(migrated_regs[q].sink, nullptr);
    ASSERT_NE(reference, nullptr);
    EXPECT_EQ(migrated_regs[q].sink->item_count(),
              reference->item_count());
    EXPECT_EQ(migrated_regs[q].sink->total_bytes(),
              reference->total_bytes());
    EXPECT_EQ(migrated_regs[q].sink->content_hash(),
              reference->content_hash());
    moved += was_migrated ? 1 : 0;
    total += migrated_regs[q].sink->item_count();
  }
  EXPECT_EQ(moved, report->migrated);
  EXPECT_GT(total, 0u) << "workload delivered nothing; identity vacuous";
}

TEST(Reoptimize, MaxMigrationsCapsThePass) {
  std::unique_ptr<StreamShareSystem> system =
      BuildReversedGrid(SystemConfig());
  auto capped = system->Reoptimize(/*max_migrations=*/3);
  ASSERT_TRUE(capped.ok()) << capped.status();
  EXPECT_EQ(capped->migrated, 3);
  // The pass stops as soon as the cap is reached instead of estimating
  // the rest of the population.
  EXPECT_LT(capped->examined, 40);

  // The remaining improvements are still there for the next pass.
  auto rest = system->Reoptimize();
  ASSERT_TRUE(rest.ok()) << rest.status();
  EXPECT_GT(rest->migrated, 0);
}

TEST(Reoptimize, SingleQueryPopulationIsANoOp) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/1);
  auto built = workload::BuildSystem(scenario, SystemConfig());
  ASSERT_TRUE(built.ok()) << built.status();
  auto result = (*built)->RegisterQuery(scenario.queries[0].text,
                                        scenario.queries[0].target,
                                        sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->accepted);

  auto report = (*built)->Reoptimize();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->examined, 1);
  EXPECT_EQ(report->migrated, 0);
  EXPECT_EQ(report->lost_windows, 0u);
  EXPECT_EQ(report->cost_after, report->cost_before);
}

TEST(Reoptimize, LiveTrafficSurvivesAMidStreamPass) {
  SystemConfig config;
  config.keep_results = true;
  std::unique_ptr<StreamShareSystem> system = BuildReversedGrid(config);

  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/17, /*query_count=*/40);
  std::map<std::string, std::vector<engine::ItemPtr>> first_half;
  std::map<std::string, std::vector<engine::ItemPtr>> second_half;
  for (const workload::StreamSpec& stream : scenario.streams) {
    workload::PhotonGenerator generator(stream.gen);
    std::vector<engine::ItemPtr> items = generator.Generate(600);
    first_half[stream.name].assign(items.begin(), items.begin() + 300);
    second_half[stream.name].assign(items.begin() + 300, items.end());
  }
  ASSERT_TRUE(system->Feed(first_half).ok());
  std::vector<uint64_t> before;
  for (const RegistrationResult& reg : system->registrations()) {
    before.push_back(reg.sink->item_count());
  }

  // Gap, not garbage: the pass may destroy open windows (counted), but
  // every migrated query resumes delivering from the next boundary.
  auto report = system->Reoptimize();
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GT(report->migrated, 0);
  EXPECT_EQ(report->torn_down, 0);

  ASSERT_TRUE(system->Feed(second_half).ok());
  ASSERT_TRUE(system->Shutdown().ok());
  const auto& regs = system->registrations();
  uint64_t grew = 0;
  for (size_t q = 0; q < regs.size(); ++q) {
    EXPECT_GE(regs[q].sink->item_count(), before[q]) << "query " << q;
    if (regs[q].sink->item_count() > before[q]) ++grew;
  }
  EXPECT_GT(grew, 0u) << "nothing delivered after the pass";
}

}  // namespace
}  // namespace streamshare
