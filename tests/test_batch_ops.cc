// Batch-vs-item equivalence: every operator's PushBatch must be
// observationally identical to pushing the same items one at a time —
// same emitted items byte-for-byte, same sink counts/bytes/hashes, same
// link traffic, same billed work, and the same error Status (with the
// prefix emitted before the failure delivered downstream). Exercised over
// mixed batches of compact record slots and opaque fallback slots.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/operator.h"
#include "engine/window_agg.h"
#include "network/topology.h"
#include "workload/photon_gen.h"
#include "xml/xml_writer.h"

namespace streamshare::engine {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }
Decimal D(const char* text) { return Decimal::Parse(text).value(); }

/// A mixed workload: mostly photons (adopted into records), sprinkled
/// with non-conforming items that ride as opaque slots.
std::vector<ItemPtr> MixedItems(size_t count, uint64_t seed) {
  workload::PhotonGenConfig config;
  config.seed = seed;
  workload::PhotonGenerator gen(config);
  std::vector<ItemPtr> items;
  items.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (i % 7 == 3) {
      auto odd = std::make_unique<xml::XmlNode>("photon");
      // Conforming subsequence photon with only some fields...
      odd->AddLeaf("en", "0.9");
      items.push_back(MakeItem(std::move(odd)));
    } else if (i % 11 == 5) {
      // ... and a genuinely opaque item (wrong root).
      auto wagg = std::make_unique<xml::XmlNode>("wagg");
      wagg->AddLeaf("seq", std::to_string(i));
      wagg->AddLeaf("sum", "1.5");
      items.push_back(MakeItem(std::move(wagg)));
    } else {
      items.push_back(gen.Next());
    }
  }
  return items;
}

struct Pipeline {
  OperatorGraph graph;
  network::Topology topology;
  std::unique_ptr<Metrics> metrics;
  Operator* entry = nullptr;
  SinkOp* sink = nullptr;
};

/// select(en >= 1.0) -> project(coord/cel/ra, en) -> link -> sink, with
/// full accounting, the serial deployment shape the engine runs.
void BuildPipeline(Pipeline* p, bool keep_items) {
  network::NodeId p0 = p->topology.AddPeer("SP0");
  network::NodeId p1 = p->topology.AddPeer("SP1");
  Result<network::LinkId> link = p->topology.AddLink(p0, p1);
  ASSERT_TRUE(link.ok());
  p->metrics = std::make_unique<Metrics>(p->topology);

  auto* select = p->graph.Add<SelectOp>(
      "sel", std::vector<predicate::AtomicPredicate>{
                 predicate::AtomicPredicate::Compare(
                     P("en"), predicate::ComparisonOp::kGe, D("1.0"))});
  auto* project = p->graph.Add<ProjectOp>(
      "proj", std::vector<xml::Path>{P("coord/cel/ra"), P("en")});
  auto* link_op =
      p->graph.Add<LinkOp>("link", p->metrics.get(), *link);
  auto* sink = p->graph.Add<SinkOp>("sink", keep_items);
  sink->EnableContentHash();
  select->SetAccounting(p->metrics.get(), p0, 1.0);
  project->SetAccounting(p->metrics.get(), p0, 2.0);
  link_op->SetAccounting(p->metrics.get(), p0, 0.5);
  sink->SetAccounting(p->metrics.get(), p1, 0.25);
  select->AddDownstream(project);
  project->AddDownstream(link_op);
  link_op->AddDownstream(sink);
  p->entry = select;
  p->sink = sink;
}

void ExpectSameObservations(const Pipeline& expect, const Pipeline& got) {
  EXPECT_EQ(expect.sink->item_count(), got.sink->item_count());
  EXPECT_EQ(expect.sink->total_bytes(), got.sink->total_bytes());
  EXPECT_EQ(expect.sink->content_hash(), got.sink->content_hash());
  ASSERT_EQ(expect.sink->items().size(), got.sink->items().size());
  for (size_t i = 0; i < expect.sink->items().size(); ++i) {
    EXPECT_EQ(xml::WriteCompact(*got.sink->items()[i]),
              xml::WriteCompact(*expect.sink->items()[i]))
        << "item " << i;
  }
  for (size_t l = 0; l < expect.metrics->link_count(); ++l) {
    EXPECT_EQ(expect.metrics->BytesOnLink(static_cast<int>(l)),
              got.metrics->BytesOnLink(static_cast<int>(l)))
        << "link " << l;
  }
  for (size_t peer = 0; peer < expect.metrics->peer_count(); ++peer) {
    EXPECT_EQ(
        expect.metrics->OperatorInvocationsAtPeer(static_cast<int>(peer)),
        got.metrics->OperatorInvocationsAtPeer(static_cast<int>(peer)))
        << "peer " << peer;
    EXPECT_EQ(expect.metrics->WorkAtPeer(static_cast<int>(peer)),
              got.metrics->WorkAtPeer(static_cast<int>(peer)))
        << "peer " << peer;
  }
}

void ExpectBatchMatchesItemwise(size_t batch_size, bool adopt) {
  std::vector<ItemPtr> items = MixedItems(200, /*seed=*/17);

  Pipeline itemwise;
  BuildPipeline(&itemwise, /*keep_items=*/true);
  for (const ItemPtr& item : items) {
    ASSERT_TRUE(itemwise.entry->Push(item).ok());
  }
  ASSERT_TRUE(itemwise.entry->Finish().ok());

  Pipeline batched;
  BuildPipeline(&batched, /*keep_items=*/true);
  for (size_t i = 0; i < items.size(); i += batch_size) {
    ItemBatch batch;
    for (size_t j = i; j < std::min(items.size(), i + batch_size); ++j) {
      batch.AppendItem(items[j], adopt);
    }
    ASSERT_TRUE(batched.entry->PushBatch(&batch).ok());
  }
  ASSERT_TRUE(batched.entry->Finish().ok());

  ExpectSameObservations(itemwise, batched);
}

TEST(BatchOpsTest, PipelineMatchesItemwiseOnRecordSlots) {
  ExpectBatchMatchesItemwise(/*batch_size=*/64, /*adopt=*/true);
}

TEST(BatchOpsTest, PipelineMatchesItemwiseOnOpaqueSlots) {
  // adopt=false forces every slot down the DOM fallback inside the same
  // batch machinery.
  ExpectBatchMatchesItemwise(/*batch_size=*/64, /*adopt=*/false);
}

TEST(BatchOpsTest, PipelineMatchesItemwiseOnSingleItemBatches) {
  ExpectBatchMatchesItemwise(/*batch_size=*/1, /*adopt=*/true);
}

TEST(BatchOpsTest, RunStreamsBatchedMatchesRunStreams) {
  std::vector<std::vector<ItemPtr>> streams = {MixedItems(120, 3),
                                               MixedItems(77, 4)};

  Pipeline a;
  BuildPipeline(&a, /*keep_items=*/false);
  Pipeline a2;
  BuildPipeline(&a2, /*keep_items=*/false);
  // Both streams feed the same entry (fan-in at the tap point).
  ASSERT_TRUE(RunStreams({a.entry, a.entry}, streams).ok());
  ASSERT_TRUE(RunStreamsBatched({a2.entry, a2.entry}, streams,
                                /*batch_size=*/32, /*adopt=*/true)
                  .ok());
  ExpectSameObservations(a, a2);
}

TEST(BatchOpsTest, WindowAggBatchMatchesItemwise) {
  // WindowAggOp consumes record fields without materializing; aggregate
  // output and open-window state must match the per-item path. (Pure
  // photons: the aggregated element must exist in every input item.)
  workload::PhotonGenConfig config;
  config.seed = 9;
  workload::PhotonGenerator gen(config);
  std::vector<ItemPtr> items = gen.Generate(150);

  auto build = [](OperatorGraph* graph, WindowAggOp** agg_out,
                  SinkOp** sink_out) {
    auto* agg = graph->Add<WindowAggOp>(
        "agg", properties::AggregateFunc::kAvg, P("en"),
        properties::WindowSpec::Count(10, 5).value());
    auto* sink = graph->Add<SinkOp>("sink", /*keep_items=*/true);
    sink->EnableContentHash();
    agg->AddDownstream(sink);
    *agg_out = agg;
    *sink_out = sink;
  };

  OperatorGraph item_graph;
  WindowAggOp* item_agg = nullptr;
  SinkOp* item_sink = nullptr;
  build(&item_graph, &item_agg, &item_sink);
  for (const ItemPtr& item : items) {
    ASSERT_TRUE(item_agg->Push(item).ok());
  }

  OperatorGraph batch_graph;
  WindowAggOp* batch_agg = nullptr;
  SinkOp* batch_sink = nullptr;
  build(&batch_graph, &batch_agg, &batch_sink);
  ItemBatch batch = ItemBatch::FromItems(items, /*adopt=*/true);
  ASSERT_TRUE(batch_agg->PushBatch(&batch).ok());

  EXPECT_EQ(item_agg->OpenWindowCount(), batch_agg->OpenWindowCount());
  ASSERT_TRUE(item_agg->Finish().ok());
  ASSERT_TRUE(batch_agg->Finish().ok());

  EXPECT_EQ(item_sink->item_count(), batch_sink->item_count());
  EXPECT_EQ(item_sink->content_hash(), batch_sink->content_hash());
  ASSERT_EQ(item_sink->items().size(), batch_sink->items().size());
  for (size_t i = 0; i < item_sink->items().size(); ++i) {
    EXPECT_EQ(xml::WriteCompact(*batch_sink->items()[i]),
              xml::WriteCompact(*item_sink->items()[i]));
  }
}

TEST(BatchOpsTest, BatchErrorMatchesItemwiseErrorAndFlushesPrefix) {
  // A malformed photon (non-decimal en) rides as an opaque slot; the
  // select's tree evaluation raises ParseError on it. The batch path must
  // (a) report the identical Status and (b) have delivered the passing
  // prefix downstream before returning it.
  auto make_good = [](const char* en) {
    auto node = std::make_unique<xml::XmlNode>("photon");
    node->AddLeaf("en", en);
    return MakeItem(std::move(node));
  };
  auto bad_node = std::make_unique<xml::XmlNode>("photon");
  bad_node->AddLeaf("en", "broken");
  std::vector<ItemPtr> items = {make_good("2.0"), make_good("3.0"),
                                MakeItem(std::move(bad_node)),
                                make_good("4.0")};

  auto build = [&](OperatorGraph* graph, SelectOp** select_out,
                   SinkOp** sink_out) {
    auto* select = graph->Add<SelectOp>(
        "sel", std::vector<predicate::AtomicPredicate>{
                   predicate::AtomicPredicate::Compare(
                       P("en"), predicate::ComparisonOp::kGe, D("1.0"))});
    auto* sink = graph->Add<SinkOp>("sink", /*keep_items=*/true);
    select->AddDownstream(sink);
    *select_out = select;
    *sink_out = sink;
  };

  OperatorGraph item_graph;
  SelectOp* item_select = nullptr;
  SinkOp* item_sink = nullptr;
  build(&item_graph, &item_select, &item_sink);
  Status item_status = Status::Ok();
  for (const ItemPtr& item : items) {
    item_status = item_select->Push(item);
    if (!item_status.ok()) break;
  }

  OperatorGraph batch_graph;
  SelectOp* batch_select = nullptr;
  SinkOp* batch_sink = nullptr;
  build(&batch_graph, &batch_select, &batch_sink);
  ItemBatch batch = ItemBatch::FromItems(items, /*adopt=*/true);
  Status batch_status = batch_select->PushBatch(&batch);

  EXPECT_FALSE(item_status.ok());
  EXPECT_FALSE(batch_status.ok());
  EXPECT_EQ(batch_status.ToString(), item_status.ToString());

  // The two passing items before the failure reached the sink.
  EXPECT_EQ(item_sink->item_count(), 2u);
  EXPECT_EQ(batch_sink->item_count(), 2u);
}

TEST(BatchOpsTest, StructuralOperandErrorIdenticalAcrossPaths) {
  // A predicate over a structural element fails with ExtractValue's
  // ParseError; the compiled record path must reproduce the message
  // byte-for-byte (error strings are part of the oracle's diff).
  auto make_photon = []() {
    auto node = std::make_unique<xml::XmlNode>("photon");
    node->AddChild("coord")->AddChild("cel")->AddLeaf("ra", "1.0");
    return MakeItem(std::move(node));
  };

  auto build = [](OperatorGraph* graph) {
    return graph->Add<SelectOp>(
        "sel", std::vector<predicate::AtomicPredicate>{
                   predicate::AtomicPredicate::Compare(
                       P("coord"), predicate::ComparisonOp::kGe, D("1"))});
  };

  OperatorGraph item_graph;
  Status item_status = build(&item_graph)->Push(make_photon());

  OperatorGraph batch_graph;
  ItemBatch batch;
  batch.AppendItem(make_photon(), /*adopt=*/true);
  ASSERT_TRUE(batch.slot(0).is_record);
  Status batch_status = build(&batch_graph)->PushBatch(&batch);

  EXPECT_FALSE(item_status.ok());
  EXPECT_FALSE(batch_status.ok());
  EXPECT_EQ(batch_status.ToString(), item_status.ToString());
}

}  // namespace
}  // namespace streamshare::engine
