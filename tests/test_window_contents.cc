// Tests for window-contents queries: the WindowContentsOp engine
// operator, restructuring over window members, and planning/sharing
// behaviour (identical windows share; different windows fall back to the
// original stream rather than failing).

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/window_agg.h"
#include "sharing/system.h"
#include "workload/photon_gen.h"
#include "xml/xml_writer.h"

namespace streamshare {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

engine::ItemPtr Item(double t, double x) {
  auto node = std::make_unique<xml::XmlNode>("m");
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", t);
  node->AddLeaf("t", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.1f", x);
  node->AddLeaf("x", buffer);
  return engine::MakeItem(std::move(node));
}

TEST(WindowContentsOpTest, TumblingCountWindows) {
  engine::OperatorGraph graph;
  auto* contents = graph.Add<engine::WindowContentsOp>(
      "wc", properties::WindowSpec::Count(2).value());
  auto* sink = graph.Add<engine::SinkOp>("sink", true);
  contents->AddDownstream(sink);

  ASSERT_TRUE(engine::RunStream(contents, {Item(1, 10), Item(2, 20),
                                           Item(3, 30), Item(4, 40),
                                           Item(5, 50)})
                  .ok());
  // Two full windows + the flushed partial one.
  ASSERT_EQ(sink->item_count(), 3u);
  const xml::XmlNode& first = *sink->items()[0];
  EXPECT_EQ(first.name(), "window");
  EXPECT_EQ(first.FirstChild("seq")->text(), "0");
  EXPECT_EQ(first.Children("m").size(), 2u);
  EXPECT_EQ(sink->items()[2]->Children("m").size(), 1u);  // partial
}

TEST(WindowContentsOpTest, SlidingWindowsDuplicateMembers) {
  engine::OperatorGraph graph;
  auto* contents = graph.Add<engine::WindowContentsOp>(
      "wc", properties::WindowSpec::Count(4, 2).value());
  auto* sink = graph.Add<engine::SinkOp>("sink", true);
  contents->AddDownstream(sink);
  std::vector<engine::ItemPtr> items;
  for (int i = 0; i < 8; ++i) items.push_back(Item(i, i));
  ASSERT_TRUE(engine::RunStream(contents, items).ok());
  ASSERT_GE(sink->item_count(), 3u);
  // Window 0 = items 0..3, window 1 = items 2..5: items 2,3 appear in
  // both.
  const xml::XmlNode& w0 = *sink->items()[0];
  const xml::XmlNode& w1 = *sink->items()[1];
  EXPECT_EQ(w0.Children("m").size(), 4u);
  EXPECT_EQ(w1.Children("m").size(), 4u);
  EXPECT_EQ(w0.Children("m")[2]->FirstChild("t")->text(),
            w1.Children("m")[0]->FirstChild("t")->text());
}

TEST(WindowContentsOpTest, TimeWindowsEmitEmptyForContinuity) {
  engine::OperatorGraph graph;
  auto* contents = graph.Add<engine::WindowContentsOp>(
      "wc", properties::WindowSpec::Diff(P("t"), Decimal::FromInt(10))
                .value());
  auto* sink = graph.Add<engine::SinkOp>("sink", true);
  contents->AddDownstream(sink);
  ASSERT_TRUE(
      engine::RunStream(contents, {Item(5, 1), Item(25, 2)}).ok());
  // [0,10) full, [10,20) empty, flushed [20,30).
  ASSERT_EQ(sink->item_count(), 3u);
  EXPECT_EQ(sink->items()[1]->Children("m").size(), 0u);
  EXPECT_EQ(sink->items()[1]->FirstChild("seq")->text(), "1");
}

class WindowContentsSystemTest : public ::testing::Test {
 protected:
  std::unique_ptr<sharing::StreamShareSystem> MakeSystem() {
    sharing::SystemConfig config;
    config.keep_results = true;
    auto system = std::make_unique<sharing::StreamShareSystem>(
        network::Topology::ExtendedExample(), config);
    EXPECT_TRUE(system
                    ->RegisterStream("photons",
                                     workload::PhotonGenerator::Schema(),
                                     100.0, 4)
                    .ok());
    EXPECT_TRUE(
        system->SetRange("photons", P("coord/cel/ra"), {0.0, 360.0}).ok());
    EXPECT_TRUE(system->SetRange("photons", P("en"), {0.1, 2.4}).ok());
    EXPECT_TRUE(
        system->SetAvgIncrement("photons", P("det_time"), 0.5).ok());
    return system;
  }

  Status Run(sharing::StreamShareSystem* system, size_t count) {
    workload::PhotonGenConfig config;
    workload::PhotonGenerator generator(config);
    std::map<std::string, std::vector<engine::ItemPtr>> items;
    items["photons"] = generator.Generate(count);
    return system->Run(items);
  }
};

constexpr const char* kWindowQuery =
    "<bursts> { for $w in stream(\"photons\")/photons/photon [en >= 0.5] "
    "|det_time diff 40 step 40| "
    "return <burst> { $w/en } </burst> } </bursts>";

TEST_F(WindowContentsSystemTest, WindowQueryRegistersAndRuns) {
  auto system = MakeSystem();
  Result<sharing::RegistrationResult> result = system->RegisterQuery(
      kWindowQuery, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(Run(system.get(), 2000).ok());
  ASSERT_GT(result->sink->item_count(), 5u);
  // Each result is a <burst> with one <en> per member photon above the
  // energy threshold.
  const xml::XmlNode& burst = *result->sink->items()[0];
  EXPECT_EQ(burst.name(), "burst");
  EXPECT_GT(burst.Children("en").size(), 0u);
}

TEST_F(WindowContentsSystemTest, WindowResultsMatchDataShipping) {
  auto shared_system = MakeSystem();
  Result<sharing::RegistrationResult> shared = shared_system->RegisterQuery(
      kWindowQuery, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(shared.ok()) << shared.status();
  ASSERT_TRUE(Run(shared_system.get(), 1500).ok());

  auto shipping_system = MakeSystem();
  Result<sharing::RegistrationResult> shipped =
      shipping_system->RegisterQuery(kWindowQuery, 1,
                                     sharing::Strategy::kDataShipping);
  ASSERT_TRUE(shipped.ok()) << shipped.status();
  ASSERT_TRUE(Run(shipping_system.get(), 1500).ok());

  ASSERT_EQ(shared->sink->item_count(), shipped->sink->item_count());
  for (size_t i = 0; i < shared->sink->items().size(); ++i) {
    EXPECT_TRUE(
        shared->sink->items()[i]->Equals(*shipped->sink->items()[i]))
        << "window " << i;
  }
}

TEST_F(WindowContentsSystemTest, IdenticalWindowQueriesShare) {
  auto system = MakeSystem();
  Result<sharing::RegistrationResult> first = system->RegisterQuery(
      kWindowQuery, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(first.ok()) << first.status();
  Result<sharing::RegistrationResult> second = system->RegisterQuery(
      kWindowQuery, 3, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(second.ok()) << second.status();
  // The second subscription reuses the first's window stream verbatim.
  EXPECT_GT(second->plan.inputs[0].reused_stream, 0)
      << second->plan.ToString();
  EXPECT_TRUE(second->plan.inputs[0].ops.empty())
      << second->plan.ToString();
}

TEST_F(WindowContentsSystemTest, DifferentWindowFallsBackToOriginal) {
  auto system = MakeSystem();
  ASSERT_TRUE(system
                  ->RegisterQuery(kWindowQuery, 1,
                                  sharing::Strategy::kStreamSharing)
                  .ok());
  // Same pre-selection, different window: the existing window stream is
  // not reusable; the planner must fall back to the original stream
  // instead of failing.
  const char* other =
      "<bursts> { for $w in stream(\"photons\")/photons/photon "
      "[en >= 0.5] |det_time diff 80 step 80| "
      "return <burst> { $w/en } </burst> } </bursts>";
  Result<sharing::RegistrationResult> result =
      system->RegisterQuery(other, 3, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->plan.inputs[0].reused_stream, 0)
      << result->plan.ToString();
}

}  // namespace
}  // namespace streamshare
