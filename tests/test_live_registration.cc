// Live operation: continuous queries come and go *while* the stream
// flows. Registration mid-stream attaches to the shared taps and sees
// only future items; deregistration detaches without disturbing other
// subscribers; window operators joining late fast-forward onto the
// absolute window axis.

#include <gtest/gtest.h>

#include "sharing/system.h"
#include "workload/paper_queries.h"
#include "workload/photon_gen.h"

namespace streamshare {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

class LiveRegistrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sharing::SystemConfig config;
    config.keep_results = true;
    system_ = std::make_unique<sharing::StreamShareSystem>(
        network::Topology::ExtendedExample(), config);
    ASSERT_TRUE(system_
                    ->RegisterStream("photons",
                                     workload::PhotonGenerator::Schema(),
                                     100.0, 4)
                    .ok());
    ASSERT_TRUE(
        system_->SetRange("photons", P("coord/cel/ra"), {0.0, 360.0}).ok());
    ASSERT_TRUE(
        system_->SetRange("photons", P("coord/cel/dec"), {-90.0, 90.0})
            .ok());
    ASSERT_TRUE(system_->SetRange("photons", P("en"), {0.1, 2.4}).ok());
    ASSERT_TRUE(
        system_->SetAvgIncrement("photons", P("det_time"), 0.5).ok());

    workload::PhotonGenConfig gen_config;
    gen_config.hot_regions = {{120.0, 138.0, -49.0, -40.0}};
    gen_config.hot_weights = {3.0};
    generator_ =
        std::make_unique<workload::PhotonGenerator>(gen_config);
  }

  /// Continuous feeding: no end-of-stream between batches.
  Status RunBatch(size_t count) {
    std::map<std::string, std::vector<engine::ItemPtr>> items;
    items["photons"] = generator_->Generate(count);
    return system_->Feed(items);
  }

  std::unique_ptr<sharing::StreamShareSystem> system_;
  std::unique_ptr<workload::PhotonGenerator> generator_;
};

TEST_F(LiveRegistrationTest, LateSubscribersSeeOnlyFutureItems) {
  Result<sharing::RegistrationResult> early = system_->RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(early.ok());

  ASSERT_TRUE(RunBatch(500).ok());
  uint64_t early_after_first = early->sink->item_count();
  EXPECT_GT(early_after_first, 0u);

  // Identical query registered mid-stream: it reuses the early query's
  // stream but receives only the second batch.
  Result<sharing::RegistrationResult> late = system_->RegisterQuery(
      workload::kQuery1, 7, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(late.ok());
  EXPECT_GT(late->plan.inputs[0].reused_stream, 0);

  ASSERT_TRUE(RunBatch(500).ok());
  uint64_t early_total = early->sink->item_count();
  EXPECT_GT(early_total, early_after_first);
  EXPECT_EQ(late->sink->item_count(), early_total - early_after_first);
  // And the overlapping portion is item-for-item identical.
  for (size_t i = 0; i < late->sink->items().size(); ++i) {
    EXPECT_TRUE(late->sink->items()[i]->Equals(
        *early->sink->items()[early_after_first + i]));
  }
}

TEST_F(LiveRegistrationTest, LateAggregateFastForwardsWindows) {
  ASSERT_TRUE(RunBatch(800).ok());  // stream has been flowing for a while

  Result<sharing::RegistrationResult> agg = system_->RegisterQuery(
      workload::kQuery3, 3, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(RunBatch(800).ok());
  ASSERT_TRUE(system_->Shutdown().ok());
  // Windows arrive despite the late start (no stall waiting for the
  // stream's origin), with sequence numbers on the absolute axis.
  ASSERT_GT(agg->sink->item_count(), 3u);
}

TEST_F(LiveRegistrationTest, FeedCarriesWindowStateAcrossBatches) {
  // A window spanning a batch boundary must aggregate items from both
  // batches — Feed does not flush, unlike single-shot Run.
  Result<sharing::RegistrationResult> agg = system_->RegisterQuery(
      "<o> { for $w in stream(\"photons\")/photons/photon "
      "|count 100| let $a := count($w/en) "
      "return <n> { $a } </n> } </o>",
      1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(RunBatch(150).ok());  // window [0,100) closed, 50 buffered
  EXPECT_EQ(agg->sink->item_count(), 1u);
  // Window [100,200) spans the batch boundary; it closes mid-batch-2.
  // Window [200,300) is full but only a later item (or the flush) can
  // prove it complete.
  ASSERT_TRUE(RunBatch(150).ok());
  EXPECT_EQ(agg->sink->item_count(), 2u);
  ASSERT_TRUE(system_->Shutdown().ok());  // flushes [200,300)
  EXPECT_EQ(agg->sink->item_count(), 3u);
  for (const engine::ItemPtr& item : agg->sink->items()) {
    EXPECT_EQ(item->text(), "100");  // every window holds 100 items
  }
}

TEST_F(LiveRegistrationTest, MidStreamChurn) {
  // Register, run, deregister, run, re-register: every phase delivers to
  // exactly the subscriptions active during it.
  Result<sharing::RegistrationResult> a = system_->RegisterQuery(
      workload::kQuery2, 7, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(RunBatch(400).ok());
  uint64_t a_phase1 = a->sink->item_count();

  ASSERT_TRUE(system_->UnregisterQuery(a->query_id).ok());
  ASSERT_TRUE(RunBatch(400).ok());
  EXPECT_EQ(a->sink->item_count(), a_phase1);  // no longer fed

  Result<sharing::RegistrationResult> b = system_->RegisterQuery(
      workload::kQuery2, 7, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(RunBatch(400).ok());
  EXPECT_GT(b->sink->item_count(), 0u);
  EXPECT_EQ(a->sink->item_count(), a_phase1);
}

}  // namespace
}  // namespace streamshare
