// Behavior tests for the streamshare_serve daemon: live subscribe
// through the real planner, delivery forwarding, double-unsubscribe
// NotFound semantics, E6 admission rejection leaving the deployment
// untouched, detach/re-attach catch-up, implicit unsubscribe on
// disconnect, and the unsupported-frame answer path.

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/net.h"
#include "workload/scenario.h"

namespace streamshare::serve {
namespace {

workload::ScenarioSpec SmallScenario() {
  return workload::ExtendedExampleScenario(/*seed=*/11,
                                           /*query_count=*/4);
}

/// The E6 setup: capacities so tight that repeatedly data-shipping the
/// raw stream must overload a link or peer.
workload::ScenarioSpec TinyCapacityScenario() {
  workload::ScenarioSpec scenario = SmallScenario();
  scenario.name = "tiny-capacity";
  scenario.topology = network::Topology::ExtendedExample(
      /*bandwidth_kbps=*/150.0, /*max_load=*/60.0);
  return scenario;
}

std::unique_ptr<ServeDaemon> StartDaemon(
    const workload::ScenarioSpec& scenario,
    DaemonOptions options = DaemonOptions()) {
  auto daemon = std::make_unique<ServeDaemon>(scenario, options);
  Status started = daemon->Start();
  EXPECT_TRUE(started.ok()) << started;
  return started.ok() ? std::move(daemon) : nullptr;
}

ServeClient MakeClient(const ServeDaemon& daemon,
                       const std::string& name) {
  ClientOptions options;
  options.port = daemon.port();
  options.name = name;
  return ServeClient(options);
}

TEST(ServeDaemon, SubscribeFeedForwardsDeliveriesMatchingSinks) {
  workload::ScenarioSpec scenario = SmallScenario();
  auto daemon = StartDaemon(scenario);
  ASSERT_NE(daemon, nullptr);

  ServeClient client = MakeClient(*daemon, "feeder");
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.hello().epoch, 0u);
  EXPECT_EQ(client.hello().items_fed, 0u);

  auto q0 = client.Subscribe(scenario.queries[0].text,
                             scenario.queries[0].target);
  auto q1 = client.Subscribe(scenario.queries[1].text,
                             scenario.queries[1].target);
  ASSERT_TRUE(q0.ok()) << q0.status();
  ASSERT_TRUE(q1.ok()) << q1.status();
  ASSERT_TRUE(q0->accepted) << q0->reject_reason;
  ASSERT_TRUE(q1->accepted) << q1->reject_reason;
  EXPECT_NE(q0->query_id, q1->query_id);

  auto fed = client.Feed(200);
  ASSERT_TRUE(fed.ok()) << fed.status();
  EXPECT_EQ(fed->items_fed, 200u);

  // The daemon's own sink counters must agree with what reached the
  // client: same items, same bytes, same order-insensitive hash.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->items_fed, 200u);
  EXPECT_EQ(stats->admitted, 2u);
  uint64_t sink_total = 0;
  for (const QueryStat& query : stats->queries) {
    ClientQueryResults results = client.results(query.query_id);
    EXPECT_EQ(results.items, query.items) << "query " << query.query_id;
    EXPECT_EQ(results.bytes, query.bytes) << "query " << query.query_id;
    EXPECT_EQ(results.content_hash, query.content_hash)
        << "query " << query.query_id;
    sink_total += query.items;
  }
  EXPECT_GT(sink_total, 0u) << "workload produced no deliveries at all";
  EXPECT_EQ(stats->results_forwarded, sink_total);

  // Deliveries carry measured latency stamps.
  ClientQueryResults r0 = client.results(q0->query_id);
  EXPECT_EQ(r0.residency_us.size(), r0.items);
  EXPECT_EQ(r0.total_us.size(), r0.items);

  auto drained = client.Drain(/*final_drain=*/true);
  ASSERT_TRUE(drained.ok()) << drained.status();
  auto eos = client.WaitEos(10000);
  ASSERT_TRUE(eos.ok()) << eos.status();
  EXPECT_TRUE(eos->final_drain);
  daemon->Join();
  EXPECT_TRUE(daemon->loop_status().ok()) << daemon->loop_status();
}

TEST(ServeDaemon, DoubleUnsubscribeReturnsNotFound) {
  workload::ScenarioSpec scenario = SmallScenario();
  auto daemon = StartDaemon(scenario);
  ASSERT_NE(daemon, nullptr);
  ServeClient client = MakeClient(*daemon, "unsub");
  ASSERT_TRUE(client.Connect().ok());

  auto q0 = client.Subscribe(scenario.queries[0].text,
                             scenario.queries[0].target);
  ASSERT_TRUE(q0.ok() && q0->accepted);

  EXPECT_TRUE(client.Unsubscribe(q0->query_id).ok());
  // Again: the id once existed but was already removed.
  Status again = client.Unsubscribe(q0->query_id);
  EXPECT_TRUE(again.IsNotFound()) << again;
  // Never registered at all.
  Status never = client.Unsubscribe(4242);
  EXPECT_TRUE(never.IsNotFound()) << never;
  // The connection survives both errors.
  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_FALSE(stats->queries[0].active);

  daemon->RequestDrain(/*final_drain=*/true);
  daemon->Join();
}

TEST(ServeDaemon, AdmissionRejectionIsStructuredAndNonDisruptive) {
  workload::ScenarioSpec scenario = TinyCapacityScenario();
  DaemonOptions options;
  options.system.enforce_limits = true;
  auto daemon = StartDaemon(scenario, options);
  ASSERT_NE(daemon, nullptr);
  ServeClient client = MakeClient(*daemon, "overloader");
  ASSERT_TRUE(client.Connect().ok());

  // First data-shipped copy of the raw stream fits.
  auto first = client.Subscribe(scenario.queries[0].text,
                                scenario.queries[0].target,
                                /*strategy=*/0);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(first->accepted) << first->reject_reason;
  ASSERT_TRUE(client.Feed(50).ok());
  ClientQueryResults before = client.results(first->query_id);

  // Shipping more raw copies must hit the E6 admission wall: the daemon
  // answers with a structured rejection, not an error, not an exit.
  bool rejected = false;
  std::string reason;
  for (int i = 0; i < 6 && !rejected; ++i) {
    auto result = client.Subscribe(scenario.queries[0].text,
                                   scenario.queries[0].target,
                                   /*strategy=*/0);
    ASSERT_TRUE(result.ok()) << result.status();
    if (!result->accepted) {
      rejected = true;
      reason = result->reject_reason;
      EXPECT_GE(result->query_id, 0);  // the attempt consumed an id
    }
  }
  ASSERT_TRUE(rejected);
  EXPECT_FALSE(reason.empty());

  // The installed population is untouched and still serving: the first
  // query keeps receiving deliveries after the rejection.
  ASSERT_TRUE(client.Feed(50).ok());
  ClientQueryResults after = client.results(first->query_id);
  EXPECT_GT(after.items, before.items);

  auto stats = client.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->rejected, 1u);
  for (const QueryStat& query : stats->queries) {
    if (!query.accepted) EXPECT_FALSE(query.active);
  }

  daemon->RequestDrain(/*final_drain=*/true);
  daemon->Join();
  EXPECT_TRUE(daemon->loop_status().ok()) << daemon->loop_status();
}

TEST(ServeDaemon, DetachKeepsSubscriptionAndReattachCatchesUp) {
  workload::ScenarioSpec scenario = SmallScenario();
  auto daemon = StartDaemon(scenario);
  ASSERT_NE(daemon, nullptr);

  ServeClient first = MakeClient(*daemon, "first-life");
  ASSERT_TRUE(first.Connect().ok());
  auto q0 = first.Subscribe(scenario.queries[0].text,
                            scenario.queries[0].target);
  ASSERT_TRUE(q0.ok() && q0->accepted);
  ASSERT_TRUE(first.Feed(100).ok());
  ClientQueryResults first_results = first.results(q0->query_id);
  ASSERT_TRUE(first.Detach().ok());

  // While nobody is attached the subscription keeps accumulating.
  ASSERT_TRUE(first.Feed(100).ok());
  EXPECT_EQ(first.results(q0->query_id).items, first_results.items)
      << "detached client must not receive deliveries";

  // A second life re-attaches and catches up exactly the missed window.
  ServeClient second = MakeClient(*daemon, "second-life");
  ASSERT_TRUE(second.Connect().ok());
  auto attached = second.Attach(q0->query_id, first_results.next_seq);
  ASSERT_TRUE(attached.ok()) << attached.status();
  EXPECT_EQ(attached->forward_from, first_results.next_seq);
  ASSERT_TRUE(second.Feed(1).ok());

  auto stats = second.Stats();
  ASSERT_TRUE(stats.ok());
  uint64_t sink_items = stats->queries[q0->query_id].items;
  uint64_t sink_hash = stats->queries[q0->query_id].content_hash;
  ClientQueryResults caught_up = second.results(q0->query_id);
  EXPECT_EQ(first_results.items + caught_up.items, sink_items);
  EXPECT_EQ(first_results.content_hash + caught_up.content_hash,
            sink_hash);

  daemon->RequestDrain(/*final_drain=*/true);
  daemon->Join();
}

TEST(ServeDaemon, DisconnectImplicitlyUnsubscribes) {
  workload::ScenarioSpec scenario = SmallScenario();
  auto daemon = StartDaemon(scenario);
  ASSERT_NE(daemon, nullptr);

  {
    ServeClient doomed = MakeClient(*daemon, "doomed");
    ASSERT_TRUE(doomed.Connect().ok());
    auto q0 = doomed.Subscribe(scenario.queries[0].text,
                               scenario.queries[0].target);
    ASSERT_TRUE(q0.ok() && q0->accepted);
    doomed.Close();  // vanish without Unsubscribe or Detach
  }

  ServeClient observer = MakeClient(*daemon, "observer");
  ASSERT_TRUE(observer.Connect().ok());
  // The loop notices the EOF within a poll interval; the refcounted GC
  // then removes the orphaned subscription.
  bool inactive = false;
  for (int i = 0; i < 100 && !inactive; ++i) {
    auto stats = observer.Stats();
    ASSERT_TRUE(stats.ok()) << stats.status();
    if (!stats->queries.empty() && !stats->queries[0].active) {
      inactive = true;
    }
  }
  EXPECT_TRUE(inactive) << "disconnect did not trigger unsubscribe";
  auto final_stats = observer.Stats();
  ASSERT_TRUE(final_stats.ok());
  EXPECT_EQ(daemon->stats().unsubscribed, 1u);

  daemon->RequestDrain(/*final_drain=*/true);
  daemon->Join();
}

TEST(ServeDaemon, UnsupportedFrameGetsDecodableAnswerNotTeardown) {
  workload::ScenarioSpec scenario = SmallScenario();
  auto daemon = StartDaemon(scenario);
  ASSERT_NE(daemon, nullptr);

  auto conn = ConnectTcp("127.0.0.1", daemon->port(), 5000);
  ASSERT_TRUE(conn.ok()) << conn.status();

  // A frame type from the future: well-framed, undispatchable.
  ASSERT_TRUE(conn->QueueFrame(static_cast<transport::FrameType>(0x41),
                               "mystery-payload")
                  .ok());
  ASSERT_TRUE(conn->FlushAll(2000).ok());
  transport::Frame frame;
  auto event = conn->RecvFrame(&frame, 5000);
  ASSERT_TRUE(event.ok()) << event.status();
  ASSERT_EQ(*event, ConnEvent::kFrame);
  ASSERT_EQ(frame.type, transport::FrameType::kControlAck);
  auto response = DecodeResponse(frame.body);
  ASSERT_TRUE(response.ok()) << response.status();
  Status answer = ResponseStatus(*response);
  EXPECT_TRUE(answer.IsUnsupported()) << answer;
  EXPECT_NE(answer.message().find("type 65"), std::string::npos)
      << answer.message();

  // The connection is still usable: a proper handshake succeeds on it.
  ControlRequest hello;
  hello.request_id = 1;
  hello.verb = Verb::kHello;
  hello.client_name = "post-mystery";
  ASSERT_TRUE(conn->QueueFrame(transport::FrameType::kControl,
                               EncodeRequest(hello))
                  .ok());
  ASSERT_TRUE(conn->FlushAll(2000).ok());
  event = conn->RecvFrame(&frame, 5000);
  ASSERT_TRUE(event.ok()) << event.status();
  ASSERT_EQ(frame.type, transport::FrameType::kControlAck);
  response = DecodeResponse(frame.body);
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(ResponseStatus(*response).ok());
  EXPECT_EQ(daemon->stats().unsupported_frames, 1u);

  daemon->RequestDrain(/*final_drain=*/true);
  daemon->Join();
}

TEST(ServeDaemon, RestartableDrainCheckpointsAndExitsCleanly) {
  workload::ScenarioSpec scenario = SmallScenario();
  DaemonOptions options;
  options.checkpoint_path =
      ::testing::TempDir() + "/serve_drain_reject.ckpt";
  std::remove(options.checkpoint_path.c_str());
  auto daemon = StartDaemon(scenario, options);
  ASSERT_NE(daemon, nullptr);

  ServeClient client = MakeClient(*daemon, "late");
  ASSERT_TRUE(client.Connect().ok());
  auto q0 = client.Subscribe(scenario.queries[0].text,
                             scenario.queries[0].target);
  ASSERT_TRUE(q0.ok() && q0->accepted);
  ASSERT_TRUE(client.Feed(50).ok());

  auto drained = client.Drain(/*final_drain=*/false);
  ASSERT_TRUE(drained.ok()) << drained.status();
  auto eos = client.WaitEos(10000);
  ASSERT_TRUE(eos.ok()) << eos.status();
  EXPECT_FALSE(eos->final_drain);
  daemon->Join();
  EXPECT_TRUE(daemon->loop_status().ok()) << daemon->loop_status();

  auto checkpoint = LoadCheckpoint(options.checkpoint_path);
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status();
  EXPECT_EQ(checkpoint->items_fed, 50u);
  ASSERT_EQ(checkpoint->events.size(), 1u);
  EXPECT_EQ(checkpoint->events[0].kind, LogEvent::Kind::kSubscribe);
  std::remove(options.checkpoint_path.c_str());
}

TEST(ServeDaemon, SubscribeBatchMatchesSequentialSubscribes) {
  workload::ScenarioSpec scenario = SmallScenario();

  // Daemon A takes the whole workload in one SubscribeBatch verb, daemon
  // B takes it as individual Subscribe verbs; identical deliveries.
  auto batch_daemon = StartDaemon(scenario);
  auto seq_daemon = StartDaemon(scenario);
  ASSERT_NE(batch_daemon, nullptr);
  ASSERT_NE(seq_daemon, nullptr);
  ServeClient batch_client = MakeClient(*batch_daemon, "batcher");
  ServeClient seq_client = MakeClient(*seq_daemon, "sequential");
  ASSERT_TRUE(batch_client.Connect().ok());
  ASSERT_TRUE(seq_client.Connect().ok());

  // The scenario's queries plus a repeat of the first template at a
  // different target — the repeat must hit the batch's analysis cache.
  std::vector<ControlRequest::BatchEntry> entries;
  for (const workload::QuerySpec& query : scenario.queries) {
    entries.push_back({query.text, query.target, /*strategy=*/2});
  }
  entries.push_back({scenario.queries[0].text,
                     scenario.queries[1].target, /*strategy=*/2});
  for (const ControlRequest::BatchEntry& entry : entries) {
    auto result = seq_client.Subscribe(
        entry.query_text, static_cast<network::NodeId>(entry.vq));
    ASSERT_TRUE(result.ok()) << result.status();
  }
  auto batched = batch_client.SubscribeBatch(entries);
  ASSERT_TRUE(batched.ok()) << batched.status();
  ASSERT_EQ(batched->entries.size(), entries.size());
  EXPECT_GT(batched->analyze_cache_hits, 0u)
      << "the repeated template missed the batch analysis cache";

  constexpr uint64_t kItems = 200;
  ASSERT_TRUE(batch_client.Feed(kItems).ok());
  ASSERT_TRUE(seq_client.Feed(kItems).ok());
  auto batch_stats = batch_client.Stats();
  auto seq_stats = seq_client.Stats();
  ASSERT_TRUE(batch_stats.ok()) << batch_stats.status();
  ASSERT_TRUE(seq_stats.ok()) << seq_stats.status();
  ASSERT_EQ(batch_stats->queries.size(), seq_stats->queries.size());
  uint64_t total = 0;
  for (size_t q = 0; q < batch_stats->queries.size(); ++q) {
    const QueryStat& a = batch_stats->queries[q];
    const QueryStat& b = seq_stats->queries[q];
    EXPECT_EQ(a.accepted, b.accepted) << "query " << q;
    EXPECT_EQ(batched->entries[q].accepted, b.accepted) << "query " << q;
    EXPECT_EQ(a.items, b.items) << "query " << q;
    EXPECT_EQ(a.bytes, b.bytes) << "query " << q;
    EXPECT_EQ(a.content_hash, b.content_hash) << "query " << q;
    total += a.items;
  }
  EXPECT_GT(total, 0u) << "workload delivered nothing; identity vacuous";

  // The batch subscriber receives deliveries for its accepted entries
  // just like individual subscribers do.
  uint64_t client_total = 0;
  for (const SubscribeReply& entry : batched->entries) {
    if (entry.accepted) {
      client_total += batch_client.results(entry.query_id).items;
    }
  }
  EXPECT_EQ(client_total, total);

  batch_daemon->RequestDrain(/*final_drain=*/true);
  seq_daemon->RequestDrain(/*final_drain=*/true);
  batch_daemon->Join();
  seq_daemon->Join();
  EXPECT_TRUE(batch_daemon->loop_status().ok())
      << batch_daemon->loop_status();
}

TEST(ServeDaemon, ReoptimizeVerbReportsAndKeepsServing) {
  workload::ScenarioSpec scenario = SmallScenario();
  auto daemon = StartDaemon(scenario);
  ASSERT_NE(daemon, nullptr);
  ServeClient client = MakeClient(*daemon, "reoptimizer");
  ASSERT_TRUE(client.Connect().ok());

  std::vector<ControlRequest::BatchEntry> entries;
  for (const workload::QuerySpec& query : scenario.queries) {
    entries.push_back({query.text, query.target, /*strategy=*/2});
  }
  auto batched = client.SubscribeBatch(entries);
  ASSERT_TRUE(batched.ok()) << batched.status();
  ASSERT_TRUE(client.Feed(100).ok());

  auto report = client.Reoptimize();
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->examined, 0u);
  EXPECT_EQ(report->torn_down, 0u);

  // The daemon keeps serving after the pass, whatever it migrated.
  ClientQueryResults before = client.results(0);
  ASSERT_TRUE(client.Feed(100).ok());
  EXPECT_GT(client.results(0).items, before.items);

  daemon->RequestDrain(/*final_drain=*/true);
  daemon->Join();
  EXPECT_TRUE(daemon->loop_status().ok()) << daemon->loop_status();
}

TEST(ServeDaemon, ReoptimizeInterleavesWithLiveSubscribeAndFeed) {
  // Two clients hammer the daemon concurrently: one keeps subscribing
  // and feeding, the other keeps requesting re-optimization passes. The
  // daemon loop serializes the verbs; under TSAN this pins down that the
  // migration machinery shares no unsynchronized state with the live
  // subscribe/feed path (client threads vs the daemon loop thread).
  workload::ScenarioSpec scenario = SmallScenario();
  auto daemon = StartDaemon(scenario);
  ASSERT_NE(daemon, nullptr);

  std::thread subscriber([&] {
    ServeClient client = MakeClient(*daemon, "subscriber");
    ASSERT_TRUE(client.Connect().ok());
    for (int round = 0; round < 8; ++round) {
      const workload::QuerySpec& query =
          scenario.queries[round % scenario.queries.size()];
      auto result = client.Subscribe(query.text, query.target);
      ASSERT_TRUE(result.ok()) << result.status();
      ASSERT_TRUE(client.Feed(25).ok());
    }
    client.Close();
  });
  std::thread reoptimizer([&] {
    ServeClient client = MakeClient(*daemon, "reoptimizer");
    ASSERT_TRUE(client.Connect().ok());
    for (int round = 0; round < 8; ++round) {
      auto report = client.Reoptimize(/*max_migrations=*/2);
      ASSERT_TRUE(report.ok()) << report.status();
    }
    client.Close();
  });
  subscriber.join();
  reoptimizer.join();

  daemon->RequestDrain(/*final_drain=*/true);
  daemon->Join();
  EXPECT_TRUE(daemon->loop_status().ok()) << daemon->loop_status();
}

TEST(ServeDaemon, RestartableDrainNeedsCheckpointPath) {
  workload::ScenarioSpec scenario = SmallScenario();
  auto daemon = StartDaemon(scenario);  // no checkpoint_path
  ASSERT_NE(daemon, nullptr);
  ServeClient client = MakeClient(*daemon, "no-ckpt");
  ASSERT_TRUE(client.Connect().ok());
  auto drained = client.Drain(/*final_drain=*/false);
  EXPECT_TRUE(drained.status().IsInvalidArgument()) << drained.status();
  daemon->RequestDrain(/*final_drain=*/true);
  daemon->Join();
}

}  // namespace
}  // namespace streamshare::serve
