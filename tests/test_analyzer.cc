// Unit tests for the WXQuery semantic analyzer: properties derivation for
// the paper's queries, projection/selection extraction, aggregate
// handling, and rejection of unsupported / invalid subscriptions.

#include "wxquery/analyzer.h"

#include <gtest/gtest.h>

#include "workload/paper_queries.h"

namespace streamshare::wxquery {
namespace {

using properties::AggregateFunc;
using properties::AggregationOp;
using properties::ProjectionOp;
using properties::SelectionOp;
using properties::WindowType;

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

AnalyzedQuery MustAnalyze(std::string_view text) {
  Result<AnalyzedQuery> analyzed = ParseAndAnalyze(text);
  EXPECT_TRUE(analyzed.ok()) << analyzed.status() << "\n" << text;
  return analyzed.ok() ? std::move(analyzed).value() : AnalyzedQuery{};
}

TEST(AnalyzerTest, Query1PropertiesShape) {
  AnalyzedQuery query = MustAnalyze(workload::kQuery1);
  EXPECT_EQ(query.wrapper_tag, "photons");
  ASSERT_EQ(query.bindings.size(), 1u);
  const StreamBinding& binding = query.bindings[0];
  EXPECT_EQ(binding.var, "p");
  EXPECT_EQ(binding.stream_name, "photons");
  EXPECT_EQ(binding.stream_root, "photons");
  EXPECT_EQ(binding.item_path.ToString(), "photon");
  EXPECT_EQ(binding.item_predicates.size(), 4u);
  EXPECT_FALSE(binding.window.has_value());
  EXPECT_FALSE(binding.aggregate.has_value());
  EXPECT_FALSE(binding.returns_whole_item);
  // Referenced = {ra, dec, phc, en, det_time} — Fig. 3's π condition.
  EXPECT_EQ(binding.referenced_paths.size(), 5u);

  ASSERT_EQ(query.props.inputs().size(), 1u);
  const auto& input = query.props.inputs()[0];
  ASSERT_NE(input.selection(), nullptr);
  ASSERT_NE(input.projection(), nullptr);
  EXPECT_EQ(input.aggregation(), nullptr);
  EXPECT_EQ(input.projection()->output.size(), 5u);
}

TEST(AnalyzerTest, Query3AggregateProperties) {
  AnalyzedQuery query = MustAnalyze(workload::kQuery3);
  const StreamBinding& binding = query.bindings[0];
  ASSERT_TRUE(binding.window.has_value());
  EXPECT_EQ(binding.window->type, WindowType::kDiff);
  ASSERT_TRUE(binding.aggregate.has_value());
  EXPECT_EQ(binding.aggregate->func, AggregateFunc::kAvg);
  EXPECT_EQ(binding.aggregate->path, P("en"));
  EXPECT_TRUE(binding.result_filter.empty());
  // Window reference element must be referenced (survives projection).
  bool has_det_time = false;
  for (const xml::Path& path : binding.referenced_paths) {
    if (path == P("det_time")) has_det_time = true;
  }
  EXPECT_TRUE(has_det_time);

  const auto& input = query.props.inputs()[0];
  const AggregationOp* agg = input.aggregation();
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->pre_selection.size(), 4u);
  EXPECT_TRUE(agg->result_filter.empty());
  // Aggregate subscriptions also expose σ and Π for cross-kind matching.
  EXPECT_NE(input.selection(), nullptr);
  EXPECT_NE(input.projection(), nullptr);
}

TEST(AnalyzerTest, Query4ResultFilter) {
  AnalyzedQuery query = MustAnalyze(workload::kQuery4);
  const StreamBinding& binding = query.bindings[0];
  ASSERT_EQ(binding.result_filter.size(), 1u);
  EXPECT_EQ(binding.result_filter[0].lhs, properties::AggregateValuePath());
  EXPECT_EQ(binding.result_filter[0].op, predicate::ComparisonOp::kGe);
  EXPECT_EQ(binding.result_filter[0].constant,
            Decimal::Parse("1.3").value());
  const AggregationOp* agg = query.props.inputs()[0].aggregation();
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->result_filter.size(), 1u);
}

TEST(AnalyzerTest, WholeItemOutputSkipsProjection) {
  AnalyzedQuery query = MustAnalyze(
      "<out> { for $p in stream(\"photons\")/photons/photon "
      "where $p/en >= 1.0 return $p } </out>");
  EXPECT_TRUE(query.bindings[0].returns_whole_item);
  EXPECT_EQ(query.props.inputs()[0].projection(), nullptr);
  EXPECT_NE(query.props.inputs()[0].selection(), nullptr);
}

TEST(AnalyzerTest, PathConditionsMergeWithWhere) {
  AnalyzedQuery query = MustAnalyze(
      "for $p in stream(\"s\")/r/item[a >= 1 and b <= 2] "
      "where $p/c >= 3 return <x> { $p/a } </x>");
  EXPECT_EQ(query.bindings[0].item_predicates.size(), 3u);
}

TEST(AnalyzerTest, IfConditionPathsAreReferenced) {
  AnalyzedQuery query = MustAnalyze(
      "for $p in stream(\"s\")/r/item where $p/a >= 1 "
      "return if $p/hidden >= 5 then <h/> else <l> { $p/a } </l>");
  bool has_hidden = false;
  for (const xml::Path& path : query.bindings[0].referenced_paths) {
    if (path == P("hidden")) has_hidden = true;
  }
  EXPECT_TRUE(has_hidden);
}

TEST(AnalyzerTest, RejectsNestedFlwr) {
  Status status =
      ParseAndAnalyze(
          "for $p in stream(\"s\")/r/i return "
          "<o> { for $q in stream(\"s\")/r/i return <x/> } </o>")
          .status();
  EXPECT_TRUE(status.IsUnsupported()) << status;
}

TEST(AnalyzerTest, RejectsUndefinedVariables) {
  EXPECT_TRUE(ParseAndAnalyze("for $p in stream(\"s\")/r/i "
                              "where $q/a >= 1 return <x/>")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseAndAnalyze("for $p in stream(\"s\")/r/i "
                              "return <x> { $q/a } </x>")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseAndAnalyze("for $p in stream(\"s\")/r/i "
                              "return $q")
                  .status()
                  .IsInvalidArgument());
}

TEST(AnalyzerTest, RejectsDuplicateBindings) {
  EXPECT_TRUE(ParseAndAnalyze("for $p in stream(\"s\")/r/i "
                              "for $p in stream(\"s\")/r/i return <x/>")
                  .status()
                  .IsInvalidArgument());
}

TEST(AnalyzerTest, RejectsUnsatisfiableSelection) {
  Status status = ParseAndAnalyze(
                      "for $p in stream(\"s\")/r/i "
                      "where $p/a >= 10 and $p/a <= 5 return <x/>")
                      .status();
  EXPECT_TRUE(status.IsUnsatisfiable()) << status;
}

TEST(AnalyzerTest, RejectsShortBindingPath) {
  EXPECT_TRUE(ParseAndAnalyze("for $p in stream(\"s\")/r return <x/>")
                  .status()
                  .IsInvalidArgument());
}

TEST(AnalyzerTest, RejectsAggregateWithoutWindow) {
  Status status = ParseAndAnalyze(
                      "for $p in stream(\"s\")/r/i "
                      "let $a := avg($p/x) return <o> { $a } </o>")
                      .status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
}

TEST(AnalyzerTest, RejectsLetOverUndefinedVariable) {
  EXPECT_FALSE(ParseAndAnalyze("for $w in stream(\"s\")/r/i |count 5| "
                               "let $a := avg($q/x) return <o> { $a } </o>")
                   .ok());
}

TEST(AnalyzerTest, RejectsAggregateComparedToPath) {
  Status status =
      ParseAndAnalyze(
          "for $w in stream(\"s\")/r/i |count 5| let $a := avg($w/x) "
          "where $a >= $w/x return <o> { $a } </o>")
          .status();
  EXPECT_TRUE(status.IsUnsupported()) << status;
}

TEST(AnalyzerTest, CrossBindingPredicatesBecomeJoinConditions) {
  AnalyzedQuery query = MustAnalyze(
      "for $p in stream(\"s\")/r/i for $q in stream(\"t\")/r/i "
      "where $p/a >= $q/b and $p/c >= 1 return ( $p/a, $q/b )");
  // The cross-binding atom lands in join_conditions, never in any
  // input's properties (combination results are not shared, §3.1).
  ASSERT_EQ(query.join_conditions.size(), 1u);
  EXPECT_EQ(query.join_conditions[0].lhs.var, "p");
  EXPECT_EQ(query.join_conditions[0].rhs->var, "q");
  EXPECT_EQ(query.bindings[0].item_predicates.size(), 1u);  // $p/c >= 1
  EXPECT_TRUE(query.bindings[1].item_predicates.empty());
  // Both sides survive projection.
  bool p_has_a = false, q_has_b = false;
  for (const xml::Path& path : query.bindings[0].referenced_paths) {
    if (path == P("a")) p_has_a = true;
  }
  for (const xml::Path& path : query.bindings[1].referenced_paths) {
    if (path == P("b")) q_has_b = true;
  }
  EXPECT_TRUE(p_has_a);
  EXPECT_TRUE(q_has_b);
  // Undefined rhs variables are still rejected.
  EXPECT_TRUE(ParseAndAnalyze("for $p in stream(\"s\")/r/i "
                              "where $p/a >= $z/b return <x/>")
                  .status()
                  .IsInvalidArgument());
}

TEST(AnalyzerTest, MultiInputWindowsRejected) {
  Status status =
      ParseAndAnalyze(
          "for $p in stream(\"s\")/r/i "
          "for $w in stream(\"t\")/r/i |count 5| "
          "let $a := avg($w/x) "
          "where $p/a >= 1 return ( $p/a, $a )")
          .status();
  EXPECT_TRUE(status.IsUnsupported()) << status;
}

TEST(AnalyzerTest, MultiInputQueriesGetOnePropsEntryPerStream) {
  AnalyzedQuery query = MustAnalyze(
      "<o> { for $p in stream(\"s\")/r/i for $q in stream(\"t\")/r/i "
      "where $p/a >= 1 and $q/b <= 2 "
      "return ( $p/a, $q/b ) } </o>");
  ASSERT_EQ(query.bindings.size(), 2u);
  ASSERT_EQ(query.props.inputs().size(), 2u);
  EXPECT_EQ(query.props.inputs()[0].stream_name, "s");
  EXPECT_EQ(query.props.inputs()[1].stream_name, "t");
  EXPECT_EQ(query.bindings[0].item_predicates.size(), 1u);
  EXPECT_EQ(query.bindings[1].item_predicates.size(), 1u);
}

TEST(AnalyzerTest, WindowWithoutAggregateBecomesOpaqueOperator) {
  AnalyzedQuery query = MustAnalyze(
      "for $w in stream(\"s\")/r/i |count 10 step 5| "
      "return <win> { $w/x } </win>");
  const auto& ops = query.props.inputs()[0].operators;
  bool has_udf = false;
  for (const auto& op : ops) {
    if (std::holds_alternative<properties::UserDefinedOp>(op)) {
      has_udf = true;
      EXPECT_EQ(std::get<properties::UserDefinedOp>(op).name,
                "window-contents");
    }
  }
  EXPECT_TRUE(has_udf);
}

}  // namespace
}  // namespace streamshare::wxquery
