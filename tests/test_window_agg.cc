// Unit tests for window aggregation: item- and time-based windows with
// overlapping / tumbling / sampling steps, the internal (sum, count)
// representation of avg, the Fig.-5 window recombination operator, and
// the aggregate result filter. A parameterized sweep verifies that
// recombining fine windows reproduces exactly what direct coarse
// aggregation computes.

#include "engine/window_agg.h"

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "properties/window.h"

namespace streamshare::engine {
namespace {

using properties::AggregateFunc;
using properties::WindowSpec;

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

/// Item with a value element <x> and a time element <t>.
ItemPtr TimedItem(double t, double x) {
  auto node = std::make_unique<xml::XmlNode>("item");
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", t);
  node->AddLeaf("t", buffer);
  std::snprintf(buffer, sizeof(buffer), "%.1f", x);
  node->AddLeaf("x", buffer);
  return MakeItem(std::move(node));
}

std::vector<AggItem> Collect(const SinkOp& sink) {
  std::vector<AggItem> out;
  for (const ItemPtr& item : sink.items()) {
    Result<AggItem> agg = ParseAggItem(*item);
    EXPECT_TRUE(agg.ok()) << agg.status();
    out.push_back(*agg);
  }
  return out;
}

TEST(AggItemTest, RoundTripThroughXml) {
  AggItem agg;
  agg.seq = 7;
  agg.sum = Decimal::Parse("12.5").value();
  agg.count = 4;
  ItemPtr item = MakeAggItem(agg);
  Result<AggItem> parsed = ParseAggItem(*item);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->seq, 7);
  EXPECT_EQ(*parsed->sum, Decimal::Parse("12.5").value());
  EXPECT_EQ(*parsed->count, 4);
  EXPECT_FALSE(parsed->value.has_value());
}

TEST(AggItemTest, FinalizeAllFunctions) {
  AggItem agg;
  agg.seq = 0;
  agg.sum = Decimal::Parse("10.0").value();
  agg.count = 4;
  EXPECT_EQ(agg.Finalize(AggregateFunc::kSum).value(),
            Decimal::Parse("10.0").value());
  EXPECT_EQ(agg.Finalize(AggregateFunc::kCount).value(),
            Decimal::FromInt(4));
  EXPECT_EQ(agg.Finalize(AggregateFunc::kAvg).value(),
            Decimal::Parse("2.5").value());

  AggItem extremum;
  extremum.seq = 0;
  extremum.value = Decimal::Parse("3.5").value();
  EXPECT_EQ(extremum.Finalize(AggregateFunc::kMin).value(),
            Decimal::Parse("3.5").value());

  AggItem empty;
  empty.seq = 0;
  empty.sum = Decimal();
  empty.count = 0;
  EXPECT_TRUE(empty.Finalize(AggregateFunc::kAvg).status().IsOutOfRange());
  AggItem no_value;
  no_value.seq = 0;
  EXPECT_TRUE(
      no_value.Finalize(AggregateFunc::kMax).status().IsOutOfRange());
}

TEST(AggItemTest, ParseRejectsMalformed) {
  xml::XmlNode wrong("notwagg");
  EXPECT_FALSE(ParseAggItem(wrong).ok());
  xml::XmlNode no_seq("wagg");
  EXPECT_FALSE(ParseAggItem(no_seq).ok());
  xml::XmlNode bad_seq("wagg");
  bad_seq.AddLeaf("seq", "1.5");
  EXPECT_FALSE(ParseAggItem(bad_seq).ok());
}

TEST(WindowAggTest, TumblingCountWindowSums) {
  OperatorGraph graph;
  auto* agg = graph.Add<WindowAggOp>("agg", AggregateFunc::kSum, P("x"),
                                     WindowSpec::Count(3).value());
  auto* sink = graph.Add<SinkOp>("sink", true);
  agg->AddDownstream(sink);

  std::vector<ItemPtr> items;
  for (int i = 1; i <= 7; ++i) items.push_back(TimedItem(i, i));
  ASSERT_TRUE(RunStream(agg, items).ok());

  std::vector<AggItem> results = Collect(*sink);
  // Windows [1,2,3] and [4,5,6] complete; the partial [7] flushes at end.
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(*results[0].sum, Decimal::Parse("6.0").value());
  EXPECT_EQ(*results[0].count, 3);
  EXPECT_EQ(*results[1].sum, Decimal::Parse("15.0").value());
  EXPECT_EQ(*results[2].sum, Decimal::Parse("7.0").value());
  EXPECT_EQ(*results[2].count, 1);
}

TEST(WindowAggTest, SlidingCountWindowOverlaps) {
  OperatorGraph graph;
  auto* agg = graph.Add<WindowAggOp>("agg", AggregateFunc::kSum, P("x"),
                                     WindowSpec::Count(4, 2).value());
  auto* sink = graph.Add<SinkOp>("sink", true);
  agg->AddDownstream(sink);
  std::vector<ItemPtr> items;
  for (int i = 1; i <= 8; ++i) items.push_back(TimedItem(i, 1.0));
  ASSERT_TRUE(RunStream(agg, items).ok());
  std::vector<AggItem> results = Collect(*sink);
  // Windows at items [0,4), [2,6), [4,8) complete with 4 items each; the
  // final partial [6,8) flushes with 2.
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(*results[0].count, 4);
  EXPECT_EQ(*results[1].count, 4);
  EXPECT_EQ(*results[2].count, 4);
  EXPECT_EQ(*results[3].count, 2);
}

TEST(WindowAggTest, SamplingCountWindowSkipsItems) {
  // Window of 2 items every 4 items: items 2,3 (0-based) fall between
  // windows.
  OperatorGraph graph;
  auto* agg = graph.Add<WindowAggOp>("agg", AggregateFunc::kCount, P("x"),
                                     WindowSpec::Count(2, 4).value());
  auto* sink = graph.Add<SinkOp>("sink", true);
  agg->AddDownstream(sink);
  std::vector<ItemPtr> items;
  for (int i = 0; i < 8; ++i) items.push_back(TimedItem(i, i));
  ASSERT_TRUE(RunStream(agg, items).ok());
  std::vector<AggItem> results = Collect(*sink);
  ASSERT_GE(results.size(), 2u);
  EXPECT_EQ(*results[0].count, 2);
  EXPECT_EQ(*results[1].count, 2);
}

TEST(WindowAggTest, TimeWindowsAnchoredAtZero) {
  OperatorGraph graph;
  auto* agg = graph.Add<WindowAggOp>(
      "agg", AggregateFunc::kAvg, P("x"),
      WindowSpec::Diff(P("t"), Decimal::FromInt(20), Decimal::FromInt(10))
          .value());
  auto* sink = graph.Add<SinkOp>("sink", true);
  agg->AddDownstream(sink);

  // Items at t = 5, 15, 25, 35: window 0 = [0,20) holds {5,15},
  // window 1 = [10,30) holds {15,25}, window 2 = [20,40) holds {25,35}.
  ASSERT_TRUE(RunStream(agg, {TimedItem(5, 1), TimedItem(15, 2),
                              TimedItem(25, 3), TimedItem(35, 4)})
                  .ok());
  std::vector<AggItem> results = Collect(*sink);
  ASSERT_GE(results.size(), 2u);
  EXPECT_EQ(results[0].seq, 0);
  EXPECT_EQ(*results[0].sum, Decimal::Parse("3.0").value());
  EXPECT_EQ(*results[0].count, 2);
  EXPECT_EQ(results[1].seq, 1);
  EXPECT_EQ(*results[1].sum, Decimal::Parse("5.0").value());
}

TEST(WindowAggTest, EmptyTimeWindowsAreEmittedForContinuity) {
  OperatorGraph graph;
  auto* agg = graph.Add<WindowAggOp>(
      "agg", AggregateFunc::kSum, P("x"),
      WindowSpec::Diff(P("t"), Decimal::FromInt(10)).value());
  auto* sink = graph.Add<SinkOp>("sink", true);
  agg->AddDownstream(sink);
  // A gap: items at t=5 and t=35; windows [10,20) and [20,30) are empty.
  ASSERT_TRUE(
      RunStream(agg, {TimedItem(5, 1), TimedItem(35, 2)}).ok());
  std::vector<AggItem> results = Collect(*sink);
  ASSERT_EQ(results.size(), 4u);  // [0,10) [10,20) [20,30) + flush [30,40)
  EXPECT_EQ(*results[1].count, 0);
  EXPECT_EQ(*results[2].count, 0);
  EXPECT_EQ(results[3].seq, 3);
  EXPECT_EQ(*results[3].count, 1);
}

TEST(WindowAggTest, StreamStartingLateFastForwards) {
  OperatorGraph graph;
  auto* agg = graph.Add<WindowAggOp>(
      "agg", AggregateFunc::kSum, P("x"),
      WindowSpec::Diff(P("t"), Decimal::FromInt(10)).value());
  auto* sink = graph.Add<SinkOp>("sink", true);
  agg->AddDownstream(sink);
  // First item at t = 1000: no flood of empty windows for [0,1000).
  ASSERT_TRUE(
      RunStream(agg, {TimedItem(1000, 1), TimedItem(1011, 2)}).ok());
  std::vector<AggItem> results = Collect(*sink);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].seq, 100);
  EXPECT_EQ(results[1].seq, 101);
}

TEST(WindowAggTest, UnsortedTimeStreamIsRejected) {
  OperatorGraph graph;
  auto* agg = graph.Add<WindowAggOp>(
      "agg", AggregateFunc::kSum, P("x"),
      WindowSpec::Diff(P("t"), Decimal::FromInt(10)).value());
  auto* sink = graph.Add<SinkOp>("sink");
  agg->AddDownstream(sink);
  ASSERT_TRUE(agg->Push(TimedItem(20, 1)).ok());
  Status status = agg->Push(TimedItem(10, 2));
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
}

TEST(WindowAggTest, MinMaxCarryExtremum) {
  OperatorGraph graph;
  auto* min_agg = graph.Add<WindowAggOp>("min", AggregateFunc::kMin, P("x"),
                                         WindowSpec::Count(3).value());
  auto* max_agg = graph.Add<WindowAggOp>("max", AggregateFunc::kMax, P("x"),
                                         WindowSpec::Count(3).value());
  auto* min_sink = graph.Add<SinkOp>("s1", true);
  auto* max_sink = graph.Add<SinkOp>("s2", true);
  min_agg->AddDownstream(min_sink);
  max_agg->AddDownstream(max_sink);
  std::vector<ItemPtr> items{TimedItem(1, 5), TimedItem(2, 2),
                             TimedItem(3, 9)};
  ASSERT_TRUE(RunStream(min_agg, items).ok());
  ASSERT_TRUE(RunStream(max_agg, items).ok());
  EXPECT_EQ(*Collect(*min_sink)[0].value, Decimal::Parse("2.0").value());
  EXPECT_EQ(*Collect(*max_sink)[0].value, Decimal::Parse("9.0").value());
}

TEST(AggCombineTest, PaperFig5Recombination) {
  // Fine: |t diff 20 step 10| (Q3); coarse: |t diff 60 step 40| (Q4).
  WindowSpec fine =
      WindowSpec::Diff(P("t"), Decimal::FromInt(20), Decimal::FromInt(10))
          .value();
  WindowSpec coarse =
      WindowSpec::Diff(P("t"), Decimal::FromInt(60), Decimal::FromInt(40))
          .value();

  OperatorGraph graph;
  auto* fine_agg =
      graph.Add<WindowAggOp>("fine", AggregateFunc::kAvg, P("x"), fine);
  auto* combine =
      graph.Add<AggCombineOp>("combine", AggregateFunc::kAvg, fine, coarse);
  auto* combined_sink = graph.Add<SinkOp>("cs", true);
  fine_agg->AddDownstream(combine);
  combine->AddDownstream(combined_sink);

  auto* direct_agg =
      graph.Add<WindowAggOp>("direct", AggregateFunc::kAvg, P("x"), coarse);
  auto* direct_sink = graph.Add<SinkOp>("ds", true);
  direct_agg->AddDownstream(direct_sink);

  std::vector<ItemPtr> items;
  for (int t = 0; t < 400; t += 3) {
    items.push_back(TimedItem(t, (t * 7) % 13));
  }
  ASSERT_TRUE(RunStream(fine_agg, items).ok());
  ASSERT_TRUE(RunStream(direct_agg, items).ok());

  std::vector<AggItem> combined = Collect(*combined_sink);
  std::vector<AggItem> direct = Collect(*direct_sink);
  ASSERT_GT(combined.size(), 2u);
  // Every recombined window must equal the directly computed one (modulo
  // trailing windows the direct variant flushed at end-of-stream).
  ASSERT_LE(combined.size(), direct.size());
  for (size_t i = 0; i < combined.size(); ++i) {
    EXPECT_EQ(combined[i].seq, direct[i].seq);
    EXPECT_EQ(*combined[i].sum, *direct[i].sum) << "window " << i;
    EXPECT_EQ(*combined[i].count, *direct[i].count) << "window " << i;
  }
}

struct CombineCase {
  int fine_size, fine_step, coarse_size, coarse_step;
};

class CombineSweep : public ::testing::TestWithParam<CombineCase> {};

TEST_P(CombineSweep, RecombinationMatchesDirectAggregation) {
  const CombineCase& c = GetParam();
  WindowSpec fine = WindowSpec::Diff(P("t"), Decimal::FromInt(c.fine_size),
                                     Decimal::FromInt(c.fine_step))
                        .value();
  WindowSpec coarse =
      WindowSpec::Diff(P("t"), Decimal::FromInt(c.coarse_size),
                       Decimal::FromInt(c.coarse_step))
          .value();
  for (AggregateFunc func :
       {AggregateFunc::kSum, AggregateFunc::kCount, AggregateFunc::kAvg,
        AggregateFunc::kMin, AggregateFunc::kMax}) {
    OperatorGraph graph;
    auto* fine_agg = graph.Add<WindowAggOp>("f", func, P("x"), fine);
    auto* combine = graph.Add<AggCombineOp>("c", func, fine, coarse);
    auto* cs = graph.Add<SinkOp>("cs", true);
    fine_agg->AddDownstream(combine);
    combine->AddDownstream(cs);
    auto* direct = graph.Add<WindowAggOp>("d", func, P("x"), coarse);
    auto* ds = graph.Add<SinkOp>("ds", true);
    direct->AddDownstream(ds);

    std::vector<ItemPtr> items;
    for (int t = 0; t < 600; t += 2) {
      items.push_back(TimedItem(t + 0.5, (t * 11) % 17));
    }
    ASSERT_TRUE(RunStream(fine_agg, items).ok());
    ASSERT_TRUE(RunStream(direct, items).ok());
    std::vector<AggItem> combined = Collect(*cs);
    std::vector<AggItem> reference = Collect(*ds);
    ASSERT_GT(combined.size(), 0u);
    ASSERT_LE(combined.size(), reference.size());
    for (size_t i = 0; i < combined.size(); ++i) {
      EXPECT_EQ(combined[i].seq, reference[i].seq);
      if (func == AggregateFunc::kMin || func == AggregateFunc::kMax) {
        EXPECT_EQ(combined[i].value, reference[i].value)
            << "func " << static_cast<int>(func) << " window " << i;
      } else {
        EXPECT_EQ(combined[i].sum, reference[i].sum)
            << "func " << static_cast<int>(func) << " window " << i;
        EXPECT_EQ(combined[i].count, reference[i].count);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindowPairs, CombineSweep,
    ::testing::Values(CombineCase{20, 10, 60, 40},   // the paper's pair
                      CombineCase{20, 10, 20, 10},   // identity
                      CombineCase{10, 10, 50, 20},   // tumbling fine
                      CombineCase{20, 10, 40, 10},   // same step
                      CombineCase{10, 5, 30, 30},    // tumbling coarse
                      CombineCase{10, 10, 100, 50}));

TEST(AggFilterTest, FiltersOnFinalizedValue) {
  OperatorGraph graph;
  auto* filter = graph.Add<AggFilterOp>(
      "filter", AggregateFunc::kAvg,
      std::vector<predicate::AtomicPredicate>{
          predicate::AtomicPredicate::Compare(
              properties::AggregateValuePath(),
              predicate::ComparisonOp::kGe, Decimal::Parse("1.3").value()),
      });
  auto* sink = graph.Add<SinkOp>("sink", true);
  filter->AddDownstream(sink);

  AggItem high;
  high.seq = 0;
  high.sum = Decimal::Parse("3.0").value();
  high.count = 2;  // avg 1.5 ≥ 1.3 → pass
  AggItem low;
  low.seq = 1;
  low.sum = Decimal::Parse("2.0").value();
  low.count = 2;  // avg 1.0 < 1.3 → drop
  AggItem empty;
  empty.seq = 2;
  empty.sum = Decimal();
  empty.count = 0;  // empty window → drop silently

  ASSERT_TRUE(RunStream(filter, {MakeAggItem(high), MakeAggItem(low),
                                 MakeAggItem(empty)})
                  .ok());
  ASSERT_EQ(sink->item_count(), 1u);
  EXPECT_EQ(Collect(*sink)[0].seq, 0);
}

}  // namespace
}  // namespace streamshare::engine
