// Tests for properties serialization: the metadata format super-peers
// exchange. Round-trips must preserve semantic equality — verified
// against the paper's queries, the full generated workload, and via
// MatchProperties behaving identically on originals and round-tripped
// copies.

#include "properties/serialize.h"

#include <gtest/gtest.h>

#include "matching/match_properties.h"
#include "workload/paper_queries.h"
#include "workload/query_gen.h"
#include "wxquery/analyzer.h"

namespace streamshare::properties {
namespace {

Properties PropsOf(const std::string& query_text) {
  Result<wxquery::AnalyzedQuery> analyzed =
      wxquery::ParseAndAnalyze(query_text);
  EXPECT_TRUE(analyzed.ok()) << analyzed.status();
  return analyzed->props;
}

/// Semantic equality of per-input properties via mutual matching.
bool InputsEquivalent(const InputStreamProperties& a,
                      const InputStreamProperties& b) {
  matching::MatchOptions complete;
  complete.edge_local_predicates = false;
  return matching::MatchProperties(a, b, complete) &&
         matching::MatchProperties(b, a, complete);
}

TEST(PredicateTextTest, RoundTripsAllForms) {
  const char* texts[] = {
      "coord/cel/ra >= 120.0", "en < 1.3",     "phc = 7",
      "a <= b + 3",            "a < b - 2.5",  "x > y",
      "det_time <= 99999.5",
  };
  for (const char* text : texts) {
    Result<predicate::AtomicPredicate> parsed = PredicateFromText(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << " for " << text;
    EXPECT_EQ(PredicateToText(*parsed), text);
  }
}

TEST(PredicateTextTest, RejectsMalformed) {
  EXPECT_FALSE(PredicateFromText("").ok());
  EXPECT_FALSE(PredicateFromText("a").ok());
  EXPECT_FALSE(PredicateFromText("a >=").ok());
  EXPECT_FALSE(PredicateFromText("a ~ 5").ok());
  EXPECT_FALSE(PredicateFromText("a >= 5 extra").ok());
  EXPECT_FALSE(PredicateFromText("a >= b * 3").ok());
  EXPECT_FALSE(PredicateFromText("5 >= 6").ok());  // constant lhs
}

TEST(SerializeTest, PaperQueriesRoundTrip) {
  for (const char* query : {workload::kQuery1, workload::kQuery2,
                            workload::kQuery3, workload::kQuery4}) {
    Properties original = PropsOf(query);
    std::string text = PropertiesToText(original);
    Result<Properties> parsed = PropertiesFromText(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    ASSERT_EQ(parsed->inputs().size(), original.inputs().size());
    for (size_t i = 0; i < original.inputs().size(); ++i) {
      EXPECT_EQ(parsed->inputs()[i].stream_name,
                original.inputs()[i].stream_name);
      EXPECT_EQ(parsed->inputs()[i].operators.size(),
                original.inputs()[i].operators.size());
      EXPECT_TRUE(
          InputsEquivalent(parsed->inputs()[i], original.inputs()[i]))
          << text;
    }
  }
}

TEST(SerializeTest, GeneratedWorkloadRoundTrips) {
  workload::QueryGenerator generator(
      workload::QueryGenConfig::Default(55));
  for (const std::string& query : generator.Generate(150)) {
    Properties original = PropsOf(query);
    Result<Properties> parsed =
        PropertiesFromText(PropertiesToText(original));
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << query;
    for (size_t i = 0; i < original.inputs().size(); ++i) {
      EXPECT_TRUE(
          InputsEquivalent(parsed->inputs()[i], original.inputs()[i]))
          << query;
    }
  }
}

TEST(SerializeTest, MatchingAgreesAcrossTheWire) {
  // Matching decisions must be identical whether computed on the local
  // properties or on copies that crossed the (serialized) wire.
  Properties q1 = PropsOf(workload::kQuery1);
  Properties q2 = PropsOf(workload::kQuery2);
  Properties q3 = PropsOf(workload::kQuery3);
  Properties wire_q1 = PropertiesFromText(PropertiesToText(q1)).value();
  Properties wire_q2 = PropertiesFromText(PropertiesToText(q2)).value();
  Properties wire_q3 = PropertiesFromText(PropertiesToText(q3)).value();

  EXPECT_TRUE(matching::MatchProperties(wire_q1.inputs()[0],
                                        wire_q2.inputs()[0]));
  EXPECT_FALSE(matching::MatchProperties(wire_q2.inputs()[0],
                                         wire_q1.inputs()[0]));
  EXPECT_TRUE(matching::MatchProperties(wire_q1.inputs()[0],
                                        wire_q3.inputs()[0]));
  EXPECT_FALSE(matching::MatchProperties(wire_q3.inputs()[0],
                                         wire_q1.inputs()[0]));
}

TEST(SerializeTest, UserDefinedOperators) {
  Properties props;
  InputStreamProperties& input = props.AddInput("photons");
  input.operators.push_back(UserDefinedOp{"blur", {"3", "fast mode"}});
  Result<Properties> parsed =
      PropertiesFromText(PropertiesToText(props));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const auto& udf =
      std::get<UserDefinedOp>(parsed->inputs()[0].operators[0]);
  EXPECT_EQ(udf.name, "blur");
  EXPECT_EQ(udf.params, (std::vector<std::string>{"3", "fast mode"}));
}

TEST(SerializeTest, OriginalStreamProperties) {
  Properties props = Properties::ForOriginalStream("photons");
  Result<Properties> parsed =
      PropertiesFromText(PropertiesToText(props));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->IsOriginal());
  EXPECT_EQ(parsed->inputs()[0].stream_name, "photons");
}

TEST(SerializeTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(PropertiesFromText("<nope/>").ok());
  EXPECT_FALSE(PropertiesFromText("<properties><input/></properties>")
                   .ok());  // no stream
  EXPECT_FALSE(
      PropertiesFromText("<properties><input><stream>s</stream>"
                         "<mystery/></input></properties>")
          .ok());
  EXPECT_FALSE(
      PropertiesFromText("<properties><input><stream>s</stream>"
                         "<selection><pred>garbage !!</pred></selection>"
                         "</input></properties>")
          .ok());
  // Unsatisfiable selections are rejected at parse, like at registration.
  EXPECT_TRUE(
      PropertiesFromText("<properties><input><stream>s</stream>"
                         "<selection><pred>x &gt;= 5</pred>"
                         "<pred>x &lt;= 1</pred></selection>"
                         "</input></properties>")
          .status()
          .IsUnsatisfiable());
  // Aggregations need fn/element/window.
  EXPECT_FALSE(
      PropertiesFromText("<properties><input><stream>s</stream>"
                         "<aggregation><fn>avg</fn></aggregation>"
                         "</input></properties>")
          .ok());
}

}  // namespace
}  // namespace streamshare::properties
