// Tests for predicate graphs: construction, satisfiability, minimization,
// and implication — including a randomized property sweep checking the
// complete implication test against brute-force evaluation on sampled
// assignments, and the soundness relation between the edge-local
// (Algorithm 3) and complete tests.

#include "predicate/graph.h"

#include <gtest/gtest.h>

#include <random>

#include "matching/match_predicates.h"
#include "predicate/eval.h"
#include "xml/xml_node.h"

namespace streamshare::predicate {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }
Decimal D(const char* text) { return Decimal::Parse(text).value(); }

AtomicPredicate Cmp(const char* path, ComparisonOp op, const char* c) {
  return AtomicPredicate::Compare(P(path), op, D(c));
}

TEST(PredicateGraphTest, EmptyGraphIsSatisfiableAndImpliedByAll) {
  PredicateGraph empty;
  EXPECT_TRUE(empty.IsSatisfiable());
  PredicateGraph some = PredicateGraph::Build(
      {Cmp("x", ComparisonOp::kGe, "1")});
  EXPECT_TRUE(some.Implies(empty));
  EXPECT_FALSE(empty.Implies(some));
}

TEST(PredicateGraphTest, BuildKeepsTightestParallelEdge) {
  PredicateGraph graph = PredicateGraph::Build({
      Cmp("x", ComparisonOp::kLe, "10"),
      Cmp("x", ComparisonOp::kLe, "5"),
      Cmp("x", ComparisonOp::kLe, "7"),
  });
  std::optional<int> x = graph.FindNode(P("x"));
  ASSERT_TRUE(x.has_value());
  std::optional<Bound> bound = graph.EdgeBound(*x, 0);
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(bound->value, D("5"));
}

TEST(PredicateGraphTest, SatisfiableBox) {
  PredicateGraph graph = PredicateGraph::Build({
      Cmp("ra", ComparisonOp::kGe, "120.0"),
      Cmp("ra", ComparisonOp::kLe, "138.0"),
      Cmp("dec", ComparisonOp::kGe, "-49.0"),
      Cmp("dec", ComparisonOp::kLe, "-40.0"),
  });
  EXPECT_TRUE(graph.IsSatisfiable());
}

TEST(PredicateGraphTest, ContradictionIsUnsatisfiable) {
  PredicateGraph graph = PredicateGraph::Build({
      Cmp("x", ComparisonOp::kGe, "10"),
      Cmp("x", ComparisonOp::kLe, "5"),
  });
  EXPECT_FALSE(graph.IsSatisfiable());
}

TEST(PredicateGraphTest, StrictCycleIsUnsatisfiable) {
  // x < y and y < x: zero-weight cycle with strict edges.
  PredicateGraph graph = PredicateGraph::Build({
      AtomicPredicate::CompareVars(P("x"), ComparisonOp::kLt, P("y"),
                                   Decimal()),
      AtomicPredicate::CompareVars(P("y"), ComparisonOp::kLt, P("x"),
                                   Decimal()),
  });
  EXPECT_FALSE(graph.IsSatisfiable());
  // Non-strict version (x ≤ y, y ≤ x) is satisfiable: x = y.
  PredicateGraph nonstrict = PredicateGraph::Build({
      AtomicPredicate::CompareVars(P("x"), ComparisonOp::kLe, P("y"),
                                   Decimal()),
      AtomicPredicate::CompareVars(P("y"), ComparisonOp::kLe, P("x"),
                                   Decimal()),
  });
  EXPECT_TRUE(nonstrict.IsSatisfiable());
}

TEST(PredicateGraphTest, TransitiveContradictionThroughVariables) {
  // x ≤ y - 1, y ≤ z - 1, z ≤ x - 1: negative cycle.
  PredicateGraph graph = PredicateGraph::Build({
      AtomicPredicate::CompareVars(P("x"), ComparisonOp::kLe, P("y"),
                                   D("-1")),
      AtomicPredicate::CompareVars(P("y"), ComparisonOp::kLe, P("z"),
                                   D("-1")),
      AtomicPredicate::CompareVars(P("z"), ComparisonOp::kLe, P("x"),
                                   D("-1")),
  });
  EXPECT_FALSE(graph.IsSatisfiable());
}

TEST(PredicateGraphTest, SelfLoopVacuousOrInfeasible) {
  PredicateGraph vacuous = PredicateGraph::Build({
      AtomicPredicate::CompareVars(P("x"), ComparisonOp::kLe, P("x"),
                                   D("0")),
  });
  EXPECT_TRUE(vacuous.IsSatisfiable());
  PredicateGraph infeasible = PredicateGraph::Build({
      AtomicPredicate::CompareVars(P("x"), ComparisonOp::kLt, P("x"),
                                   D("0")),
  });
  EXPECT_FALSE(infeasible.IsSatisfiable());
}

TEST(PredicateGraphTest, MinimizeRemovesRedundantEdges) {
  // x ≤ 5 and x ≤ 7: after the tightest-parallel-edge collapse only x ≤ 5
  // remains anyway; add a transitive redundancy instead:
  // x ≤ y, y ≤ 3, x ≤ 10 (implied: x ≤ 3 < 10).
  PredicateGraph graph = PredicateGraph::Build({
      AtomicPredicate::CompareVars(P("x"), ComparisonOp::kLe, P("y"),
                                   Decimal()),
      Cmp("y", ComparisonOp::kLe, "3"),
      Cmp("x", ComparisonOp::kLe, "10"),
  });
  size_t before = graph.edge_count();
  graph.Minimize();
  EXPECT_LT(graph.edge_count(), before);
  // The minimized graph must still imply the original constraint set.
  PredicateGraph original = PredicateGraph::Build({
      AtomicPredicate::CompareVars(P("x"), ComparisonOp::kLe, P("y"),
                                   Decimal()),
      Cmp("y", ComparisonOp::kLe, "3"),
      Cmp("x", ComparisonOp::kLe, "10"),
  });
  EXPECT_TRUE(graph.Implies(original));
  EXPECT_TRUE(original.Implies(graph));
}

TEST(PredicateGraphTest, PaperExampleQ2ImpliesQ1) {
  // The matching of Fig. 4: Query 2's predicates imply Query 1's.
  PredicateGraph q1 = PredicateGraph::Build({
      Cmp("ra", ComparisonOp::kGe, "120.0"),
      Cmp("ra", ComparisonOp::kLe, "138.0"),
      Cmp("dec", ComparisonOp::kGe, "-49.0"),
      Cmp("dec", ComparisonOp::kLe, "-40.0"),
  });
  PredicateGraph q2 = PredicateGraph::Build({
      Cmp("en", ComparisonOp::kGe, "1.3"),
      Cmp("ra", ComparisonOp::kGe, "130.5"),
      Cmp("ra", ComparisonOp::kLe, "135.5"),
      Cmp("dec", ComparisonOp::kGe, "-48.0"),
      Cmp("dec", ComparisonOp::kLe, "-45.0"),
  });
  EXPECT_TRUE(q2.Implies(q1));
  EXPECT_FALSE(q1.Implies(q2));
  EXPECT_TRUE(matching::MatchPredicatesEdgeLocal(q1, q2));
  EXPECT_FALSE(matching::MatchPredicatesEdgeLocal(q2, q1));
}

TEST(PredicateGraphTest, ImplicationUsesDerivedBounds) {
  // Stronger: x ≤ y and y ≤ 3. Weaker: x ≤ 5. The direct edge x→0 does
  // not exist in the stronger graph; only the derived bound x ≤ 3 proves
  // the implication — the edge-local test must fail, the complete one
  // succeed.
  PredicateGraph stronger = PredicateGraph::Build({
      AtomicPredicate::CompareVars(P("x"), ComparisonOp::kLe, P("y"),
                                   Decimal()),
      Cmp("y", ComparisonOp::kLe, "3"),
  });
  PredicateGraph weaker = PredicateGraph::Build({
      Cmp("x", ComparisonOp::kLe, "5"),
  });
  EXPECT_TRUE(stronger.Implies(weaker));
  EXPECT_TRUE(matching::MatchPredicatesComplete(weaker, stronger));
  EXPECT_FALSE(matching::MatchPredicatesEdgeLocal(weaker, stronger));
}

TEST(PredicateGraphTest, StrictnessBlocksImplication) {
  PredicateGraph nonstrict =
      PredicateGraph::Build({Cmp("x", ComparisonOp::kLe, "5")});
  PredicateGraph strict =
      PredicateGraph::Build({Cmp("x", ComparisonOp::kLt, "5")});
  EXPECT_TRUE(strict.Implies(nonstrict));
  EXPECT_FALSE(nonstrict.Implies(strict));
}

TEST(PredicateGraphTest, ToPredicatesRoundTrips) {
  std::vector<AtomicPredicate> conjunction{
      Cmp("ra", ComparisonOp::kGe, "120.0"),
      Cmp("ra", ComparisonOp::kLt, "138.0"),
      AtomicPredicate::CompareVars(P("a"), ComparisonOp::kLe, P("b"),
                                   D("2.5")),
  };
  PredicateGraph graph = PredicateGraph::Build(conjunction);
  PredicateGraph rebuilt = PredicateGraph::Build(graph.ToPredicates());
  EXPECT_TRUE(graph.EquivalentTo(rebuilt));
}

// ---------------------------------------------------------------------------
// Property-based sweep: random conjunctions over a small variable/constant
// domain. Checks
//   (1) implication soundness against brute-force sampling,
//   (2) edge-local ⇒ complete (Algorithm 3 is conservative),
//   (3) minimization preserves equivalence,
//   (4) satisfiability agrees with existence of a satisfying sample.
// ---------------------------------------------------------------------------

class RandomGraphSweep : public ::testing::TestWithParam<int> {};

std::vector<AtomicPredicate> RandomConjunction(std::mt19937_64* rng) {
  static const char* const kVars[] = {"u", "v", "w"};
  std::uniform_int_distribution<int> count_dist(1, 5);
  std::uniform_int_distribution<int> var_dist(0, 2);
  std::uniform_int_distribution<int> const_dist(-4, 4);
  std::uniform_int_distribution<int> op_dist(0, 4);
  std::uniform_int_distribution<int> kind_dist(0, 2);
  static const ComparisonOp kOps[] = {ComparisonOp::kEq, ComparisonOp::kLt,
                                      ComparisonOp::kLe, ComparisonOp::kGt,
                                      ComparisonOp::kGe};
  std::vector<AtomicPredicate> out;
  int count = count_dist(*rng);
  for (int i = 0; i < count; ++i) {
    ComparisonOp op = kOps[op_dist(*rng)];
    int lhs = var_dist(*rng);
    if (kind_dist(*rng) == 0) {
      int rhs = var_dist(*rng);
      if (rhs == lhs) rhs = (rhs + 1) % 3;
      out.push_back(AtomicPredicate::CompareVars(
          P(kVars[lhs]), op, P(kVars[rhs]),
          Decimal::FromInt(const_dist(*rng))));
    } else {
      out.push_back(AtomicPredicate::Compare(
          P(kVars[lhs]), op, Decimal::FromInt(const_dist(*rng))));
    }
  }
  return out;
}

// Fast direct evaluation of a conjunction on an assignment over doubles.
// Variable names are "u", "v", "w".
bool EvalOnAssignment(const std::vector<AtomicPredicate>& conjunction,
                      double u, double v, double w) {
  auto value_of = [&](const xml::Path& path) {
    const std::string& name = path.steps().front();
    if (name == "u") return u;
    if (name == "v") return v;
    return w;
  };
  for (const AtomicPredicate& pred : conjunction) {
    double lhs = value_of(pred.lhs);
    double rhs = pred.constant.ToDouble();
    if (pred.rhs_var.has_value()) rhs += value_of(*pred.rhs_var);
    bool ok = false;
    switch (pred.op) {
      case ComparisonOp::kEq:
        ok = lhs == rhs;
        break;
      case ComparisonOp::kLt:
        ok = lhs < rhs;
        break;
      case ComparisonOp::kLe:
        ok = lhs <= rhs;
        break;
      case ComparisonOp::kGt:
        ok = lhs > rhs;
        break;
      case ComparisonOp::kGe:
        ok = lhs >= rhs;
        break;
    }
    if (!ok) return false;
  }
  return true;
}

TEST_P(RandomGraphSweep, ImplicationSoundAndEdgeLocalConservative) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    std::vector<AtomicPredicate> a_preds = RandomConjunction(&rng);
    std::vector<AtomicPredicate> b_preds = RandomConjunction(&rng);
    PredicateGraph a = PredicateGraph::Build(a_preds);
    PredicateGraph b = PredicateGraph::Build(b_preds);
    if (!a.IsSatisfiable() || !b.IsSatisfiable()) continue;
    a.Minimize();
    b.Minimize();

    // (1) Soundness: if a ⇒ b, every sampled assignment satisfying
    // a_preds must satisfy b_preds (half-step grid catches strict-bound
    // violations that integer grids miss).
    if (a.Implies(b)) {
      for (double u = -6.0; u <= 6.0; u += 0.5) {
        for (double v = -6.0; v <= 6.0; v += 0.5) {
          for (double w = -6.0; w <= 6.0; w += 0.5) {
            if (EvalOnAssignment(a_preds, u, v, w)) {
              ASSERT_TRUE(EvalOnAssignment(b_preds, u, v, w))
                  << "counterexample (" << u << "," << v << "," << w
                  << ")\nA: " << a.ToString() << "\nB: " << b.ToString();
            }
          }
        }
      }
    }
    // (2) Edge-local acceptance implies complete acceptance.
    if (matching::MatchPredicatesEdgeLocal(b, a)) {
      EXPECT_TRUE(matching::MatchPredicatesComplete(b, a))
          << "A: " << a.ToString() << "\nB: " << b.ToString();
    }
  }
}

TEST_P(RandomGraphSweep, MinimizationPreservesEquivalence) {
  std::mt19937_64 rng(GetParam() + 1000);
  for (int round = 0; round < 60; ++round) {
    std::vector<AtomicPredicate> preds = RandomConjunction(&rng);
    PredicateGraph graph = PredicateGraph::Build(preds);
    if (!graph.IsSatisfiable()) continue;
    PredicateGraph original = graph;
    graph.Minimize();
    EXPECT_TRUE(graph.EquivalentTo(original))
        << "original:\n"
        << original.ToString() << "\nminimized:\n"
        << graph.ToString();
    EXPECT_LE(graph.edge_count(), original.edge_count());
  }
}

TEST_P(RandomGraphSweep, SatisfiabilityAgreesWithBruteForce) {
  // Both directions, checked soundly: an UNSAT verdict means no sampled
  // assignment may satisfy the conjunction; a SAT verdict must be
  // witnessed by some assignment on a quarter-step grid (constants are in
  // [-4,4] and at most 4 nodes take part in any cycle, so satisfiable
  // systems have rational models with denominator ≤ 4 inside [-8,8]³).
  std::mt19937_64 rng(GetParam() + 2000);
  for (int round = 0; round < 25; ++round) {
    std::vector<AtomicPredicate> preds = RandomConjunction(&rng);
    PredicateGraph graph = PredicateGraph::Build(preds);
    bool witnessed = false;
    for (double u = -8.0; u <= 8.0 && !witnessed; u += 0.25) {
      for (double v = -8.0; v <= 8.0 && !witnessed; v += 0.25) {
        for (double w = -8.0; w <= 8.0 && !witnessed; w += 0.25) {
          witnessed = EvalOnAssignment(preds, u, v, w);
        }
      }
    }
    EXPECT_EQ(graph.IsSatisfiable(), witnessed) << graph.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace streamshare::predicate
