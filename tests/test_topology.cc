// Unit tests for the network substrate: topology building, shortest paths,
// and utilization state.

#include "network/topology.h"

#include <gtest/gtest.h>

#include "network/state.h"

namespace streamshare::network {
namespace {

TEST(TopologyTest, AddPeersAndLinks) {
  Topology topology;
  NodeId a = topology.AddPeer("A");
  NodeId b = topology.AddPeer("B");
  Result<LinkId> link = topology.AddLink(a, b, 1000.0);
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(topology.peer_count(), 2u);
  EXPECT_EQ(topology.link_count(), 1u);
  EXPECT_EQ(topology.link(*link).bandwidth_kbps, 1000.0);
  EXPECT_EQ(topology.FindLink(a, b), link.value());
  EXPECT_EQ(topology.FindLink(b, a), link.value());  // undirected
  EXPECT_EQ(topology.FindPeer("B"), b);
  EXPECT_FALSE(topology.FindPeer("C").has_value());
}

TEST(TopologyTest, RejectsBadLinks) {
  Topology topology;
  NodeId a = topology.AddPeer("A");
  NodeId b = topology.AddPeer("B");
  EXPECT_TRUE(topology.AddLink(a, a).status().IsInvalidArgument());
  EXPECT_TRUE(topology.AddLink(a, 99).status().IsInvalidArgument());
  ASSERT_TRUE(topology.AddLink(a, b).ok());
  EXPECT_TRUE(topology.AddLink(b, a).status().IsAlreadyExists());
}

TEST(TopologyTest, ShortestPathOnGrid) {
  Topology grid = Topology::Grid(4, 4);
  EXPECT_EQ(grid.peer_count(), 16u);
  EXPECT_EQ(grid.link_count(), 24u);  // 2·4·3 horizontal+vertical
  // Corner to corner: 6 hops, 7 nodes.
  Result<std::vector<NodeId>> path = grid.ShortestPath(0, 15);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->size(), 7u);
  EXPECT_EQ(path->front(), 0);
  EXPECT_EQ(path->back(), 15);
  // Consecutive nodes are linked.
  Result<std::vector<LinkId>> links = grid.LinksOnPath(*path);
  ASSERT_TRUE(links.ok());
  EXPECT_EQ(links->size(), 6u);
}

TEST(TopologyTest, ShortestPathTrivialAndUnreachable) {
  Topology topology;
  NodeId a = topology.AddPeer("A");
  NodeId b = topology.AddPeer("B");
  Result<std::vector<NodeId>> self = topology.ShortestPath(a, a);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(*self, std::vector<NodeId>{a});
  EXPECT_TRUE(topology.ShortestPath(a, b).status().IsNotFound());
}

TEST(TopologyTest, ShortestPathIsDeterministic) {
  Topology grid = Topology::Grid(3, 3);
  Result<std::vector<NodeId>> first = grid.ShortestPath(0, 8);
  Result<std::vector<NodeId>> second = grid.ShortestPath(0, 8);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

TEST(TopologyTest, ExtendedExampleMatchesPaperRoutes) {
  Topology example = Topology::ExtendedExample();
  EXPECT_EQ(example.peer_count(), 8u);
  // The running example: photons enters at SP4; Q1 registers at SP1.
  Result<std::vector<NodeId>> path = example.ShortestPath(4, 1);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->size(), 4u);  // 3 hops
  // SP5 lies on the route (the node where Q2 later taps Q1's stream).
  EXPECT_NE(std::find(path->begin(), path->end(), 5), path->end());
}

TEST(NetworkStateTest, TracksUsageAndAvailability) {
  Topology topology;
  NodeId a = topology.AddPeer("A", /*max_load=*/100.0);
  NodeId b = topology.AddPeer("B");
  LinkId link = topology.AddLink(a, b, /*bandwidth_kbps=*/1000.0).value();

  NetworkState state(&topology);
  EXPECT_DOUBLE_EQ(state.AvailableBandwidth(link), 1.0);
  EXPECT_DOUBLE_EQ(state.AvailableLoad(a), 1.0);

  state.AddBandwidth(link, 250.0);
  EXPECT_DOUBLE_EQ(state.RelativeBandwidthUse(link), 0.25);
  EXPECT_DOUBLE_EQ(state.AvailableBandwidth(link), 0.75);

  state.AddLoad(a, 150.0);  // beyond capacity
  EXPECT_DOUBLE_EQ(state.RelativeLoadUse(a), 1.5);
  EXPECT_DOUBLE_EQ(state.AvailableLoad(a), 0.0);  // clamped

  // Releasing restores capacity.
  state.AddBandwidth(link, -250.0);
  EXPECT_DOUBLE_EQ(state.AvailableBandwidth(link), 1.0);
}

}  // namespace
}  // namespace streamshare::network
