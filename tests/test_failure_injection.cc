// Failure injection: errors arising deep inside a deployed operator
// network (malformed items, unsorted reference elements, non-numeric
// values) must surface as descriptive Statuses from Run(), never as
// crashes or silent data corruption.

#include <gtest/gtest.h>

#include "sharing/system.h"
#include "workload/paper_queries.h"
#include "workload/photon_gen.h"

namespace streamshare {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

engine::ItemPtr Photon(const char* ra, const char* en,
                       const char* det_time) {
  auto node = std::make_unique<xml::XmlNode>("photon");
  auto* cel = node->AddChild("coord")->AddChild("cel");
  cel->AddLeaf("ra", ra);
  cel->AddLeaf("dec", "-45.0");
  node->AddLeaf("en", en);
  node->AddLeaf("det_time", det_time);
  return engine::MakeItem(std::move(node));
}

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sharing::SystemConfig config;
    config.keep_results = true;
    system_ = std::make_unique<sharing::StreamShareSystem>(
        network::Topology::ExtendedExample(), config);
    ASSERT_TRUE(system_
                    ->RegisterStream("photons",
                                     workload::PhotonGenerator::Schema(),
                                     100.0, 4)
                    .ok());
    ASSERT_TRUE(
        system_->SetRange("photons", P("coord/cel/ra"), {0.0, 360.0}).ok());
    ASSERT_TRUE(
        system_->SetAvgIncrement("photons", P("det_time"), 0.5).ok());
  }

  Status RunItems(std::vector<engine::ItemPtr> items) {
    std::map<std::string, std::vector<engine::ItemPtr>> by_stream;
    by_stream["photons"] = std::move(items);
    return system_->Run(by_stream);
  }

  std::unique_ptr<sharing::StreamShareSystem> system_;
};

TEST_F(FailureInjectionTest, NonNumericPredicateValueSurfaces) {
  ASSERT_TRUE(
      system_
          ->RegisterQuery(workload::kQuery1, 1,
                          sharing::Strategy::kStreamSharing)
          .ok());
  Status status = RunItems(
      {Photon("125.0", "1.5", "1.0"), Photon("corrupted", "1.5", "2.0")});
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsParseError()) << status;
  EXPECT_NE(status.message().find("coord/cel/ra"), std::string::npos)
      << status;
}

TEST_F(FailureInjectionTest, UnsortedReferenceElementSurfaces) {
  ASSERT_TRUE(
      system_
          ->RegisterQuery(workload::kQuery3, 3,
                          sharing::Strategy::kStreamSharing)
          .ok());
  Status status = RunItems(
      {Photon("125.0", "1.5", "10.0"), Photon("126.0", "1.5", "5.0")});
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument()) << status;
  EXPECT_NE(status.message().find("sorted"), std::string::npos) << status;
}

TEST_F(FailureInjectionTest, MissingReferenceElementSurfaces) {
  ASSERT_TRUE(
      system_
          ->RegisterQuery(workload::kQuery3, 3,
                          sharing::Strategy::kStreamSharing)
          .ok());
  auto node = std::make_unique<xml::XmlNode>("photon");
  auto* cel = node->AddChild("coord")->AddChild("cel");
  cel->AddLeaf("ra", "125.0");
  cel->AddLeaf("dec", "-45.0");
  node->AddLeaf("en", "1.5");  // no det_time
  Status status = RunItems({engine::MakeItem(std::move(node))});
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("reference element"), std::string::npos)
      << status;
}

TEST_F(FailureInjectionTest, ItemsOutsideSelectionNeverReachTheFault) {
  // A corrupt element only matters if an operator actually reads it: a
  // photon outside every selection box flows past untouched... but Q1's
  // selection must read ra, so corrupt ra always faults. Corrupt phc
  // (referenced but only projected, never compared) must NOT fault.
  ASSERT_TRUE(
      system_
          ->RegisterQuery(workload::kQuery1, 1,
                          sharing::Strategy::kStreamSharing)
          .ok());
  auto node = std::make_unique<xml::XmlNode>("photon");
  auto* cel = node->AddChild("coord")->AddChild("cel");
  cel->AddLeaf("ra", "125.0");
  cel->AddLeaf("dec", "-45.0");
  node->AddLeaf("phc", "not-a-number");
  node->AddLeaf("en", "1.5");
  node->AddLeaf("det_time", "1.0");
  EXPECT_TRUE(RunItems({engine::MakeItem(std::move(node))}).ok());
}

TEST_F(FailureInjectionTest, SinksSeeNothingAfterFailure) {
  Result<sharing::RegistrationResult> q1 = system_->RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(q1.ok());
  // First item faults immediately; the run aborts before any delivery.
  Status status = RunItems({Photon("corrupted", "1.5", "1.0"),
                            Photon("125.0", "1.5", "2.0")});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(q1->sink->item_count(), 0u);
}

}  // namespace
}  // namespace streamshare
