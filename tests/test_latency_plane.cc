// The measured-latency plane: stamp lifecycle (enable switch, ambient
// scope), queue-residency crediting, sink-side recording with stage
// attribution, the stamp's ride across the transport wire (v2 frame
// extension, fault-tolerant), and the system-level audit pairing each
// query's measured p50 with its plan's predicted latency.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/latency.h"
#include "engine/link_queue.h"
#include "engine/operator.h"
#include "obs/metrics_registry.h"
#include "sharing/latency_audit.h"
#include "sharing/system.h"
#include "transport/flow.h"
#include "transport/loopback.h"
#include "workload/paper_queries.h"
#include "workload/scenario.h"

namespace streamshare {
namespace {

using engine::ItemBatch;
using engine::ItemPtr;
using engine::latency::AmbientScope;
using engine::latency::ItemStamp;
using engine::latency::NowUs;
using engine::latency::ScopedEnabled;
using transport::ChannelReceiver;
using transport::ChannelSender;
using transport::FaultPlan;
using transport::FlowOptions;
using transport::FrameType;
using transport::LoopbackTransport;
using transport::PipePair;

ItemPtr Leaf(const std::string& name, const std::string& text) {
  auto node = std::make_unique<xml::XmlNode>(name);
  node->set_text(text);
  return engine::MakeItem(std::move(node));
}

// --- Stamp primitives ---------------------------------------------------

TEST(LatencyStampTest, NowUsIsMonotoneAndNeverZero) {
  uint64_t first = NowUs();
  uint64_t second = NowUs();
  EXPECT_GT(first, 0u);  // 0 is reserved for "unstamped"
  EXPECT_GE(second, first);
}

TEST(LatencyStampTest, DefaultStampIsUnstamped) {
  ItemStamp stamp;
  EXPECT_FALSE(stamp.stamped());
  stamp.ingress_us = NowUs();
  EXPECT_TRUE(stamp.stamped());
}

TEST(LatencyStampTest, ScopedEnabledIsConjunctive) {
  ASSERT_TRUE(engine::latency::Enabled());  // default on
  {
    ScopedEnabled off(false);
    EXPECT_FALSE(engine::latency::Enabled());
    {
      // An inner "on" cannot re-enable what an outer scope disabled —
      // a sub-run cannot accidentally stamp inside an unstamped run.
      ScopedEnabled on(true);
      EXPECT_FALSE(engine::latency::Enabled());
    }
    EXPECT_FALSE(engine::latency::Enabled());
  }
  EXPECT_TRUE(engine::latency::Enabled());
}

TEST(LatencyStampTest, AmbientScopeRestoresPreviousStamp) {
  ItemStamp outer;
  outer.ingress_us = 111;
  {
    AmbientScope outer_scope(outer);
    EXPECT_EQ(engine::latency::Ambient().ingress_us, 111u);
    ItemStamp inner;
    inner.ingress_us = 222;
    {
      AmbientScope inner_scope(inner);
      EXPECT_EQ(engine::latency::Ambient().ingress_us, 222u);
    }
    EXPECT_EQ(engine::latency::Ambient().ingress_us, 111u);
  }
  EXPECT_FALSE(engine::latency::Ambient().stamped());
}

// --- Queue residency ----------------------------------------------------

TEST(LinkQueueResidencyTest, PopCreditsWaitToStampedSlotsAndHistogram) {
  engine::LinkQueue queue(64);
  obs::Histogram residency(obs::Histogram::ExponentialBounds(50, 1.6, 24));
  queue.SetResidencyHistogram(&residency);

  engine::LinkQueue::Entry entry;
  engine::OperatorGraph graph;
  entry.target = graph.Add<engine::SinkOp>("sink");
  entry.batch.AppendItem(Leaf("n", "1"), /*adopt=*/false);
  entry.batch.AppendItem(Leaf("n", "2"), /*adopt=*/false);
  entry.batch.slot(0).stamp.ingress_us = NowUs();
  // Slot 1 stays unstamped: residency must not invent a stamp for it.
  // Pretend the entry was enqueued 5ms ago (Push keeps a pre-set tick).
  entry.enqueued_us = NowUs() - 5000;
  queue.Push(std::move(entry));

  std::vector<engine::LinkQueue::Entry> out;
  queue.PopBatch(&out, 16);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GE(out[0].batch.slot(0).stamp.queue_us, 5000u);
  EXPECT_FALSE(out[0].batch.slot(1).stamp.stamped());
  EXPECT_EQ(out[0].batch.slot(1).stamp.queue_us, 0u);
  EXPECT_EQ(residency.Count(), 1u);
  EXPECT_GE(residency.Max(), 5000.0);
}

TEST(LinkQueueResidencyTest, DisabledStampingLeavesEntriesUntouched) {
  ScopedEnabled off(false);
  engine::LinkQueue queue(64);
  obs::Histogram residency(obs::Histogram::ExponentialBounds(50, 1.6, 24));
  queue.SetResidencyHistogram(&residency);

  engine::LinkQueue::Entry entry;
  engine::OperatorGraph graph;
  entry.target = graph.Add<engine::SinkOp>("sink");
  entry.batch.AppendItem(Leaf("n", "1"), /*adopt=*/false);
  queue.Push(std::move(entry));
  std::vector<engine::LinkQueue::Entry> out;
  queue.PopBatch(&out, 16);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].enqueued_us, 0u);
  EXPECT_EQ(residency.Count(), 0u);
}

// --- Sink recording -----------------------------------------------------

TEST(SinkLatencyTest, SerialRunStampsAndRecordsEveryItem) {
  engine::OperatorGraph graph;
  auto* entry = graph.Add<engine::PassOp>("entry");
  auto* sink = graph.Add<engine::SinkOp>("sink");
  entry->AddDownstream(sink);
  sink->EnableLatencyRecording("latency_plane_unit_serial");

  std::vector<ItemPtr> fed;
  for (int i = 0; i < 50; ++i) fed.push_back(Leaf("n", std::to_string(i)));
  ASSERT_TRUE(engine::RunStream(entry, fed).ok());

  EXPECT_EQ(sink->item_count(), 50u);
  EXPECT_EQ(sink->stamped_count(), 50u);
  // Serial feeding is ordered, so measured ingress ticks are monotone.
  EXPECT_EQ(sink->stamp_regressions(), 0u);
  const obs::Histogram* histogram = sink->latency_histogram();
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->Count(), 50u);
  EXPECT_GT(histogram->Max(), 0.0);
  EXPECT_GE(histogram->Quantile(0.99), histogram->Quantile(0.50));
}

TEST(SinkLatencyTest, DisabledStampingRecordsNothing) {
  ScopedEnabled off(false);
  engine::OperatorGraph graph;
  auto* entry = graph.Add<engine::PassOp>("entry");
  auto* sink = graph.Add<engine::SinkOp>("sink");
  entry->AddDownstream(sink);
  sink->EnableLatencyRecording("latency_plane_unit_disabled");

  std::vector<ItemPtr> fed;
  for (int i = 0; i < 10; ++i) fed.push_back(Leaf("n", std::to_string(i)));
  ASSERT_TRUE(engine::RunStream(entry, fed).ok());
  EXPECT_EQ(sink->item_count(), 10u);
  EXPECT_EQ(sink->stamped_count(), 0u);
  ASSERT_NE(sink->latency_histogram(), nullptr);
  EXPECT_EQ(sink->latency_histogram()->Count(), 0u);
}

// --- The stamp across the wire ------------------------------------------

struct Channel {
  std::unique_ptr<ChannelSender> sender;
  std::unique_ptr<ChannelReceiver> receiver;
};

Channel MakeChannel(FaultPlan faults = {}) {
  LoopbackTransport transport;
  PipePair pair;
  Status status = transport.CreatePipe("chan", &pair);
  EXPECT_TRUE(status.ok()) << status.ToString();
  FlowOptions options;
  Channel channel;
  channel.sender = std::make_unique<ChannelSender>(
      "chan", std::move(pair.ends[0]), options, faults);
  channel.receiver = std::make_unique<ChannelReceiver>(
      "chan", std::move(pair.ends[1]), options, faults);
  return channel;
}

TEST(WireStampTest, StampSurvivesTheWireWithTransportTimeAdded) {
  Channel channel = MakeChannel();
  ItemStamp stamp;
  stamp.ingress_us = NowUs() - 10000;  // ingressed 10ms ago
  stamp.queue_us = 500;
  stamp.transport_us = 42;
  ASSERT_TRUE(channel.sender->SendItem(3, "item-bytes", stamp).ok());

  ChannelReceiver::Incoming in;
  ASSERT_TRUE(channel.receiver->Recv(&in).ok());
  ASSERT_EQ(in.type, FrameType::kData);
  EXPECT_EQ(in.target, 3u);
  EXPECT_EQ(in.item_bytes, "item-bytes");
  ASSERT_TRUE(in.stamp.stamped());
  // The delta encoding reconstructs the ingress tick exactly; queue time
  // is carried verbatim; this hop's wire time is added on top of the
  // accumulated transport time.
  EXPECT_EQ(in.stamp.ingress_us, stamp.ingress_us);
  EXPECT_EQ(in.stamp.queue_us, 500u);
  EXPECT_GE(in.stamp.transport_us, 42u);
}

TEST(WireStampTest, UnstampedItemsStayOnTheBaseWire) {
  Channel channel = MakeChannel();
  ASSERT_TRUE(channel.sender->SendItem(1, "plain").ok());
  ChannelReceiver::Incoming in;
  ASSERT_TRUE(channel.receiver->Recv(&in).ok());
  ASSERT_EQ(in.type, FrameType::kData);
  EXPECT_FALSE(in.stamp.stamped());
  EXPECT_EQ(in.stamp.queue_us, 0u);
  EXPECT_EQ(in.stamp.transport_us, 0u);
}

TEST(WireStampTest, DisabledStampingSendsBaseFramesEvenWhenStamped) {
  ScopedEnabled off(false);
  Channel channel = MakeChannel();
  ItemStamp stamp;
  stamp.ingress_us = NowUs();
  ASSERT_TRUE(channel.sender->SendItem(0, "x", stamp).ok());
  ChannelReceiver::Incoming in;
  ASSERT_TRUE(channel.receiver->Recv(&in).ok());
  EXPECT_FALSE(in.stamp.stamped());
}

TEST(WireStampTest, StampsSurviveInjectedDuplicates) {
  // The stamp extension is stateless per frame, so the receiver's
  // duplicate discard cannot desynchronize decoding.
  FaultPlan faults;
  faults.duplicate_period = 2;
  Channel channel = MakeChannel(faults);
  std::vector<uint64_t> sent_ingress;
  for (int i = 0; i < 6; ++i) {
    ItemStamp stamp;
    stamp.ingress_us = NowUs() - 1000 * static_cast<uint64_t>(6 - i);
    sent_ingress.push_back(stamp.ingress_us);
    ASSERT_TRUE(
        channel.sender->SendItem(0, "i" + std::to_string(i), stamp).ok());
  }
  for (int i = 0; i < 6; ++i) {
    ChannelReceiver::Incoming in;
    ASSERT_TRUE(channel.receiver->Recv(&in).ok());
    ASSERT_EQ(in.type, FrameType::kData);
    EXPECT_EQ(in.item_bytes, "i" + std::to_string(i));
    EXPECT_EQ(in.stamp.ingress_us, sent_ingress[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(channel.sender->stats().faults_duplicated, 3u);
}

// --- System-level: per-query histograms and the audit -------------------

TEST(LatencyAuditTest, MeasuredLatencyPairsWithPlanPrediction) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/4);
  sharing::SystemConfig config;
  Result<std::unique_ptr<sharing::StreamShareSystem>> built =
      workload::BuildSystem(scenario, config);
  ASSERT_TRUE(built.ok()) << built.status();
  sharing::StreamShareSystem& system = **built;

  Result<sharing::RegistrationResult> q1 = system.RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(q1.ok()) << q1.status();
  ASSERT_TRUE(q1->accepted);

  workload::PhotonGenerator generator(scenario.streams[0].gen);
  std::map<std::string, std::vector<ItemPtr>> items;
  items["photons"] = generator.Generate(400);
  ASSERT_TRUE(system.Run(items).ok());

  const sharing::RegistrationResult& registration =
      system.registrations()[0];
  ASSERT_NE(registration.sink, nullptr);
  EXPECT_GT(registration.sink->item_count(), 0u);
  EXPECT_EQ(registration.sink->stamped_count(),
            registration.sink->item_count());
  EXPECT_EQ(registration.sink->stamp_regressions(), 0u);

  std::vector<sharing::QueryLatencyAudit> audits =
      sharing::CollectLatencyAudit(system.registrations());
  ASSERT_EQ(audits.size(), 1u);
  EXPECT_EQ(audits[0].query_id, registration.query_id);
  EXPECT_TRUE(audits[0].has_measurement());
  EXPECT_GT(audits[0].measured_p50_ms, 0.0);
  EXPECT_GE(audits[0].measured_p99_ms, audits[0].measured_p50_ms);

  // The report table names the query and renders without crashing.
  std::string report = sharing::FormatLatencyReport(audits);
  EXPECT_NE(report.find("q0"), std::string::npos);
  EXPECT_NE(report.find("predicted_ms"), std::string::npos);

  // ExportMetrics republishes the histogram summary as ms gauges plus
  // the audit gauges.
  obs::MetricsRegistry registry;
  system.ExportMetrics(&registry);
  EXPECT_GT(registry.GetGauge("latency.query.q0.p50_ms")->Value(), 0.0);
  EXPECT_GE(registry.GetGauge("latency.query.q0.p99_ms")->Value(),
            registry.GetGauge("latency.query.q0.p50_ms")->Value());
  EXPECT_GT(registry.GetGauge("latency.query.q0.max_ms")->Value(), 0.0);
  EXPECT_GT(registry.GetGauge("latency.query.q0.stamped_items")->Value(),
            0.0);
  EXPECT_GT(registry.GetGauge("latency.audit.q0.measured_p50_ms")->Value(),
            0.0);
}

TEST(LatencyAuditTest, NoStampingMeansNoMeasurementInTheAudit) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/4);
  sharing::SystemConfig config;
  config.measure_latency = false;
  Result<std::unique_ptr<sharing::StreamShareSystem>> built =
      workload::BuildSystem(scenario, config);
  ASSERT_TRUE(built.ok()) << built.status();
  sharing::StreamShareSystem& system = **built;

  Result<sharing::RegistrationResult> q1 = system.RegisterQuery(
      workload::kQuery1, 1, sharing::Strategy::kStreamSharing);
  ASSERT_TRUE(q1.ok()) << q1.status();
  ASSERT_TRUE(q1->accepted);

  workload::PhotonGenerator generator(scenario.streams[0].gen);
  std::map<std::string, std::vector<ItemPtr>> items;
  items["photons"] = generator.Generate(100);
  ASSERT_TRUE(system.Run(items).ok());

  const sharing::RegistrationResult& registration =
      system.registrations()[0];
  ASSERT_NE(registration.sink, nullptr);
  EXPECT_GT(registration.sink->item_count(), 0u);
  EXPECT_EQ(registration.sink->stamped_count(), 0u);

  std::vector<sharing::QueryLatencyAudit> audits =
      sharing::CollectLatencyAudit(system.registrations());
  ASSERT_EQ(audits.size(), 1u);
  EXPECT_FALSE(audits[0].has_measurement());
  std::string report = sharing::FormatLatencyReport(audits);
  EXPECT_NE(report.find("no stamps"), std::string::npos);
}

}  // namespace
}  // namespace streamshare
