// Regression: found by the differential fuzzer's cross-process TCP sweep
// (streamshare_fuzz --tcp-processes, first seen at seed 24, ~20% flaky).
//
// A worker process that exited right after EOS closed its channel socket
// with unread CREDIT frames in the receive buffer; TCP turns that close
// into a reset, which can destroy the peer's still-buffered EOS frame —
// surfacing as "peer closed connection" on the receiving worker. The fix
// makes receivers close their end on EOS and senders drain in-flight
// credits until that close before letting their fds go.
//
// Hand-minimized scenario: one stream, one remote subscription, so there
// is exactly one cross-worker channel. The item count stays under the
// initial credit window — then the sender never reads a single CREDIT and
// every grant is sitting unread at process exit, maximizing the chance of
// a reset. Repeated runs make the race likely enough to catch (each
// pre-fix run failed ~1 in 5).

#include <gtest/gtest.h>

#include "testing/fuzz_scenario.h"
#include "testing/oracle.h"

namespace streamshare::testing {
namespace {

FuzzScenario TeardownScenario() {
  FuzzScenario scenario;
  scenario.seed = 24;
  scenario.topology.peers = 2;
  scenario.topology.links = {{0, 1}};
  FuzzStreamSpec stream;
  stream.source = 1;
  stream.gen_seed = 13204904816907374629ull;
  scenario.streams.push_back(stream);
  FuzzQuerySpec query;
  query.kind = FuzzQuerySpec::Kind::kSelection;
  query.target = 0;  // remote from the source: forces a cross-worker channel
  scenario.queries.push_back(query);
  scenario.items_per_stream = 250;  // < initial_credits: all grants unread
  return scenario;
}

TEST(FuzzRegression, TcpProcessTeardownDeliversEos) {
  OracleOptions options;
  options.run_parallel = false;
  options.run_loopback = false;
  options.tcp_processes = true;
  FuzzScenario scenario = TeardownScenario();
  for (int run = 0; run < 20; ++run) {
    auto report = RunOracle(scenario, options);
    ASSERT_TRUE(report.ok())
        << "run " << run << ": " << report.status().ToString();
    EXPECT_TRUE(report->ok()) << "run " << run << ": " << report->failure;
  }
}

}  // namespace
}  // namespace streamshare::testing
