// Unit tests for the basic engine operators: selection, projection, link
// transport accounting, fan-out, and end-of-stream propagation.

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "engine/operator.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace streamshare::engine {
namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }
Decimal D(const char* text) { return Decimal::Parse(text).value(); }

ItemPtr Photon(const char* ra, const char* en) {
  auto node = std::make_unique<xml::XmlNode>("photon");
  auto* coord = node->AddChild("coord");
  auto* cel = coord->AddChild("cel");
  cel->AddLeaf("ra", ra);
  auto* det = coord->AddChild("det");
  det->AddLeaf("dx", "5");
  node->AddLeaf("en", en);
  return MakeItem(std::move(node));
}

TEST(SelectOpTest, FiltersByConjunction) {
  OperatorGraph graph;
  auto* select = graph.Add<SelectOp>(
      "sel", std::vector<predicate::AtomicPredicate>{
                 predicate::AtomicPredicate::Compare(
                     P("en"), predicate::ComparisonOp::kGe, D("1.0")),
                 predicate::AtomicPredicate::Compare(
                     P("coord/cel/ra"), predicate::ComparisonOp::kLe,
                     D("200.0")),
             });
  auto* sink = graph.Add<SinkOp>("sink", /*keep_items=*/true);
  select->AddDownstream(sink);

  ASSERT_TRUE(RunStream(select, {Photon("120.0", "1.5"),
                                 Photon("250.0", "1.5"),
                                 Photon("120.0", "0.5")})
                  .ok());
  EXPECT_EQ(sink->item_count(), 1u);
  EXPECT_EQ(sink->items()[0]->FirstChild("en")->text(), "1.5");
}

TEST(SelectOpTest, EmptyConjunctionPassesEverything) {
  OperatorGraph graph;
  auto* select =
      graph.Add<SelectOp>("sel", std::vector<predicate::AtomicPredicate>{});
  auto* sink = graph.Add<SinkOp>("sink");
  select->AddDownstream(sink);
  ASSERT_TRUE(
      RunStream(select, {Photon("1", "1"), Photon("2", "2")}).ok());
  EXPECT_EQ(sink->item_count(), 2u);
}

TEST(ProjectOpTest, KeepsCoveredSubtreesAndAncestors) {
  OperatorGraph graph;
  auto* project = graph.Add<ProjectOp>(
      "proj", std::vector<xml::Path>{P("coord/cel/ra"), P("en")});
  auto* sink = graph.Add<SinkOp>("sink", /*keep_items=*/true);
  project->AddDownstream(sink);

  ASSERT_TRUE(RunStream(project, {Photon("120.0", "1.5")}).ok());
  ASSERT_EQ(sink->item_count(), 1u);
  const xml::XmlNode& item = *sink->items()[0];
  EXPECT_EQ(xml::WriteCompact(item),
            "<photon><coord><cel><ra>120.0</ra></cel></coord>"
            "<en>1.5</en></photon>");
}

TEST(ProjectOpTest, AncestorPathKeepsWholeSubtree) {
  OperatorGraph graph;
  auto* project =
      graph.Add<ProjectOp>("proj", std::vector<xml::Path>{P("coord")});
  auto* sink = graph.Add<SinkOp>("sink", /*keep_items=*/true);
  project->AddDownstream(sink);
  ASSERT_TRUE(RunStream(project, {Photon("120.0", "1.5")}).ok());
  const xml::XmlNode& item = *sink->items()[0];
  EXPECT_NE(item.FirstChild("coord"), nullptr);
  EXPECT_NE(item.FirstChild("coord")->FirstChild("det"), nullptr);
  EXPECT_EQ(item.FirstChild("en"), nullptr);
}

TEST(ProjectOpTest, NothingMatchingYieldsEmptyItemShell) {
  OperatorGraph graph;
  auto* project =
      graph.Add<ProjectOp>("proj", std::vector<xml::Path>{P("missing")});
  auto* sink = graph.Add<SinkOp>("sink", /*keep_items=*/true);
  project->AddDownstream(sink);
  ASSERT_TRUE(RunStream(project, {Photon("1", "2")}).ok());
  EXPECT_EQ(xml::WriteCompact(*sink->items()[0]), "<photon/>");
}

TEST(LinkOpTest, CountsSerializedBytes) {
  network::Topology topology;
  auto a = topology.AddPeer("A");
  auto b = topology.AddPeer("B");
  network::LinkId link = topology.AddLink(a, b).value();
  Metrics metrics(topology);

  OperatorGraph graph;
  auto* transport = graph.Add<LinkOp>("link", &metrics, link);
  auto* sink = graph.Add<SinkOp>("sink");
  transport->AddDownstream(sink);

  ItemPtr item = Photon("120.0", "1.5");
  size_t size = item->SerializedSize();
  ASSERT_TRUE(RunStream(transport, {item, item}).ok());
  EXPECT_EQ(metrics.BytesOnLink(link), 2 * size);
  EXPECT_EQ(sink->item_count(), 2u);
}

TEST(OperatorTest, FanOutDeliversToAllDownstreams) {
  OperatorGraph graph;
  auto* pass = graph.Add<PassOp>("tap");
  auto* sink1 = graph.Add<SinkOp>("s1");
  auto* sink2 = graph.Add<SinkOp>("s2");
  pass->AddDownstream(sink1);
  pass->AddDownstream(sink2);
  ASSERT_TRUE(RunStream(pass, {Photon("1", "1")}).ok());
  EXPECT_EQ(sink1->item_count(), 1u);
  EXPECT_EQ(sink2->item_count(), 1u);
}

TEST(OperatorTest, WorkAccountingBillsPerInvocation) {
  network::Topology topology;
  auto a = topology.AddPeer("A");
  Metrics metrics(topology);

  OperatorGraph graph;
  auto* select =
      graph.Add<SelectOp>("sel", std::vector<predicate::AtomicPredicate>{});
  select->SetAccounting(&metrics, a, 1.5);
  auto* sink = graph.Add<SinkOp>("sink");
  select->AddDownstream(sink);
  ASSERT_TRUE(
      RunStream(select, {Photon("1", "1"), Photon("2", "2")}).ok());
  EXPECT_DOUBLE_EQ(metrics.WorkAtPeer(a), 3.0);
  EXPECT_EQ(metrics.OperatorInvocationsAtPeer(a), 2u);
}

TEST(OperatorTest, FinishIsIdempotentAndPropagates) {
  OperatorGraph graph;
  auto* pass = graph.Add<PassOp>("tap");
  auto* sink = graph.Add<SinkOp>("sink");
  pass->AddDownstream(sink);
  EXPECT_TRUE(pass->Finish().ok());
  EXPECT_TRUE(pass->Finish().ok());
}

TEST(ExecutorTest, RunStreamsInterleavesSources) {
  OperatorGraph graph;
  auto* a = graph.Add<PassOp>("a");
  auto* b = graph.Add<PassOp>("b");
  auto* sink = graph.Add<SinkOp>("sink");
  a->AddDownstream(sink);
  b->AddDownstream(sink);
  ASSERT_TRUE(RunStreams({a, b}, {{Photon("1", "1"), Photon("2", "2")},
                                  {Photon("3", "3")}})
                  .ok());
  EXPECT_EQ(sink->item_count(), 3u);
  EXPECT_TRUE(RunStreams({a}, {{}, {}}).IsInvalidArgument());
}

TEST(MetricsTest, DerivedRates) {
  network::Topology topology;
  auto a = topology.AddPeer("A", /*max_load=*/200.0);
  auto b = topology.AddPeer("B");
  network::LinkId link = topology.AddLink(a, b).value();
  Metrics metrics(topology);
  metrics.AddBytes(link, 25000);  // 25 kB over 10 s = 20 kbps
  metrics.AddWork(a, 100.0);      // 100 units over 10 s = 5% of 200
  EXPECT_DOUBLE_EQ(metrics.LinkKbps(link, 10.0), 20.0);
  EXPECT_DOUBLE_EQ(metrics.PeerCpuPercent(a, 10.0, 200.0), 5.0);
  EXPECT_DOUBLE_EQ(metrics.LinkKbps(link, 0.0), 0.0);
  EXPECT_EQ(metrics.TotalBytes(), 25000u);
  EXPECT_DOUBLE_EQ(metrics.TotalWork(), 100.0);
}

}  // namespace
}  // namespace streamshare::engine
