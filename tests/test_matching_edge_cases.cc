// Matching edge cases the paper's running example never exercises:
// MatchPredicates implication over cross-variable atoms ($v θ $w + c) —
// including the gap between the edge-local test and complete implication
// via derived bounds — boundary constants where only strictness differs,
// and MatchAggregations window compatibility when the step µ does not
// divide the size Δ.

#include <gtest/gtest.h>

#include <vector>

#include "matching/match_aggregations.h"
#include "matching/match_predicates.h"
#include "predicate/atomic.h"
#include "predicate/graph.h"
#include "properties/operators.h"
#include "properties/window.h"

namespace streamshare::matching {
namespace {

using predicate::AtomicPredicate;
using predicate::ComparisonOp;
using predicate::PredicateGraph;
using properties::AggregateFunc;
using properties::AggregationOp;
using properties::WindowSpec;
using properties::WindowType;

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }
Decimal D(const char* text) { return Decimal::Parse(text).value(); }

AtomicPredicate Cmp(const char* lhs, ComparisonOp op, const char* c) {
  return AtomicPredicate::Compare(P(lhs), op, D(c));
}
AtomicPredicate Vars(const char* lhs, ComparisonOp op, const char* rhs,
                     const char* c) {
  return AtomicPredicate::CompareVars(P(lhs), op, P(rhs), D(c));
}
PredicateGraph G(std::vector<AtomicPredicate> conjuncts) {
  return PredicateGraph::Build(conjuncts);
}

// --- Cross-variable implication -------------------------------------------

TEST(CrossVariableMatchTest, IdenticalSkewAtomImplies) {
  // dx <= dy + 5 implies itself.
  PredicateGraph stream = G({Vars("dx", ComparisonOp::kLe, "dy", "5")});
  PredicateGraph sub = G({Vars("dx", ComparisonOp::kLe, "dy", "5")});
  EXPECT_TRUE(MatchPredicatesEdgeLocal(stream, sub));
  EXPECT_TRUE(MatchPredicatesComplete(stream, sub));
}

TEST(CrossVariableMatchTest, TighterSkewConstantImplies) {
  // dx <= dy + 2 is tighter than dx <= dy + 5: items of the subscription
  // all pass the stream's selection.
  PredicateGraph stream = G({Vars("dx", ComparisonOp::kLe, "dy", "5")});
  PredicateGraph sub = G({Vars("dx", ComparisonOp::kLe, "dy", "2")});
  EXPECT_TRUE(MatchPredicatesEdgeLocal(stream, sub));
  EXPECT_TRUE(MatchPredicatesComplete(stream, sub));
  // And never the reverse: a looser subscription wants items the stream
  // already filtered away.
  EXPECT_FALSE(MatchPredicatesEdgeLocal(sub, stream));
  EXPECT_FALSE(MatchPredicatesComplete(sub, stream));
}

TEST(CrossVariableMatchTest, FlippedComparisonNormalizesToSameEdge) {
  // dy >= dx - 5 is literally the same constraint as dx <= dy + 5 after
  // normalization; both tests must see through the surface form.
  PredicateGraph stream = G({Vars("dx", ComparisonOp::kLe, "dy", "5")});
  PredicateGraph sub = G({Vars("dy", ComparisonOp::kGe, "dx", "-5")});
  EXPECT_TRUE(MatchPredicatesEdgeLocal(stream, sub));
  EXPECT_TRUE(MatchPredicatesComplete(stream, sub));
}

TEST(CrossVariableMatchTest, EqualityImpliesBothInequalities) {
  // dx = dy + 1 pins the difference; it implies dx <= dy + 3 but not
  // dx <= dy - 2.
  PredicateGraph sub = G({Vars("dx", ComparisonOp::kEq, "dy", "1")});
  EXPECT_TRUE(MatchPredicatesComplete(
      G({Vars("dx", ComparisonOp::kLe, "dy", "3")}), sub));
  EXPECT_TRUE(MatchPredicatesComplete(
      G({Vars("dx", ComparisonOp::kGe, "dy", "0")}), sub));
  EXPECT_FALSE(MatchPredicatesComplete(
      G({Vars("dx", ComparisonOp::kLe, "dy", "-2")}), sub));
}

TEST(CrossVariableMatchTest, TransitiveChainNeedsCompleteImplication) {
  // Subscription: dx <= dy + 1 and dy <= dz + 1. The derived bound
  // dx <= dz + 2 satisfies the stream's only constraint, but no direct
  // edge between dx and dz exists — the edge-local test (which never
  // derives bounds) conservatively rejects, complete implication accepts.
  // This is exactly the A3 ablation gap.
  PredicateGraph stream = G({Vars("dx", ComparisonOp::kLe, "dz", "2")});
  PredicateGraph sub = G({Vars("dx", ComparisonOp::kLe, "dy", "1"),
                          Vars("dy", ComparisonOp::kLe, "dz", "1")});
  EXPECT_TRUE(MatchPredicatesComplete(stream, sub));
  EXPECT_FALSE(MatchPredicatesEdgeLocal(stream, sub));
}

TEST(CrossVariableMatchTest, VariableConstantChainDerivesCrossBound) {
  // dx <= 10 and dy >= 8 derive dx <= dy + 2 through the zero node.
  PredicateGraph stream = G({Vars("dx", ComparisonOp::kLe, "dy", "2")});
  PredicateGraph sub = G({Cmp("dx", ComparisonOp::kLe, "10"),
                          Cmp("dy", ComparisonOp::kGe, "8")});
  EXPECT_TRUE(MatchPredicatesComplete(stream, sub));
  // Weaken one endpoint and the derivation no longer holds.
  PredicateGraph weaker = G({Cmp("dx", ComparisonOp::kLe, "10"),
                             Cmp("dy", ComparisonOp::kGe, "7")});
  EXPECT_FALSE(MatchPredicatesComplete(stream, weaker));
}

// --- Boundary constants: strictness at equality ---------------------------

TEST(BoundaryConstantTest, StrictImpliesNonStrictAtSameConstant) {
  // ra < 120 is tighter than ra <= 120; the reverse loses the boundary
  // item ra = 120.
  PredicateGraph non_strict = G({Cmp("ra", ComparisonOp::kLe, "120")});
  PredicateGraph strict = G({Cmp("ra", ComparisonOp::kLt, "120")});
  EXPECT_TRUE(MatchPredicatesEdgeLocal(non_strict, strict));
  EXPECT_TRUE(MatchPredicatesComplete(non_strict, strict));
  EXPECT_FALSE(MatchPredicatesEdgeLocal(strict, non_strict));
  EXPECT_FALSE(MatchPredicatesComplete(strict, non_strict));
}

TEST(BoundaryConstantTest, StrictnessAppliesToCrossVariableAtomsToo) {
  PredicateGraph non_strict = G({Vars("dx", ComparisonOp::kLe, "dy", "0")});
  PredicateGraph strict = G({Vars("dx", ComparisonOp::kLt, "dy", "0")});
  EXPECT_TRUE(MatchPredicatesComplete(non_strict, strict));
  EXPECT_FALSE(MatchPredicatesComplete(strict, non_strict));
}

TEST(BoundaryConstantTest, TouchingBoxesShareOnlyTheirBoundary) {
  // Stream keeps ra in [100, 120]; a subscription pinned exactly to the
  // shared edge ra = 120 is implied, one past it is not.
  PredicateGraph stream = G({Cmp("ra", ComparisonOp::kGe, "100"),
                             Cmp("ra", ComparisonOp::kLe, "120")});
  PredicateGraph on_edge = G({Cmp("ra", ComparisonOp::kEq, "120")});
  PredicateGraph past_edge = G({Cmp("ra", ComparisonOp::kGe, "120"),
                                Cmp("ra", ComparisonOp::kLe, "121")});
  EXPECT_TRUE(MatchPredicatesComplete(stream, on_edge));
  EXPECT_FALSE(MatchPredicatesComplete(stream, past_edge));
}

// --- Window compatibility when µ does not divide Δ ------------------------

WindowSpec CountWindow(int64_t size, int64_t step) {
  return WindowSpec::Count(size, step).value();
}

TEST(WindowStepTest, StepNotDividingSizeIsValidButNotRecombinable) {
  // Δ=25, µ=10: a legal sliding window (windows overlap by 15). An
  // *identical* subscription shares it directly — no recombination — but
  // the paper's recombination rule requires Δ mod µ = 0 on the reused
  // stream, so nothing coarser can ever be built from it: the window
  // boundaries drift.
  WindowSpec reused = CountWindow(25, 10);
  ASSERT_TRUE(reused.Validate().ok());
  EXPECT_TRUE(WindowsCompatible(reused, CountWindow(25, 10)));
  EXPECT_FALSE(WindowsCompatible(reused, CountWindow(50, 10)));
  EXPECT_FALSE(WindowsCompatible(reused, CountWindow(75, 25)));
  EXPECT_FALSE(WindowsCompatible(reused, CountWindow(50, 20)));
}

TEST(WindowStepTest, SubscriptionStepNeedNotDivideItsOwnSize) {
  // The divisibility constraints bind Δ′ to Δ and µ′ to µ, not µ′ to Δ′:
  // a subscription with Δ′=50, µ′=15 recombines fine from a Δ=10, µ=5
  // stream (50 = 5·10, 15 = 3·5) even though 15 ∤ 50.
  WindowSpec reused = CountWindow(10, 5);
  WindowSpec sub = CountWindow(50, 15);
  ASSERT_TRUE(sub.Validate().ok());
  EXPECT_TRUE(WindowsCompatible(reused, sub));
}

TEST(WindowStepTest, PrimedSizeMustBeMultipleOfSize) {
  WindowSpec reused = CountWindow(20, 10);
  EXPECT_TRUE(WindowsCompatible(reused, CountWindow(40, 20)));
  EXPECT_FALSE(WindowsCompatible(reused, CountWindow(50, 10)));
  EXPECT_FALSE(WindowsCompatible(reused, CountWindow(20, 15)));
}

TEST(WindowStepTest, FullMatchRejectsDriftingReusedWindow) {
  // The full MatchAggregations must reject when only the window rule
  // fails, everything else being identical.
  AggregationOp reused =
      AggregationOp::Create(AggregateFunc::kAvg, P("en"),
                            CountWindow(25, 10))
          .value();
  AggregationOp sub =
      AggregationOp::Create(AggregateFunc::kAvg, P("en"),
                            CountWindow(50, 10))
          .value();
  EXPECT_FALSE(MatchAggregations(reused, sub));

  AggregationOp clean =
      AggregationOp::Create(AggregateFunc::kAvg, P("en"),
                            CountWindow(25, 5))
          .value();
  EXPECT_TRUE(MatchAggregations(clean, sub));
}

TEST(WindowStepTest, DiffWindowsWithFractionalStepFollowSameRule) {
  // Time-based windows use exact decimal arithmetic: Δ=1.5, µ=0.5 is
  // recombinable; Δ=1.5, µ=0.4 drifts (1.5 / 0.4 is not integral).
  WindowSpec fine =
      WindowSpec::Diff(P("det_time"), D("1.5"), D("0.5")).value();
  WindowSpec drifting =
      WindowSpec::Diff(P("det_time"), D("1.5"), D("0.4")).value();
  WindowSpec sub = WindowSpec::Diff(P("det_time"), D("3.0"), D("1.0")).value();
  EXPECT_TRUE(WindowsCompatible(fine, sub));
  EXPECT_FALSE(WindowsCompatible(drifting, sub));
}

}  // namespace
}  // namespace streamshare::matching
