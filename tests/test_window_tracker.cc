// Unit tests for the shared window bookkeeping (WindowTracker), including
// a parameterized sweep verifying the closed/contains invariants across
// window shapes.

#include "engine/window_tracker.h"

#include <gtest/gtest.h>

namespace streamshare::engine {
namespace {

using properties::WindowSpec;

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

TEST(WindowTrackerTest, TumblingCountWindows) {
  WindowTracker tracker(WindowSpec::Count(3).value());
  std::vector<int64_t> closed;
  for (int i = 0; i < 7; ++i) {
    Result<WindowTracker::Update> update = tracker.OnItemCount();
    ASSERT_TRUE(update.ok());
    for (int64_t seq : update->closed) closed.push_back(seq);
    ASSERT_EQ(update->contains.size(), 1u);
    EXPECT_EQ(update->contains[0], i / 3);
  }
  EXPECT_EQ(closed, (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(tracker.Flush(), (std::vector<int64_t>{2}));
}

TEST(WindowTrackerTest, SlidingWindowsContainOverlaps) {
  WindowTracker tracker(WindowSpec::Count(4, 2).value());
  // Item 3 (0-based) lies in windows 0 [0,4) and 1 [2,6).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(tracker.OnItemCount().ok());
  }
  Result<WindowTracker::Update> update = tracker.OnItemCount();
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->contains, (std::vector<int64_t>{0, 1}));
}

TEST(WindowTrackerTest, SamplingStepLeavesGaps) {
  WindowTracker tracker(WindowSpec::Count(2, 4).value());
  std::vector<size_t> contains_counts;
  for (int i = 0; i < 8; ++i) {
    Result<WindowTracker::Update> update = tracker.OnItemCount();
    ASSERT_TRUE(update.ok());
    contains_counts.push_back(update->contains.size());
  }
  // Items 0,1 in window 0; 2,3 in none; 4,5 in window 1; 6,7 in none.
  EXPECT_EQ(contains_counts,
            (std::vector<size_t>{1, 1, 0, 0, 1, 1, 0, 0}));
}

TEST(WindowTrackerTest, TimeAxisUnsortedRejected) {
  WindowTracker tracker(
      WindowSpec::Diff(P("t"), Decimal::FromInt(10)).value());
  ASSERT_TRUE(tracker.OnPosition(Decimal::FromInt(5)).ok());
  EXPECT_TRUE(tracker.OnPosition(Decimal::FromInt(3))
                  .status()
                  .IsInvalidArgument());
}

TEST(WindowTrackerTest, FastForwardSkipsDeadWindows) {
  WindowTracker tracker(
      WindowSpec::Diff(P("t"), Decimal::FromInt(10)).value());
  Result<WindowTracker::Update> update =
      tracker.OnPosition(Decimal::FromInt(1000));
  ASSERT_TRUE(update.ok());
  EXPECT_TRUE(update->closed.empty());  // no flood of empty windows
  ASSERT_EQ(update->contains.size(), 1u);
  EXPECT_EQ(update->contains[0], 100);
}

TEST(WindowTrackerTest, GapEmitsEmptyWindowsForContinuity) {
  WindowTracker tracker(
      WindowSpec::Diff(P("t"), Decimal::FromInt(10)).value());
  ASSERT_TRUE(tracker.OnPosition(Decimal::FromInt(5)).ok());
  Result<WindowTracker::Update> update =
      tracker.OnPosition(Decimal::FromInt(35));
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(update->closed, (std::vector<int64_t>{0, 1, 2}));
  EXPECT_EQ(update->contains, (std::vector<int64_t>{3}));
}

struct TrackerCase {
  int size;
  int step;
};

class TrackerSweep : public ::testing::TestWithParam<TrackerCase> {};

TEST_P(TrackerSweep, InvariantsHoldOnDenseTimeAxis) {
  const TrackerCase& c = GetParam();
  WindowTracker tracker(WindowSpec::Diff(P("t"),
                                         Decimal::FromInt(c.size),
                                         Decimal::FromInt(c.step))
                            .value());
  std::set<int64_t> closed_seen;
  int64_t max_closed = -1;
  for (int t = 0; t < 500; t += 3) {
    Result<WindowTracker::Update> update =
        tracker.OnPosition(Decimal::FromInt(t));
    ASSERT_TRUE(update.ok());
    for (int64_t seq : update->closed) {
      // Each window closes exactly once, in ascending order.
      EXPECT_TRUE(closed_seen.insert(seq).second) << seq;
      EXPECT_GT(seq, max_closed);
      max_closed = seq;
      // A closed window's span truly ended before the position.
      EXPECT_LE(seq * c.step + c.size, t);
    }
    for (int64_t seq : update->contains) {
      // The position lies inside every containing window's span.
      EXPECT_LE(seq * c.step, t);
      EXPECT_LT(t, seq * c.step + c.size);
      EXPECT_EQ(closed_seen.count(seq), 0u);
    }
  }
  // Flushed windows are exactly the never-closed opened ones, ascending.
  std::vector<int64_t> flushed = tracker.Flush();
  for (size_t i = 0; i + 1 < flushed.size(); ++i) {
    EXPECT_LT(flushed[i], flushed[i + 1]);
  }
  for (int64_t seq : flushed) {
    EXPECT_EQ(closed_seen.count(seq), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TrackerSweep,
    ::testing::Values(TrackerCase{20, 10},   // overlapping
                      TrackerCase{10, 10},   // tumbling
                      TrackerCase{10, 25},   // sampling
                      TrackerCase{50, 5},    // heavily overlapping
                      TrackerCase{1, 1}));   // degenerate

}  // namespace
}  // namespace streamshare::engine
