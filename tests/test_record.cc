// PhotonRecord round-trip contract: a conforming photon converts to a
// record and back to a byte-identical tree with matching serialized size
// and content hash; non-conforming items are rejected by FromXml (the
// batch fallback slot); and the wire codec's record fast path produces
// byte-identical frames and identical dictionary state to encoding the
// materialized tree.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/operator.h"
#include "engine/record.h"
#include "transport/codec.h"
#include "workload/photon_gen.h"
#include "xml/xml_node.h"
#include "xml/xml_writer.h"

namespace streamshare::engine {
namespace {

std::unique_ptr<xml::XmlNode> FullPhoton(
    const char* phc = "7", const char* ra = "120.5000",
    const char* dec = "-30.2500", const char* dx = "12", const char* dy = "400",
    const char* en = "1.250", const char* det_time = "3.5") {
  auto node = std::make_unique<xml::XmlNode>("photon");
  node->AddLeaf("phc", phc);
  auto* coord = node->AddChild("coord");
  auto* cel = coord->AddChild("cel");
  cel->AddLeaf("ra", ra);
  cel->AddLeaf("dec", dec);
  auto* det = coord->AddChild("det");
  det->AddLeaf("dx", dx);
  det->AddLeaf("dy", dy);
  node->AddLeaf("en", en);
  node->AddLeaf("det_time", det_time);
  return node;
}

void ExpectRoundTrip(const xml::XmlNode& tree) {
  PhotonRecord record;
  ASSERT_TRUE(PhotonRecord::FromXml(tree, &record))
      << xml::WriteCompact(tree);
  std::unique_ptr<xml::XmlNode> back = record.MaterializeXml();
  EXPECT_EQ(xml::WriteCompact(*back), xml::WriteCompact(tree));
  EXPECT_EQ(record.SerializedSize(), tree.SerializedSize());
  EXPECT_EQ(record.ContentHash(), HashItemContent(tree));
}

TEST(PhotonRecordTest, FullPhotonRoundTripsByteIdentically) {
  ExpectRoundTrip(*FullPhoton());
}

TEST(PhotonRecordTest, GeneratorPhotonsRoundTrip) {
  workload::PhotonGenerator gen(workload::PhotonGenConfig{});
  for (int i = 0; i < 200; ++i) {
    PhotonRecord record = gen.NextRecord();
    std::unique_ptr<xml::XmlNode> tree = record.MaterializeXml();
    ExpectRoundTrip(*tree);
    EXPECT_EQ(record.SerializedSize(), tree->SerializedSize());
    EXPECT_EQ(record.ContentHash(), HashItemContent(*tree));
  }
}

TEST(PhotonRecordTest, SubsequenceOfFieldsRoundTrips) {
  // Children may be any subsequence of the schema: photons missing
  // fields, or whole structural subtrees, still convert.
  auto only_en = std::make_unique<xml::XmlNode>("photon");
  only_en->AddLeaf("en", "1.5");
  ExpectRoundTrip(*only_en);

  auto no_det = std::make_unique<xml::XmlNode>("photon");
  no_det->AddLeaf("phc", "3");
  auto* coord = no_det->AddChild("coord");
  coord->AddChild("cel")->AddLeaf("ra", "10.0");
  no_det->AddLeaf("det_time", "0.5");
  ExpectRoundTrip(*no_det);

  // Empty structural elements are presence, not absence.
  auto empty_coord = std::make_unique<xml::XmlNode>("photon");
  empty_coord->AddChild("coord");
  ExpectRoundTrip(*empty_coord);

  ExpectRoundTrip(xml::XmlNode("photon"));
}

TEST(PhotonRecordTest, LeafTextIsKeptVerbatim) {
  // Decimal::Parse trims, but the record must reproduce the original
  // bytes (byte accounting and hashes depend on it).
  auto tree = std::make_unique<xml::XmlNode>("photon");
  tree->AddLeaf("en", "  1.50 ");
  ExpectRoundTrip(*tree);
}

TEST(PhotonRecordTest, RejectsNonConformingItems) {
  PhotonRecord out;

  // Wrong root element.
  auto wagg = std::make_unique<xml::XmlNode>("wagg");
  wagg->AddLeaf("seq", "1");
  EXPECT_FALSE(PhotonRecord::FromXml(*wagg, &out));

  // Children out of document order.
  auto reordered = std::make_unique<xml::XmlNode>("photon");
  reordered->AddLeaf("en", "1.0");
  reordered->AddLeaf("phc", "1");
  EXPECT_FALSE(PhotonRecord::FromXml(*reordered, &out));

  // Duplicated child.
  auto duplicated = std::make_unique<xml::XmlNode>("photon");
  duplicated->AddLeaf("en", "1.0");
  duplicated->AddLeaf("en", "2.0");
  EXPECT_FALSE(PhotonRecord::FromXml(*duplicated, &out));

  // Unknown child name.
  auto unknown = std::make_unique<xml::XmlNode>("photon");
  unknown->AddLeaf("energy", "1.0");
  EXPECT_FALSE(PhotonRecord::FromXml(*unknown, &out));

  // Text on a structural node.
  auto structural_text = std::make_unique<xml::XmlNode>("photon");
  structural_text->AddChild("coord")->set_text("oops");
  EXPECT_FALSE(PhotonRecord::FromXml(*structural_text, &out));

  // Leaf with element children.
  auto deep_leaf = std::make_unique<xml::XmlNode>("photon");
  deep_leaf->AddChild("en")->AddLeaf("x", "1");
  EXPECT_FALSE(PhotonRecord::FromXml(*deep_leaf, &out));

  // Non-decimal leaf text.
  auto bad_text = std::make_unique<xml::XmlNode>("photon");
  bad_text->AddLeaf("en", "not-a-number");
  EXPECT_FALSE(PhotonRecord::FromXml(*bad_text, &out));

  // Over-long leaf text.
  auto long_text = std::make_unique<xml::XmlNode>("photon");
  long_text->AddLeaf("en", "1." + std::string(40, '0'));
  EXPECT_FALSE(PhotonRecord::FromXml(*long_text, &out));
}

TEST(PhotonRecordTest, RejectionLeavesOutputUntouched) {
  PhotonRecord out;
  ASSERT_TRUE(PhotonRecord::FromXml(*FullPhoton(), &out));
  uint16_t mask_before = out.mask();
  auto bad = std::make_unique<xml::XmlNode>("photon");
  bad->AddLeaf("en", "nope");
  EXPECT_FALSE(PhotonRecord::FromXml(*bad, &out));
  EXPECT_EQ(out.mask(), mask_before);
}

TEST(ItemBatchTest, AdoptionSplitsConformingFromOpaque) {
  std::vector<ItemPtr> items;
  items.push_back(MakeItem(FullPhoton()));
  auto wagg = std::make_unique<xml::XmlNode>("wagg");
  wagg->AddLeaf("seq", "0");
  items.push_back(MakeItem(std::move(wagg)));

  ItemBatch batch = ItemBatch::FromItems(items, /*adopt=*/true);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_TRUE(batch.slot(0).is_record);
  // Adoption keeps the original tree as the ready-made materialization.
  EXPECT_EQ(batch.slot(0).item.get(), items[0].get());
  EXPECT_EQ(batch.Materialize(0).get(), items[0].get());
  EXPECT_FALSE(batch.slot(1).is_record);
  EXPECT_EQ(batch.slot(1).item.get(), items[1].get());

  ItemBatch plain = ItemBatch::FromItems(items, /*adopt=*/false);
  EXPECT_FALSE(plain.slot(0).is_record);
}

TEST(ItemBatchTest, MaterializationIsCachedPerSlot) {
  ItemBatch batch;
  workload::PhotonGenerator gen(workload::PhotonGenConfig{});
  batch.AppendRecord(gen.NextRecord());
  EXPECT_EQ(batch.slot(0).item, nullptr);
  const ItemPtr& first = batch.Materialize(0);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(batch.Materialize(0).get(), first.get());
}

TEST(PhotonRecordTest, ProjectionMatchesTreeProjection) {
  PhotonRecord record;
  ASSERT_TRUE(PhotonRecord::FromXml(*FullPhoton(), &record));

  std::vector<xml::Path> paths;
  paths.push_back(xml::Path::Parse("coord/cel/ra").value());
  paths.push_back(xml::Path::Parse("en").value());
  uint16_t mask = CompileProjectionMask(paths);
  PhotonRecord projected = record.Project(mask);
  EXPECT_EQ(
      xml::WriteCompact(*projected.MaterializeXml()),
      "<photon><coord><cel><ra>120.5000</ra></cel></coord>"
      "<en>1.250</en></photon>");

  // A structural output path keeps the whole subtree.
  std::vector<xml::Path> subtree{xml::Path::Parse("coord/det").value()};
  PhotonRecord det = record.Project(CompileProjectionMask(subtree));
  EXPECT_EQ(xml::WriteCompact(*det.MaterializeXml()),
            "<photon><coord><det><dx>12</dx><dy>400</dy></det>"
            "</coord></photon>");
}

// --- Wire codec: record fast path vs the tree path. ---

TEST(RecordCodecTest, EncodeRecordMatchesTreeEncodingByteForByte) {
  workload::PhotonGenerator gen(workload::PhotonGenConfig{});
  transport::ItemEncoder record_encoder;
  transport::ItemEncoder tree_encoder;
  std::string record_bytes;
  std::string tree_bytes;
  for (int i = 0; i < 50; ++i) {
    PhotonRecord record = gen.NextRecord();
    record_bytes.clear();
    tree_bytes.clear();
    record_encoder.EncodeRecord(record, &record_bytes);
    tree_encoder.Encode(*MakeItem(record.MaterializeXml()), &tree_bytes);
    ASSERT_EQ(record_bytes, tree_bytes) << "item " << i;
  }
}

TEST(RecordCodecTest, MixedRecordAndTreeEncodingSharesOneDictionary) {
  // Alternating record- and tree-encoded photons through ONE encoder must
  // decode cleanly: both paths register dictionary names identically.
  workload::PhotonGenerator gen(workload::PhotonGenConfig{});
  transport::ItemEncoder encoder;
  transport::ItemDecoder decoder;
  for (int i = 0; i < 20; ++i) {
    PhotonRecord record = gen.NextRecord();
    std::string bytes;
    if (i % 2 == 0) {
      encoder.EncodeRecord(record, &bytes);
    } else {
      encoder.Encode(*MakeItem(record.MaterializeXml()), &bytes);
    }
    ItemBatch::Slot slot;
    ASSERT_TRUE(decoder.DecodeSlot(bytes, &slot).ok()) << "item " << i;
    ASSERT_TRUE(slot.is_record);
    EXPECT_EQ(xml::WriteCompact(*slot.record.MaterializeXml()),
              xml::WriteCompact(*record.MaterializeXml()));
  }
}

TEST(RecordCodecTest, DecodeSlotFallsBackToTreeForNonPhotons) {
  transport::ItemEncoder encoder;
  transport::ItemDecoder decoder;

  auto wagg = std::make_unique<xml::XmlNode>("wagg");
  wagg->AddLeaf("seq", "3");
  wagg->AddLeaf("sum", "12.5");
  ItemPtr item = MakeItem(std::move(wagg));
  std::string bytes;
  encoder.Encode(*item, &bytes);

  ItemBatch::Slot slot;
  ASSERT_TRUE(decoder.DecodeSlot(bytes, &slot).ok());
  EXPECT_FALSE(slot.is_record);
  ASSERT_NE(slot.item, nullptr);
  EXPECT_EQ(xml::WriteCompact(*slot.item), xml::WriteCompact(*item));

  // A conforming photon after the fallback still takes the record path —
  // the rollback left the decoder dictionary in lockstep.
  PhotonRecord record;
  ASSERT_TRUE(PhotonRecord::FromXml(*FullPhoton(), &record));
  bytes.clear();
  encoder.EncodeRecord(record, &bytes);
  ASSERT_TRUE(decoder.DecodeSlot(bytes, &slot).ok());
  EXPECT_TRUE(slot.is_record);
  EXPECT_EQ(slot.record.ContentHash(), record.ContentHash());
}

TEST(RecordCodecTest, DecodeSlotRejectsCorruptFramesLikeDecode) {
  // A corrupt body must raise the same error through DecodeSlot as
  // through the generic Decode — the record automaton's rollback re-runs
  // the tree path, it never invents its own error.
  transport::ItemEncoder encoder;
  PhotonRecord record;
  ASSERT_TRUE(PhotonRecord::FromXml(*FullPhoton(), &record));
  std::string bytes;
  encoder.EncodeRecord(record, &bytes);
  std::string corrupt = bytes.substr(0, bytes.size() / 2);

  transport::ItemDecoder slot_decoder;
  transport::ItemDecoder tree_decoder;
  ItemBatch::Slot slot;
  Status via_slot = slot_decoder.DecodeSlot(corrupt, &slot);
  std::unique_ptr<xml::XmlNode> tree;
  Status via_tree = tree_decoder.Decode(corrupt, &tree);
  EXPECT_FALSE(via_slot.ok());
  EXPECT_FALSE(via_tree.ok());
  EXPECT_EQ(via_slot.ToString(), via_tree.ToString());
}

}  // namespace
}  // namespace streamshare::engine
