// M3 — microbenchmarks of the window aggregation operators: throughput of
// WindowAggOp across window shapes, and of the Fig.-5 recombination
// operator.

#include <benchmark/benchmark.h>

#include "engine/executor.h"
#include "engine/window_agg.h"
#include "workload/photon_gen.h"

using namespace streamshare;

namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

std::vector<engine::ItemPtr> Photons(size_t count) {
  workload::PhotonGenConfig config;
  workload::PhotonGenerator generator(config);
  return generator.Generate(count);
}

void RunWindowBench(benchmark::State& state,
                    properties::WindowSpec window) {
  std::vector<engine::ItemPtr> photons = Photons(4096);
  for (auto _ : state) {
    state.PauseTiming();
    engine::OperatorGraph graph;
    auto* agg = graph.Add<engine::WindowAggOp>(
        "agg", properties::AggregateFunc::kAvg, P("en"), window);
    auto* sink = graph.Add<engine::SinkOp>("sink");
    agg->AddDownstream(sink);
    state.ResumeTiming();
    for (const engine::ItemPtr& photon : photons) {
      benchmark::DoNotOptimize(agg->Push(photon));
    }
    benchmark::DoNotOptimize(agg->Finish());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(photons.size()));
}

void BM_TumblingCountWindow(benchmark::State& state) {
  RunWindowBench(state,
                 properties::WindowSpec::Count(state.range(0)).value());
}
BENCHMARK(BM_TumblingCountWindow)->Arg(16)->Arg(128);

void BM_SlidingCountWindow(benchmark::State& state) {
  RunWindowBench(
      state,
      properties::WindowSpec::Count(state.range(0), state.range(0) / 4)
          .value());
}
BENCHMARK(BM_SlidingCountWindow)->Arg(16)->Arg(128);

void BM_TimeWindow(benchmark::State& state) {
  RunWindowBench(state, properties::WindowSpec::Diff(
                            P("det_time"),
                            Decimal::FromInt(state.range(0)),
                            Decimal::FromInt(state.range(0) / 2))
                            .value());
}
BENCHMARK(BM_TimeWindow)->Arg(20)->Arg(80);

void BM_AggCombine(benchmark::State& state) {
  // Pre-compute a fine aggregate stream once.
  properties::WindowSpec fine =
      properties::WindowSpec::Diff(P("det_time"), Decimal::FromInt(20),
                                   Decimal::FromInt(10))
          .value();
  properties::WindowSpec coarse =
      properties::WindowSpec::Diff(P("det_time"), Decimal::FromInt(60),
                                   Decimal::FromInt(40))
          .value();
  std::vector<engine::ItemPtr> fine_items;
  {
    engine::OperatorGraph graph;
    auto* agg = graph.Add<engine::WindowAggOp>(
        "agg", properties::AggregateFunc::kAvg, P("en"), fine);
    auto* sink = graph.Add<engine::SinkOp>("sink", /*keep_items=*/true);
    agg->AddDownstream(sink);
    if (!engine::RunStream(agg, Photons(8192)).ok()) {
      state.SkipWithError("fine aggregation failed");
      return;
    }
    fine_items = sink->items();
  }
  for (auto _ : state) {
    state.PauseTiming();
    engine::OperatorGraph graph;
    auto* combine = graph.Add<engine::AggCombineOp>(
        "combine", properties::AggregateFunc::kAvg, fine, coarse);
    auto* sink = graph.Add<engine::SinkOp>("sink");
    combine->AddDownstream(sink);
    state.ResumeTiming();
    for (const engine::ItemPtr& item : fine_items) {
      benchmark::DoNotOptimize(combine->Push(item));
    }
    benchmark::DoNotOptimize(combine->Finish());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fine_items.size()));
}
BENCHMARK(BM_AggCombine);

}  // namespace

BENCHMARK_MAIN();
