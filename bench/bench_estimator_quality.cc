// Estimator quality (E7): the cost model's size(p)/freq(p) estimates
// (§3.2) drive every plan choice — this bench quantifies how well they
// predict reality, and how much collected statistics improve them. Two
// modes over the extended-example workload:
//
//   uniform    — hand-declared value ranges (uniform assumption), as the
//                figure benches use;
//   collected  — statistics inferred from a 4000-photon sample by the
//                StatisticsCollector, including per-element histograms
//                that capture the sky's hot regions.
//
// For each mode: register the 25 queries under stream sharing, run the
// photon stream, and compare per-connection estimated vs. measured rates.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "cost/collector.h"
#include "workload/scenario.h"

using namespace streamshare;

namespace {

struct ErrorSummary {
  double mean = 0.0;
  double median = 0.0;
  double max = 0.0;
  size_t active = 0;
};

Result<ErrorSummary> RunMode(bool collected, bool print_rows) {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/25);
  const workload::StreamSpec& stream = scenario.streams[0];

  auto system = std::make_unique<sharing::StreamShareSystem>(
      scenario.topology, sharing::SystemConfig{});
  if (collected) {
    workload::PhotonGenerator sampler(stream.gen);
    cost::StatisticsCollector collector("photons", "photon");
    const size_t kSample = 4000;
    for (const engine::ItemPtr& photon : sampler.Generate(kSample)) {
      SS_RETURN_IF_ERROR(collector.Observe(*photon));
    }
    SS_ASSIGN_OR_RETURN(
        cost::StreamStatistics stats,
        collector.Build(static_cast<double>(kSample) /
                        stream.gen.frequency_hz));
    SS_RETURN_IF_ERROR(system->RegisterStream(
        "photons", std::move(stats), stream.source));
  } else {
    SS_RETURN_IF_ERROR(system->RegisterStream(
        "photons", workload::PhotonGenerator::Schema(),
        stream.gen.frequency_hz, stream.source));
    auto path = [](const char* text) {
      return xml::Path::Parse(text).value();
    };
    SS_RETURN_IF_ERROR(system->SetRange("photons", path("coord/cel/ra"),
                                        {0.0, 360.0}));
    SS_RETURN_IF_ERROR(system->SetRange("photons", path("coord/cel/dec"),
                                        {-90.0, 90.0}));
    SS_RETURN_IF_ERROR(
        system->SetRange("photons", path("en"), {0.1, 2.4}));
    SS_RETURN_IF_ERROR(system->SetAvgIncrement(
        "photons", path("det_time"), stream.gen.det_time_increment_mean));
  }

  for (const workload::QuerySpec& query : scenario.queries) {
    SS_RETURN_IF_ERROR(
        system
            ->RegisterQuery(query.text, query.target,
                            sharing::Strategy::kStreamSharing)
            .status());
  }
  const size_t kItems = 6000;
  workload::PhotonGenerator generator(stream.gen);
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  items["photons"] = generator.Generate(kItems);
  SS_RETURN_IF_ERROR(system->Run(items));
  double duration_s =
      static_cast<double>(kItems) / stream.gen.frequency_hz;

  const network::Topology& topology = scenario.topology;
  const engine::Metrics& metrics = system->metrics();
  std::vector<double> estimated(topology.link_count(), 0.0);
  for (const network::RegisteredStream& registered :
       system->registry().streams()) {
    if (registered.route.size() < 2) continue;
    Result<std::vector<network::LinkId>> links =
        topology.LinksOnPath(registered.route);
    if (!links.ok()) continue;
    for (network::LinkId link : *links) {
      estimated[link] += registered.rate_kbps;
    }
  }

  if (print_rows) {
    std::printf("%-12s %14s %14s %10s\n", "connection", "estimated kbps",
                "measured kbps", "error");
  }
  std::vector<double> errors;
  for (size_t link = 0; link < topology.link_count(); ++link) {
    double measured = metrics.LinkKbps(static_cast<network::LinkId>(link),
                                       duration_s);
    if (measured < 0.5 && estimated[link] < 0.5) continue;
    double error = estimated[link] / std::max(0.001, measured) - 1.0;
    errors.push_back(std::fabs(error));
    if (print_rows) {
      const network::Link& l = topology.link(link);
      std::printf(
          "%-12s %14.2f %14.2f %+9.1f%%\n",
          (std::to_string(l.a) + "-" + std::to_string(l.b)).c_str(),
          estimated[link], measured, 100.0 * error);
    }
  }
  if (errors.empty()) return Status::Internal("no active connections");
  std::sort(errors.begin(), errors.end());
  ErrorSummary summary;
  for (double error : errors) summary.mean += error;
  summary.mean /= static_cast<double>(errors.size());
  summary.median = errors[errors.size() / 2];
  summary.max = errors.back();
  summary.active = errors.size();
  return summary;
}

}  // namespace

int main() {
  std::printf(
      "Estimator quality — per-connection estimated vs. measured rate "
      "(extended example, 25 queries, 6000 photons)\n\n");
  std::printf("uniform ranges (hand-declared):\n");
  Result<ErrorSummary> uniform = RunMode(false, true);
  if (!uniform.ok()) {
    std::fprintf(stderr, "uniform mode failed: %s\n",
                 uniform.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncollected statistics (histograms from a 4000-photon "
              "sample):\n");
  Result<ErrorSummary> collected = RunMode(true, true);
  if (!collected.ok()) {
    std::fprintf(stderr, "collected mode failed: %s\n",
                 collected.status().ToString().c_str());
    return 1;
  }
  std::printf("\n%-12s %10s %10s %10s\n", "|error|", "mean", "median",
              "max");
  std::printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n", "uniform",
              100.0 * uniform->mean, 100.0 * uniform->median,
              100.0 * uniform->max);
  std::printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n", "collected",
              100.0 * collected->mean, 100.0 * collected->median,
              100.0 * collected->max);
  std::printf(
      "\nHistograms capture the sky's hot regions that the uniform "
      "assumption misses; residual error stems from correlations between "
      "ra and dec (the estimator multiplies marginals).\n");
  return 0;
}
