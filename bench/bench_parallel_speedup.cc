// Serial vs. peer-partitioned parallel execution on the 4×4 grid
// workload (Fig. 7 scenario: 16 super-peers, 2 photon streams, 100
// queries under stream sharing). Feeds the identical item lists through
// two identically-deployed systems — once on the serial executor, once on
// the parallel one — verifies the outputs are bit-identical, and prints
// items/s for both plus queue blocking totals.
//
// Output is `key=value` lines (plus human-readable commentary on lines
// starting with '#'); pipe through tools/bench_to_json to persist
// BENCH_engine.json. Usage: bench_parallel_speedup [items_per_stream]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "workload/scenario.h"

using namespace streamshare;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Result<std::unique_ptr<sharing::StreamShareSystem>> Deploy(
    const workload::ScenarioSpec& scenario,
    const sharing::SystemConfig& config) {
  SS_ASSIGN_OR_RETURN(std::unique_ptr<sharing::StreamShareSystem> system,
                      workload::BuildSystem(scenario, config));
  for (const workload::QuerySpec& query : scenario.queries) {
    Result<sharing::RegistrationResult> result = system->RegisterQuery(
        query.text, query.target, sharing::Strategy::kStreamSharing);
    SS_RETURN_IF_ERROR(result.status());
  }
  return system;
}

}  // namespace

int main(int argc, char** argv) {
  size_t items_per_stream = 2000;
  if (argc > 1) items_per_stream = std::strtoul(argv[1], nullptr, 10);

  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/13, /*query_count=*/100);

  sharing::SystemConfig config;
  config.keep_results = true;  // needed for the bit-identity check

  sharing::SystemConfig dom_config = config;
  dom_config.record_path = false;  // the pre-record DOM baseline

  Result<std::unique_ptr<sharing::StreamShareSystem>> serial =
      Deploy(scenario, config);
  Result<std::unique_ptr<sharing::StreamShareSystem>> serial_dom =
      Deploy(scenario, dom_config);
  Result<std::unique_ptr<sharing::StreamShareSystem>> parallel =
      Deploy(scenario, config);
  if (!serial.ok() || !serial_dom.ok() || !parallel.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 (!serial.ok()   ? serial
                  : !serial_dom.ok() ? serial_dom
                                     : parallel)
                     .status()
                     .ToString()
                     .c_str());
    return 1;
  }

  // The serial record run is fed straight from generator record batches
  // (no source DOM at all); the DOM and parallel runs get materialized
  // item lists from identically-seeded generators, so all three runs see
  // the same logical stream.
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  std::map<std::string, std::vector<engine::ItemBatch>> batches;
  size_t total_items = 0;
  for (const workload::StreamSpec& stream : scenario.streams) {
    workload::PhotonGenerator generator(stream.gen);
    items[stream.name] = generator.Generate(items_per_stream);
    workload::PhotonGenerator record_generator(stream.gen);
    batches[stream.name] = record_generator.GenerateBatches(
        items_per_stream, config.parallel.batch_size);
    total_items += items_per_stream;
  }

  // Profiling aid: BENCH_SERIAL_ONLY=1 runs just the serial record path
  // (no DOM baseline, no parallel run, no identity check) so a profile
  // samples exactly the configuration under study.
  const bool serial_only = std::getenv("BENCH_SERIAL_ONLY") != nullptr;

  Clock::time_point start = Clock::now();
  Status status = (*serial)->RunBatches(&batches);
  double serial_s = SecondsSince(start);
  if (!status.ok()) {
    std::fprintf(stderr, "serial run failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  if (serial_only) {
    std::printf("serial_items_per_s=%.1f\n",
                static_cast<double>(total_items) / serial_s);
    return 0;
  }

  start = Clock::now();
  status = (*serial_dom)->Run(items);
  double serial_dom_s = SecondsSince(start);
  if (!status.ok()) {
    std::fprintf(stderr, "serial DOM run failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  start = Clock::now();
  status = (*parallel)->RunParallel(items);
  double parallel_s = SecondsSince(start);
  if (!status.ok()) {
    std::fprintf(stderr, "parallel run failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }

  // Bit-identity: every query's result items must match the serial run's,
  // in order.
  bool identical = true;
  const auto& serial_regs = (*serial)->registrations();
  for (const auto* other : {&**serial_dom, &**parallel}) {
    const auto& other_regs = other->registrations();
    for (size_t q = 0; q < serial_regs.size() && identical; ++q) {
      const engine::SinkOp* expect = serial_regs[q].sink;
      const engine::SinkOp* got = other_regs[q].sink;
      if ((expect == nullptr) != (got == nullptr)) identical = false;
      if (expect == nullptr || got == nullptr) continue;
      if (expect->items().size() != got->items().size()) {
        identical = false;
        break;
      }
      for (size_t i = 0; i < expect->items().size(); ++i) {
        if (!expect->items()[i]->Equals(*got->items()[i])) {
          identical = false;
          break;
        }
      }
    }
  }

  uint64_t producer_blocked_ns = 0, consumer_blocked_ns = 0;
  uint64_t max_queue_depth = 0;
  size_t workers = (*parallel)->parallel_stats().size();
  for (const engine::ParallelWorkerStats& stats :
       (*parallel)->parallel_stats()) {
    producer_blocked_ns += stats.producer_blocked_ns;
    consumer_blocked_ns += stats.consumer_blocked_ns;
    max_queue_depth = std::max(max_queue_depth, stats.max_queue_depth);
  }

  double serial_rate = static_cast<double>(total_items) / serial_s;
  double serial_dom_rate = static_cast<double>(total_items) / serial_dom_s;
  double parallel_rate = static_cast<double>(total_items) / parallel_s;
  std::printf("# 4x4 grid, 100 queries, %zu items/stream, %u hw threads\n",
              items_per_stream, std::thread::hardware_concurrency());
  std::printf("bench=parallel_speedup\n");
  std::printf("workload=grid4x4\n");
  std::printf("items_total=%zu\n", total_items);
  std::printf("hw_threads=%u\n", std::thread::hardware_concurrency());
  std::printf("workers=%zu\n", workers);
  for (size_t w = 0; w < workers; ++w) {
    const engine::ParallelWorkerStats& stats =
        (*parallel)->parallel_stats()[w];
    std::printf("# worker %zu: %zu peers, %zu ops, %llu entries\n", w,
                stats.peers.size(), stats.operator_count,
                static_cast<unsigned long long>(stats.entries_received));
  }
  std::printf("serial_items_per_s=%.1f\n", serial_rate);
  std::printf("serial_dom_items_per_s=%.1f\n", serial_dom_rate);
  std::printf("record_speedup=%.3f\n",
              serial_dom_rate > 0 ? serial_rate / serial_dom_rate : 0.0);
  std::printf("parallel_items_per_s=%.1f\n", parallel_rate);
  std::printf("speedup=%.3f\n",
              serial_rate > 0 ? parallel_rate / serial_rate : 0.0);
  std::printf("identical=%d\n", identical ? 1 : 0);
  std::printf("producer_blocked_ms=%.3f\n",
              static_cast<double>(producer_blocked_ns) / 1e6);
  std::printf("consumer_blocked_ms=%.3f\n",
              static_cast<double>(consumer_blocked_ns) / 1e6);
  std::printf("queue_max_depth=%llu\n",
              static_cast<unsigned long long>(max_queue_depth));
  std::printf("queue_capacity=%zu\n", config.parallel.queue_capacity);
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: parallel output is not identical to serial\n");
    return 1;
  }
  return 0;
}
