// Registration-cost scaling: indexed candidate lookup vs the flat
// per-node registry scan, out to 100k installed queries.
//
// Two 4×4-grid workloads (capacities raised so admission never caps the
// stream population — the index is what's under test):
//
//   * pooled — every query constant comes from a predefined discrete set
//     (the paper's §4 methodology: "chosen uniformly from a predefined
//     set of values to enable a certain degree of shareability"). The
//     distinct-predicate pool is bounded, so dominance groups absorb the
//     growing population and indexed registration cost must stay flat —
//     this is the curve the CI gate pins (p99@100k ≤ 3× p99@1k).
//
//   * open — the historical continuous-constant draw: every contained
//     selection is a distinct box, so the set of *genuinely distinct*
//     reuse candidates grows with the population and any exact planner
//     must cost them all. Reported for contrast (near-linear by nature);
//     the index still wins on the constant (signature work per candidate)
//     but cannot flatten inherent candidate growth.
//
// Output is `key=value` (plus `#` commentary), piped into
// tools/bench_to_json to persist BENCH_registration.json:
//
//   ./bench/bench_scaling_registration | \
//       ./tools/bench_to_json BENCH_registration.json
//
// Args: [pooled_total] [pooled_flat_cap] [open_total]
// (defaults 100000 10000 10000; smaller values for quick local runs).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "workload/query_gen.h"
#include "workload/scenario.h"

using namespace streamshare;

namespace {

constexpr size_t kCheckpoints[] = {1000,  2000,  5000, 10000,
                                   20000, 50000, 100000};

// Mirrors GridScenario's query mix (two streams, uniform targets) with a
// configurable contained-selection constant pool.
std::vector<workload::QuerySpec> GridQueries(uint64_t seed, size_t count,
                                             int shrink_steps) {
  workload::QueryGenConfig first =
      workload::QueryGenConfig::Default(seed + 1, "photons");
  workload::QueryGenConfig second =
      workload::QueryGenConfig::Default(seed + 2, "photons2");
  first.shrink_steps = shrink_steps;
  second.shrink_steps = shrink_steps;
  workload::QueryGenerator gen_first(first);
  workload::QueryGenerator gen_second(second);
  std::mt19937_64 rng(seed + 3);
  std::uniform_int_distribution<int> target_dist(0, 15);
  std::uniform_int_distribution<int> stream_dist(0, 1);
  std::vector<workload::QuerySpec> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    std::string text =
        stream_dist(rng) == 0 ? gen_first.Next() : gen_second.Next();
    queries.push_back({std::move(text), target_dist(rng)});
  }
  return queries;
}

double Percentile(std::vector<double>* window, double fraction) {
  if (window->empty()) return 0.0;
  std::sort(window->begin(), window->end());
  size_t index = static_cast<size_t>(fraction * (window->size() - 1));
  return (*window)[index];
}

Status RunArm(const std::string& arm, bool indexed, int shrink_steps,
              size_t total, uint64_t seed) {
  // Query generation is excluded from the measurements; capacities are
  // raised so every plan is feasible and the population keeps growing.
  std::vector<workload::QuerySpec> queries =
      GridQueries(seed, total, shrink_steps);
  workload::ScenarioSpec scenario = workload::GridScenario(
      seed, /*query_count=*/0, /*bandwidth_kbps=*/1e9, /*max_load=*/1e9);
  sharing::SystemConfig config;
  config.candidate_index = indexed;
  SS_ASSIGN_OR_RETURN(auto system,
                      workload::BuildSystem(scenario, config));

  std::vector<double> window;
  long long window_candidates = 0;
  long accepted = 0;
  size_t next_checkpoint = 0;
  for (size_t i = 0; i < total; ++i) {
    SS_ASSIGN_OR_RETURN(
        sharing::RegistrationResult result,
        system->RegisterQuery(queries[i].text, queries[i].target,
                              sharing::Strategy::kStreamSharing));
    if (result.accepted) ++accepted;
    window.push_back(result.registration_micros);
    window_candidates += result.search.candidates_examined;
    size_t registered = i + 1;
    if (next_checkpoint < std::size(kCheckpoints) &&
        registered == kCheckpoints[next_checkpoint]) {
      double p50 = Percentile(&window, 0.50);
      double p99 = Percentile(&window, 0.99);
      std::printf("%s_p50_us_%zu=%.1f\n", arm.c_str(), registered, p50);
      std::printf("%s_p99_us_%zu=%.1f\n", arm.c_str(), registered, p99);
      std::printf("%s_avg_candidates_%zu=%.1f\n", arm.c_str(), registered,
                  static_cast<double>(window_candidates) / window.size());
      std::fflush(stdout);
      window.clear();
      window_candidates = 0;
      ++next_checkpoint;
    }
  }
  std::printf("%s_total=%zu\n", arm.c_str(), total);
  std::printf("%s_accepted=%ld\n", arm.c_str(), accepted);
  if (const sharing::CandidateIndex* index = system->candidate_index()) {
    std::printf("%s_live_streams=%zu\n", arm.c_str(), index->live_count());
    std::printf("%s_shapes=%zu\n", arm.c_str(), index->shape_count());
    std::printf("%s_families=%zu\n", arm.c_str(), index->family_count());
  }
  return Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  size_t pooled_total = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                 : 100000;
  size_t flat_cap = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10000;
  size_t open_total = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                               : 10000;
  constexpr uint64_t kSeed = 19;

  std::printf("# Registration-cost scaling, 4x4 grid, stream sharing.\n");
  std::printf(
      "# pooled_indexed: discrete constant pool, candidate index on — the "
      "gated curve.\n");
  Status status = RunArm("pooled_indexed", /*indexed=*/true,
                         /*shrink_steps=*/2, pooled_total, kSeed);
  if (status.ok()) {
    std::printf("# pooled_flat: same workload, flat per-node scan.\n");
    status = RunArm("pooled_flat", /*indexed=*/false, /*shrink_steps=*/2,
                    std::min(flat_cap, pooled_total), kSeed);
  }
  if (status.ok()) {
    std::printf(
        "# open_indexed: continuous constants — candidate growth is "
        "inherent to the workload, not index overhead.\n");
    status = RunArm("open_indexed", /*indexed=*/true, /*shrink_steps=*/0,
                    open_total, kSeed);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "scaling bench failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  return 0;
}
