// Registration-cost scaling. Table 1's maxima grow with the number of
// streams already in the network — every prior subscription adds reuse
// candidates the breadth-first search must examine. This bench registers
// 200 queries on the 4×4 grid under stream sharing (flat and
// hierarchical) and reports, per 25-query bucket: average registration
// time, nodes visited, and candidates examined — the scalability curve
// that motivates the paper's hierarchical future work.

#include <cstdio>
#include <vector>

#include "workload/scenario.h"

using namespace streamshare;

namespace {

struct Bucket {
  double micros = 0.0;
  long nodes = 0;
  long candidates = 0;
  int count = 0;
};

Result<std::vector<Bucket>> RunWith(bool hierarchical) {
  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/19, /*query_count=*/200);
  sharing::SystemConfig config;
  if (hierarchical) {
    config.subnet_assignment.resize(16);
    for (int r = 0; r < 4; ++r) {
      for (int c = 0; c < 4; ++c) {
        config.subnet_assignment[r * 4 + c] =
            (r >= 2 ? 2 : 0) + (c >= 2 ? 1 : 0);
      }
    }
  }
  SS_ASSIGN_OR_RETURN(auto system, workload::BuildSystem(scenario, config));
  std::vector<Bucket> buckets(scenario.queries.size() / 25);
  for (size_t i = 0; i < scenario.queries.size(); ++i) {
    SS_ASSIGN_OR_RETURN(
        sharing::RegistrationResult result,
        system->RegisterQuery(scenario.queries[i].text,
                              scenario.queries[i].target,
                              sharing::Strategy::kStreamSharing));
    Bucket& bucket = buckets[i / 25];
    bucket.micros += result.registration_micros;
    bucket.nodes += result.search.nodes_visited;
    bucket.candidates += result.search.candidates_examined;
    ++bucket.count;
  }
  return buckets;
}

}  // namespace

int main() {
  Result<std::vector<Bucket>> flat = RunWith(false);
  Result<std::vector<Bucket>> hierarchical = RunWith(true);
  if (!flat.ok() || !hierarchical.ok()) {
    std::fprintf(stderr, "scaling bench failed: %s %s\n",
                 flat.status().ToString().c_str(),
                 hierarchical.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Registration-cost scaling — 4x4 grid, 200 queries under stream "
      "sharing\n\n");
  std::printf("%-12s | %24s | %24s\n", "", "flat", "hierarchical");
  std::printf("%-12s | %10s %13s | %10s %13s\n", "queries", "avg us",
              "avg candidates", "avg us", "avg candidates");
  for (size_t b = 0; b < flat->size(); ++b) {
    const Bucket& f = (*flat)[b];
    const Bucket& h = (*hierarchical)[b];
    std::printf("%4zu - %-4zu  | %10.1f %13.1f | %10.1f %13.1f\n", b * 25,
                b * 25 + 24, f.micros / f.count,
                static_cast<double>(f.candidates) / f.count,
                h.micros / h.count,
                static_cast<double>(h.candidates) / h.count);
  }
  std::printf(
      "\nRegistration cost grows with the stream population (the paper's "
      "Table 1 maxima show the same trend); the hierarchical organization "
      "flattens the curve.\n");
  return 0;
}
