// M2 — microbenchmarks of the WXQuery front end: parsing and full
// parse+analyze on the paper's queries and on generated template queries.

#include <benchmark/benchmark.h>

#include "workload/paper_queries.h"
#include "workload/query_gen.h"
#include "wxquery/analyzer.h"
#include "wxquery/parser.h"

using namespace streamshare;

namespace {

void BM_ParseQuery1(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = wxquery::ParseQuery(workload::kQuery1);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseQuery1);

void BM_ParseQuery4(benchmark::State& state) {
  for (auto _ : state) {
    auto parsed = wxquery::ParseQuery(workload::kQuery4);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_ParseQuery4);

void BM_ParseAndAnalyzeQuery1(benchmark::State& state) {
  for (auto _ : state) {
    auto analyzed = wxquery::ParseAndAnalyze(workload::kQuery1);
    benchmark::DoNotOptimize(analyzed);
  }
}
BENCHMARK(BM_ParseAndAnalyzeQuery1);

void BM_ParseAndAnalyzeQuery3(benchmark::State& state) {
  for (auto _ : state) {
    auto analyzed = wxquery::ParseAndAnalyze(workload::kQuery3);
    benchmark::DoNotOptimize(analyzed);
  }
}
BENCHMARK(BM_ParseAndAnalyzeQuery3);

void BM_ParseAndAnalyzeGenerated(benchmark::State& state) {
  workload::QueryGenerator generator(
      workload::QueryGenConfig::Default(1));
  std::vector<std::string> queries = generator.Generate(64);
  size_t i = 0;
  for (auto _ : state) {
    auto analyzed = wxquery::ParseAndAnalyze(queries[i++ % queries.size()]);
    benchmark::DoNotOptimize(analyzed);
  }
}
BENCHMARK(BM_ParseAndAnalyzeGenerated);

}  // namespace

BENCHMARK_MAIN();
