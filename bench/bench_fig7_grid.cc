// Figure 7 (E3 + E4): 4×4 grid scenario — 16 super-peers, 2 data streams,
// 100 queries. Prints, per strategy, the average CPU load of every
// super-peer (left plot) and the accumulated network traffic in Mbit —
// incoming plus outgoing — of every super-peer (right plot), measured
// from execution.

#include <cstdio>
#include <vector>

#include "workload/scenario.h"

using namespace streamshare;

namespace {
constexpr size_t kItems = 2000;
}

int main() {
  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/13, /*query_count=*/100);
  const network::Topology& topology = scenario.topology;

  const std::pair<sharing::Strategy, const char*> strategies[] = {
      {sharing::Strategy::kDataShipping, "Data Shipping"},
      {sharing::Strategy::kQueryShipping, "Query Shipping"},
      {sharing::Strategy::kStreamSharing, "Stream Sharing"},
  };

  struct Row {
    std::vector<double> cpu_percent;
    std::vector<double> acc_mbit;
    int accepted = 0;
  };
  std::vector<Row> rows;

  for (const auto& [strategy, name] : strategies) {
    sharing::SystemConfig config;
    Result<workload::ScenarioRun> run =
        workload::RunScenario(scenario, strategy, config, kItems);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   run.status().ToString().c_str());
      return 1;
    }
    Row row;
    row.accepted = run->accepted;
    const engine::Metrics& metrics = run->system->metrics();
    for (size_t peer = 0; peer < topology.peer_count(); ++peer) {
      row.cpu_percent.push_back(metrics.PeerCpuPercent(
          static_cast<network::NodeId>(peer), run->duration_s,
          topology.peer(peer).max_load));
      // Accumulated traffic: bytes on every link incident to the peer
      // (each transmission counts as outgoing at one end and incoming at
      // the other, exactly like the paper's in+out accounting).
      double bits = 0.0;
      for (size_t link = 0; link < topology.link_count(); ++link) {
        const network::Link& l = topology.link(link);
        if (l.a == static_cast<network::NodeId>(peer) ||
            l.b == static_cast<network::NodeId>(peer)) {
          bits += static_cast<double>(
                      metrics.BytesOnLink(static_cast<int>(link))) *
                  8.0;
        }
      }
      row.acc_mbit.push_back(bits / 1e6);
    }
    rows.push_back(std::move(row));
  }

  std::printf(
      "Figure 7 — 4x4 grid scenario: 16 super-peers, 2 data streams, 100 "
      "queries (%zu photons per stream)\n\n",
      kItems);

  std::printf("Avg. CPU Load (%%)\n%-8s", "Peer");
  for (const auto& [strategy, name] : strategies) {
    std::printf("%18s", name);
  }
  std::printf("\n");
  for (size_t peer = 0; peer < topology.peer_count(); ++peer) {
    std::printf("%-8s", topology.peer(peer).name.c_str());
    for (const Row& row : rows) std::printf("%18.2f", row.cpu_percent[peer]);
    std::printf("\n");
  }

  std::printf("\nAcc. Network Traffic (MBit, in+out)\n%-8s", "Peer");
  for (const auto& [strategy, name] : strategies) {
    std::printf("%18s", name);
  }
  std::printf("\n");
  for (size_t peer = 0; peer < topology.peer_count(); ++peer) {
    std::printf("%-8s", topology.peer(peer).name.c_str());
    for (const Row& row : rows) std::printf("%18.2f", row.acc_mbit[peer]);
    std::printf("\n");
  }

  std::printf("\nTotals\n");
  for (size_t s = 0; s < rows.size(); ++s) {
    double cpu = 0.0, mbit = 0.0;
    for (double value : rows[s].cpu_percent) cpu += value;
    for (double value : rows[s].acc_mbit) mbit += value;
    std::printf(
        "  %-16s accepted=%3d   sum CPU = %8.2f %%   sum traffic = %8.2f "
        "MBit\n",
        strategies[s].second, rows[s].accepted, cpu, mbit);
  }
  return 0;
}
