// M1 — microbenchmarks of the predicate engine: graph construction,
// satisfiability, minimization, and both implication tests, at varying
// conjunction sizes.

#include <benchmark/benchmark.h>

#include <random>

#include "matching/match_predicates.h"
#include "predicate/graph.h"

using namespace streamshare;

namespace {

xml::Path P(const std::string& text) {
  return xml::Path::Parse(text).value();
}

std::vector<predicate::AtomicPredicate> MakeConjunction(int atoms,
                                                        uint64_t seed) {
  // Always satisfiable: upper bounds lie in [50, 150], lower bounds in
  // [-150, -50], so the all-zero assignment is a model.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> var_dist(0, 5);
  std::uniform_int_distribution<int> magnitude_dist(50, 150);
  std::uniform_int_distribution<int> op_dist(0, 3);
  static const predicate::ComparisonOp kOps[] = {
      predicate::ComparisonOp::kLt, predicate::ComparisonOp::kLe,
      predicate::ComparisonOp::kGt, predicate::ComparisonOp::kGe};
  std::vector<predicate::AtomicPredicate> out;
  for (int i = 0; i < atoms; ++i) {
    int op = op_dist(rng);
    bool is_upper = op < 2;  // kLt / kLe
    out.push_back(predicate::AtomicPredicate::Compare(
        P("v" + std::to_string(var_dist(rng))), kOps[op],
        Decimal::FromInt(is_upper ? magnitude_dist(rng)
                                  : -magnitude_dist(rng))));
  }
  return out;
}

void BM_GraphBuild(benchmark::State& state) {
  auto conjunction = MakeConjunction(static_cast<int>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        predicate::PredicateGraph::Build(conjunction));
  }
}
BENCHMARK(BM_GraphBuild)->Arg(4)->Arg(8)->Arg(16);

void BM_Satisfiability(benchmark::State& state) {
  auto graph = predicate::PredicateGraph::Build(
      MakeConjunction(static_cast<int>(state.range(0)), 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph.IsSatisfiable());
  }
}
BENCHMARK(BM_Satisfiability)->Arg(4)->Arg(8)->Arg(16);

void BM_Minimize(benchmark::State& state) {
  auto conjunction = MakeConjunction(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    state.PauseTiming();
    auto graph = predicate::PredicateGraph::Build(conjunction);
    if (!graph.IsSatisfiable()) {
      state.SkipWithError("unsatisfiable sample");
      break;
    }
    state.ResumeTiming();
    graph.Minimize();
    benchmark::DoNotOptimize(graph);
  }
}
BENCHMARK(BM_Minimize)->Arg(4)->Arg(8)->Arg(16);

void BM_MatchEdgeLocal(benchmark::State& state) {
  auto stream = predicate::PredicateGraph::Build(
      MakeConjunction(static_cast<int>(state.range(0)), 4));
  auto sub = predicate::PredicateGraph::Build(
      MakeConjunction(static_cast<int>(state.range(0)), 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matching::MatchPredicatesEdgeLocal(stream, sub));
  }
}
BENCHMARK(BM_MatchEdgeLocal)->Arg(4)->Arg(8)->Arg(16);

void BM_MatchComplete(benchmark::State& state) {
  auto stream = predicate::PredicateGraph::Build(
      MakeConjunction(static_cast<int>(state.range(0)), 4));
  auto sub = predicate::PredicateGraph::Build(
      MakeConjunction(static_cast<int>(state.range(0)), 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        matching::MatchPredicatesComplete(stream, sub));
  }
}
BENCHMARK(BM_MatchComplete)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
