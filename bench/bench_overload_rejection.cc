// E6 — the paper's in-text overload experiment (§4): the 4×4 grid
// scenario with maximum CPU load capped at 10 % of capacity and link
// bandwidth capped at 1 Mbit/s. Counts how many of the 100 queries each
// strategy must reject because no evaluation plan avoids overloading a
// peer or connection. Paper: data shipping rejects 47, query shipping 35,
// stream sharing 2.

#include <cstdio>

#include "workload/scenario.h"

using namespace streamshare;

int main() {
  // 10% of the default 5000 work-unit capacity; 1 Mbit/s links.
  workload::ScenarioSpec scenario = workload::GridScenario(
      /*seed=*/13, /*query_count=*/100,
      /*bandwidth_kbps=*/1000.0,
      /*max_load=*/workload::kDefaultMaxLoad * 0.1);

  const std::pair<sharing::Strategy, const char*> strategies[] = {
      {sharing::Strategy::kDataShipping, "Data Shipping"},
      {sharing::Strategy::kQueryShipping, "Query Shipping"},
      {sharing::Strategy::kStreamSharing, "Stream Sharing"},
  };

  std::printf(
      "Overload experiment — 4x4 grid, 100 queries, CPU capped at 10%%, "
      "links capped at 1 Mbit/s\n\n");
  std::printf("%-16s %10s %10s\n", "Strategy", "Accepted", "Rejected");
  for (const auto& [strategy, name] : strategies) {
    sharing::SystemConfig config;
    config.enforce_limits = true;
    Result<std::unique_ptr<sharing::StreamShareSystem>> system =
        workload::BuildSystem(scenario, config);
    if (!system.ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   system.status().ToString().c_str());
      return 1;
    }
    int accepted = 0, rejected = 0;
    for (const workload::QuerySpec& query : scenario.queries) {
      Result<sharing::RegistrationResult> result =
          (*system)->RegisterQuery(query.text, query.target, strategy);
      if (!result.ok()) {
        std::fprintf(stderr, "registration error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      if (result->accepted) {
        ++accepted;
      } else {
        ++rejected;
      }
    }
    std::printf("%-16s %10d %10d\n", name, accepted, rejected);
  }
  std::printf(
      "\n(Paper, same setup on their testbed: data shipping rejected 47, "
      "query shipping 35, stream sharing 2 of 100.)\n");
  return 0;
}
