// Ablation A5 — hierarchical network organization (paper §6): on an 8×8
// super-peer grid with 4 streams and 200 queries, compares flat
// stream-sharing registration against subnet-restricted registration
// (16 subnets of 2×2, with global fallback): search effort, registration
// time, and the plan-quality cost of searching locally.

#include <cstdio>
#include <random>

#include "workload/query_gen.h"
#include "workload/scenario.h"

using namespace streamshare;

namespace {

struct BigScenario {
  network::Topology topology;
  std::vector<workload::StreamSpec> streams;
  std::vector<workload::QuerySpec> queries;
};

BigScenario MakeBigScenario(uint64_t seed) {
  BigScenario scenario;
  scenario.topology = network::Topology::Grid(
      8, 8, workload::kDefaultBandwidthKbps, workload::kDefaultMaxLoad);
  // Four streams at the corners.
  const network::NodeId corners[] = {0, 7, 56, 63};
  for (int i = 0; i < 4; ++i) {
    workload::StreamSpec stream;
    stream.name = i == 0 ? "photons" : "photons" + std::to_string(i + 1);
    stream.source = corners[i];
    stream.gen.seed = seed + static_cast<uint64_t>(i);
    scenario.streams.push_back(std::move(stream));
  }
  std::mt19937_64 rng(seed + 100);
  std::uniform_int_distribution<int> stream_dist(0, 3);
  std::uniform_int_distribution<int> target_dist(0, 63);
  std::vector<workload::QueryGenerator> generators;
  for (int i = 0; i < 4; ++i) {
    generators.emplace_back(workload::QueryGenConfig::Default(
        seed + 200 + static_cast<uint64_t>(i),
        scenario.streams[i].name));
  }
  for (int i = 0; i < 200; ++i) {
    scenario.queries.push_back(
        {generators[stream_dist(rng)].Next(), target_dist(rng)});
  }
  return scenario;
}

struct Totals {
  long nodes = 0;
  long candidates = 0;
  double cost = 0.0;
  double micros = 0.0;
};

Result<Totals> RunWith(const BigScenario& scenario, bool hierarchical) {
  sharing::SystemConfig config;
  if (hierarchical) {
    // 16 subnets of 2×2.
    config.subnet_assignment.resize(64);
    for (int r = 0; r < 8; ++r) {
      for (int c = 0; c < 8; ++c) {
        config.subnet_assignment[r * 8 + c] = (r / 2) * 4 + (c / 2);
      }
    }
  }
  auto system = std::make_unique<sharing::StreamShareSystem>(
      scenario.topology, config);
  for (const workload::StreamSpec& stream : scenario.streams) {
    SS_RETURN_IF_ERROR(system->RegisterStream(
        stream.name, workload::PhotonGenerator::Schema(),
        stream.gen.frequency_hz, stream.source));
    auto path = [](const char* text) {
      return xml::Path::Parse(text).value();
    };
    SS_RETURN_IF_ERROR(
        system->SetRange(stream.name, path("coord/cel/ra"), {0.0, 360.0}));
    SS_RETURN_IF_ERROR(system->SetRange(stream.name, path("coord/cel/dec"),
                                        {-90.0, 90.0}));
    SS_RETURN_IF_ERROR(
        system->SetRange(stream.name, path("en"), {0.1, 2.4}));
    SS_RETURN_IF_ERROR(system->SetAvgIncrement(
        stream.name, path("det_time"),
        stream.gen.det_time_increment_mean));
  }
  Totals totals;
  for (const workload::QuerySpec& query : scenario.queries) {
    SS_ASSIGN_OR_RETURN(
        sharing::RegistrationResult result,
        system->RegisterQuery(query.text, query.target,
                              sharing::Strategy::kStreamSharing));
    totals.nodes += result.search.nodes_visited;
    totals.candidates += result.search.candidates_examined;
    totals.cost += result.plan.TotalCost();
    totals.micros += result.registration_micros;
  }
  return totals;
}

}  // namespace

int main() {
  BigScenario scenario = MakeBigScenario(41);
  Result<Totals> flat = RunWith(scenario, false);
  Result<Totals> hierarchical = RunWith(scenario, true);
  if (!flat.ok() || !hierarchical.ok()) {
    std::fprintf(stderr, "ablation failed: %s %s\n",
                 flat.status().ToString().c_str(),
                 hierarchical.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Ablation A5 — hierarchical subnets (8x8 grid, 4 streams, 200 "
      "queries, 16 subnets with global fallback)\n\n");
  std::printf("%-26s %14s %14s\n", "", "flat", "hierarchical");
  std::printf("%-26s %14ld %14ld\n", "nodes visited", flat->nodes,
              hierarchical->nodes);
  std::printf("%-26s %14ld %14ld\n", "candidates examined",
              flat->candidates, hierarchical->candidates);
  std::printf("%-26s %14.0f %14.0f\n", "registration time (us)",
              flat->micros, hierarchical->micros);
  std::printf("%-26s %14.4f %14.4f\n", "total plan cost", flat->cost,
              hierarchical->cost);
  std::printf("\nPlan-quality premium of searching locally: %+.2f%%\n",
              flat->cost > 0.0
                  ? 100.0 * (hierarchical->cost - flat->cost) / flat->cost
                  : 0.0);
  return 0;
}
