// Ablation A4 — stream widening (paper §6 future work): compares stream
// sharing with and without widening on a workload of *overlapping but not
// nested* sky boxes, where plain containment-based sharing finds nothing
// to reuse. Reports how many subscriptions reuse (possibly widened)
// streams and the measured total network traffic.

#include <cmath>
#include <cstdio>
#include <random>

#include "workload/scenario.h"

using namespace streamshare;

namespace {

/// Overlapping-box workload: every box is unique (continuous offsets), so
/// plain containment/equivalence sharing finds nothing to reuse — each
/// query overlaps its neighbours without nesting. This isolates what
/// widening alone contributes.
std::vector<workload::QuerySpec> SlidingBoxQueries(int count,
                                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> offset_dist(0.0, 22.0);
  std::uniform_int_distribution<int> target_dist(0, 15);
  std::vector<workload::QuerySpec> out;
  for (int i = 0; i < count; ++i) {
    double ra_lo = 100.0 + std::round(offset_dist(rng) * 10.0) / 10.0;
    double ra_hi = ra_lo + 16.0;
    char text[512];
    std::snprintf(
        text, sizeof(text),
        "<out> { for $p in stream(\"photons\")/photons/photon "
        "where $p/coord/cel/ra >= %.1f and $p/coord/cel/ra <= %.1f "
        "and $p/coord/cel/dec >= -49.0 and $p/coord/cel/dec <= -40.0 "
        "return <hit> { $p/coord/cel/ra } { $p/coord/cel/dec } "
        "{ $p/en } </hit> } </out>",
        ra_lo, ra_hi);
    out.push_back({text, target_dist(rng)});
  }
  return out;
}

struct Outcome {
  int widened = 0;
  int reused_derived = 0;
  int from_original = 0;
  uint64_t bytes = 0;
};

Result<Outcome> RunWith(bool widening) {
  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/31, /*query_count=*/0);
  scenario.queries = SlidingBoxQueries(60, 31);

  sharing::SystemConfig config;
  config.planner.enable_widening = widening;
  SS_ASSIGN_OR_RETURN(auto system, workload::BuildSystem(scenario, config));
  Outcome outcome;
  for (const workload::QuerySpec& query : scenario.queries) {
    SS_ASSIGN_OR_RETURN(
        sharing::RegistrationResult result,
        system->RegisterQuery(query.text, query.target,
                              sharing::Strategy::kStreamSharing));
    const sharing::InputPlan& input = result.plan.inputs[0];
    if (input.widening.has_value()) {
      ++outcome.widened;
    } else if (!system->registry().stream(input.reused_stream)
                    .IsOriginal()) {
      ++outcome.reused_derived;
    } else {
      ++outcome.from_original;
    }
  }
  workload::PhotonGenerator generator(scenario.streams[0].gen);
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  items["photons"] = generator.Generate(2000);
  // The second stream exists in the scenario; feed it too (unused).
  workload::PhotonGenerator second(scenario.streams[1].gen);
  items["photons2"] = second.Generate(2000);
  SS_RETURN_IF_ERROR(system->Run(items));
  outcome.bytes = system->metrics().TotalBytes();
  return outcome;
}

}  // namespace

int main() {
  Result<Outcome> off = RunWith(false);
  Result<Outcome> on = RunWith(true);
  if (!off.ok() || !on.ok()) {
    std::fprintf(stderr, "ablation failed: %s %s\n",
                 off.status().ToString().c_str(),
                 on.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "Ablation A4 — stream widening on 60 overlapping (non-nested) box "
      "queries, 4x4 grid\n\n");
  std::printf("%-28s %14s %14s\n", "", "widening off", "widening on");
  std::printf("%-28s %14d %14d\n", "plans that widened a stream",
              off->widened, on->widened);
  std::printf("%-28s %14d %14d\n", "plans reusing derived streams",
              off->reused_derived, on->reused_derived);
  std::printf("%-28s %14d %14d\n", "plans tapping the original",
              off->from_original, on->from_original);
  std::printf("%-28s %14llu %14llu\n", "total bytes transmitted",
              static_cast<unsigned long long>(off->bytes),
              static_cast<unsigned long long>(on->bytes));
  double saved = off->bytes > 0
                     ? 100.0 * (1.0 - static_cast<double>(on->bytes) /
                                          static_cast<double>(off->bytes))
                     : 0.0;
  std::printf("\nWidening saves %.1f%% of network traffic on this "
              "workload.\n",
              saved);
  return 0;
}
