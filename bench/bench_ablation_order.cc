// Ablation A6 — registration-order sensitivity. The paper's approach is
// *incremental*: queries are optimized one after another against the
// current network state, in contrast to classical multi-query
// optimization which sees the whole set at once (§5). The price of
// incrementality is order dependence: early queries decide which streams
// exist for later ones to reuse. This bench registers the same 25-query
// workload in many random orders and reports the spread of the measured
// total traffic, plus the best/worst orders' gap.

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <random>

#include "workload/scenario.h"

using namespace streamshare;

int main() {
  workload::ScenarioSpec base =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/25);

  const int kOrders = 12;
  std::mt19937_64 rng(4711);
  std::vector<double> totals;

  for (int order = 0; order < kOrders; ++order) {
    workload::ScenarioSpec scenario = base;
    if (order > 0) {
      std::shuffle(scenario.queries.begin(), scenario.queries.end(), rng);
    }
    sharing::SystemConfig config;
    Result<workload::ScenarioRun> run = workload::RunScenario(
        scenario, sharing::Strategy::kStreamSharing, config, 1500);
    if (!run.ok()) {
      std::fprintf(stderr, "order %d failed: %s\n", order,
                   run.status().ToString().c_str());
      return 1;
    }
    totals.push_back(
        static_cast<double>(run->system->metrics().TotalBytes()));
  }

  double best = *std::min_element(totals.begin(), totals.end());
  double worst = *std::max_element(totals.begin(), totals.end());
  double mean = std::accumulate(totals.begin(), totals.end(), 0.0) /
                static_cast<double>(totals.size());
  double variance = 0.0;
  for (double value : totals) {
    variance += (value - mean) * (value - mean);
  }
  variance /= static_cast<double>(totals.size());

  std::printf(
      "Ablation A6 — registration-order sensitivity (extended example, 25 "
      "queries, %d random orders, stream sharing)\n\n",
      kOrders);
  std::printf("measured total traffic (bytes):\n");
  std::printf("  paper order : %12.0f\n", totals[0]);
  std::printf("  best order  : %12.0f\n", best);
  std::printf("  worst order : %12.0f\n", worst);
  std::printf("  mean        : %12.0f   (stddev %.0f)\n", mean,
              std::sqrt(variance));
  std::printf(
      "\nIncremental optimization pays at most %.1f%% over the best "
      "observed order on this workload.\n",
      best > 0.0 ? 100.0 * (worst - best) / best : 0.0);
  return 0;
}
