// Ablation A2 — the cost-function weight γ (§3.2): γ trades network
// traffic (γ → 1) against peer load (γ → 0). Sweeps γ over the grid
// scenario under stream sharing and reports measured total traffic and
// total CPU work for each setting.

#include <cstdio>

#include "workload/scenario.h"

using namespace streamshare;

int main() {
  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/13, /*query_count=*/100);

  std::printf(
      "Ablation A2 — gamma sweep (grid scenario, 100 queries, stream "
      "sharing)\n\n");
  std::printf("%8s %18s %18s %16s\n", "gamma", "total bytes",
              "total work units", "max peer load %");

  for (double gamma : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sharing::SystemConfig config;
    config.cost_params.gamma = gamma;
    Result<workload::ScenarioRun> run = workload::RunScenario(
        scenario, sharing::Strategy::kStreamSharing, config, 1000);
    if (!run.ok()) {
      std::fprintf(stderr, "gamma %.2f failed: %s\n", gamma,
                   run.status().ToString().c_str());
      return 1;
    }
    const engine::Metrics& metrics = run->system->metrics();
    double max_cpu = 0.0;
    for (size_t peer = 0; peer < scenario.topology.peer_count(); ++peer) {
      max_cpu = std::max(
          max_cpu, metrics.PeerCpuPercent(
                       static_cast<network::NodeId>(peer), run->duration_s,
                       scenario.topology.peer(peer).max_load));
    }
    std::printf("%8.2f %18llu %18.1f %16.2f\n", gamma,
                static_cast<unsigned long long>(metrics.TotalBytes()),
                metrics.TotalWork(), max_cpu);
  }
  return 0;
}
