// M5 — transport codec throughput and bytes-on-wire: encodes/decodes a
// photon stream with the per-link dictionary codec and compares the
// wire size against the compact XML text form the links would otherwise
// carry. Output is `key=value` lines (codec_-prefixed so the perf
// trajectory can fold them into BENCH_engine.json next to the engine
// numbers); `#` lines are commentary.
//
//   ./bench/bench_codec [items] | ./tools/bench_to_json BENCH_codec.json

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "engine/record.h"
#include "transport/codec.h"
#include "transport/wire.h"
#include "workload/photon_gen.h"
#include "xml/xml_writer.h"

using namespace streamshare;

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  size_t item_count = 5000;
  if (argc > 1) item_count = static_cast<size_t>(std::atoll(argv[1]));
  constexpr int kPasses = 20;  // re-encode the stream this many times

  workload::PhotonGenerator generator(workload::PhotonGenConfig{});
  std::vector<engine::ItemPtr> photons = generator.Generate(item_count);

  // Baseline: the XML text form (what a link carries without the codec).
  uint64_t text_bytes = 0;
  for (const engine::ItemPtr& photon : photons) {
    text_bytes += photon->SerializedSize();
  }

  // Encode passes. A fresh encoder per pass mirrors a link (re)start:
  // the first items pay literal names, the rest hit the dictionary.
  std::vector<std::string> encoded(photons.size());
  uint64_t encoded_bytes = 0;
  auto encode_start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    transport::ItemEncoder encoder;
    encoded_bytes = 0;
    for (size_t i = 0; i < photons.size(); ++i) {
      encoded[i].clear();
      encoder.Encode(*photons[i], &encoded[i]);
      encoded_bytes += encoded[i].size();
    }
  }
  double encode_s = SecondsSince(encode_start) / kPasses;

  // Decode passes over the last pass's frames.
  bool identical = true;
  auto decode_start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    transport::ItemDecoder decoder;
    for (size_t i = 0; i < encoded.size(); ++i) {
      std::unique_ptr<xml::XmlNode> node;
      Status status = decoder.Decode(encoded[i], &node);
      if (!status.ok()) {
        std::fprintf(stderr, "decode failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      if (pass == 0 && !node->Equals(*photons[i])) identical = false;
    }
  }
  double decode_s = SecondsSince(decode_start) / kPasses;

  // Record-path passes: EncodeRecord straight from compact records and
  // DecodeSlot straight into them — the form the record-path engine
  // actually drives the links with. Photon frames never touch a DOM.
  std::vector<engine::PhotonRecord> records(photons.size());
  for (size_t i = 0; i < photons.size(); ++i) {
    if (!engine::PhotonRecord::FromXml(*photons[i], &records[i])) {
      std::fprintf(stderr, "generator item %zu is not a photon\n", i);
      return 1;
    }
  }
  uint64_t record_encoded_bytes = 0;
  auto record_encode_start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    transport::ItemEncoder encoder;
    record_encoded_bytes = 0;
    for (size_t i = 0; i < records.size(); ++i) {
      encoded[i].clear();
      encoder.EncodeRecord(records[i], &encoded[i]);
      record_encoded_bytes += encoded[i].size();
    }
  }
  double record_encode_s = SecondsSince(record_encode_start) / kPasses;
  if (record_encoded_bytes != encoded_bytes) identical = false;

  auto record_decode_start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    transport::ItemDecoder decoder;
    for (size_t i = 0; i < encoded.size(); ++i) {
      engine::ItemBatch::Slot slot;
      Status status = decoder.DecodeSlot(encoded[i], &slot);
      if (!status.ok()) {
        std::fprintf(stderr, "record decode failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      if (pass == 0 &&
          (!slot.is_record ||
           slot.record.ContentHash() != records[i].ContentHash())) {
        identical = false;
      }
    }
  }
  double record_decode_s = SecondsSince(record_decode_start) / kPasses;

  // Text-serialization pass for the throughput comparison.
  auto text_start = std::chrono::steady_clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    uint64_t sink = 0;
    for (const engine::ItemPtr& photon : photons) {
      sink += xml::WriteCompact(*photon).size();
    }
    if (sink != text_bytes) identical = false;
  }
  double text_s = SecondsSince(text_start) / kPasses;

  double items = static_cast<double>(photons.size());
  std::printf("# codec on %zu photons, %d passes each\n", photons.size(),
              kPasses);
  std::printf("codec_items=%zu\n", photons.size());
  std::printf("codec_text_bytes=%llu\n",
              static_cast<unsigned long long>(text_bytes));
  std::printf("codec_encoded_bytes=%llu\n",
              static_cast<unsigned long long>(encoded_bytes));
  std::printf("codec_bytes_ratio=%.3f\n",
              static_cast<double>(encoded_bytes) /
                  static_cast<double>(text_bytes));
  std::printf("codec_encode_items_per_s=%.1f\n", items / encode_s);
  std::printf("codec_decode_items_per_s=%.1f\n", items / decode_s);
  std::printf("codec_text_serialize_items_per_s=%.1f\n", items / text_s);
  std::printf("codec_encode_mb_per_s=%.1f\n",
              static_cast<double>(encoded_bytes) / encode_s / 1e6);
  std::printf("codec_decode_mb_per_s=%.1f\n",
              static_cast<double>(encoded_bytes) / decode_s / 1e6);
  std::printf("codec_record_encode_mb_per_s=%.1f\n",
              static_cast<double>(record_encoded_bytes) / record_encode_s /
                  1e6);
  std::printf("codec_record_decode_mb_per_s=%.1f\n",
              static_cast<double>(record_encoded_bytes) / record_decode_s /
                  1e6);
  std::printf("codec_roundtrip_identical=%d\n", identical ? 1 : 0);
  if (!identical) {
    std::fprintf(stderr, "round trip diverged\n");
    return 1;
  }
  return 0;
}
