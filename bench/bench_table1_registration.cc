// Table 1 (E5): query registration times. For both evaluation scenarios
// and all three strategies, reports the average / minimum / maximum
// wall-clock time from the beginning of a query's registration until it
// is installed in the network. Absolute values are microseconds (the
// paper's blades + real network measured milliseconds); the paper's
// observation to reproduce is the *ratio*: stream sharing stays within a
// small factor (~3×) of the two trivial strategies.

#include <algorithm>
#include <cstdio>

#include "workload/scenario.h"

using namespace streamshare;

namespace {

struct Times {
  double avg = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Result<Times> Measure(const workload::ScenarioSpec& scenario,
                      sharing::Strategy strategy) {
  SS_ASSIGN_OR_RETURN(auto system,
                      workload::BuildSystem(scenario, sharing::SystemConfig{}));
  for (const workload::QuerySpec& query : scenario.queries) {
    Result<sharing::RegistrationResult> result =
        system->RegisterQuery(query.text, query.target, strategy);
    SS_RETURN_IF_ERROR(result.status());
  }
  Times times;
  times.min = 1e300;
  for (const sharing::RegistrationResult& r : system->registrations()) {
    times.avg += r.registration_micros;
    times.min = std::min(times.min, r.registration_micros);
    times.max = std::max(times.max, r.registration_micros);
  }
  times.avg /= static_cast<double>(system->registrations().size());
  return times;
}

}  // namespace

int main() {
  workload::ScenarioSpec scenario1 =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/25);
  workload::ScenarioSpec scenario2 =
      workload::GridScenario(/*seed=*/13, /*query_count=*/100);

  const std::pair<sharing::Strategy, const char*> strategies[] = {
      {sharing::Strategy::kDataShipping, "Data Shipping"},
      {sharing::Strategy::kQueryShipping, "Query Shipping"},
      {sharing::Strategy::kStreamSharing, "Stream Sharing"},
  };

  std::printf("Table 1 — query registration times (microseconds)\n\n");
  std::printf("%-16s %10s %10s %10s %10s %10s %10s\n", "Scenario",
              "Avg 1", "Avg 2", "Min 1", "Min 2", "Max 1", "Max 2");

  double baseline_avg1 = 0.0, baseline_avg2 = 0.0;
  for (const auto& [strategy, name] : strategies) {
    Result<Times> t1 = Measure(scenario1, strategy);
    Result<Times> t2 = Measure(scenario2, strategy);
    if (!t1.ok() || !t2.ok()) {
      std::fprintf(stderr, "%s failed: %s %s\n", name,
                   t1.status().ToString().c_str(),
                   t2.status().ToString().c_str());
      return 1;
    }
    std::printf("%-16s %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f\n", name,
                t1->avg, t2->avg, t1->min, t2->min, t1->max, t2->max);
    if (strategy == sharing::Strategy::kDataShipping) {
      baseline_avg1 = t1->avg;
      baseline_avg2 = t2->avg;
    } else if (strategy == sharing::Strategy::kStreamSharing) {
      std::printf(
          "\nStream sharing / data shipping average ratio: scenario 1 = "
          "%.2fx, scenario 2 = %.2fx\n",
          t1->avg / baseline_avg1, t2->avg / baseline_avg2);
      std::printf(
          "(The paper reports stream sharing within ~3x of the simpler "
          "strategies.)\n");
    }
  }
  return 0;
}
