// Ablation A1 — search pruning (§3.3): Algorithm 1 only explores nodes
// reached via matching data streams, ignoring connections that carry no
// variant streams. This bench registers the grid scenario's 100 queries
// under stream sharing with pruning on and off and compares search effort
// (nodes visited, candidates examined, plans generated) and the resulting
// plan quality (total plan cost).

#include <cstdio>

#include "workload/scenario.h"

using namespace streamshare;

namespace {

struct Totals {
  long nodes = 0;
  long candidates = 0;
  long matched = 0;
  long plans = 0;
  double cost = 0.0;
  double micros = 0.0;
};

Result<Totals> RunWith(bool prune) {
  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/13, /*query_count=*/100);
  sharing::SystemConfig config;
  config.planner.prune_search = prune;
  SS_ASSIGN_OR_RETURN(auto system, workload::BuildSystem(scenario, config));
  Totals totals;
  for (const workload::QuerySpec& query : scenario.queries) {
    Result<sharing::RegistrationResult> result = system->RegisterQuery(
        query.text, query.target, sharing::Strategy::kStreamSharing);
    SS_RETURN_IF_ERROR(result.status());
    totals.nodes += result->search.nodes_visited;
    totals.candidates += result->search.candidates_examined;
    totals.matched += result->search.candidates_matched;
    totals.plans += result->search.plans_generated;
    totals.cost += result->plan.TotalCost();
    totals.micros += result->registration_micros;
  }
  return totals;
}

}  // namespace

int main() {
  Result<Totals> pruned = RunWith(true);
  Result<Totals> unpruned = RunWith(false);
  if (!pruned.ok() || !unpruned.ok()) {
    std::fprintf(stderr, "ablation failed: %s %s\n",
                 pruned.status().ToString().c_str(),
                 unpruned.status().ToString().c_str());
    return 1;
  }

  std::printf("Ablation A1 — BFS pruning (grid scenario, 100 queries)\n\n");
  std::printf("%-24s %14s %14s\n", "", "pruned", "unpruned");
  std::printf("%-24s %14ld %14ld\n", "nodes visited", pruned->nodes,
              unpruned->nodes);
  std::printf("%-24s %14ld %14ld\n", "candidates examined",
              pruned->candidates, unpruned->candidates);
  std::printf("%-24s %14ld %14ld\n", "candidates matched",
              pruned->matched, unpruned->matched);
  std::printf("%-24s %14ld %14ld\n", "plans generated", pruned->plans,
              unpruned->plans);
  std::printf("%-24s %14.3f %14.3f\n", "total plan cost", pruned->cost,
              unpruned->cost);
  std::printf("%-24s %14.0f %14.0f\n", "registration time (us)",
              pruned->micros, unpruned->micros);
  std::printf(
      "\nPruning must not change plan quality when streams span the "
      "relevant region: cost delta = %.6f\n",
      unpruned->cost - pruned->cost);
  return 0;
}
