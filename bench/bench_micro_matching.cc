// M5 — microbenchmarks of the matching layer and the Subscribe planner:
// MatchProperties throughput on workload-shaped properties, aggregate
// matching, and full Algorithm-1 registration against a populated
// network.

#include <benchmark/benchmark.h>

#include "matching/match_properties.h"
#include "workload/scenario.h"
#include "wxquery/analyzer.h"

using namespace streamshare;

namespace {

std::vector<properties::InputStreamProperties> WorkloadProps(
    size_t count, uint64_t seed) {
  workload::QueryGenerator generator(
      workload::QueryGenConfig::Default(seed));
  std::vector<properties::InputStreamProperties> out;
  while (out.size() < count) {
    Result<wxquery::AnalyzedQuery> analyzed =
        wxquery::ParseAndAnalyze(generator.Next());
    if (analyzed.ok()) {
      out.push_back(analyzed->props.inputs()[0]);
    }
  }
  return out;
}

void BM_MatchProperties(benchmark::State& state) {
  auto streams = WorkloadProps(32, 1);
  auto subs = WorkloadProps(32, 2);
  size_t i = 0;
  for (auto _ : state) {
    const auto& stream = streams[i % streams.size()];
    const auto& sub = subs[(i / streams.size()) % subs.size()];
    benchmark::DoNotOptimize(matching::MatchProperties(stream, sub));
    ++i;
  }
}
BENCHMARK(BM_MatchProperties);

void BM_MatchPropertiesComplete(benchmark::State& state) {
  auto streams = WorkloadProps(32, 1);
  auto subs = WorkloadProps(32, 2);
  matching::MatchOptions complete;
  complete.edge_local_predicates = false;
  size_t i = 0;
  for (auto _ : state) {
    const auto& stream = streams[i % streams.size()];
    const auto& sub = subs[(i / streams.size()) % subs.size()];
    benchmark::DoNotOptimize(
        matching::MatchProperties(stream, sub, complete));
    ++i;
  }
}
BENCHMARK(BM_MatchPropertiesComplete);

void BM_SubscribeAgainstPopulatedNetwork(benchmark::State& state) {
  // Populate a grid with `range` prior subscriptions, then measure the
  // registration cost of one more.
  workload::ScenarioSpec scenario = workload::GridScenario(
      /*seed=*/5, /*query_count=*/static_cast<size_t>(state.range(0)));
  Result<std::unique_ptr<sharing::StreamShareSystem>> built =
      workload::BuildSystem(scenario, sharing::SystemConfig{});
  if (!built.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  auto system = std::move(*built);
  for (const workload::QuerySpec& query : scenario.queries) {
    if (!system
             ->RegisterQuery(query.text, query.target,
                             sharing::Strategy::kStreamSharing)
             .ok()) {
      state.SkipWithError("population failed");
      return;
    }
  }
  workload::QueryGenerator generator(
      workload::QueryGenConfig::Default(77, "photons"));
  std::vector<std::string> probes = generator.Generate(64);
  size_t i = 0;
  for (auto _ : state) {
    network::NodeId target = static_cast<network::NodeId>(i % 16);
    Result<sharing::RegistrationResult> result = system->RegisterQuery(
        probes[i % probes.size()], target,
        sharing::Strategy::kStreamSharing);
    ++i;
    benchmark::DoNotOptimize(result);
  }
}
// Fixed iteration count: every measured registration also deploys, so the
// network grows as the benchmark runs; a bounded run keeps the population
// near its nominal size.
BENCHMARK(BM_SubscribeAgainstPopulatedNetwork)
    ->Arg(0)
    ->Arg(25)
    ->Arg(100)
    ->Iterations(150)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
