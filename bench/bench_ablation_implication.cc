// Ablation A3 — predicate implication strength: the paper's Algorithm 3 is
// edge-local (it compares direct edges only), which is cheaper but
// conservative relative to full shortest-path implication. This bench
// generates random conjunction pairs, measures how often each test
// accepts, and verifies the containment relation (edge-local acceptances
// are a subset of complete acceptances). On the grid workload itself the
// two coincide (box predicates have no derived-bound chains), which is
// also measured.

#include <cstdio>
#include <random>

#include "matching/match_predicates.h"
#include "workload/scenario.h"
#include "wxquery/analyzer.h"

using namespace streamshare;

namespace {

xml::Path P(const std::string& text) {
  return xml::Path::Parse(text).value();
}

std::vector<predicate::AtomicPredicate> RandomConjunction(
    std::mt19937_64* rng) {
  static const char* const kVars[] = {"u", "v", "w", "x"};
  std::uniform_int_distribution<int> count_dist(2, 6);
  std::uniform_int_distribution<int> var_dist(0, 3);
  std::uniform_int_distribution<int> const_dist(-8, 8);
  std::uniform_int_distribution<int> op_dist(0, 3);
  std::uniform_int_distribution<int> kind_dist(0, 2);
  static const predicate::ComparisonOp kOps[] = {
      predicate::ComparisonOp::kLt, predicate::ComparisonOp::kLe,
      predicate::ComparisonOp::kGt, predicate::ComparisonOp::kGe};
  std::vector<predicate::AtomicPredicate> out;
  int count = count_dist(*rng);
  for (int i = 0; i < count; ++i) {
    int lhs = var_dist(*rng);
    if (kind_dist(*rng) == 0) {
      int rhs = var_dist(*rng);
      if (rhs == lhs) rhs = (rhs + 1) % 4;
      out.push_back(predicate::AtomicPredicate::CompareVars(
          P(kVars[lhs]), kOps[op_dist(*rng)], P(kVars[rhs]),
          Decimal::FromInt(const_dist(*rng))));
    } else {
      out.push_back(predicate::AtomicPredicate::Compare(
          P(kVars[lhs]), kOps[op_dist(*rng)],
          Decimal::FromInt(const_dist(*rng))));
    }
  }
  return out;
}

}  // namespace

int main() {
  std::mt19937_64 rng(4242);
  const int kRounds = 20000;
  int satisfiable_pairs = 0;
  int edge_local_accepts = 0;
  int complete_accepts = 0;
  int containment_violations = 0;

  for (int round = 0; round < kRounds; ++round) {
    predicate::PredicateGraph stream =
        predicate::PredicateGraph::Build(RandomConjunction(&rng));
    predicate::PredicateGraph sub =
        predicate::PredicateGraph::Build(RandomConjunction(&rng));
    if (!stream.IsSatisfiable() || !sub.IsSatisfiable()) continue;
    stream.Minimize();
    sub.Minimize();
    ++satisfiable_pairs;
    bool edge_local = matching::MatchPredicatesEdgeLocal(stream, sub);
    bool complete = matching::MatchPredicatesComplete(stream, sub);
    if (edge_local) ++edge_local_accepts;
    if (complete) ++complete_accepts;
    if (edge_local && !complete) ++containment_violations;
  }

  std::printf("Ablation A3 — edge-local (Algorithm 3) vs. complete "
              "implication, %d random pairs\n\n",
              kRounds);
  std::printf("satisfiable pairs          %8d\n", satisfiable_pairs);
  std::printf("edge-local acceptances     %8d\n", edge_local_accepts);
  std::printf("complete acceptances       %8d\n", complete_accepts);
  std::printf("sharing opportunities lost %8d (%.2f%% of complete)\n",
              complete_accepts - edge_local_accepts,
              complete_accepts > 0
                  ? 100.0 * (complete_accepts - edge_local_accepts) /
                        complete_accepts
                  : 0.0);
  std::printf("containment violations     %8d (must be 0)\n",
              containment_violations);

  // On the paper-style box workload the two tests coincide: measure it.
  workload::QueryGenerator generator(workload::QueryGenConfig::Default(77));
  std::vector<predicate::PredicateGraph> graphs;
  for (const std::string& text : generator.Generate(60)) {
    Result<wxquery::AnalyzedQuery> analyzed =
        wxquery::ParseAndAnalyze(text);
    if (!analyzed.ok()) continue;
    const auto* selection = analyzed->props.inputs()[0].selection();
    if (selection != nullptr) graphs.push_back(selection->graph);
  }
  int workload_pairs = 0, workload_disagreements = 0;
  for (const auto& stream : graphs) {
    for (const auto& sub : graphs) {
      ++workload_pairs;
      if (matching::MatchPredicatesEdgeLocal(stream, sub) !=
          matching::MatchPredicatesComplete(stream, sub)) {
        ++workload_disagreements;
      }
    }
  }
  std::printf(
      "\nbox-template workload: %d pairs, %d edge-local/complete "
      "disagreements\n",
      workload_pairs, workload_disagreements);
  return containment_violations == 0 ? 0 : 1;
}
