// Figure 6 (E1 + E2): extended example scenario — 8 super-peers, 1 data
// stream, 25 queries. Prints, per strategy, the average CPU load of every
// super-peer (left plot) and the average traffic of every network
// connection in kbps (right plot). Values are measured from actually
// running the generated photon stream through each deployed network.

#include <cstdio>
#include <vector>

#include "workload/scenario.h"

using namespace streamshare;

namespace {

constexpr size_t kItems = 3000;

struct StrategyResult {
  const char* name;
  std::vector<double> cpu_percent;
  std::vector<double> link_kbps;
  int accepted = 0;
};

}  // namespace

int main() {
  workload::ScenarioSpec scenario =
      workload::ExtendedExampleScenario(/*seed=*/11, /*query_count=*/25);
  const network::Topology& topology = scenario.topology;

  const std::pair<sharing::Strategy, const char*> strategies[] = {
      {sharing::Strategy::kDataShipping, "Data Shipping"},
      {sharing::Strategy::kQueryShipping, "Query Shipping"},
      {sharing::Strategy::kStreamSharing, "Stream Sharing"},
  };

  std::vector<StrategyResult> results;
  for (const auto& [strategy, name] : strategies) {
    sharing::SystemConfig config;
    Result<workload::ScenarioRun> run =
        workload::RunScenario(scenario, strategy, config, kItems);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   run.status().ToString().c_str());
      return 1;
    }
    StrategyResult result;
    result.name = name;
    result.accepted = run->accepted;
    const engine::Metrics& metrics = run->system->metrics();
    for (size_t peer = 0; peer < topology.peer_count(); ++peer) {
      result.cpu_percent.push_back(metrics.PeerCpuPercent(
          static_cast<network::NodeId>(peer), run->duration_s,
          topology.peer(peer).max_load));
    }
    for (size_t link = 0; link < topology.link_count(); ++link) {
      result.link_kbps.push_back(metrics.LinkKbps(
          static_cast<network::LinkId>(link), run->duration_s));
    }
    results.push_back(std::move(result));
  }

  std::printf(
      "Figure 6 — extended example scenario: 8 super-peers, 1 data "
      "stream, 25 queries (%zu photons)\n\n",
      kItems);

  std::printf("Avg. CPU Load (%%)\n");
  std::printf("%-8s", "Peer");
  for (const StrategyResult& result : results) {
    std::printf("%18s", result.name);
  }
  std::printf("\n");
  for (size_t peer = 0; peer < topology.peer_count(); ++peer) {
    std::printf("%-8s", topology.peer(peer).name.c_str());
    for (const StrategyResult& result : results) {
      std::printf("%18.2f", result.cpu_percent[peer]);
    }
    std::printf("\n");
  }

  std::printf("\nAvg. Network Traffic (kbps)\n");
  std::printf("%-12s", "Connection");
  for (const StrategyResult& result : results) {
    std::printf("%18s", result.name);
  }
  std::printf("\n");
  for (size_t link = 0; link < topology.link_count(); ++link) {
    const network::Link& l = topology.link(link);
    std::string label = std::to_string(l.a) + "-" + std::to_string(l.b);
    std::printf("%-12s", label.c_str());
    for (const StrategyResult& result : results) {
      std::printf("%18.2f", result.link_kbps[link]);
    }
    std::printf("\n");
  }

  std::printf("\nTotals\n");
  for (const StrategyResult& result : results) {
    double cpu_total = 0.0;
    for (double value : result.cpu_percent) cpu_total += value;
    double traffic_total = 0.0;
    for (double value : result.link_kbps) traffic_total += value;
    std::printf(
        "  %-16s accepted=%2d   sum CPU = %8.2f %%   sum traffic = "
        "%9.2f kbps\n",
        result.name, result.accepted, cpu_total, traffic_total);
  }
  return 0;
}
