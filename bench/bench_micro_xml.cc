// M4 — microbenchmarks of the XML substrate: photon serialization,
// document parsing, streaming item reading, and selection/projection
// operator throughput on photon items.

#include <benchmark/benchmark.h>

#include "engine/executor.h"
#include "engine/operator.h"
#include "workload/photon_gen.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

using namespace streamshare;

namespace {

xml::Path P(const char* text) { return xml::Path::Parse(text).value(); }

std::string PhotonDocument(size_t count) {
  workload::PhotonGenConfig config;
  workload::PhotonGenerator generator(config);
  std::string doc = "<photons>";
  for (const engine::ItemPtr& photon : generator.Generate(count)) {
    doc += xml::WriteCompact(*photon);
  }
  doc += "</photons>";
  return doc;
}

void BM_SerializePhoton(benchmark::State& state) {
  workload::PhotonGenerator generator(workload::PhotonGenConfig{});
  engine::ItemPtr photon = generator.Next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::WriteCompact(*photon));
  }
}
BENCHMARK(BM_SerializePhoton);

void BM_ParsePhotonDocument(benchmark::State& state) {
  std::string doc = PhotonDocument(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(xml::ParseDocument(doc));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ParsePhotonDocument)->Arg(64)->Arg(512);

void BM_ItemReader(benchmark::State& state) {
  std::string doc = PhotonDocument(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    xml::XmlItemReader reader(doc);
    size_t items = 0;
    while (true) {
      auto item = reader.NextItem();
      if (!item.ok() || *item == nullptr) break;
      ++items;
    }
    benchmark::DoNotOptimize(items);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_ItemReader)->Arg(64)->Arg(512);

void BM_SelectThroughput(benchmark::State& state) {
  workload::PhotonGenerator generator(workload::PhotonGenConfig{});
  std::vector<engine::ItemPtr> photons = generator.Generate(2048);
  std::vector<predicate::AtomicPredicate> box{
      predicate::AtomicPredicate::Compare(P("coord/cel/ra"),
                                          predicate::ComparisonOp::kGe,
                                          Decimal::Parse("120.0").value()),
      predicate::AtomicPredicate::Compare(P("coord/cel/ra"),
                                          predicate::ComparisonOp::kLe,
                                          Decimal::Parse("138.0").value()),
      predicate::AtomicPredicate::Compare(
          P("coord/cel/dec"), predicate::ComparisonOp::kGe,
          Decimal::Parse("-49.0").value()),
      predicate::AtomicPredicate::Compare(
          P("coord/cel/dec"), predicate::ComparisonOp::kLe,
          Decimal::Parse("-40.0").value()),
  };
  for (auto _ : state) {
    state.PauseTiming();
    engine::OperatorGraph graph;
    auto* select = graph.Add<engine::SelectOp>("sel", box);
    auto* sink = graph.Add<engine::SinkOp>("sink");
    select->AddDownstream(sink);
    state.ResumeTiming();
    for (const engine::ItemPtr& photon : photons) {
      benchmark::DoNotOptimize(select->Push(photon));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(photons.size()));
}
BENCHMARK(BM_SelectThroughput);

void BM_ProjectThroughput(benchmark::State& state) {
  workload::PhotonGenerator generator(workload::PhotonGenConfig{});
  std::vector<engine::ItemPtr> photons = generator.Generate(2048);
  std::vector<xml::Path> output{P("coord/cel/ra"), P("coord/cel/dec"),
                                P("en"), P("det_time")};
  for (auto _ : state) {
    state.PauseTiming();
    engine::OperatorGraph graph;
    auto* project = graph.Add<engine::ProjectOp>("proj", output);
    auto* sink = graph.Add<engine::SinkOp>("sink");
    project->AddDownstream(sink);
    state.ResumeTiming();
    for (const engine::ItemPtr& photon : photons) {
      benchmark::DoNotOptimize(project->Push(photon));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(photons.size()));
}
BENCHMARK(BM_ProjectThroughput);

}  // namespace

BENCHMARK_MAIN();
