// Measured-latency plane on the 4×4 grid workload: per-query end-to-end
// p50/p99 under (a) the thread-parallel executor and (b) the tcp
// transport with one OS process per partition (histogram shards merged
// through the report pipe), plus a serial stamping-overhead pair (the
// same record-path run with measure_latency on and off) that CI gates on.
//
// Output is `key=value` lines; pipe through tools/bench_to_json to
// persist BENCH_latency.json:
//
//   ./bench/bench_latency | ./tools/bench_to_json BENCH_latency.json
//
// Usage: bench_latency [items_per_stream] [query_count]

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "obs/metrics_registry.h"
#include "workload/scenario.h"

using namespace streamshare;

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Result<std::unique_ptr<sharing::StreamShareSystem>> Deploy(
    const workload::ScenarioSpec& scenario,
    const sharing::SystemConfig& config) {
  SS_ASSIGN_OR_RETURN(std::unique_ptr<sharing::StreamShareSystem> system,
                      workload::BuildSystem(scenario, config));
  for (const workload::QuerySpec& query : scenario.queries) {
    Result<sharing::RegistrationResult> result = system->RegisterQuery(
        query.text, query.target, sharing::Strategy::kStreamSharing);
    SS_RETURN_IF_ERROR(result.status());
  }
  return system;
}

/// Emits `<mode>.q<id>.{p50_us,p99_us,stamped}` for every accepted query
/// of `system`. A query whose sink saw no stamped item (e.g. a windowed
/// aggregate whose windows all flushed at end of stream) reports zeros —
/// a stable key set matters more than suppressing empty series.
void PrintQueryLatencies(const sharing::StreamShareSystem& system,
                         const char* mode) {
  for (const sharing::RegistrationResult& registration :
       system.registrations()) {
    if (!registration.accepted || registration.sink == nullptr) continue;
    const obs::Histogram* hist = registration.sink->latency_histogram();
    uint64_t stamped = hist != nullptr ? hist->Count() : 0;
    double p50 = stamped > 0 ? hist->Quantile(0.50) : 0.0;
    double p99 = stamped > 0 ? hist->Quantile(0.99) : 0.0;
    std::printf("%s.q%d.p50_us=%.1f\n", mode, registration.query_id, p50);
    std::printf("%s.q%d.p99_us=%.1f\n", mode, registration.query_id, p99);
    std::printf("%s.q%d.stamped=%llu\n", mode, registration.query_id,
                static_cast<unsigned long long>(stamped));
  }
}

}  // namespace

int main(int argc, char** argv) {
  size_t items_per_stream = 2000;
  int query_count = 40;
  if (argc > 1) items_per_stream = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) query_count = std::atoi(argv[2]);

  workload::ScenarioSpec scenario =
      workload::GridScenario(/*seed=*/13, query_count);

  sharing::SystemConfig config;  // stamping on by default

  std::map<std::string, std::vector<engine::ItemPtr>> items;
  size_t total_items = 0;
  for (const workload::StreamSpec& stream : scenario.streams) {
    workload::PhotonGenerator generator(stream.gen);
    items[stream.name] = generator.Generate(items_per_stream);
    total_items += items_per_stream;
  }
  auto make_batches = [&](const sharing::SystemConfig& cfg) {
    std::map<std::string, std::vector<engine::ItemBatch>> batches;
    for (const workload::StreamSpec& stream : scenario.streams) {
      workload::PhotonGenerator generator(stream.gen);
      batches[stream.name] = generator.GenerateBatches(
          items_per_stream, cfg.parallel.batch_size);
    }
    return batches;
  };

  std::printf("# grid, %d queries, %zu items/stream\n", query_count,
              items_per_stream);
  std::printf("bench=latency\n");
  std::printf("workload=grid4x4\n");
  std::printf("queries=%d\n", query_count);
  std::printf("items_total=%zu\n", total_items);

  // --- Stamping-overhead pair: identical serial record-path runs, one
  // clock read per item apart. CI gates on the relative difference, so
  // the measurement must beat scheduler noise: interleave the two
  // configurations across trials and take each one's best rate (the
  // least-perturbed run is the closest to the true cost of the code).
  {
    constexpr int kTrials = 7;
    double stamped_rate = 0.0, unstamped_rate = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      for (bool stamping : {false, true}) {
        sharing::SystemConfig serial_config = config;
        serial_config.measure_latency = stamping;
        Result<std::unique_ptr<sharing::StreamShareSystem>> system =
            Deploy(scenario, serial_config);
        if (!system.ok()) {
          std::fprintf(stderr, "deploy failed: %s\n",
                       system.status().ToString().c_str());
          return 1;
        }
        auto batches = make_batches(serial_config);
        Clock::time_point start = Clock::now();
        Status status = (*system)->RunBatches(&batches);
        double elapsed = SecondsSince(start);
        if (!status.ok()) {
          std::fprintf(stderr, "serial run failed: %s\n",
                       status.ToString().c_str());
          return 1;
        }
        double rate = static_cast<double>(total_items) / elapsed;
        (stamping ? stamped_rate : unstamped_rate) =
            std::max(stamping ? stamped_rate : unstamped_rate, rate);
      }
    }
    std::printf("stamped_items_per_s=%.1f\n", stamped_rate);
    std::printf("unstamped_items_per_s=%.1f\n", unstamped_rate);
    std::printf("stamping_overhead_pct=%.2f\n",
                unstamped_rate > 0
                    ? (unstamped_rate - stamped_rate) / unstamped_rate * 100
                    : 0.0);
  }

  // --- Thread mode: peer-partitioned parallel executor, shared address
  // space, sinks observe straight into the process-local histograms.
  obs::MetricsRegistry::Default().ResetAll();
  {
    Result<std::unique_ptr<sharing::StreamShareSystem>> system =
        Deploy(scenario, config);
    if (!system.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   system.status().ToString().c_str());
      return 1;
    }
    Clock::time_point start = Clock::now();
    Status status = (*system)->RunParallel(items);
    double elapsed = SecondsSince(start);
    if (!status.ok()) {
      std::fprintf(stderr, "thread run failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("thread_items_per_s=%.1f\n",
                static_cast<double>(total_items) / elapsed);
    PrintQueryLatencies(**system, "thread");
  }

  // --- tcp-process mode: one OS process per partition; each child's
  // histogram shard travels back over the report pipe and is merged into
  // this process's registry, so the same sink accessors work.
  obs::MetricsRegistry::Default().ResetAll();
  {
    sharing::SystemConfig tcp_config = config;
    tcp_config.transport = "tcp";
    tcp_config.transport_processes = true;
    Result<std::unique_ptr<sharing::StreamShareSystem>> system =
        Deploy(scenario, tcp_config);
    if (!system.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   system.status().ToString().c_str());
      return 1;
    }
    Clock::time_point start = Clock::now();
    Status status = (*system)->RunTransport(items);
    double elapsed = SecondsSince(start);
    if (!status.ok()) {
      std::fprintf(stderr, "tcp-process run failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::printf("tcpproc_items_per_s=%.1f\n",
                static_cast<double>(total_items) / elapsed);
    PrintQueryLatencies(**system, "tcpproc");
  }
  return 0;
}
